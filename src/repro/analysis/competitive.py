"""Competitive-ratio computation and the Section 4.1 cost allocation.

Two independent accountings of an Algorithm 1 run are implemented:

* :func:`paper_total_cost` — the paper's convention: transfers, plus for
  every regular-copy period its realised storage, where trailing copies
  (after each server's last request) are charged their *full intended
  duration*, the regular copy opened by the final request and the
  infinitely surviving special copy are excluded (Section 4.1's
  bookkeeping);
* :func:`allocate_costs` — the Proposition 2 per-request allocation,
  plus the trailing-copy durations assigned to first requests.

The paper asserts these are equal ("It is easy to verify that the sum of
the costs allocated to all requests is equal to the total online cost");
the test suite verifies the identity on thousands of traces, which pins
down both the classifier and the simulator's lifecycle records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..algorithms.learning_augmented import (
    LearningAugmentedReplication,
    RequestClassification,
    RequestType,
)
from ..core.costs import CostModel
from ..core.simulator import SimulationResult, simulate
from ..core.trace import Trace
from ..offline.dp import optimal_cost

__all__ = [
    "competitive_ratio",
    "RunAnalysis",
    "analyze_run",
    "paper_total_cost",
    "allocate_costs",
]


def competitive_ratio(
    online_cost: float, optimal: float
) -> float:
    """Online-to-optimal cost ratio (inf when the optimum is 0)."""
    if optimal < 0 or online_cost < 0:
        raise ValueError("costs must be non-negative")
    if optimal == 0.0:
        return float("inf") if online_cost > 0 else 1.0
    return online_cost / optimal


@dataclass(frozen=True)
class RunAnalysis:
    """Joint online/offline analysis of one simulation run."""

    online_cost: float
    optimal_cost: float
    ratio: float
    n_transfers: int
    storage_cost: float
    type_counts: dict[str, int]

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"online={self.online_cost:.6g} optimal={self.optimal_cost:.6g} "
            f"ratio={self.ratio:.4f} transfers={self.n_transfers} "
            f"types={self.type_counts}"
        )


def analyze_run(
    trace: Trace,
    model: CostModel,
    policy: LearningAugmentedReplication,
) -> RunAnalysis:
    """Simulate ``policy`` on ``trace`` and compare with the exact optimum."""
    result = simulate(trace, model, policy)
    opt = optimal_cost(trace, model)
    counts = {t.name: 0 for t in RequestType}
    for c in policy.classifications:
        counts[c.rtype.name] += 1
    return RunAnalysis(
        online_cost=result.total_cost,
        optimal_cost=opt,
        ratio=competitive_ratio(result.total_cost, opt),
        n_transfers=result.ledger.n_transfers,
        storage_cost=result.storage_cost,
        type_counts=counts,
    )


def paper_total_cost(result: SimulationResult) -> float:
    """Total online cost under the paper's Section 4.1 conventions.

    Requires the run to have been simulated with ``drain=True`` (the
    default) so every copy period's fate is known.  Per period opened by
    request ``r_j`` at server ``s``:

    * closed by renewal at the next local request: charge the realised
      duration (includes any special phase — Type-4's allocation);
    * closed by drop after an outgoing transfer from its special phase:
      charge up to the drop (Type-2's allocation);
    * closed by drop at expiry: charge the intended duration;
    * still alive (the final special copy): charge only the intended
      (regular) duration;
    * opened by the final request ``r_m``: charge nothing.

    Transfers are charged ``lambda`` each.
    """
    m = len(result.trace)
    total = result.ledger.n_transfers * result.model.lam
    for rec in result.copy_records:
        if rec.opening_request == m:
            continue  # the regular copy after the final request: excluded
        if rec.closed_by == "renewed":
            total += (rec.end - rec.start) * result.model.rate(rec.server)
        elif rec.closed_by == "dropped":
            total += (rec.end - rec.start) * result.model.rate(rec.server)
        else:  # alive: the final special (or still-regular) copy
            dur = rec.intended_duration
            if math.isinf(dur):
                raise ValueError(
                    "paper_total_cost needs finite intended durations; "
                    "was the policy Algorithm 1?"
                )
            total += dur * result.model.rate(rec.server)
    return total


def allocate_costs(
    result: SimulationResult,
    classifications: list[RequestClassification],
) -> dict[int, float]:
    """Proposition 2 allocation: cost charged to each request index.

    * Type-1: ``l_i + lambda``;
    * Type-2: ``(t_i - t'_i) + l_i + lambda``;
    * Type-3: ``t_i - t_p(i)``;
    * Type-4: ``t_i - t_p(i)``;
    * first requests (``l_i`` undefined): receive one trailing regular
      copy's intended duration each, matching the paper's assignment of
      the ``n - 1`` post-final regular copies to the ``n - 1`` first
      requests.

    The sum of the returned values equals :func:`paper_total_cost` (an
    identity asserted by the test suite).
    """
    lam = result.model.lam
    alloc: dict[int, float] = {}
    first_requests: list[int] = []
    for c in classifications:
        cost = 0.0
        if c.rtype in (RequestType.TYPE_1, RequestType.TYPE_2):
            cost += lam
            if c.rtype is RequestType.TYPE_2:
                cost += c.t_i - c.t_prime
            if math.isnan(c.l_i):
                first_requests.append(c.request_index)
            else:
                cost += c.l_i
        else:
            cost += c.t_i - c.t_p
        alloc[c.request_index] = cost

    # trailing regular copies (after the last request at each server other
    # than s[r_m]) are assigned to first requests, one each
    m = len(result.trace)
    trailing: list[float] = []
    for rec in result.copy_records:
        if rec.opening_request == m:
            continue
        if rec.closed_by == "renewed":
            continue
        # dropped at expiry or alive: did it open at its server's last request?
        if _is_last_local_request(result.trace, rec.opening_request, rec.server):
            trailing.append(rec.intended_duration)
    # each first request receives one trailing duration (order-insensitive
    # for the sum identity; pair greedily)
    for idx, dur in zip(sorted(first_requests), sorted(trailing)):
        alloc[idx] = alloc.get(idx, 0.0) + dur
    if len(first_requests) != len(trailing):
        raise AssertionError(
            f"paper's pairing broke: {len(first_requests)} first requests "
            f"vs {len(trailing)} trailing copies"
        )
    return alloc


def _is_last_local_request(trace: Trace, request_index: int, server: int) -> bool:
    """True when ``request_index`` is the last request at ``server``
    (index 0 refers to the dummy request at server 0)."""
    for r in reversed(trace.requests):
        if r.server == server:
            return r.index == request_index
    return server == 0 and request_index == 0
