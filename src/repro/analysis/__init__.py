"""Competitive analysis, theory formulas, and the sweep harness."""

from .competitive import (
    RunAnalysis,
    allocate_costs,
    analyze_run,
    competitive_ratio,
    paper_total_cost,
)
from .metrics import (
    ReplicaTimeline,
    replica_timeline,
    serve_latency_proxy,
    special_copy_stats,
    storage_utilization,
    transfer_load,
)
from .partition import (
    OptimalHoldings,
    Partition,
    find_partitions,
    partition_report,
    reconstruct_optimal_holdings,
)
from .plotting import ascii_heatmap, render_sweep_heatmap, sparkline
from .sweep import (
    PAPER_ACCURACIES,
    PAPER_ALPHAS,
    PAPER_LAMBDAS,
    SweepPoint,
    SweepResult,
    algorithm1_factory,
    format_table,
    sweep_grid,
)
from .theory import (
    adaptive_robustness_bound,
    consistency_bound,
    conventional_competitive_ratio,
    deterministic_consistency_lower_bound,
    misprediction_penalty_bound,
    robustness_bound,
    wang_claimed_ratio,
    wang_true_ratio_lower_bound,
)

__all__ = [
    "competitive_ratio",
    "ReplicaTimeline",
    "replica_timeline",
    "serve_latency_proxy",
    "special_copy_stats",
    "storage_utilization",
    "transfer_load",
    "OptimalHoldings",
    "Partition",
    "find_partitions",
    "partition_report",
    "reconstruct_optimal_holdings",
    "ascii_heatmap",
    "render_sweep_heatmap",
    "sparkline",
    "RunAnalysis",
    "analyze_run",
    "paper_total_cost",
    "allocate_costs",
    "SweepPoint",
    "SweepResult",
    "sweep_grid",
    "format_table",
    "algorithm1_factory",
    "PAPER_ALPHAS",
    "PAPER_LAMBDAS",
    "PAPER_ACCURACIES",
    "consistency_bound",
    "robustness_bound",
    "adaptive_robustness_bound",
    "deterministic_consistency_lower_bound",
    "conventional_competitive_ratio",
    "misprediction_penalty_bound",
    "wang_claimed_ratio",
    "wang_true_ratio_lower_bound",
]
