"""The Section 5 division (partition) machinery.

The paper's competitive analysis divides a request sequence into
partitions based on the *optimal offline strategy*: a request ``r_i`` is
a partition boundary when no server other than ``s[r_i]`` holds a copy
crossing ``t_i``.  Within each partition ``<r_d, ..., r_e>`` the analysis
bounds ``Online(d, e) / OPT(d, e)`` by the robustness/consistency
constants, and the global ratio follows by aggregation.

This module makes that argument *executable*:

1. reconstruct the optimal strategy's storage intervals from the DP
   schedule (kept inter-request intervals plus bridging copies);
2. locate the partition boundaries;
3. charge the online algorithm's Proposition 2 allocations and the
   optimal strategy's storage/transfer costs to partitions;
4. report per-partition ratios.

Tests verify that every per-partition ratio respects the paper's bounds,
which validates the analysis machinery end-to-end on arbitrary traces —
a much sharper check than the aggregate ratio alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.learning_augmented import RequestClassification
from ..core.costs import CostModel
from ..core.simulator import SimulationResult
from ..core.trace import Trace
from ..offline.dp import optimal_schedule
from .competitive import allocate_costs

__all__ = [
    "OptimalHoldings",
    "Partition",
    "reconstruct_optimal_holdings",
    "find_partitions",
    "partition_report",
]


@dataclass(frozen=True)
class OptimalHoldings:
    """Storage intervals of one optimal offline strategy.

    ``intervals`` maps each server to a list of ``(start, end)`` holding
    periods; ``transfers`` lists the times of transfer-served requests;
    ``total_cost`` is the strategy's cost (== the DP optimum).
    """

    intervals: dict[int, list[tuple[float, float]]]
    transfers: tuple[float, ...]
    total_cost: float

    def holder_crossing(self, t: float, exclude: int | None = None) -> int | None:
        """A server (other than ``exclude``) holding a copy crossing time
        ``t`` (strictly containing ``t`` in the interior of a holding
        period), or None."""
        for server, ivs in self.intervals.items():
            if server == exclude:
                continue
            for a, b in ivs:
                if a < t < b:
                    return server
        return None


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge touching/overlapping intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    out = [intervals[0]]
    for a, b in intervals[1:]:
        la, lb = out[-1]
        if a <= lb + 1e-12:
            out[-1] = (la, max(lb, b))
        else:
            out.append((a, b))
    return out


def reconstruct_optimal_holdings(
    trace: Trace, model: CostModel
) -> OptimalHoldings:
    """Materialise the DP-optimal strategy as concrete storage intervals.

    * a ``keep`` decision at ``r_i`` holds a copy at ``s[r_i]`` over
      ``(t_i, nextlocal(i))``;
    * an uncovered gap ``(t_{i-1}, t_i)`` is bridged by extending the
      copy at ``s[r_{i-1}]`` (the server of the previous request, which
      always holds the object right after serving it);
    * requests not served locally are transfer-served.
    """
    cost, decisions = optimal_schedule(trace, model)
    seq = trace.with_dummy()
    nxt = trace.next_local_time()

    per_server: dict[int, list[tuple[float, float]]] = {}
    transfers: list[float] = []

    for d in decisions:  # covers r_0 .. r_m
        i = d.request_index
        if d.keep and nxt[i] != float("inf"):
            per_server.setdefault(seq[i].server, []).append(
                (seq[i].time, nxt[i])
            )
        if d.bridged:
            # the at-least-one-copy bridge extends the previous request's
            # server's copy across the uncovered gap
            prev = seq[i - 1]
            per_server.setdefault(prev.server, []).append(
                (prev.time, seq[i].time)
            )

    # a request is served locally iff a reconstructed interval at its own
    # server contains its arrival time (kept intervals end exactly at the
    # request they serve); everything else is transfer-served
    for r in trace:
        ivs = per_server.get(r.server, [])
        local = any(a < r.time <= b + 1e-12 for a, b in ivs)
        if not local:
            transfers.append(r.time)

    merged = {s: _merge(iv) for s, iv in per_server.items()}
    return OptimalHoldings(
        intervals=merged,
        transfers=tuple(transfers),
        total_cost=cost,
    )


@dataclass(frozen=True)
class Partition:
    """One partition ``<r_d, ..., r_e>`` of the division analysis.

    ``d`` and ``e`` are request indices (``d = 0`` denotes the dummy
    request).  ``online`` is the total Proposition 2 allocation of
    requests ``r_{d+1} .. r_e``; ``opt`` is the optimal strategy's cost
    over ``(t_d, t_e]``; ``ratio`` their quotient.
    """

    d: int
    e: int
    online: float
    opt: float

    @property
    def ratio(self) -> float:
        if self.opt <= 0:
            return float("inf") if self.online > 0 else 1.0
        return self.online / self.opt


def find_partitions(trace: Trace, holdings: OptimalHoldings) -> list[tuple[int, int]]:
    """Partition boundaries per Section 5.

    A request ``r_i`` is a boundary when no *other* server holds a copy
    crossing ``t_i`` in the optimal strategy.  The dummy request and the
    final request are always boundaries.
    """
    boundaries = [0]
    m = len(trace)
    for r in trace:
        if r.index == m:
            break
        if holdings.holder_crossing(r.time, exclude=r.server) is None:
            boundaries.append(r.index)
    boundaries.append(m)
    # deduplicate while preserving order
    seen = set()
    uniq = []
    for b in boundaries:
        if b not in seen:
            seen.add(b)
            uniq.append(b)
    return [(uniq[k], uniq[k + 1]) for k in range(len(uniq) - 1)]


def partition_report(
    trace: Trace,
    model: CostModel,
    result: SimulationResult,
    classifications: list[RequestClassification],
) -> list[Partition]:
    """Per-partition online/optimal cost breakdown.

    The online side uses the Proposition 2 allocation (so partition sums
    aggregate to the paper's online total); the optimal side charges each
    partition the optimal strategy's storage within ``(t_d, t_e]`` plus
    the transfers serving requests in that window.
    """
    holdings = reconstruct_optimal_holdings(trace, model)
    alloc = allocate_costs(result, classifications)
    bounds = find_partitions(trace, holdings)
    seq = trace.with_dummy()

    out: list[Partition] = []
    for d, e in bounds:
        t_d, t_e = seq[d].time, seq[e].time
        online = sum(alloc.get(i, 0.0) for i in range(d + 1, e + 1))
        # optimal storage clipped to (t_d, t_e]
        storage = 0.0
        for server, ivs in holdings.intervals.items():
            for a, b in ivs:
                lo, hi = max(a, t_d), min(b, t_e)
                if hi > lo:
                    storage += (hi - lo) * model.rate(server)
        transfers = sum(
            model.lam for t in holdings.transfers if t_d < t <= t_e
        )
        out.append(Partition(d=d, e=e, online=online, opt=storage + transfers))
    return out
