"""Text-based rendering of the paper's 3-D figures.

The evaluation environment has no plotting stack, so the Figures 25-32
surfaces are rendered as ASCII heat maps: one character cell per
(alpha, accuracy) grid point, shaded by the online-to-optimal ratio.
The shapes the paper describes — the corner peak, the flat alpha=1 row,
the valley toward (0, 100%) — are directly visible in the output.
"""

from __future__ import annotations

import numpy as np

from .sweep import SweepResult

__all__ = ["ascii_heatmap", "render_sweep_heatmap", "sparkline"]

#: shading ramp from low to high
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: list[str],
    col_labels: list[str],
    title: str = "",
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render ``matrix`` as an ASCII heat map with a value legend.

    Rows are printed top-to-bottom in the order given.  NaNs render as
    ``?``.
    """
    mat = np.asarray(matrix, dtype=float)
    if mat.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {mat.shape}")
    if mat.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"labels do not match matrix shape {mat.shape}: "
            f"{len(row_labels)} rows, {len(col_labels)} cols"
        )
    finite = mat[np.isfinite(mat)]
    lo = vmin if vmin is not None else (finite.min() if finite.size else 0.0)
    hi = vmax if vmax is not None else (finite.max() if finite.size else 1.0)
    spread = hi - lo

    width = max(len(c) for c in col_labels) if col_labels else 1
    lines = []
    if title:
        lines.append(title)
    header = " " * 8 + " ".join(c.rjust(width) for c in col_labels)
    lines.append(header)
    for i, rl in enumerate(row_labels):
        cells = []
        for j in range(mat.shape[1]):
            v = mat[i, j]
            if not np.isfinite(v):
                ch = "?"
            elif spread <= 0:
                ch = _RAMP[0]
            else:
                k = int((v - lo) / spread * (len(_RAMP) - 1) + 0.5)
                ch = _RAMP[min(max(k, 0), len(_RAMP) - 1)]
            cells.append((ch * min(width, 3)).rjust(width))
        lines.append(f"{rl:>7} " + " ".join(cells))
    lines.append(f"legend: '{_RAMP[0]}' = {lo:.3f}  ...  '{_RAMP[-1]}' = {hi:.3f}")
    return "\n".join(lines)


def render_sweep_heatmap(result: SweepResult, lam: float, title: str | None = None) -> str:
    """Heat map of a sweep grid for one lambda (the Figures 25-28 view)."""
    mat = result.ratios_for_lambda(lam)
    rows = [f"a={a:g}" for a in result.alphas()]
    cols = [f"{acc:.0%}" for acc in result.accuracies()]
    return ascii_heatmap(
        mat,
        rows,
        cols,
        title=title if title is not None else f"ratio heat map, lambda={lam:g}",
    )


def sparkline(values, width: int | None = None) -> str:
    """One-line trend rendering for benchmark series."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return ""
    if width is not None and vals.size > width:
        idx = np.linspace(0, vals.size - 1, width).round().astype(int)
        vals = vals[idx]
    lo, hi = float(np.nanmin(vals)), float(np.nanmax(vals))
    blocks = "▁▂▃▄▅▆▇█"
    if hi <= lo:
        return blocks[0] * vals.size
    out = []
    for v in vals:
        if not np.isfinite(v):
            out.append("?")
        else:
            k = int((v - lo) / (hi - lo) * (len(blocks) - 1) + 0.5)
            out.append(blocks[min(max(k, 0), len(blocks) - 1)])
    return "".join(out)
