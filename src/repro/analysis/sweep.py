"""Parameter-sweep harness reproducing the paper's evaluation grids.

The paper's Appendix J sweeps the hyper-parameter ``alpha``, the transfer
cost ``lambda``, and the prediction accuracy, normalising online costs by
the optimal offline cost.  :func:`sweep_grid` runs that grid for any
algorithm factory and :func:`format_table` renders the rows the paper
plots (one table per ``lambda``, accuracy across columns, ``alpha`` down
rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.costs import CostModel
from ..core.engine import Engine, run_slab
from ..core.policy import ReplicationPolicy
from ..core.trace import Trace
from ..obs import metrics as _obs
from ..offline.dp import optimal_cost
from ..predictions.oracle import NoisyOraclePredictor, OraclePredictor

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_grid",
    "format_table",
    "PAPER_ALPHAS",
    "PAPER_LAMBDAS",
    "PAPER_ACCURACIES",
]

#: the paper's hyper-parameter grid (Appendix J.1); alpha=0 is the
#: full-trust limit, permitted via allow_zero_alpha
PAPER_ALPHAS: tuple[float, ...] = tuple(round(0.1 * k, 1) for k in range(0, 11))
PAPER_LAMBDAS: tuple[float, ...] = (10.0, 100.0, 1000.0, 10000.0)
PAPER_ACCURACIES: tuple[float, ...] = tuple(round(0.1 * k, 1) for k in range(0, 11))


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: parameters plus the measured cost ratio."""

    lam: float
    alpha: float
    accuracy: float
    online_cost: float
    optimal_cost: float

    @property
    def ratio(self) -> float:
        if self.optimal_cost == 0:
            return float("inf")
        return self.online_cost / self.optimal_cost


@dataclass
class SweepResult:
    """All grid cells of one sweep, with lookup helpers."""

    points: list[SweepPoint] = field(default_factory=list)
    _index: dict[tuple[float, float, float], SweepPoint] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for p in self.points:  # index points passed to the constructor
            self._index.setdefault((p.lam, p.alpha, p.accuracy), p)

    def add(self, p: SweepPoint) -> None:
        self.points.append(p)
        self._index.setdefault((p.lam, p.alpha, p.accuracy), p)

    def at(self, lam: float, alpha: float, accuracy: float) -> SweepPoint:
        """O(1) lookup of one grid cell (tolerant fallback on near-misses)."""
        hit = self._index.get((float(lam), float(alpha), float(accuracy)))
        if hit is not None:
            return hit
        # fallback: inexact query values, or points appended directly
        for p in self.points:
            if (
                np.isclose(p.lam, lam)
                and np.isclose(p.alpha, alpha)
                and np.isclose(p.accuracy, accuracy)
            ):
                return p
        raise KeyError((lam, alpha, accuracy))

    def lambdas(self) -> list[float]:
        return sorted({p.lam for p in self.points})

    def alphas(self) -> list[float]:
        return sorted({p.alpha for p in self.points})

    def accuracies(self) -> list[float]:
        return sorted({p.accuracy for p in self.points})

    def ratios_for_lambda(self, lam: float) -> np.ndarray:
        """Matrix of ratios, shape (len(alphas), len(accuracies))."""
        alphas, accs = self.alphas(), self.accuracies()
        out = np.full((len(alphas), len(accs)), np.nan)
        for p in self.points:
            if np.isclose(p.lam, lam):
                i = alphas.index(p.alpha)
                j = accs.index(p.accuracy)
                out[i, j] = p.ratio
        return out


PolicyFactory = Callable[[Trace, float, float, float, int], ReplicationPolicy]
"""Factory signature: (trace, lam, alpha, accuracy, seed) -> policy.

The trace is provided so oracle-backed predictors can be constructed."""


def algorithm1_factory(
    trace: Trace, lam: float, alpha: float, accuracy: float, seed: int
) -> ReplicationPolicy:
    """Default factory: Algorithm 1 with a noisy-oracle predictor."""
    from ..algorithms.learning_augmented import LearningAugmentedReplication

    if accuracy >= 1.0:
        predictor = OraclePredictor(trace)
    else:
        predictor = NoisyOraclePredictor(trace, accuracy, seed=seed)
    return LearningAugmentedReplication(
        predictor, alpha, allow_zero_alpha=True
    )


def sweep_grid(
    trace: Trace,
    lambdas: Sequence[float],
    alphas: Sequence[float],
    accuracies: Sequence[float],
    factory: PolicyFactory = algorithm1_factory,
    seed: int = 0,
    optimal_cache: dict[float, float] | None = None,
    runner=None,
    engine: str | Engine | None = None,
    backend: str | None = None,
) -> SweepResult:
    """Run the full (lambda, alpha, accuracy) grid on one trace.

    The optimal offline cost depends only on ``lambda`` and is cached
    across the inner grid.

    ``runner`` may be an :class:`repro.experiments.ExperimentRunner`;
    the grid is then sharded across its worker processes (with on-disk
    caching if the runner has a cache) and yields bit-identical results
    to this serial path.  The default preserves serial execution.

    ``engine`` selects the simulation engine; the default (``None``)
    means ``"auto"`` — each ``(trace, lambda)``'s whole slab of
    ``(alpha, accuracy)`` cells runs through loop-free segment-scan
    kernel replays (above the measured crossover trace length) or one
    vectorized batch pass when the factory's policies are fast-path
    eligible (grid cells consume only ``total_cost``), per-cell on the
    fast or reference engine otherwise — or, with a ``runner``,
    whatever engine the runner was configured with.  Per-cell results
    are bit-identical across engines; pass ``"reference"`` to force the
    full-telemetry simulator.  ``backend`` picks the kernel tier's
    execution backend (``core/backends.py``: ``"numpy"``/``"threads"``/
    ``"numba"``, default env-then-auto) — a pure throughput knob, also
    bit-identical.
    """
    if runner is not None:
        return runner.run_grid(
            trace,
            lambdas,
            alphas,
            accuracies,
            factory=factory,
            seed=seed,
            optimal_cache=optimal_cache,
            engine=engine,
            backend=backend,
        )
    if engine is None:
        engine = "auto"
    result = SweepResult()
    opt_cache = optimal_cache if optimal_cache is not None else {}
    # one slab per lambda: every (alpha, accuracy) cell shares the trace
    # and cost model, which is exactly the batch engine's unit of work
    cells = [(alpha, acc, seed) for alpha in alphas for acc in accuracies]
    for lam in lambdas:
        model = CostModel(lam=lam, n=trace.n)
        if lam not in opt_cache:
            opt_cache[lam] = optimal_cost(trace, model)
        opt = opt_cache[lam]
        if _obs.enabled:
            with _obs.span("sweep.slab", lam=lam, cells=len(cells)):
                runs = run_slab(
                    trace, model, cells, factory, engine=engine, backend=backend
                )
            _obs.counter("repro_sweep_cells_total").inc(len(cells))
        else:
            runs = run_slab(
                trace, model, cells, factory, engine=engine, backend=backend
            )
        for (alpha, acc, _), run in zip(cells, runs):
            result.add(
                SweepPoint(
                    lam=lam,
                    alpha=alpha,
                    accuracy=acc,
                    online_cost=run.total_cost,
                    optimal_cost=opt,
                )
            )
    return result


def format_table(
    result: SweepResult,
    lam: float,
    title: str | None = None,
    float_fmt: str = "{:7.3f}",
) -> str:
    """Render one lambda's grid as the text analogue of Figures 25-28:
    rows are ``alpha`` values, columns are prediction accuracies, cells
    are online-to-optimal cost ratios."""
    alphas = result.alphas()
    accs = result.accuracies()
    mat = result.ratios_for_lambda(lam)
    lines = []
    header = title if title is not None else f"lambda = {lam:g}"
    lines.append(header)
    lines.append(
        "alpha\\acc " + " ".join(f"{a:7.0%}" for a in accs)
    )
    for i, alpha in enumerate(alphas):
        row = " ".join(
            float_fmt.format(mat[i, j]) if np.isfinite(mat[i, j]) else "    inf"
            for j in range(len(accs))
        )
        lines.append(f"{alpha:9.1f} {row}")
    return "\n".join(lines)
