"""Closed-form theoretical quantities from the paper.

These functions are the single source of truth for every bound checked in
tests and printed next to measured values in benchmark tables.
"""

from __future__ import annotations

__all__ = [
    "consistency_bound",
    "robustness_bound",
    "adaptive_robustness_bound",
    "deterministic_consistency_lower_bound",
    "conventional_competitive_ratio",
    "wang_claimed_ratio",
    "wang_true_ratio_lower_bound",
    "misprediction_penalty_bound",
]


def consistency_bound(alpha: float) -> float:
    """Algorithm 1's consistency ``(5 + alpha) / 3`` (Section 7, tight)."""
    _check_alpha(alpha)
    return (5.0 + alpha) / 3.0


def robustness_bound(alpha: float) -> float:
    """Algorithm 1's robustness ``1 + 1/alpha`` (Section 6, tight)."""
    _check_alpha(alpha)
    if alpha == 0.0:
        return float("inf")
    return 1.0 + 1.0 / alpha


def adaptive_robustness_bound(beta: float) -> float:
    """The adapted algorithm's robustness target ``2 + beta`` (Section 8)."""
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    return 2.0 + beta


def deterministic_consistency_lower_bound() -> float:
    """No deterministic learning-augmented algorithm beats 3/2 (Section 9)."""
    return 1.5


def conventional_competitive_ratio() -> float:
    """The prediction-free optimum: ratio 2 at ``alpha = 1`` (Section 8)."""
    return 2.0


def wang_claimed_ratio() -> float:
    """Wang et al. [17]'s *claimed* competitive ratio (refuted in §11)."""
    return 2.0


def wang_true_ratio_lower_bound() -> float:
    """The paper's counterexample ratio for Wang et al. [17] (Figure 9)."""
    return 2.5


def misprediction_penalty_bound(
    n_m2: int, n_m3: int, lam: float, alpha: float
) -> float:
    """Numerator of equation (11): the online-cost increase caused by
    mispredictions, ``lambda * |M2| + (2 - alpha) * lambda * |M3|``.

    ``M1`` mispredictions (real gap <= ``alpha * lambda``) are harmless
    and do not appear.
    """
    _check_alpha(alpha)
    if n_m2 < 0 or n_m3 < 0:
        raise ValueError("misprediction counts must be >= 0")
    return lam * n_m2 + (2.0 - alpha) * lam * n_m3


def _check_alpha(alpha: float) -> None:
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
