"""Time-series instrumentation over simulation results.

Operators care about more than the final cost: how many replicas exist
over time, how transfer load distributes across servers, how often the
system degenerates to a single (special) copy.  These metrics are all
derived from the event log, so they work for every policy.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..core.events import EventKind
from ..core.simulator import SimulationResult

__all__ = [
    "ReplicaTimeline",
    "replica_timeline",
    "transfer_load",
    "serve_latency_proxy",
    "special_copy_stats",
    "storage_utilization",
]


@dataclass(frozen=True)
class ReplicaTimeline:
    """Step function of the replica count over time.

    ``times[k]`` is the instant the count changes to ``counts[k]``; the
    function is right-continuous and starts at ``counts[0]`` (1 for the
    initial copy).
    """

    times: np.ndarray
    counts: np.ndarray

    def at(self, t: float) -> int:
        """Replica count at time ``t``."""
        i = bisect_right(self.times, t) - 1
        return int(self.counts[max(i, 0)])

    def time_weighted_mean(self, horizon: float | None = None) -> float:
        """Average replica count over ``[0, horizon]``."""
        end = horizon if horizon is not None else float(self.times[-1])
        if end <= 0:
            return float(self.counts[0])
        total = 0.0
        for k in range(len(self.times)):
            t0 = float(self.times[k])
            t1 = float(self.times[k + 1]) if k + 1 < len(self.times) else end
            t0, t1 = min(t0, end), min(t1, end)
            if t1 > t0:
                total += (t1 - t0) * float(self.counts[k])
        return total / end

    @property
    def max_replicas(self) -> int:
        return int(self.counts.max())


def replica_timeline(result: SimulationResult) -> ReplicaTimeline:
    """Extract the replica-count step function from the event log."""
    times = [0.0]
    counts = [0]
    c = 0
    for e in result.log:
        if e.kind is EventKind.CREATE:
            c += 1
        elif e.kind is EventKind.DROP:
            c -= 1
        else:
            continue
        if e.time == times[-1]:
            counts[-1] = c
        else:
            times.append(e.time)
            counts.append(c)
    return ReplicaTimeline(np.asarray(times), np.asarray(counts))


def transfer_load(result: SimulationResult) -> dict[str, np.ndarray]:
    """Per-server transfer traffic: incoming (dest) and outgoing (source).

    Only request-serving and standalone transfers are counted (both are
    ``SERVE_TRANSFER`` events in the log).
    """
    n = result.model.n
    incoming = np.zeros(n, dtype=np.int64)
    outgoing = np.zeros(n, dtype=np.int64)
    for e in result.log.of_kind(EventKind.SERVE_TRANSFER):
        incoming[e.server] += 1
        if e.source >= 0:
            outgoing[e.source] += 1
    return {"incoming": incoming, "outgoing": outgoing}


def serve_latency_proxy(result: SimulationResult) -> dict[str, float]:
    """Fraction of requests served locally vs by transfer.

    In a geo-distributed deployment, a transfer-served request incurs a
    wide-area round trip; the local-serve fraction is the natural latency
    proxy this cost model optimises indirectly.
    """
    total = len(result.serves)
    if total == 0:
        return {"local_fraction": 1.0, "transfer_fraction": 0.0, "requests": 0.0}
    local = sum(1 for s in result.serves if s.local)
    return {
        "local_fraction": local / total,
        "transfer_fraction": 1.0 - local / total,
        "requests": float(total),
    }


def special_copy_stats(result: SimulationResult) -> dict[str, float]:
    """How often and for how long the system ran on its last copy.

    ``special_time`` sums the durations between each regular->special
    switch and the copy's subsequent drop/renewal, clipped to the trace
    span (Proposition 1 guarantees these never overlap).
    """
    span = result.trace.span
    episodes = 0
    special_time = 0.0
    for rec in result.copy_records:
        if not rec.is_special_at_end:
            continue
        episodes += 1
        end = rec.end if rec.end == rec.end else span
        start = min(rec.special_at, span)
        end = min(end, span)
        if end > start:
            special_time += end - start
    return {
        "episodes": float(episodes),
        "special_time": special_time,
        "special_fraction": special_time / span if span > 0 else 0.0,
    }


def storage_utilization(result: SimulationResult) -> dict[int, float]:
    """Fraction of the trace span each server held a copy."""
    span = result.trace.span
    out = {s: 0.0 for s in range(result.model.n)}
    if span <= 0:
        return out
    for rec in result.copy_records:
        end = rec.end if rec.end == rec.end else span
        start = min(rec.start, span)
        end = min(end, span)
        if end > start:
            out[rec.server] += (end - start) / span
    return out
