"""Abstract interface between the simulator and replication policies.

A :class:`ReplicationPolicy` is an *online* decision maker: it observes
requests one at a time (plus the expirations it scheduled itself) and
reacts through a :class:`SimContext`, which exposes the only legal actions
(serve, create/drop copies, transfer, schedule expirations).  The
simulator owns all state and cost accounting; policies cannot corrupt the
ledger or violate the at-least-one-copy invariant without an immediate
error.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .costs import CostModel
    from .simulator import SimContext
    from .trace import Request

__all__ = ["ReplicationPolicy", "PolicyError"]


class PolicyError(RuntimeError):
    """Raised when a policy performs an illegal action."""


class ReplicationPolicy(abc.ABC):
    """Base class for online replication strategies.

    Lifecycle (driven by :func:`repro.core.simulator.simulate`):

    1. :meth:`reset` — called once with the cost model before any event.
    2. :meth:`on_init` — called at time 0 with the initial copy placed at
       server 0; the policy may schedule its expiry.
    3. :meth:`on_request` — called for each request in time order; the
       policy **must** serve it (``ctx.serve_local`` or
       ``ctx.serve_via_transfer``).
    4. :meth:`on_expiry` — called when a scheduled expiry fires while the
       server still holds a copy.
    """

    #: human-readable identifier used in reports and benchmark tables
    name: str = "policy"

    @abc.abstractmethod
    def reset(self, model: "CostModel") -> None:
        """Prepare internal state for a fresh simulation."""

    def on_init(self, ctx: "SimContext") -> None:
        """React to the initial copy at server 0 (dummy request ``r_0``)."""

    @abc.abstractmethod
    def on_request(self, ctx: "SimContext", request: "Request") -> None:
        """Serve ``request`` and update replication state."""

    def on_expiry(self, ctx: "SimContext", server: int, time: float) -> None:
        """React to the scheduled expiry of the copy at ``server``."""
