"""Execution backends for the kernel cost engine.

DESIGN
======

The kernel tier (``KernelCostEngine``) reduced per-cell replay to a fixed
sequence of array passes.  A slab of grid cells is embarrassingly parallel
*across* cells — every cell replays the same trace against an independent
(model, policy, prediction-row) triple — but strictly serial *within* one
cell, because the charge-order reductions are sequential by construction:

``np.add.accumulate`` computes ``out[i] = out[i-1] + v[i]`` left to right,
one IEEE-754 rounding per step.  The kernel only consumes ``out[-1]``, so
any backend that performs the *same left-to-right chain of additions*
(e.g. a compiled ``s += v[i]`` loop) produces the bit-identical float.
A *parallelized* within-cell accumulate would not: pairwise or tree
reductions (``np.add.reduce``, SIMD partial sums, parallel prefix scans)
re-associate the additions, and float addition is not associative, so the
final bit pattern changes.  That is why the backends below parallelize
across cells only — each cell's serial pass is untouched, which is what
keeps every backend bit-identical to the numpy reference:

- ``numpy``   — the existing vectorized passes, serial across cells.
- ``threads`` — the same numpy passes, cells fanned out over a
  ``ThreadPoolExecutor``.  The heavy numpy ops release the GIL, so this
  scales with cores without fork/IPC.  ``ThreadPoolExecutor.map``
  preserves input order, so results come back in cell-index order and the
  output is positionally identical to the serial run.  Shared per-trace
  precompute (``_SegmentChains``) is read-only after construction; its
  scratch workspace is thread-local and its shift memo is lock-guarded
  (see ``core/engine.py``).
- ``numba``   — optional ``@njit(nogil=True, cache=True)`` fused loops
  for the two sequential reductions, the two-stream expiry merge, and
  the Wang cascade episode machine.  The compiled loops replay the
  exact same IEEE op order (left-to-right adds; two-pointer merge with
  the same tie semantics), so they are bit-identical.  When numba is
  not importable the backend silently falls back to the numpy
  primitives — same results, no hard dependency.

Besides the reductions, the primitives carry one *sequential episode
machine*: ``wang_cascade``, the scalar core of the kernel tier's Wang
baseline (``core/engine.py`` :class:`_WangReplay`).  The vectorized
candidate pass resolves every copy whose expiry finds other copies
alive; ``wang_cascade`` replays only the rare die-out episodes (grace
extensions, second-expiry shipments to server 0, locally-served flips)
plus the drain's heap order, walking candidates in the scalar heap's
``(when, server)`` pop order.  At most one injected extension is alive
at a time, so the machine is O(episodes), not O(m) — it is a loop by
necessity (each episode's outcome gates the next), which is exactly why
it lives here where the numba backend can compile it.

Crossovers (measured, see ``benchmarks/bench_backends.py``)
-----------------------------------------------------------

Like ``KERNEL_MIN_M``/``KERNEL_SLAB_MIN_M`` in ``core/engine.py``, the
``auto`` backend picks a concrete backend from measured crossovers:

- ``THREADS_MIN_CELLS_PER_THREAD``: below ~8 cells per worker thread the
  executor dispatch + per-thread workspace allocation eats the win, so
  ``auto`` only fans out when the slab is wide enough to give every
  thread a meaningful chunk.
- ``NUMBA_MIN_M``: the compiled merge/accumulate only beats the numpy
  fast paths once per-cell arrays dominate call overhead (and the first
  call pays JIT compilation, amortized by ``cache=True``); below ~8k
  requests numpy wins.

Process-pool interaction
------------------------

``ExperimentRunner`` may already fork worker processes.  To keep
``workers × threads ≤ cores`` the runner installs a shared *thread
budget* (``set_thread_budget``) before forking; forked workers inherit
the cap, so a 8-core box running 4 process workers gives each worker at
most 2 kernel threads instead of 4 × 8 oversubscription.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "KernelBackend",
    "KernelPrimitives",
    "NUMBA_MIN_M",
    "NUMPY_PRIMS",
    "THREADS_MIN_CELLS_PER_THREAD",
    "get_backend",
    "numba_available",
    "numba_prims",
    "set_thread_budget",
    "thread_budget",
]

# Environment override for the default backend (mirrors how the CLI's
# --backend flag resolves): any name in BACKEND_NAMES.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

# Measured crossovers (benchmarks/bench_backends.py, fig25 grid).  The
# thread backend wins once each worker thread gets >= ~8 cells of work;
# the compiled numba loops win once the per-cell arrays pass ~8k events.
THREADS_MIN_CELLS_PER_THREAD = 8
NUMBA_MIN_M = 8_192


# ---------------------------------------------------------------------------
# Thread budget — the runner's workers × threads ≤ cores contract.
# ---------------------------------------------------------------------------

_THREAD_BUDGET: int | None = None  # None = default (all cores)


def thread_budget() -> int:
    """Max threads the kernel may fan out across (defaults to cpu count)."""
    if _THREAD_BUDGET is not None:
        return _THREAD_BUDGET
    return max(1, os.cpu_count() or 1)


def set_thread_budget(n: int | None) -> int | None:
    """Cap kernel thread fan-out; returns the previous override.

    ``None`` restores the default (all cores).  ``ExperimentRunner`` sets
    ``cores // workers`` before forking its process pool so forked workers
    inherit the cap and the box never runs ``workers × cores`` threads.
    """
    global _THREAD_BUDGET
    prev = _THREAD_BUDGET
    _THREAD_BUDGET = None if n is None else max(1, int(n))
    return prev


# ---------------------------------------------------------------------------
# Primitives — the order-sensitive reductions a backend may swap out.
# ---------------------------------------------------------------------------


class KernelPrimitives:
    """The sequential reductions + expiry merge used by the kernel tier.

    ``seq_sum``/``repeat_add`` must perform a strict left-to-right chain
    of IEEE additions; ``merge_interleave`` must interleave two
    expiry-sorted streams with within-first-on-tie *detection* (returning
    ``None`` on any cross-stream tie so the caller can take the stable
    lexsort fallback); ``wang_cascade`` resolves the Wang baseline's
    die-out episodes and drain with the event-machine loop
    (:func:`_wang_cascade_loop` — the same integer/float op sequence
    whether interpreted or compiled).  Any implementation honoring those
    contracts is bit-identical to numpy's.
    """

    __slots__ = (
        "name", "compiled", "seq_sum", "repeat_add", "merge_interleave",
        "wang_cascade",
    )

    def __init__(self, name, compiled, seq_sum, repeat_add, merge_interleave,
                 wang_cascade=None):
        self.name = name
        self.compiled = compiled
        self.seq_sum = seq_sum
        self.repeat_add = repeat_add
        self.merge_interleave = merge_interleave
        self.wang_cascade = wang_cascade or _wang_cascade_loop


def _np_seq_sum(vals: np.ndarray) -> float:
    # accumulate is defined as out[i] = out[i-1] + vals[i]; only the last
    # element is consumed, so this IS the left-to-right scalar sum.
    if not vals.size:
        return 0.0
    np.add.accumulate(vals, out=vals)
    return float(vals[-1])


def _np_repeat_add(value: float, count: int) -> float:
    if not count:
        return 0.0
    return float(np.add.accumulate(np.full(count, value))[-1])


def _np_merge_interleave(dw, ew, db, eb):
    # Positional interleave of two expiry-sorted streams via two
    # searchsorted passes; bails (None) on any cross-stream tie, where
    # the caller's lexsort fallback defines the order.
    lo = np.searchsorted(eb, ew, side="left")
    if not np.array_equal(lo, np.searchsorted(eb, ew, side="right")):
        return None
    out = np.empty(dw.size + db.size, dtype=np.int64)
    exp = np.empty(out.size)
    pw = np.arange(dw.size)
    pw += lo
    out[pw] = dw
    exp[pw] = ew
    pb = np.arange(db.size)
    pb += np.searchsorted(ew, eb, side="left")
    out[pb] = db
    exp[pb] = eb
    return out, exp


def _wang_cascade_loop(
    t_all,        # float64[m+1]  dummy-prefixed request times (strictly increasing)
    periods,      # float64[n]    per-server renewal periods lam / mu_s
    cand_e,       # float64[nc]   mid-trace expiry fires, (E, server)-sorted
    cand_srv,     # int64[nc]
    cand_ev,      # int64[nc]     event whose pop phase delivers the fire
    cand_start,   # float64[nc]   segment start behind each fire
    trig_pos,     # int64[nt]     candidate ranks with baseline others == 0
    srv_off,      # int64[n+1]    CSR offsets into srv_req (requests by server)
    srv_req,      # int64[m+1]    request indices grouped by server, ascending
    r_cum,        # int64[m+1]    cumulative baseline renewal serves per event
    tail_when,    # float64[nt2]  end-of-trace pending expiries, sorted
    tail_srv,     # int64[nt2]
    tail_start,   # float64[nt2]
    m,            # int64         number of real requests
    do_drain,     # bool
    cap,          # int64         drain event cap
):
    """Sequential episode machine behind the kernel-tier Wang replay.

    Everything array-parallel about Wang lives in ``core/engine.py``;
    this loop resolves only what is irreducibly sequential — the rare
    die-out *episodes* (an only-copy expiry renews in place instead of
    dropping, so coverage extends beyond the baseline segment) and the
    post-trace drain.  At most one such injected extension exists at a
    time, so the machine walks the trigger candidates and the injected
    copy's own events in global ``(when, server)`` order, emitting the
    corrections the vectorized pass cannot know: suppressed drops,
    miss->renewal flips, cascade transfer/drop charges, and the final
    alive set.  Plain python and ``@njit`` execute the identical
    int/float op sequence, so both are bit-identical.
    """
    inf = np.inf
    nc = cand_e.shape[0]
    nt = trig_pos.shape[0]
    n = periods.shape[0]

    trig_suppress = np.zeros(nt, dtype=np.bool_)
    ep_cap = 2 * nt + 2
    ep_when = np.empty(ep_cap, dtype=np.float64)
    ep_srv = np.empty(ep_cap, dtype=np.int64)
    ep_start = np.empty(ep_cap, dtype=np.float64)
    ep_ev = np.empty(ep_cap, dtype=np.int64)
    n_ep = 0
    flip_req = np.empty(nt + 1, dtype=np.int64)
    flip_start = np.empty(nt + 1, dtype=np.float64)
    n_flips = 0
    n_tx_casc = 0

    inj_alive = False
    inj_srv = 0
    inj_start = 0.0
    inj_pend = 0.0
    inj_flag = False       # Wang's renewed_once grace flag for the holder
    inj_ev = np.int64(-1)  # >= 0: cascade-created at that event's pop phase
    inj_nr = m + 1         # holder's next request index (m+1: none)

    ti = 0
    do_step = False
    fire_w = 0.0
    ib = np.int64(0)
    while True:
        if do_step:
            # Only-copy fire at (fire_w, holder) inside the request gap
            # ending at event ib: replay Wang's expire() only-copy arm,
            # chaining every further fire strictly before t_all[ib].
            tb = t_all[ib]
            if inj_srv == 0:
                p0 = periods[0]
                w2 = fire_w + p0
                while w2 < tb:
                    w2 = w2 + p0
                inj_pend = w2
            else:
                transfer = True
                if not inj_flag:
                    pd = fire_w + periods[inj_srv]   # free renewal (grace)
                    if pd >= tb:
                        inj_pend = pd
                        inj_flag = True
                        transfer = False
                    else:
                        fire_w = pd   # second consecutive expiry in-gap
                if transfer:
                    # ship to server 0: charge + drop the source, create
                    # at 0, then chain 0's free renewals through the gap
                    ep_when[n_ep] = fire_w
                    ep_srv[n_ep] = inj_srv
                    ep_start[n_ep] = inj_start
                    ep_ev[n_ep] = ib
                    n_ep += 1
                    n_tx_casc += 1
                    inj_srv = 0
                    inj_start = fire_w
                    inj_ev = ib
                    inj_flag = False
                    p0 = periods[0]
                    w2 = fire_w + p0
                    while w2 < tb:
                        w2 = w2 + p0
                    inj_pend = w2
            inj_alive = True
            lo = srv_off[inj_srv]
            hi = srv_off[inj_srv + 1]
            k = lo + np.searchsorted(srv_req[lo:hi], ib)
            inj_nr = srv_req[k] if k < hi else m + 1
            do_step = False
            continue
        if not inj_alive:
            if ti >= nt:
                break
            r = trig_pos[ti]
            # a genuine die-out: the fire renews in place (episode)
            trig_suppress[ti] = True
            ti += 1
            inj_srv = cand_srv[r]
            inj_start = cand_start[r]
            inj_flag = False
            inj_ev = np.int64(-1)
            fire_w = cand_e[r]
            ib = cand_ev[r]
            do_step = True
            continue
        # injected copy alive: resolve its next event against the next
        # trigger candidate in global (when, server) order
        t_nr = t_all[inj_nr] if inj_nr <= m else inf
        if ti < nt:
            rc = trig_pos[ti]
            ce = cand_e[rc]
            cs = cand_srv[rc]
        else:
            ce = inf
            cs = 0
        if t_nr <= inj_pend:
            # the holder's next request serves before the pending expiry
            if ce < t_nr:
                ti += 1      # candidate pops first: injected covers it
                continue
            flip_req[n_flips] = inj_nr      # baseline miss -> renewal
            flip_start[n_flips] = inj_start
            n_flips += 1
            inj_alive = False
            continue
        if ce < inj_pend or (ce == inj_pend and cs < inj_srv):
            ti += 1          # candidate pops first: injected covers it
            continue
        # the injected copy's own expiry fires next
        ip = np.searchsorted(t_all, inj_pend, side="right")
        if ip > m:
            # fires after the last request: any remaining trigger
            # candidates pop mid-trace, hence under injected coverage
            ti = nt
            break
        lo = np.searchsorted(cand_e, inj_pend)
        while lo < nc and cand_e[lo] == inj_pend and cand_srv[lo] < inj_srv:
            lo += 1
        others = ip - r_cum[ip - 1] - lo    # baseline copies alive here
        if others >= 1:
            ep_when[n_ep] = inj_pend
            ep_srv[n_ep] = inj_srv
            ep_start[n_ep] = inj_start
            ep_ev[n_ep] = ip
            n_ep += 1
            inj_alive = False
            continue
        fire_w = inj_pend
        ib = ip
        do_step = True

    # ------------------------------------------------------------------
    # drain: the scalar heap shrunk to one pending expiry per server
    alive = np.zeros(n, dtype=np.bool_)
    a_start = np.zeros(n, dtype=np.float64)
    a_pend = np.zeros(n, dtype=np.float64)
    a_has = np.zeros(n, dtype=np.bool_)
    a_flag = np.zeros(n, dtype=np.bool_)
    a_kind = np.zeros(n, dtype=np.int64)
    a_ev = np.zeros(n, dtype=np.int64)
    alive_cnt = 0
    for k in range(tail_srv.shape[0]):
        s = tail_srv[k]
        alive[s] = True
        a_start[s] = tail_start[k]
        a_pend[s] = tail_when[k]
        a_has[s] = True
        alive_cnt += 1
    if inj_alive:
        s = inj_srv
        alive[s] = True
        a_start[s] = inj_start
        a_pend[s] = inj_pend
        a_has[s] = True
        a_flag[s] = inj_flag
        if inj_ev >= 0:
            a_kind[s] = 1
            a_ev[s] = inj_ev
        alive_cnt += 1
    dr_cap = n + 4
    dr_when = np.empty(dr_cap, dtype=np.float64)
    dr_srv = np.empty(dr_cap, dtype=np.int64)
    dr_start = np.empty(dr_cap, dtype=np.float64)
    n_dr = 0
    seq = 0
    if do_drain:
        fired = 0
        while fired < cap:
            best = -1
            bw = inf
            for s in range(n):   # ascending scan: (when, server) heap order
                if a_has[s] and a_pend[s] < bw:
                    bw = a_pend[s]
                    best = s
            if best < 0:
                break
            a_has[best] = False
            if bw == inf:
                continue         # popped but never fires; copy stays live
            only = alive_cnt == 1
            if best == 0:
                if only:
                    a_pend[0] = bw + periods[0]    # free renewal chain
                    a_has[0] = True
                else:
                    dr_when[n_dr] = bw
                    dr_srv[n_dr] = 0
                    dr_start[n_dr] = a_start[0]
                    n_dr += 1
                    alive[0] = False
                    alive_cnt -= 1
                fired += 1
            else:
                if not only:
                    dr_when[n_dr] = bw
                    dr_srv[n_dr] = best
                    dr_start[n_dr] = a_start[best]
                    n_dr += 1
                    alive[best] = False
                    alive_cnt -= 1
                elif not a_flag[best]:
                    a_flag[best] = True                # grace renewal
                    a_pend[best] = bw + periods[best]
                    a_has[best] = True
                else:
                    # second consecutive expiry: ship to server 0
                    n_tx_casc += 1
                    alive[0] = True
                    a_start[0] = bw
                    a_kind[0] = 2
                    a_ev[0] = seq
                    seq += 1
                    a_flag[0] = False
                    dr_when[n_dr] = bw
                    dr_srv[n_dr] = best
                    dr_start[n_dr] = a_start[best]
                    n_dr += 1
                    alive[best] = False
                    a_flag[best] = False
                    a_pend[0] = bw + periods[0]
                    a_has[0] = True
                fired += 1

    fin_srv = np.empty(n + 1, dtype=np.int64)
    fin_start = np.empty(n + 1, dtype=np.float64)
    fin_kind = np.empty(n + 1, dtype=np.int64)
    fin_ev = np.empty(n + 1, dtype=np.int64)
    n_fin = 0
    for s in range(n):
        if alive[s]:
            fin_srv[n_fin] = s
            fin_start[n_fin] = a_start[s]
            fin_kind[n_fin] = a_kind[s]
            fin_ev[n_fin] = a_ev[s]
            n_fin += 1

    return (
        trig_suppress,
        ep_when[:n_ep], ep_srv[:n_ep], ep_start[:n_ep], ep_ev[:n_ep],
        flip_req[:n_flips], flip_start[:n_flips],
        n_tx_casc,
        dr_when[:n_dr], dr_srv[:n_dr], dr_start[:n_dr],
        fin_srv[:n_fin], fin_start[:n_fin], fin_kind[:n_fin], fin_ev[:n_fin],
    )


NUMPY_PRIMS = KernelPrimitives(
    "numpy", False, _np_seq_sum, _np_repeat_add, _np_merge_interleave,
    _wang_cascade_loop,
)


# Pure-python loop bodies for the compiled primitives.  Written as plain
# module functions so (a) numba can njit them with cache=True and (b) the
# fallback-only test environment can still check their op order against
# numpy on small inputs without numba installed.


def _seq_sum_loop(vals):
    s = 0.0
    for i in range(vals.shape[0]):
        s += vals[i]
    return s


def _repeat_add_loop(value, count):
    s = 0.0
    for _ in range(count):
        s += value
    return s


def _merge_loop(dw, ew, db, eb):
    # Two-pointer interleave; ties between stream fronts are reported via
    # the third return (both streams are expiry-sorted, so every
    # cross-stream tie eventually surfaces at the fronts).
    nw = dw.shape[0]
    nb = db.shape[0]
    out = np.empty(nw + nb, dtype=np.int64)
    exp = np.empty(nw + nb, dtype=np.float64)
    i = 0
    j = 0
    k = 0
    while i < nw and j < nb:
        a = ew[i]
        b = eb[j]
        if a == b:
            return out, exp, True
        if a < b:
            out[k] = dw[i]
            exp[k] = a
            i += 1
        else:
            out[k] = db[j]
            exp[k] = b
            j += 1
        k += 1
    while i < nw:
        out[k] = dw[i]
        exp[k] = ew[i]
        i += 1
        k += 1
    while j < nb:
        out[k] = db[j]
        exp[k] = eb[j]
        j += 1
        k += 1
    return out, exp, False


_NUMBA_CHECKED = False
_NUMBA_OK = False
_NUMBA_PRIMS: KernelPrimitives | None = None


def numba_available() -> bool:
    """True when numba imports cleanly (memoized; never a hard dependency)."""
    global _NUMBA_CHECKED, _NUMBA_OK
    if not _NUMBA_CHECKED:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:
            _NUMBA_OK = False
        _NUMBA_CHECKED = True
    return _NUMBA_OK


def numba_prims() -> KernelPrimitives:
    """Compiled primitives, or ``NUMPY_PRIMS`` when numba is unavailable."""
    global _NUMBA_PRIMS
    if _NUMBA_PRIMS is None:
        _NUMBA_PRIMS = _build_numba_prims()
    return _NUMBA_PRIMS


def _build_numba_prims() -> KernelPrimitives:
    if not numba_available():
        return NUMPY_PRIMS
    try:
        from numba import njit

        jit = njit(cache=True, nogil=True)
        nb_seq = jit(_seq_sum_loop)
        nb_rep = jit(_repeat_add_loop)
        nb_merge = jit(_merge_loop)
        nb_wang = jit(_wang_cascade_loop)

        def seq_sum(vals):
            return float(nb_seq(vals))

        def repeat_add(value, count):
            return float(nb_rep(value, count))

        def merge_interleave(dw, ew, db, eb):
            out, exp, tie = nb_merge(dw, ew, db, eb)
            return None if tie else (out, exp)

        # njit compiles lazily at first call; a typing failure there must
        # degrade to the interpreted loop (bit-identical by contract)
        # rather than poison every Wang replay on this box
        state = {"fn": None}

        def wang_cascade(*args):
            fn = state["fn"]
            if fn is None:
                try:
                    out = nb_wang(*args)
                    state["fn"] = nb_wang
                    return out
                except Exception:
                    state["fn"] = _wang_cascade_loop
                    return _wang_cascade_loop(*args)
            return fn(*args)

        return KernelPrimitives(
            "numba", True, seq_sum, repeat_add, merge_interleave, wang_cascade
        )
    except Exception:
        # Broken numba install (missing llvmlite, unsupported platform):
        # degrade to numpy rather than poisoning every kernel call.
        return NUMPY_PRIMS


# ---------------------------------------------------------------------------
# Backends — execution strategy (how cells fan out) + primitives.
# ---------------------------------------------------------------------------


class KernelBackend:
    """A named execution strategy for a slab of kernel cells."""

    name = "base"

    def resolve(self, n_cells: int, m: int) -> "KernelBackend":
        """Concrete backend for a slab of ``n_cells`` cells over ``m`` events."""
        return self

    def prims(self) -> KernelPrimitives:
        return NUMPY_PRIMS

    def run_cells(self, n_cells: int, run_one):
        """Evaluate ``run_one(c)`` for each cell, in cell-index order."""
        return [run_one(c) for c in range(n_cells)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name}>"


class NumpyBackend(KernelBackend):
    name = "numpy"


class ThreadsBackend(KernelBackend):
    """Numpy passes, cells fanned out over a thread pool.

    ``ThreadPoolExecutor.map`` preserves input order, so results come back
    in cell-index order — output is positionally bit-identical to serial.
    Falls back to the serial loop when the budget or the slab is too small
    for fan-out to pay.
    """

    name = "threads"

    def run_cells(self, n_cells: int, run_one):
        workers = min(
            thread_budget(), max(1, n_cells // THREADS_MIN_CELLS_PER_THREAD)
        )
        if workers <= 1 or n_cells <= 1:
            return [run_one(c) for c in range(n_cells)]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernel"
        ) as pool:
            return list(pool.map(run_one, range(n_cells)))


class NumbaBackend(KernelBackend):
    """Compiled per-cell loops; silent bit-identical numpy fallback."""

    name = "numba"

    def prims(self) -> KernelPrimitives:
        return numba_prims()


class AutoBackend(KernelBackend):
    """Crossover-driven choice among the concrete backends."""

    name = "auto"

    def resolve(self, n_cells: int, m: int) -> KernelBackend:
        if thread_budget() > 1 and n_cells >= 2 * THREADS_MIN_CELLS_PER_THREAD:
            return _BACKENDS["threads"]
        if numba_available() and m >= NUMBA_MIN_M:
            return _BACKENDS["numba"]
        return _BACKENDS["numpy"]

    def prims(self) -> KernelPrimitives:  # pragma: no cover - resolve() first
        return NUMPY_PRIMS


_BACKENDS: dict[str, KernelBackend] = {
    "auto": AutoBackend(),
    "numpy": NumpyBackend(),
    "threads": ThreadsBackend(),
    "numba": NumbaBackend(),
}

BACKEND_NAMES = tuple(_BACKENDS)


def get_backend(name: "str | KernelBackend | None" = None) -> KernelBackend:
    """Look up a backend by name (strict), env override, or passthrough.

    ``None`` consults ``REPRO_KERNEL_BACKEND`` and falls back to ``auto``.
    Unknown names raise ``ValueError`` — including unknown values of the
    environment variable, so typos fail loudly instead of silently running
    the default.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "auto"
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
        ) from None
