"""Execution backends for the kernel cost engine.

DESIGN
======

The kernel tier (``KernelCostEngine``) reduced per-cell replay to a fixed
sequence of array passes.  A slab of grid cells is embarrassingly parallel
*across* cells — every cell replays the same trace against an independent
(model, policy, prediction-row) triple — but strictly serial *within* one
cell, because the charge-order reductions are sequential by construction:

``np.add.accumulate`` computes ``out[i] = out[i-1] + v[i]`` left to right,
one IEEE-754 rounding per step.  The kernel only consumes ``out[-1]``, so
any backend that performs the *same left-to-right chain of additions*
(e.g. a compiled ``s += v[i]`` loop) produces the bit-identical float.
A *parallelized* within-cell accumulate would not: pairwise or tree
reductions (``np.add.reduce``, SIMD partial sums, parallel prefix scans)
re-associate the additions, and float addition is not associative, so the
final bit pattern changes.  That is why the backends below parallelize
across cells only — each cell's serial pass is untouched, which is what
keeps every backend bit-identical to the numpy reference:

- ``numpy``   — the existing vectorized passes, serial across cells.
- ``threads`` — the same numpy passes, cells fanned out over a
  ``ThreadPoolExecutor``.  The heavy numpy ops release the GIL, so this
  scales with cores without fork/IPC.  ``ThreadPoolExecutor.map``
  preserves input order, so results come back in cell-index order and the
  output is positionally identical to the serial run.  Shared per-trace
  precompute (``_SegmentChains``) is read-only after construction; its
  scratch workspace is thread-local and its shift memo is lock-guarded
  (see ``core/engine.py``).
- ``numba``   — optional ``@njit(nogil=True, cache=True)`` fused loops
  for the two sequential reductions and the two-stream expiry merge.
  The compiled loops replay the exact same IEEE op order (left-to-right
  adds; two-pointer merge with the same tie semantics), so they are
  bit-identical.  When numba is not importable the backend silently falls
  back to the numpy primitives — same results, no hard dependency.

Crossovers (measured, see ``benchmarks/bench_backends.py``)
-----------------------------------------------------------

Like ``KERNEL_MIN_M``/``KERNEL_SLAB_MIN_M`` in ``core/engine.py``, the
``auto`` backend picks a concrete backend from measured crossovers:

- ``THREADS_MIN_CELLS_PER_THREAD``: below ~8 cells per worker thread the
  executor dispatch + per-thread workspace allocation eats the win, so
  ``auto`` only fans out when the slab is wide enough to give every
  thread a meaningful chunk.
- ``NUMBA_MIN_M``: the compiled merge/accumulate only beats the numpy
  fast paths once per-cell arrays dominate call overhead (and the first
  call pays JIT compilation, amortized by ``cache=True``); below ~8k
  requests numpy wins.

Process-pool interaction
------------------------

``ExperimentRunner`` may already fork worker processes.  To keep
``workers × threads ≤ cores`` the runner installs a shared *thread
budget* (``set_thread_budget``) before forking; forked workers inherit
the cap, so a 8-core box running 4 process workers gives each worker at
most 2 kernel threads instead of 4 × 8 oversubscription.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "KernelBackend",
    "KernelPrimitives",
    "NUMBA_MIN_M",
    "NUMPY_PRIMS",
    "THREADS_MIN_CELLS_PER_THREAD",
    "get_backend",
    "numba_available",
    "numba_prims",
    "set_thread_budget",
    "thread_budget",
]

# Environment override for the default backend (mirrors how the CLI's
# --backend flag resolves): any name in BACKEND_NAMES.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

# Measured crossovers (benchmarks/bench_backends.py, fig25 grid).  The
# thread backend wins once each worker thread gets >= ~8 cells of work;
# the compiled numba loops win once the per-cell arrays pass ~8k events.
THREADS_MIN_CELLS_PER_THREAD = 8
NUMBA_MIN_M = 8_192


# ---------------------------------------------------------------------------
# Thread budget — the runner's workers × threads ≤ cores contract.
# ---------------------------------------------------------------------------

_THREAD_BUDGET: int | None = None  # None = default (all cores)


def thread_budget() -> int:
    """Max threads the kernel may fan out across (defaults to cpu count)."""
    if _THREAD_BUDGET is not None:
        return _THREAD_BUDGET
    return max(1, os.cpu_count() or 1)


def set_thread_budget(n: int | None) -> int | None:
    """Cap kernel thread fan-out; returns the previous override.

    ``None`` restores the default (all cores).  ``ExperimentRunner`` sets
    ``cores // workers`` before forking its process pool so forked workers
    inherit the cap and the box never runs ``workers × cores`` threads.
    """
    global _THREAD_BUDGET
    prev = _THREAD_BUDGET
    _THREAD_BUDGET = None if n is None else max(1, int(n))
    return prev


# ---------------------------------------------------------------------------
# Primitives — the order-sensitive reductions a backend may swap out.
# ---------------------------------------------------------------------------


class KernelPrimitives:
    """The sequential reductions + expiry merge used by the kernel tier.

    ``seq_sum``/``repeat_add`` must perform a strict left-to-right chain
    of IEEE additions; ``merge_interleave`` must interleave two
    expiry-sorted streams with within-first-on-tie *detection* (returning
    ``None`` on any cross-stream tie so the caller can take the stable
    lexsort fallback).  Any implementation honoring those contracts is
    bit-identical to numpy's.
    """

    __slots__ = ("name", "compiled", "seq_sum", "repeat_add", "merge_interleave")

    def __init__(self, name, compiled, seq_sum, repeat_add, merge_interleave):
        self.name = name
        self.compiled = compiled
        self.seq_sum = seq_sum
        self.repeat_add = repeat_add
        self.merge_interleave = merge_interleave


def _np_seq_sum(vals: np.ndarray) -> float:
    # accumulate is defined as out[i] = out[i-1] + vals[i]; only the last
    # element is consumed, so this IS the left-to-right scalar sum.
    if not vals.size:
        return 0.0
    np.add.accumulate(vals, out=vals)
    return float(vals[-1])


def _np_repeat_add(value: float, count: int) -> float:
    if not count:
        return 0.0
    return float(np.add.accumulate(np.full(count, value))[-1])


def _np_merge_interleave(dw, ew, db, eb):
    # Positional interleave of two expiry-sorted streams via two
    # searchsorted passes; bails (None) on any cross-stream tie, where
    # the caller's lexsort fallback defines the order.
    lo = np.searchsorted(eb, ew, side="left")
    if not np.array_equal(lo, np.searchsorted(eb, ew, side="right")):
        return None
    out = np.empty(dw.size + db.size, dtype=np.int64)
    exp = np.empty(out.size)
    pw = np.arange(dw.size)
    pw += lo
    out[pw] = dw
    exp[pw] = ew
    pb = np.arange(db.size)
    pb += np.searchsorted(ew, eb, side="left")
    out[pb] = db
    exp[pb] = eb
    return out, exp


NUMPY_PRIMS = KernelPrimitives(
    "numpy", False, _np_seq_sum, _np_repeat_add, _np_merge_interleave
)


# Pure-python loop bodies for the compiled primitives.  Written as plain
# module functions so (a) numba can njit them with cache=True and (b) the
# fallback-only test environment can still check their op order against
# numpy on small inputs without numba installed.


def _seq_sum_loop(vals):
    s = 0.0
    for i in range(vals.shape[0]):
        s += vals[i]
    return s


def _repeat_add_loop(value, count):
    s = 0.0
    for _ in range(count):
        s += value
    return s


def _merge_loop(dw, ew, db, eb):
    # Two-pointer interleave; ties between stream fronts are reported via
    # the third return (both streams are expiry-sorted, so every
    # cross-stream tie eventually surfaces at the fronts).
    nw = dw.shape[0]
    nb = db.shape[0]
    out = np.empty(nw + nb, dtype=np.int64)
    exp = np.empty(nw + nb, dtype=np.float64)
    i = 0
    j = 0
    k = 0
    while i < nw and j < nb:
        a = ew[i]
        b = eb[j]
        if a == b:
            return out, exp, True
        if a < b:
            out[k] = dw[i]
            exp[k] = a
            i += 1
        else:
            out[k] = db[j]
            exp[k] = b
            j += 1
        k += 1
    while i < nw:
        out[k] = dw[i]
        exp[k] = ew[i]
        i += 1
        k += 1
    while j < nb:
        out[k] = db[j]
        exp[k] = eb[j]
        j += 1
        k += 1
    return out, exp, False


_NUMBA_CHECKED = False
_NUMBA_OK = False
_NUMBA_PRIMS: KernelPrimitives | None = None


def numba_available() -> bool:
    """True when numba imports cleanly (memoized; never a hard dependency)."""
    global _NUMBA_CHECKED, _NUMBA_OK
    if not _NUMBA_CHECKED:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:
            _NUMBA_OK = False
        _NUMBA_CHECKED = True
    return _NUMBA_OK


def numba_prims() -> KernelPrimitives:
    """Compiled primitives, or ``NUMPY_PRIMS`` when numba is unavailable."""
    global _NUMBA_PRIMS
    if _NUMBA_PRIMS is None:
        _NUMBA_PRIMS = _build_numba_prims()
    return _NUMBA_PRIMS


def _build_numba_prims() -> KernelPrimitives:
    if not numba_available():
        return NUMPY_PRIMS
    try:
        from numba import njit

        jit = njit(cache=True, nogil=True)
        nb_seq = jit(_seq_sum_loop)
        nb_rep = jit(_repeat_add_loop)
        nb_merge = jit(_merge_loop)

        def seq_sum(vals):
            return float(nb_seq(vals))

        def repeat_add(value, count):
            return float(nb_rep(value, count))

        def merge_interleave(dw, ew, db, eb):
            out, exp, tie = nb_merge(dw, ew, db, eb)
            return None if tie else (out, exp)

        return KernelPrimitives("numba", True, seq_sum, repeat_add, merge_interleave)
    except Exception:
        # Broken numba install (missing llvmlite, unsupported platform):
        # degrade to numpy rather than poisoning every kernel call.
        return NUMPY_PRIMS


# ---------------------------------------------------------------------------
# Backends — execution strategy (how cells fan out) + primitives.
# ---------------------------------------------------------------------------


class KernelBackend:
    """A named execution strategy for a slab of kernel cells."""

    name = "base"

    def resolve(self, n_cells: int, m: int) -> "KernelBackend":
        """Concrete backend for a slab of ``n_cells`` cells over ``m`` events."""
        return self

    def prims(self) -> KernelPrimitives:
        return NUMPY_PRIMS

    def run_cells(self, n_cells: int, run_one):
        """Evaluate ``run_one(c)`` for each cell, in cell-index order."""
        return [run_one(c) for c in range(n_cells)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name}>"


class NumpyBackend(KernelBackend):
    name = "numpy"


class ThreadsBackend(KernelBackend):
    """Numpy passes, cells fanned out over a thread pool.

    ``ThreadPoolExecutor.map`` preserves input order, so results come back
    in cell-index order — output is positionally bit-identical to serial.
    Falls back to the serial loop when the budget or the slab is too small
    for fan-out to pay.
    """

    name = "threads"

    def run_cells(self, n_cells: int, run_one):
        workers = min(
            thread_budget(), max(1, n_cells // THREADS_MIN_CELLS_PER_THREAD)
        )
        if workers <= 1 or n_cells <= 1:
            return [run_one(c) for c in range(n_cells)]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-kernel"
        ) as pool:
            return list(pool.map(run_one, range(n_cells)))


class NumbaBackend(KernelBackend):
    """Compiled per-cell loops; silent bit-identical numpy fallback."""

    name = "numba"

    def prims(self) -> KernelPrimitives:
        return numba_prims()


class AutoBackend(KernelBackend):
    """Crossover-driven choice among the concrete backends."""

    name = "auto"

    def resolve(self, n_cells: int, m: int) -> KernelBackend:
        if thread_budget() > 1 and n_cells >= 2 * THREADS_MIN_CELLS_PER_THREAD:
            return _BACKENDS["threads"]
        if numba_available() and m >= NUMBA_MIN_M:
            return _BACKENDS["numba"]
        return _BACKENDS["numpy"]

    def prims(self) -> KernelPrimitives:  # pragma: no cover - resolve() first
        return NUMPY_PRIMS


_BACKENDS: dict[str, KernelBackend] = {
    "auto": AutoBackend(),
    "numpy": NumpyBackend(),
    "threads": ThreadsBackend(),
    "numba": NumbaBackend(),
}

BACKEND_NAMES = tuple(_BACKENDS)


def get_backend(name: "str | KernelBackend | None" = None) -> KernelBackend:
    """Look up a backend by name (strict), env override, or passthrough.

    ``None`` consults ``REPRO_KERNEL_BACKEND`` and falls back to ``auto``.
    Unknown names raise ``ValueError`` — including unknown values of the
    environment variable, so typos fail loudly instead of silently running
    the default.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV) or "auto"
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
        ) from None
