"""Event-driven simulator for online data replication.

The simulator owns all system state (which servers hold copies, the cost
ledger, the event log) and drives a :class:`~repro.core.policy.
ReplicationPolicy` over a :class:`~repro.core.trace.Trace`:

* requests are delivered in time order;
* policy-scheduled expirations fire between requests (an expiry at
  exactly a request's time fires *after* the request, matching the
  paper's ``t_i <= E_j`` local-serve condition);
* the at-least-one-copy invariant is enforced on every drop;
* storage cost is integrated continuously and **clipped to the final
  request time** ``t_m`` (the paper's accounting convention for measured
  costs, cf. Section 11's counterexample and DESIGN.md Section 5).

Copy lifecycles (creation, expiry, special switch, drop) are recorded in
:class:`CopyRecord` objects so the analysis layer can reproduce the
paper's Section 4.1 cost allocation exactly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .costs import CostLedger, CostModel
from .events import Event, EventKind, EventLog
from .policy import PolicyError, ReplicationPolicy
from .trace import Request, Trace

__all__ = [
    "SimContext",
    "ServeRecord",
    "CopyRecord",
    "SimulationResult",
    "simulate",
    "InteractiveSimulation",
]


@dataclass
class ServeRecord:
    """How one request was served.

    Attributes
    ----------
    request:
        The request served.
    local:
        True when served by a copy already at the request's server.
    source:
        Source server of the transfer (``-1`` for local serves).
    source_special:
        True when the serving copy (local or remote) was *special*,
        i.e. held beyond its intended duration as the system's last copy.
    special_since:
        Time the serving copy switched regular -> special (``nan`` when
        the serving copy was regular).
    """

    request: Request
    local: bool
    source: int
    source_special: bool = False
    special_since: float = float("nan")


@dataclass
class CopyRecord:
    """Lifecycle of one data copy at one server.

    A copy is *opened* when created (or renewed after a local serve: each
    renewal closes the previous record and opens a new one, so each record
    corresponds to exactly one intended-duration period plus its possible
    special extension — the unit of the paper's cost allocation).
    """

    server: int
    start: float
    opening_request: int          # global index of the request that set this period (0 = dummy)
    intended_duration: float = float("inf")
    special_at: float = float("nan")   # time of regular -> special switch
    end: float = float("nan")          # drop or renewal time (nan = still alive at end)
    closed_by: str = "alive"           # "renewed" | "dropped" | "alive"

    @property
    def is_special_at_end(self) -> bool:
        return self.special_at == self.special_at  # not NaN

    def overlaps(self, t: float) -> bool:
        """True if the copy exists at time ``t`` (start-exclusive)."""
        end = self.end if self.end == self.end else float("inf")
        return self.start < t <= end


class SimContext:
    """Action surface handed to policies by the simulator.

    All mutating methods validate legality and record events + costs.
    """

    def __init__(self, model: CostModel, n: int, final_time: float):
        self.model = model
        self.n = n
        self.time = 0.0
        self._final_time = final_time
        self._holding: dict[int, CopyRecord] = {}
        self._closed_records: list[CopyRecord] = []
        self._expiry_heap: list[tuple[float, int, int]] = []
        self._expiry_token: dict[int, int] = {}
        self._token_counter = itertools.count()
        self.ledger = CostLedger(model)
        self.log = EventLog()
        self._current_request: Request | None = None
        self._request_served = False
        self.serves: list[ServeRecord] = []

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    def holders(self) -> frozenset[int]:
        """Servers currently holding a copy."""
        return frozenset(self._holding)

    def has_copy(self, server: int) -> bool:
        """True when ``server`` currently holds a copy."""
        return server in self._holding

    @property
    def copy_count(self) -> int:
        """Number of copies currently in the system (``c`` in the paper)."""
        return len(self._holding)

    def copy_record(self, server: int) -> CopyRecord:
        """The live :class:`CopyRecord` at ``server`` (KeyError if none)."""
        return self._holding[server]

    def is_special(self, server: int) -> bool:
        """True when the copy at ``server`` is in its special phase."""
        rec = self._holding.get(server)
        return rec is not None and rec.is_special_at_end

    # ------------------------------------------------------------------
    # serving the current request
    # ------------------------------------------------------------------
    def serve_local(self) -> None:
        """Serve the pending request with the local copy (free)."""
        req = self._require_request()
        if not self.has_copy(req.server):
            raise PolicyError(
                f"serve_local at t={req.time}: server {req.server} has no copy"
            )
        rec = self._holding[req.server]
        self.serves.append(
            ServeRecord(
                req,
                local=True,
                source=-1,
                source_special=rec.is_special_at_end,
                special_since=rec.special_at,
            )
        )
        self._request_served = True
        self.log.append(
            Event(req.time, EventKind.SERVE_LOCAL, req.server, -1, req.index)
        )

    def serve_via_transfer(self, source: int) -> None:
        """Serve the pending request by a transfer from ``source``.

        Charges ``lambda``.  The transfer itself does not create a copy at
        the destination; call :meth:`create_copy` to retain one.
        """
        req = self._require_request()
        if self.has_copy(req.server):
            raise PolicyError(
                f"serve_via_transfer at t={req.time}: server {req.server} "
                "already holds a copy; must serve locally"
            )
        if not self.has_copy(source):
            raise PolicyError(
                f"serve_via_transfer at t={req.time}: source {source} has no copy"
            )
        if source == req.server:
            raise PolicyError("transfer source must differ from destination")
        rec = self._holding[source]
        self.ledger.add_transfer(req.server)
        self.serves.append(
            ServeRecord(
                req,
                local=False,
                source=source,
                source_special=rec.is_special_at_end,
                special_since=rec.special_at,
            )
        )
        self._request_served = True
        self.log.append(
            Event(req.time, EventKind.SERVE_TRANSFER, req.server, source, req.index)
        )

    # ------------------------------------------------------------------
    # copy management
    # ------------------------------------------------------------------
    def create_copy(
        self,
        server: int,
        intended_duration: float = float("inf"),
        opening_request: int = -1,
    ) -> CopyRecord:
        """Create a copy at ``server`` (must not already hold one)."""
        if self.has_copy(server):
            raise PolicyError(f"create_copy: server {server} already holds a copy")
        rec = CopyRecord(server, self.time, opening_request, intended_duration)
        self._holding[server] = rec
        self.log.append(Event(self.time, EventKind.CREATE, server))
        return rec

    def renew_copy(
        self,
        server: int,
        intended_duration: float,
        opening_request: int,
    ) -> CopyRecord:
        """Close the current copy period at ``server`` and open a new one.

        Used after a local serve: the paper treats the post-request copy
        as a fresh regular copy with a new intended duration.  Storage is
        continuous (no drop/create events are emitted); only the lifecycle
        records are split.
        """
        if not self.has_copy(server):
            raise PolicyError(f"renew_copy: server {server} has no copy")
        old = self._holding[server]
        old.end = self.time
        old.closed_by = "renewed"
        self._closed_records.append(old)
        self._charge_storage(old)
        rec = CopyRecord(server, self.time, opening_request, intended_duration)
        self._holding[server] = rec
        self.log.append(Event(self.time, EventKind.RENEW, server))
        return rec

    def drop_copy(self, server: int) -> None:
        """Drop the copy at ``server``; forbidden if it is the last copy."""
        if not self.has_copy(server):
            raise PolicyError(f"drop_copy: server {server} has no copy")
        if self.copy_count == 1:
            raise PolicyError(
                f"drop_copy at t={self.time}: server {server} holds the only "
                "copy (at-least-one-copy invariant)"
            )
        rec = self._holding.pop(server)
        rec.end = self.time
        rec.closed_by = "dropped"
        self._closed_records.append(rec)
        self._charge_storage(rec)
        self.cancel_expiry(server)
        self.log.append(Event(self.time, EventKind.DROP, server))

    def mark_special(self, server: int) -> None:
        """Mark the copy at ``server`` as special (kept as the last copy)."""
        if not self.has_copy(server):
            raise PolicyError(f"mark_special: server {server} has no copy")
        rec = self._holding[server]
        rec.special_at = self.time
        self.log.append(Event(self.time, EventKind.SPECIAL, server))

    def transfer_copy(self, source: int, dest: int) -> CopyRecord:
        """Standalone transfer (outside request service), cost ``lambda``.

        Needed by the Wang et al. baseline, which ships the object back to
        the cheapest server when a renewal expires unused.
        """
        if not self.has_copy(source):
            raise PolicyError(f"transfer_copy: source {source} has no copy")
        if self.has_copy(dest):
            raise PolicyError(f"transfer_copy: dest {dest} already holds a copy")
        self.ledger.add_transfer(dest)
        self.log.append(Event(self.time, EventKind.SERVE_TRANSFER, dest, source, -1))
        return self.create_copy(dest)

    # ------------------------------------------------------------------
    # expiry scheduling
    # ------------------------------------------------------------------
    def schedule_expiry(self, server: int, when: float) -> None:
        """(Re)schedule the expiry callback for ``server`` at ``when``.

        Replaces any previously scheduled expiry for the same server.
        """
        if when < self.time:
            raise PolicyError(
                f"schedule_expiry: {when} is in the past (now {self.time})"
            )
        token = next(self._token_counter)
        self._expiry_token[server] = token
        heapq.heappush(self._expiry_heap, (when, server, token))

    def cancel_expiry(self, server: int) -> None:
        """Invalidate any pending expiry for ``server`` (lazy deletion)."""
        self._expiry_token.pop(server, None)

    # ------------------------------------------------------------------
    # internals used by simulate()
    # ------------------------------------------------------------------
    def _require_request(self) -> Request:
        if self._current_request is None:
            raise PolicyError("no request is pending")
        if self._request_served:
            raise PolicyError("request already served")
        return self._current_request

    def _charge_storage(self, rec: CopyRecord) -> None:
        """Charge the ledger for a closed record, clipped to ``t_m``."""
        end = rec.end if rec.end == rec.end else self._final_time
        start = min(rec.start, self._final_time)
        end = min(end, self._final_time)
        if end > start:
            self.ledger.add_storage(rec.server, end - start)

    def _pop_due_expiry(self, until: float, inclusive: bool) -> tuple[float, int] | None:
        """Next valid expiry with time < until (or <= until)."""
        while self._expiry_heap:
            when, server, token = self._expiry_heap[0]
            if self._expiry_token.get(server) != token:
                heapq.heappop(self._expiry_heap)  # stale entry
                continue
            if when < until or (inclusive and when <= until):
                heapq.heappop(self._expiry_heap)
                self._expiry_token.pop(server, None)
                return when, server
            return None
        return None

    def _finalize(self) -> list[CopyRecord]:
        """Close out live copies (charging storage up to ``t_m``)."""
        records = list(self._closed_records)
        for rec in self._holding.values():
            self._charge_storage(rec)
            records.append(rec)
        records.sort(key=lambda r: (r.start, r.server))
        return records


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    trace: Trace
    model: CostModel
    policy_name: str
    ledger: CostLedger
    log: EventLog
    serves: list[ServeRecord]
    copy_records: list[CopyRecord] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Total measured cost (storage clipped to ``t_m`` + transfers)."""
        return self.ledger.total

    @property
    def storage_cost(self) -> float:
        return self.ledger.storage

    @property
    def transfer_cost(self) -> float:
        return self.ledger.transfer

    def serve_of(self, request_index: int) -> ServeRecord:
        """Serve record of request ``r_i`` (1-based index)."""
        return self.serves[request_index - 1]


class InteractiveSimulation:
    """Incremental simulation for adaptive adversaries.

    Unlike :func:`simulate`, requests are submitted one at a time and the
    caller may inspect state between them — exactly what the Section 9
    lower-bound adversary needs ("the adversary generates subsequent
    requests according to the behaviour of the online algorithm").

    Storage accounting is finalised by :meth:`finish`, which clips costs
    to the time of the last submitted request (the standard convention).
    """

    def __init__(self, n: int, model: CostModel, policy: ReplicationPolicy):
        if model.n != n:
            raise ValueError(f"model.n={model.n} != n={n}")
        self.model = model
        self.policy = policy
        self.ctx = SimContext(model, n, float("inf"))
        self._next_index = 1
        self._last_request_time = 0.0
        self._requests: list[Request] = []
        policy.reset(model)
        self.ctx.create_copy(0, opening_request=0)
        policy.on_init(self.ctx)

    # ------------------------------------------------------------------
    def advance_to(self, t: float, inclusive: bool = False) -> list[Event]:
        """Deliver scheduled expirations up to ``t`` and return the
        expiry events fired (strictly before ``t`` unless ``inclusive``)."""
        fired: list[Event] = []
        while True:
            due = self.ctx._pop_due_expiry(t, inclusive=inclusive)
            if due is None:
                break
            when, server = due
            self.ctx.time = when
            if self.ctx.has_copy(server):
                ev = Event(when, EventKind.EXPIRE, server)
                self.ctx.log.append(ev)
                self.policy.on_expiry(self.ctx, server, when)
                fired.append(ev)
        self.ctx.time = max(self.ctx.time, t if inclusive else self.ctx.time)
        return fired

    def holds_copy_at(self, server: int, t: float) -> bool:
        """Whether ``server`` would hold a copy when a request arrives at
        ``t`` (expirations strictly before ``t`` are delivered first)."""
        self.advance_to(t, inclusive=False)
        return self.ctx.has_copy(server)

    def watch_for_drop(
        self, server: int, t_limit: float
    ) -> float | None:
        """Deliver expirations strictly before ``t_limit``; return the time
        ``server`` lost its copy, or None if it survived the window."""
        while True:
            due = self.ctx._pop_due_expiry(t_limit, inclusive=False)
            if due is None:
                return None
            when, srv = due
            self.ctx.time = when
            if self.ctx.has_copy(srv):
                self.ctx.log.append(Event(when, EventKind.EXPIRE, srv))
                self.policy.on_expiry(self.ctx, srv, when)
            if not self.ctx.has_copy(server):
                return when

    def submit(self, t: float, server: int) -> Request:
        """Deliver a new request at ``(t, server)`` to the policy."""
        if t <= self._last_request_time:
            raise ValueError(
                f"request times must be strictly increasing: {t} <= "
                f"{self._last_request_time}"
            )
        self.advance_to(t, inclusive=False)
        req = Request(t, server, self._next_index)
        self._next_index += 1
        self._last_request_time = t
        self._requests.append(req)
        self.ctx.time = t
        self.ctx._current_request = req
        self.ctx._request_served = False
        self.ctx.log.append(Event(t, EventKind.REQUEST, server, -1, req.index))
        self.policy.on_request(self.ctx, req)
        if not self.ctx._request_served:
            raise PolicyError(
                f"{self.policy.name} failed to serve request {req.index}"
            )
        self.ctx._current_request = None
        return req

    def finish(self) -> SimulationResult:
        """Finalise accounting and return the run's result + trace."""
        self.ctx._final_time = self._last_request_time
        records = self.ctx._finalize()
        trace = Trace(
            self.model.n, [(r.time, r.server) for r in self._requests]
        )
        self.ctx.ledger.check_consistency()
        return SimulationResult(
            trace=trace,
            model=self.model,
            policy_name=self.policy.name,
            ledger=self.ctx.ledger,
            log=self.ctx.log,
            serves=self.ctx.serves,
            copy_records=records,
        )


def simulate(
    trace: Trace,
    model: CostModel,
    policy: ReplicationPolicy,
    drain: bool = True,
    drain_event_cap: int | None = None,
) -> SimulationResult:
    """Run ``policy`` over ``trace`` and return the measured outcome.

    Parameters
    ----------
    trace:
        The request sequence.
    model:
        Cost model; ``model.n`` must equal ``trace.n``.
    policy:
        The online strategy to drive.
    drain:
        When True (default), pending expirations after the final request
        are still delivered (without charging post-``t_m`` storage) so
        copy lifecycle records are complete — required by the Section 4.1
        cost-allocation analysis.  Draining stops after ``drain_event_cap``
        events to terminate policies that renew forever.
    """
    if model.n != trace.n:
        raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
    ctx = SimContext(model, trace.n, trace.span)
    policy.reset(model)

    # initial copy at server 0 (dummy request r_0 at time 0)
    ctx.create_copy(0, opening_request=0)
    policy.on_init(ctx)

    for req in trace:
        # deliver expirations strictly before the request, then the request,
        # then expirations at exactly the request time (t_i <= E_j rule).
        while True:
            due = ctx._pop_due_expiry(req.time, inclusive=False)
            if due is None:
                break
            when, server = due
            ctx.time = when
            if ctx.has_copy(server):
                ctx.log.append(Event(when, EventKind.EXPIRE, server))
                policy.on_expiry(ctx, server, when)
        ctx.time = req.time
        ctx._current_request = req
        ctx._request_served = False
        ctx.log.append(Event(req.time, EventKind.REQUEST, req.server, -1, req.index))
        policy.on_request(ctx, req)
        if not ctx._request_served:
            raise PolicyError(
                f"{policy.name} failed to serve request {req.index} at "
                f"t={req.time}"
            )
        ctx._current_request = None

    if drain:
        cap = drain_event_cap if drain_event_cap is not None else 4 * trace.n + 16
        fired = 0
        while fired < cap:
            due = ctx._pop_due_expiry(float("inf"), inclusive=True)
            if due is None:
                break
            when, server = due
            if when == float("inf"):
                continue
            ctx.time = when
            if ctx.has_copy(server):
                ctx.log.append(Event(when, EventKind.EXPIRE, server))
                policy.on_expiry(ctx, server, when)
            fired += 1

    records = ctx._finalize()
    ctx.ledger.check_consistency()
    return SimulationResult(
        trace=trace,
        model=model,
        policy_name=policy.name,
        ledger=ctx.ledger,
        log=ctx.log,
        serves=ctx.serves,
        copy_records=records,
    )
