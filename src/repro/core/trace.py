"""Request traces for the data replication problem.

A :class:`Trace` is the fundamental input to every algorithm in this
package: a time-ordered sequence of data-access requests, each arising at
one of ``n`` servers.  Following the paper's conventions (Section 2):

* all request times are strictly increasing,
* server ``0`` initially holds the only data copy,
* a *dummy request* ``r_0`` arises at server ``0`` at time ``0``; it incurs
  no service cost but anchors the initial copy's prediction.

The dummy request is **not** stored in :attr:`Trace.requests`; it is
implicit and exposed through helpers such as :meth:`Trace.with_dummy`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Request",
    "Trace",
    "TraceError",
    "merge_traces",
]


class TraceError(ValueError):
    """Raised when a request sequence violates the problem's assumptions."""


@dataclass(frozen=True, slots=True)
class Request:
    """A single data-access request.

    Attributes
    ----------
    time:
        Arrival time ``t_i`` (seconds, or any consistent time unit).
    server:
        Index of the server ``s[r_i]`` at which the request arises,
        ``0 <= server < n``.
    index:
        Position of the request in the global sequence (1-based, matching
        the paper's ``r_1, r_2, ...``; the dummy request is index 0).
    """

    time: float
    server: int
    index: int = -1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"request time must be >= 0, got {self.time}")
        if self.server < 0:
            raise TraceError(f"server index must be >= 0, got {self.server}")


@dataclass(frozen=True)
class Trace:
    """An immutable, validated request sequence over ``n`` servers.

    Parameters
    ----------
    n:
        Number of servers in the system.
    requests:
        The requests ``r_1, ..., r_m`` in strictly increasing time order.
        The dummy request ``r_0`` (server 0, time 0) is implicit.

    Notes
    -----
    Construction validates the paper's assumptions: strictly increasing
    arrival times, all strictly positive (the dummy request occupies time
    0), and all server indices within range.
    """

    n: int
    requests: tuple[Request, ...]
    _times: np.ndarray = field(init=False, repr=False, compare=False)
    _servers: np.ndarray = field(init=False, repr=False, compare=False)

    def __init__(self, n: int, requests: Iterable[Request | tuple[float, int]]):
        if n <= 0:
            raise TraceError(f"need at least one server, got n={n}")
        normalized: list[Request] = []
        for i, r in enumerate(requests):
            if isinstance(r, Request):
                normalized.append(Request(r.time, r.server, i + 1))
            else:
                t, s = r
                normalized.append(Request(float(t), int(s), i + 1))
        times = np.array([r.time for r in normalized], dtype=float)
        servers = np.array([r.server for r in normalized], dtype=np.int64)
        if len(normalized):
            prevs = np.concatenate(([0.0], times[:-1]))
            bad = (times <= prevs) | (servers >= n)
            if bad.any():
                k = int(np.argmax(bad))
                r = normalized[k]
                prev = normalized[k - 1].time if k else 0.0
                if r.time <= prev:
                    raise TraceError(
                        "request times must be strictly increasing and > 0 "
                        f"(violation at index {r.index}: {r.time} <= {prev})"
                    )
                raise TraceError(
                    f"request {r.index} at server {r.server} but n={n}"
                )
        object.__setattr__(self, "n", int(n))
        object.__setattr__(self, "requests", tuple(normalized))
        object.__setattr__(self, "_times", times)
        object.__setattr__(self, "_servers", servers)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, i: int) -> Request:
        return self.requests[i]

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Arrival times as a float array (read-only view)."""
        v = self._times.view()
        v.flags.writeable = False
        return v

    @property
    def servers(self) -> np.ndarray:
        """Server indices as an int array (read-only view)."""
        v = self._servers.view()
        v.flags.writeable = False
        return v

    @property
    def span(self) -> float:
        """Time of the final request ``t_m`` (0 for an empty trace)."""
        return float(self._times[-1]) if len(self.requests) else 0.0

    @property
    def servers_touched(self) -> tuple[int, ...]:
        """Sorted indices of servers that receive at least one request."""
        return tuple(int(s) for s in np.unique(self._servers))

    def with_dummy(self) -> tuple[Request, ...]:
        """The sequence including the implicit dummy request ``r_0``."""
        return (Request(0.0, 0, 0),) + self.requests

    def per_server_times(self) -> dict[int, np.ndarray]:
        """Map each server to the sorted arrival times of its requests.

        Server 0's list is prefixed with the dummy request time ``0.0``,
        matching the paper's convention that ``r_0`` arises at ``s_1``.
        """
        out: dict[int, list[float]] = {s: [] for s in range(self.n)}
        out[0].append(0.0)
        for r in self.requests:
            out[r.server].append(r.time)
        return {s: np.asarray(ts, dtype=float) for s, ts in out.items()}

    def preceding_local_index(self) -> list[int]:
        """For each request ``r_i``, the global index of ``r_{p(i)}``.

        Returns a list ``p`` of length ``m`` where ``p[i-1]`` is the
        1-based global index of the preceding request at the same server,
        ``0`` if the predecessor is the dummy request (server 0 only), and
        ``-1`` if the request is the first ever at its server.
        """
        last_seen: dict[int, int] = {0: 0}
        out: list[int] = []
        for r in self.requests:
            out.append(last_seen.get(r.server, -1))
            last_seen[r.server] = r.index
        return out

    def inter_request_gaps(self) -> list[float]:
        """Per-request gap ``t_i - t_{p(i)}``; ``inf`` for first requests.

        The dummy request at time 0 counts as the predecessor for server 0.
        """
        last_time: dict[int, float] = {0: 0.0}
        gaps: list[float] = []
        for r in self.requests:
            prev = last_time.get(r.server)
            gaps.append(float("inf") if prev is None else r.time - prev)
            last_time[r.server] = r.time
        return gaps

    def next_local_time(self) -> list[float]:
        """For each request, the arrival time of the next request at the
        same server (``inf`` if none).  Index 0 of the returned list
        corresponds to the dummy request ``r_0``."""
        m1 = len(self.requests) + 1
        sd = np.concatenate(([0], self._servers))
        td = np.concatenate(([0.0], self._times))
        # stable sort by server keeps arrival order within each server, so
        # consecutive equal-server positions are local successors
        order = np.argsort(sd, kind="stable")
        s_sorted = sd[order]
        nxt = np.full(m1, np.inf)
        same = s_sorted[1:] == s_sorted[:-1]
        nxt[order[:-1][same]] = td[order[1:][same]]
        return nxt.tolist()

    def slice_time(self, t_start: float, t_end: float) -> "Trace":
        """Sub-trace of requests with ``t_start < t <= t_end``.

        Times are **not** shifted; the result is useful for inspecting
        windows of a longer trace.
        """
        lo = bisect_right(self._times, t_start)
        hi = bisect_right(self._times, t_end)
        return Trace(self.n, [(r.time, r.server) for r in self.requests[lo:hi]])

    def request_at_or_after(self, t: float) -> Request | None:
        """First request with arrival time ``>= t`` (None if past the end)."""
        i = bisect_left(self._times, t)
        return self.requests[i] if i < len(self.requests) else None

    def count_in_window(self, server: int, t_start: float, t_end: float) -> int:
        """Number of requests at ``server`` with ``t_start < t <= t_end``."""
        return int(
            np.count_nonzero(
                (self._servers == server)
                & (self._times > t_start)
                & (self._times <= t_end)
            )
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(
        times: Sequence[float] | np.ndarray,
        servers: Sequence[int] | np.ndarray,
        n: int | None = None,
    ) -> "Trace":
        """Build a trace from parallel arrays of times and server indices."""
        times = np.asarray(times, dtype=float)
        servers = np.asarray(servers, dtype=np.int64)
        if times.shape != servers.shape:
            raise TraceError(
                f"times and servers must align, got {times.shape} vs {servers.shape}"
            )
        if n is None:
            n = int(servers.max(initial=-1)) + 1 if len(servers) else 1
        return Trace(n, list(zip(times.tolist(), servers.tolist())))

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in reports and sanity checks."""
        gaps = [g for g in self.inter_request_gaps() if np.isfinite(g)]
        return {
            "n_servers": float(self.n),
            "n_requests": float(len(self.requests)),
            "span": self.span,
            "mean_local_gap": float(np.mean(gaps)) if gaps else float("nan"),
            "median_local_gap": float(np.median(gaps)) if gaps else float("nan"),
            "servers_touched": float(len(self.servers_touched)),
        }


def merge_traces(traces: Iterable[Trace], n: int | None = None) -> Trace:
    """Merge several traces into one global time-ordered trace.

    Requests keep their server indices; a collision of identical arrival
    times raises :class:`TraceError` (the paper assumes distinct times).
    """
    items: list[tuple[float, int]] = []
    max_n = 0
    for tr in traces:
        max_n = max(max_n, tr.n)
        items.extend((r.time, r.server) for r in tr.requests)
    items.sort()
    return Trace(n if n is not None else max_n, items)
