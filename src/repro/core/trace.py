"""Request traces for the data replication problem.

A :class:`Trace` is the fundamental input to every algorithm in this
package: a time-ordered sequence of data-access requests, each arising at
one of ``n`` servers.  Following the paper's conventions (Section 2):

* all request times are strictly increasing,
* server ``0`` initially holds the only data copy,
* a *dummy request* ``r_0`` arises at server ``0`` at time ``0``; it incurs
  no service cost but anchors the initial copy's prediction.

The dummy request is **not** stored in :attr:`Trace.requests`; it is
implicit and exposed through helpers such as :meth:`Trace.with_dummy`.

Columnar storage
----------------
A trace is a structure-of-arrays: the primary storage is two parallel
NumPy columns, ``times`` (float64) and ``servers`` (int64), validated
with vectorized operations at construction.  :class:`Request` dataclass
objects are materialised **lazily** — only when a caller indexes,
iterates, or touches :attr:`Trace.requests` — so array-native producers
(the workload generators, the binary trace loader) and array-native
consumers (the fast/batch engines, prediction streams, the offline DP)
never pay O(m) Python object churn.  :meth:`Trace.from_arrays` is the
zero-copy fast path: a contiguous float64/int64 input array is adopted
as-is (as a read-only view) rather than copied, which is what makes
memory-mapped traces shared across worker processes practical.

Callers that hand arrays to :meth:`from_arrays` must not mutate them
afterwards; the trace takes a read-only *view*, not a defensive copy.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Request",
    "Trace",
    "TraceError",
    "merge_traces",
]


class TraceError(ValueError):
    """Raised when a request sequence violates the problem's assumptions."""


@dataclass(frozen=True, slots=True)
class Request:
    """A single data-access request.

    Attributes
    ----------
    time:
        Arrival time ``t_i`` (seconds, or any consistent time unit).
    server:
        Index of the server ``s[r_i]`` at which the request arises,
        ``0 <= server < n``.
    index:
        Position of the request in the global sequence (1-based, matching
        the paper's ``r_1, r_2, ...``; the dummy request is index 0).
    """

    time: float
    server: int
    index: int = -1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"request time must be >= 0, got {self.time}")
        if self.server < 0:
            raise TraceError(f"server index must be >= 0, got {self.server}")


def _columns_from_requests(
    requests: Iterable["Request | tuple[float, int]"],
) -> tuple[np.ndarray, np.ndarray]:
    """Convert the legacy request-sequence input to (times, servers)."""
    items = list(requests)
    if not items:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    times = np.empty(len(items), dtype=np.float64)
    servers = np.empty(len(items), dtype=np.int64)
    for i, r in enumerate(items):
        if isinstance(r, Request):
            times[i] = r.time
            servers[i] = r.server
        else:
            t, s = r
            times[i] = float(t)
            servers[i] = int(s)
    return times, servers


def _rebuild(n: int, times: np.ndarray, servers: np.ndarray) -> "Trace":
    """Pickle reconstructor (arrays were validated before pickling)."""
    return Trace._from_columns(n, times, servers, validate=False)


class Trace:
    """An immutable, validated request sequence over ``n`` servers.

    Parameters
    ----------
    n:
        Number of servers in the system.
    requests:
        The requests ``r_1, ..., r_m`` in strictly increasing time order,
        as :class:`Request` objects or ``(time, server)`` tuples.  The
        dummy request ``r_0`` (server 0, time 0) is implicit.  Array
        producers should prefer :meth:`from_arrays`, which skips this
        per-item conversion entirely.

    Notes
    -----
    Construction validates the paper's assumptions with vectorized
    checks: strictly increasing arrival times, all strictly positive
    (the dummy request occupies time 0), and all server indices within
    range.
    """

    __slots__ = ("n", "_times", "_servers", "_requests", "_hash")

    def __init__(self, n: int, requests: Iterable[Request | tuple[float, int]] = ()):
        times, servers = _columns_from_requests(requests)
        self._init_columns(int(n), times, servers, validate=True)

    # ------------------------------------------------------------------
    # columnar construction core
    # ------------------------------------------------------------------
    def _init_columns(
        self, n: int, times: np.ndarray, servers: np.ndarray, validate: bool
    ) -> None:
        if n <= 0:
            raise TraceError(f"need at least one server, got n={n}")
        if validate:
            _validate_columns(n, times, servers)
        tv = times.view()
        tv.flags.writeable = False
        sv = servers.view()
        sv.flags.writeable = False
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "_times", tv)
        object.__setattr__(self, "_servers", sv)
        object.__setattr__(self, "_requests", None)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"Trace is immutable (cannot set {name!r})"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"Trace is immutable (cannot delete {name!r})"
        )

    @classmethod
    def _from_columns(
        cls, n: int, times: np.ndarray, servers: np.ndarray, validate: bool = True
    ) -> "Trace":
        """Adopt validated float64/int64 columns without conversion."""
        obj = object.__new__(cls)
        obj._init_columns(int(n), times, servers, validate)
        return obj

    @staticmethod
    def from_arrays(
        times: Sequence[float] | np.ndarray,
        servers: Sequence[int] | np.ndarray,
        n: int | None = None,
        validate: bool = True,
    ) -> "Trace":
        """Build a trace from parallel arrays of times and server indices.

        This is the zero-copy fast path: a C-contiguous float64 ``times``
        / int64 ``servers`` pair is adopted as-is (the trace keeps a
        read-only view; the caller must not mutate the arrays
        afterwards).  Other dtypes and plain sequences are converted.
        ``validate=False`` skips the vectorized invariant checks for
        inputs that are known-good by construction (e.g. a slice of an
        already-validated trace, or a trusted binary file).
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        servers = np.ascontiguousarray(servers, dtype=np.int64)
        if times.shape != servers.shape:
            raise TraceError(
                f"times and servers must align, got {times.shape} vs {servers.shape}"
            )
        if times.ndim != 1:
            raise TraceError(f"expected 1-d columns, got shape {times.shape}")
        if n is None:
            n = int(servers.max(initial=-1)) + 1 if servers.size else 1
        return Trace._from_columns(int(n), times, servers, validate=validate)

    # ------------------------------------------------------------------
    # pickling (drops the lazy Request cache; columns round-trip)
    # ------------------------------------------------------------------
    def __reduce__(self):
        # np.array(): detach from memory-maps and shared buffers so the
        # pickle is self-contained
        return (_rebuild, (self.n, np.array(self._times), np.array(self._servers)))

    # ------------------------------------------------------------------
    # equality / hashing (content-based, array-native)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self._times, other._times)
            and np.array_equal(self._servers, other._servers)
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.n, self._times.tobytes(), self._servers.tobytes()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"Trace(n={self.n}, m={len(self._times)}, span={self.span:g})"

    # ------------------------------------------------------------------
    # basic container protocol (Requests materialise lazily)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Request]:
        if self._requests is not None:
            return iter(self._requests)
        return self._iter_lazy()

    def _iter_lazy(self) -> Iterator[Request]:
        times = self._times.tolist()
        servers = self._servers.tolist()
        for i in range(len(times)):
            yield Request(times[i], servers[i], i + 1)

    def __getitem__(self, i: int | slice) -> Request | tuple[Request, ...]:
        if self._requests is not None:
            return self._requests[i]
        m = len(self._times)
        if isinstance(i, slice):
            # materialise only the sliced Requests (no full-tuple cache):
            # a small window of a huge mmap-backed trace stays O(slice)
            return tuple(
                Request(float(self._times[j]), int(self._servers[j]), j + 1)
                for j in range(*i.indices(m))
            )
        idx = operator.index(i)
        if idx < 0:
            idx += m
        if not 0 <= idx < m:
            raise IndexError("trace index out of range")
        return Request(float(self._times[idx]), int(self._servers[idx]), idx + 1)

    @property
    def requests(self) -> tuple[Request, ...]:
        """The requests as :class:`Request` objects (materialised lazily
        on first access and cached)."""
        req = self._requests
        if req is None:
            times = self._times.tolist()
            servers = self._servers.tolist()
            req = tuple(
                Request(times[i], servers[i], i + 1) for i in range(len(times))
            )
            object.__setattr__(self, "_requests", req)
        return req

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Arrival times as a float array (read-only, zero-copy)."""
        return self._times

    @property
    def servers(self) -> np.ndarray:
        """Server indices as an int array (read-only, zero-copy)."""
        return self._servers

    @property
    def span(self) -> float:
        """Time of the final request ``t_m`` (0 for an empty trace)."""
        return float(self._times[-1]) if len(self._times) else 0.0

    @property
    def servers_touched(self) -> tuple[int, ...]:
        """Sorted indices of servers that receive at least one request."""
        return tuple(int(s) for s in np.unique(self._servers))

    def with_dummy(self) -> tuple[Request, ...]:
        """The sequence including the implicit dummy request ``r_0``."""
        return (Request(0.0, 0, 0),) + self.requests

    def per_server_times(self) -> dict[int, np.ndarray]:
        """Map each server to the sorted arrival times of its requests.

        Server 0's list is prefixed with the dummy request time ``0.0``,
        matching the paper's convention that ``r_0`` arises at ``s_1``.
        Built with one stable sort over the server column; no Request
        objects are materialised.
        """
        order = np.argsort(self._servers, kind="stable")
        sorted_servers = self._servers[order]
        sorted_times = self._times[order]
        bounds = np.searchsorted(sorted_servers, np.arange(self.n + 1))
        out: dict[int, np.ndarray] = {}
        for s in range(self.n):
            ts = sorted_times[bounds[s] : bounds[s + 1]]
            if s == 0:
                ts = np.concatenate(([0.0], ts))
            out[s] = ts
        return out

    def preceding_local_index(self) -> list[int]:
        """For each request ``r_i``, the global index of ``r_{p(i)}``.

        Returns a list ``p`` of length ``m`` where ``p[i-1]`` is the
        1-based global index of the preceding request at the same server,
        ``0`` if the predecessor is the dummy request (server 0 only), and
        ``-1`` if the request is the first ever at its server.
        """
        m = len(self._times)
        sd = np.concatenate(([0], self._servers))
        order = np.argsort(sd, kind="stable")
        prev = np.full(m + 1, -1, dtype=np.int64)
        same = sd[order][1:] == sd[order][:-1]
        prev[order[1:][same]] = order[:-1][same]
        return prev[1:].tolist()

    def inter_request_gaps(self) -> np.ndarray:
        """Per-request gap ``t_i - t_{p(i)}``; ``inf`` for first requests.

        The dummy request at time 0 counts as the predecessor for server 0.
        Vectorized: one stable sort over the server column.
        """
        m = len(self._times)
        td = np.concatenate(([0.0], self._times))
        sd = np.concatenate(([0], self._servers))
        order = np.argsort(sd, kind="stable")
        gaps = np.full(m + 1, np.inf)
        same = sd[order][1:] == sd[order][:-1]
        cur = order[1:][same]
        gaps[cur] = td[cur] - td[order[:-1][same]]
        return gaps[1:]

    def next_local_time(self) -> np.ndarray:
        """For each request, the arrival time of the next request at the
        same server (``inf`` if none).  Index 0 of the returned array
        corresponds to the dummy request ``r_0``."""
        m1 = len(self._times) + 1
        sd = np.concatenate(([0], self._servers))
        td = np.concatenate(([0.0], self._times))
        # stable sort by server keeps arrival order within each server, so
        # consecutive equal-server positions are local successors
        order = np.argsort(sd, kind="stable")
        s_sorted = sd[order]
        nxt = np.full(m1, np.inf)
        same = s_sorted[1:] == s_sorted[:-1]
        nxt[order[:-1][same]] = td[order[1:][same]]
        return nxt

    def slice_time(self, t_start: float, t_end: float) -> "Trace":
        """Sub-trace of requests with ``t_start < t <= t_end``.

        Times are **not** shifted; the result is useful for inspecting
        windows of a longer trace.  The slice shares this trace's column
        storage (zero-copy views).
        """
        lo = int(np.searchsorted(self._times, t_start, side="right"))
        hi = int(np.searchsorted(self._times, t_end, side="right"))
        return Trace._from_columns(
            self.n, self._times[lo:hi], self._servers[lo:hi], validate=False
        )

    def request_at_or_after(self, t: float) -> Request | None:
        """First request with arrival time ``>= t`` (None if past the end)."""
        i = int(np.searchsorted(self._times, t, side="left"))
        return self[i] if i < len(self._times) else None

    def count_in_window(self, server: int, t_start: float, t_end: float) -> int:
        """Number of requests at ``server`` with ``t_start < t <= t_end``."""
        return int(
            np.count_nonzero(
                (self._servers == server)
                & (self._times > t_start)
                & (self._times <= t_end)
            )
        )

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in reports and sanity checks."""
        gaps = self.inter_request_gaps()
        finite = gaps[np.isfinite(gaps)]
        return {
            "n_servers": float(self.n),
            "n_requests": float(len(self._times)),
            "span": self.span,
            "mean_local_gap": float(np.mean(finite)) if finite.size else float("nan"),
            "median_local_gap": (
                float(np.median(finite)) if finite.size else float("nan")
            ),
            "servers_touched": float(len(self.servers_touched)),
        }


def _validate_columns(n: int, times: np.ndarray, servers: np.ndarray) -> None:
    """Vectorized invariant checks (strictly increasing > 0, servers in
    range), with first-violation error messages."""
    if times.shape != servers.shape:
        raise TraceError(
            f"times and servers must align, got {times.shape} vs {servers.shape}"
        )
    m = times.shape[0]
    if m == 0:
        return
    prevs = np.empty_like(times)
    prevs[0] = 0.0
    prevs[1:] = times[:-1]
    bad_t = times <= prevs
    bad_s = (servers < 0) | (servers >= n)
    any_t = bad_t.any()
    if any_t or bad_s.any():
        k = int(np.argmax(bad_t | bad_s))
        if bad_t[k]:
            raise TraceError(
                "request times must be strictly increasing and > 0 "
                f"(violation at index {k + 1}: {times[k]} <= {prevs[k]})"
            )
        if servers[k] < 0:
            raise TraceError(f"server index must be >= 0, got {servers[k]}")
        raise TraceError(f"request {k + 1} at server {servers[k]} but n={n}")


def merge_traces(traces: Iterable[Trace], n: int | None = None) -> Trace:
    """Merge several traces into one global time-ordered trace.

    Requests keep their server indices; a collision of identical arrival
    times raises :class:`TraceError` (the paper assumes distinct times).
    Stays in column space: one concatenation plus one lexsort.
    """
    traces = list(traces)
    max_n = 0
    for tr in traces:
        max_n = max(max_n, tr.n)
    if not traces:
        return Trace(n if n is not None else max_n, [])
    times = np.concatenate([tr.times for tr in traces])
    servers = np.concatenate([tr.servers for tr in traces])
    # (time, server) lexicographic order, matching a tuple sort; ties in
    # time are then rejected by validation
    order = np.lexsort((servers, times))
    return Trace.from_arrays(
        times[order], servers[order], n=n if n is not None else max_n
    )
