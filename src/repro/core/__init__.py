"""Core substrate: traces, cost model, event log, and the simulator."""

from .backends import (
    BACKEND_NAMES,
    get_backend,
    numba_available,
    set_thread_budget,
    thread_budget,
)
from .costs import CostLedger, CostModel
from .engine import (
    ENGINE_NAMES,
    BatchCostEngine,
    CostResult,
    Engine,
    EngineError,
    FastCostEngine,
    KernelCostEngine,
    ReferenceEngine,
    get_engine,
    run_slab,
    select_engine,
)
from .events import Event, EventKind, EventLog
from .policy import PolicyError, ReplicationPolicy
from .simulator import (
    CopyRecord,
    InteractiveSimulation,
    ServeRecord,
    SimContext,
    SimulationResult,
    simulate,
)
from .trace import Request, Trace, TraceError, merge_traces
from .validate import ValidationReport, validate_result

__all__ = [
    "BACKEND_NAMES",
    "get_backend",
    "numba_available",
    "set_thread_budget",
    "thread_budget",
    "CostLedger",
    "CostModel",
    "Engine",
    "EngineError",
    "ENGINE_NAMES",
    "CostResult",
    "BatchCostEngine",
    "FastCostEngine",
    "KernelCostEngine",
    "ReferenceEngine",
    "get_engine",
    "run_slab",
    "select_engine",
    "Event",
    "EventKind",
    "EventLog",
    "PolicyError",
    "ReplicationPolicy",
    "CopyRecord",
    "InteractiveSimulation",
    "ServeRecord",
    "SimContext",
    "SimulationResult",
    "simulate",
    "Request",
    "Trace",
    "TraceError",
    "merge_traces",
    "ValidationReport",
    "validate_result",
]
