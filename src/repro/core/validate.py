"""Post-hoc validation of simulation results.

Downstream users writing their own :class:`ReplicationPolicy` can check a
finished run against every system invariant the paper's model requires.
The validator re-derives everything from the event log and lifecycle
records — it does not trust the simulator's own bookkeeping — so it also
guards this library against regressions (the test suite validates every
policy shipped here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import EventKind
from .simulator import SimulationResult

__all__ = ["ValidationReport", "validate_result"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_result`.

    ``violations`` is empty for a valid run; each entry is a
    human-readable description of one broken invariant.
    """

    violations: list[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_invalid(self) -> None:
        if self.violations:
            raise AssertionError(
                "invalid simulation result:\n  " + "\n  ".join(self.violations)
            )


def validate_result(result: SimulationResult) -> ValidationReport:
    """Check every model invariant on a finished simulation.

    Checks performed:

    1. every request was served exactly once, in trace order;
    2. local serves happened at servers holding a copy; transfer serves
       at servers without one, from a server with one;
    3. the copy count never dropped below one;
    4. the ledger's storage equals the event-log holdings integrated over
       ``[0, t_m]`` (per-server rates respected);
    5. the transfer cost equals ``lambda`` times the transfer events;
    6. copy records tile each server's holdings without overlap.
    """
    report = ValidationReport()
    trace = result.trace
    model = result.model

    def fail(msg: str) -> None:
        report.violations.append(msg)

    # (1) serve completeness and order -------------------------------
    report.checks_run += 1
    served = [s.request.index for s in result.serves]
    expected = [r.index for r in trace]
    if served != expected:
        fail(f"serve order mismatch: {served[:5]}... vs {expected[:5]}...")

    # (2) serve legality against reconstructed holdings ---------------
    report.checks_run += 1
    holdings: dict[int, bool] = {}
    holding_since: dict[int, float] = {}
    serve_by_index = {s.request.index: s for s in result.serves}
    copy_ok = True
    count = 0
    min_count_after_first = None
    for e in result.log:
        if e.kind is EventKind.CREATE:
            if holdings.get(e.server):
                fail(f"double CREATE at server {e.server}, t={e.time}")
                copy_ok = False
            holdings[e.server] = True
            holding_since[e.server] = e.time
            count += 1
        elif e.kind is EventKind.DROP:
            if not holdings.get(e.server):
                fail(f"DROP without copy at server {e.server}, t={e.time}")
                copy_ok = False
            holdings[e.server] = False
            count -= 1
            if min_count_after_first is None or count < min_count_after_first:
                min_count_after_first = count
        elif e.kind is EventKind.SERVE_LOCAL:
            if not holdings.get(e.server):
                fail(
                    f"local serve at server {e.server} (t={e.time}) "
                    "without a copy"
                )
        elif e.kind is EventKind.SERVE_TRANSFER:
            if e.source >= 0 and not holdings.get(e.source):
                fail(
                    f"transfer serve from {e.source} (t={e.time}) "
                    "without a source copy"
                )
            if e.request_index >= 0 and holdings.get(e.server):
                fail(
                    f"transfer serve at holder {e.server} (t={e.time}); "
                    "should have served locally"
                )

    # (3) at-least-one-copy -------------------------------------------
    report.checks_run += 1
    if copy_ok and min_count_after_first is not None and min_count_after_first < 1:
        fail(f"copy count dropped to {min_count_after_first}")

    # (4) storage integral --------------------------------------------
    report.checks_run += 1
    span = trace.span
    expected_storage = 0.0
    if copy_ok:
        for server, ivs in result.log.holdings_intervals().items():
            for a, b in ivs:
                lo, hi = min(a, span), min(max(b, a), span)
                # copies still held at the end extend to span
                expected_storage += (hi - lo) * model.rate(server)
        # copies never dropped extend to span: holdings_intervals closes
        # them at the last event time; extend to span explicitly
        last_event_t = result.log.events[-1].time if len(result.log) else 0.0
        for server, still in holdings.items():
            if still and last_event_t < span:
                expected_storage += (span - last_event_t) * model.rate(server)
        if not np.isclose(
            expected_storage, result.ledger.storage, rtol=1e-9, atol=1e-6
        ):
            fail(
                f"storage ledger {result.ledger.storage} != event-log "
                f"integral {expected_storage}"
            )

    # (5) transfer cost ------------------------------------------------
    report.checks_run += 1
    n_transfer_events = len(result.log.of_kind(EventKind.SERVE_TRANSFER))
    if n_transfer_events != result.ledger.n_transfers:
        fail(
            f"{n_transfer_events} transfer events vs ledger "
            f"{result.ledger.n_transfers}"
        )
    if not np.isclose(
        result.ledger.transfer, result.ledger.n_transfers * model.lam
    ):
        fail("transfer cost != n_transfers * lambda")

    # (6) copy records tile holdings -----------------------------------
    report.checks_run += 1
    by_server: dict[int, list] = {}
    for rec in result.copy_records:
        by_server.setdefault(rec.server, []).append(rec)
    for server, recs in by_server.items():
        recs.sort(key=lambda r: r.start)
        for a, b in zip(recs, recs[1:]):
            a_end = a.end if a.end == a.end else float("inf")
            if a_end > b.start + 1e-9:
                fail(
                    f"overlapping copy records at server {server}: "
                    f"({a.start},{a_end}) and ({b.start},...)"
                )
    return report
