"""Cost model and cost ledger.

The paper's cost model (Section 2): storing one copy costs ``mu(s)`` per
unit time (``mu = 1`` everywhere in the main setting) and transferring the
object between any two servers costs ``lam``.  The ledger accumulates both
categories and supports per-server breakdowns, which the analysis module
uses to cross-check the Proposition 2 cost allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CostModel", "CostLedger"]


@dataclass(frozen=True)
class CostModel:
    """Parameters of the storage/transfer cost trade-off.

    Parameters
    ----------
    lam:
        Transfer cost ``lambda > 0`` between any two servers.
    n:
        Number of servers.
    storage_rates:
        Per-server storage cost rates ``mu(s_i)``.  Defaults to 1 for all
        servers (the paper's main setting).  Distinct rates are used only
        by the Wang et al. [17] baseline (Section 11).
    """

    lam: float
    n: int
    storage_rates: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError(f"transfer cost lambda must be > 0, got {self.lam}")
        if self.n <= 0:
            raise ValueError(f"need at least one server, got n={self.n}")
        rates = self.storage_rates or tuple([1.0] * self.n)
        if len(rates) != self.n:
            raise ValueError(
                f"storage_rates must have length n={self.n}, got {len(rates)}"
            )
        if any(r <= 0 for r in rates):
            raise ValueError("storage rates must be strictly positive")
        object.__setattr__(self, "storage_rates", tuple(float(r) for r in rates))

    @property
    def uniform_storage(self) -> bool:
        """True when all servers share the same storage rate."""
        return len(set(self.storage_rates)) == 1

    def rate(self, server: int) -> float:
        """Storage cost rate of ``server``."""
        return self.storage_rates[server]

    def ski_rental_horizon(self, server: int) -> float:
        """Break-even holding duration ``lam / mu(s)`` for ``server``.

        Holding a copy this long costs exactly one transfer; it is the
        natural copy lifetime used by prediction-free strategies.
        """
        return self.lam / self.storage_rates[server]


@dataclass
class CostLedger:
    """Accumulates storage and transfer costs during a simulation.

    All mutation happens through :meth:`add_storage` and
    :meth:`add_transfer` so that totals and per-server breakdowns can
    never diverge.
    """

    model: CostModel
    storage: float = 0.0
    transfer: float = 0.0
    n_transfers: int = 0
    storage_by_server: np.ndarray = field(default=None)  # type: ignore[assignment]
    transfers_by_dest: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.storage_by_server is None:
            self.storage_by_server = np.zeros(self.model.n)
        if self.transfers_by_dest is None:
            self.transfers_by_dest = np.zeros(self.model.n, dtype=np.int64)

    def add_storage(self, server: int, duration: float) -> float:
        """Charge storage for holding a copy at ``server`` for ``duration``.

        Returns the cost charged.  Negative durations are rejected; zero
        durations are allowed (no-ops) to simplify caller logic.
        """
        if duration < 0:
            raise ValueError(f"storage duration must be >= 0, got {duration}")
        cost = duration * self.model.rate(server)
        self.storage += cost
        self.storage_by_server[server] += cost
        return cost

    def add_transfer(self, dest: int) -> float:
        """Charge one object transfer terminating at ``dest``."""
        self.transfer += self.model.lam
        self.n_transfers += 1
        self.transfers_by_dest[dest] += 1
        return self.model.lam

    @property
    def total(self) -> float:
        """Total cost accumulated so far."""
        return self.storage + self.transfer

    def snapshot(self) -> dict[str, float]:
        """Immutable summary of the ledger, for reports and assertions."""
        return {
            "storage": self.storage,
            "transfer": self.transfer,
            "n_transfers": float(self.n_transfers),
            "total": self.total,
        }

    def check_consistency(self, atol: float = 1e-9) -> None:
        """Assert internal invariants (breakdowns sum to totals)."""
        if not np.isclose(self.storage_by_server.sum(), self.storage, atol=atol):
            raise AssertionError(
                "per-server storage breakdown diverged from total: "
                f"{self.storage_by_server.sum()} != {self.storage}"
            )
        if int(self.transfers_by_dest.sum()) != self.n_transfers:
            raise AssertionError(
                "per-destination transfer counts diverged from total"
            )
        if not np.isclose(
            self.n_transfers * self.model.lam, self.transfer, atol=atol
        ):
            raise AssertionError("transfer cost != n_transfers * lambda")
