"""Tiered simulation engines: full-telemetry reference vs cost-only fast path.

DESIGN
======

Why two engines
---------------
The event-driven simulator (:func:`repro.core.simulator.simulate`) is the
semantic ground truth of this repository: it allocates an :class:`Event`
per state change, a :class:`ServeRecord` per request, and a
:class:`CopyRecord` per copy period, because the analysis layer (Section
4.1 cost allocation, validation, plotting) consumes all of that
telemetry.  The paper's evaluation grids, however, consume exactly one
scalar per cell — ``total_cost`` — so grid throughput was bounded by
bookkeeping the numbers never use.

This module splits the two concerns behind one interface:

* :class:`ReferenceEngine` — delegates to :func:`simulate` unchanged.
  Full telemetry, every policy, the only engine whose results carry
  event logs, serve records, copy records, and classifications.
* :class:`FastCostEngine` — replays the *same decision process* with
  slot-based scalar state: a dict of live copy segment starts, an expiry
  heap of plain tuples, and a precomputed
  :class:`~repro.predictions.stream.PredictionStream`.  No event log, no
  per-request dataclasses, no policy callbacks.  It returns a
  :class:`CostResult` carrying only the cost ledger totals.

Exact equivalence, not approximate
----------------------------------
The fast engine is written to mirror the reference engine's
*floating-point operation order*, not merely its semantics: storage is
charged at the same moments (renewal, drop, finalize) with the same
``(min(end, t_m) - min(start, t_m)) * rate`` expression, transfers are
accumulated by the same repeated additions of ``lambda``, expiries pop
in the same ``(time, server, token)`` heap order, and finalization walks
live copies in the same dict-insertion order as ``SimContext._holding``.
Noisy-oracle predictions are drawn as one batched ``random(m + 1)``
call, bit-identical to the incremental per-query draws.  Consequently
fast-engine costs are not just "within 1e-9" of the reference — they are
bit-identical on every instance, and the test suite pins both.

Which policies are fast-path eligible
-------------------------------------
A policy qualifies only if its decisions are a pure function of
``(trace, model, streamable predictions)``:

* :class:`LearningAugmentedReplication` (Algorithm 1) — eligible when
  its predictor is streamable (oracle / noisy oracle / adversarial
  built from the same trace, or a constant predictor).  Exact type
  only: subclasses may override behaviour.
* :class:`ConventionalReplication` — always eligible (``alpha = 1``
  makes predictions irrelevant).
* :class:`WangReplication` — always eligible (prediction-free).

Everything else falls back to the reference engine:

* :class:`AdaptiveReplication` monitors its own realized cost ratio and
  switches durations adaptively — its state depends on per-request
  telemetry the fast path does not materialise;
* history-based predictors (sliding window, Markov, EWMA, ensembles)
  learn from ``observe`` callbacks in arrival order;
* anything needing classifications, serve records, event logs, or copy
  records must use the reference engine — the fast path never produces
  telemetry, by construction.

``select_engine(trace, model, policy, "auto")`` encodes that rule: it
returns the fast engine iff :meth:`FastCostEngine.supports` holds, else
the reference engine.  ``sweep_grid`` and ``ExperimentRunner`` default
to ``"auto"`` because grid cells consume only costs;
``MultiObjectSystem.run`` defaults to ``"reference"`` because its
:class:`FleetReport` exposes full per-object results.

The batch tier: one trace pass per slab
---------------------------------------
The paper's grids evaluate hundreds of cells ``(alpha, accuracy, seed)``
that share one ``(trace, lambda)``; the fast engine still replays the
trace once *per cell*.  :class:`BatchCostEngine` replays it once *per
slab*: per-server slot state becomes ``(n_servers, n_cells)`` NumPy
arrays, the expiry heap becomes per-server due-time columns (each server
holds at most one live heap entry, so a ``(n_servers, n_cells)`` due
matrix plus an argmin over servers reproduces the ``(time, server,
token)`` pop order exactly), and dict insertion order is tracked with a
per-cell insertion counter so finalization walks live copies in the
identical sequence.  Every per-cell floating-point operation — the
``(min(end, t_m) - min(start, t_m)) * rate`` storage charges, the
repeated ``+= lambda`` transfer additions, the single ``alpha * lambda``
duration product — is the same IEEE double op the scalar replay
performs, in the same order, so per-cell batch costs are bit-identical
to :class:`FastCostEngine` (and hence to the reference simulator).

Wang and the conventional baseline are prediction-free within a slab
(Wang ignores predictions entirely; conventional pins the duration to
``lambda``), so their slabs reduce to one scalar fast replay broadcast
across the cells.

``select_engine(..., slab_size=k)`` encodes the selection rule:
``"auto"`` returns the batch engine when the caller holds a slab of
``k > 1`` eligible cells, the fast engine for single eligible runs, and
the reference engine otherwise.  :func:`run_slab` is the module-level
dispatcher the sweep and experiment layers use: it batches whole slabs
when eligible and falls back to bit-identical per-cell execution when
not.

The kernel tier: loop-free segment-scan replay
----------------------------------------------
Every tier above still walks the trace with a per-request Python loop —
the fast engine with scalar slot state, the batch engine with one
vectorized step per request.  On million-request columnar traces that
loop *is* the cost of a grid cell.  :class:`KernelCostEngine` removes it
entirely: a cell is evaluated by a fixed number of whole-array passes,
with no per-request Python work at all.

The reformulation rests on one observation: under Algorithm 1 every
request is a *service* — both the renewal and the transfer branch
restart the served server's segment at ``t_i`` and schedule its expiry
at ``t_i + duration`` — and the duration depends only on the prediction
consumed at that request, never on simulation state.  Per-request
keep-durations therefore materialise directly from the
:class:`~repro.predictions.stream.PredictionStream` columns
(``np.where(pred, lam, alpha * lam)``), and the expiry of request ``q``
is the state-free array ``E[q] = t[q] + d[q]``.  From it:

* ``reach[q] = searchsorted(times, E[q], 'right') - 1`` is the last
  request index the copy created at ``q`` survives to (the heap's
  strict ``when < t`` pop, as an index comparison);
* ``succ[q]``, the next request at the same server (one shared
  per-server lexsort), caps the segment: ``cover[q] = min(succ[q],
  reach[q])`` is the last request index at which ``q`` is its server's
  live copy.  Slot segments are exactly the runs between *break masks*
  in per-server order — positions where ``times[1:] > expiry[:-1]``,
  i.e. ``reach < succ``;
* a request ``i`` finds the system empty (the paper's special-copy
  regime, lines 15-25) iff no earlier request covers it:
  ``maximum.accumulate(cover)[i-1] < i``.  At such a die-out the special
  copy is the lexicographic ``(E, server)`` maximum among segments with
  ``reach == i - 1`` — the scalar heap's pop order — and it is resolved
  at request ``i`` itself (renewed if local, dropped after the transfer
  otherwise), so die-outs never couple across requests.

Renewals are then ``reach[prev] >= i`` or a special renewal; every
other request is a transfer; and each of the ``m + 1`` segments is
charged exactly once (renewal close, expiry drop, special resolution,
or drain/finalize), so the storage ledger is a permutation of per-
segment charges.

Bit-identity of the reduced ledgers needs one more ingredient: the
scalar accumulator adds its charges in a specific order, and IEEE
addition is not associative.  The kernel reconstructs that exact order
as a sort key — ``(request event, pop-phase-before-serve-phase, expiry,
server)`` — without ever sorting the full key tuple: expiry-drop
charges are ``(E, server)``-ordered by merging the two per-branch
expiry streams (each a constant shift of the strictly increasing
times, hence already sorted; rare cross-stream ties fall back to a
lexsort), serve-phase charges are emitted in request order by
construction, and the two sequences interleave by counting sums
(``bincount`` + ``cumsum``) rather than comparison sorts.  The ordered
charge values are then reduced with ``np.add.accumulate`` — NumPy's
*sequential* accumulation, unlike ``np.add.reduce``'s pairwise tree —
so the final sum performs the same doubles additions in the same order
as ``acc["storage"] += charge``.  Transfers reuse the batch tier's
partial-sum argument: ``accumulate(full(n_tx, lam))[-1]`` is the
scalar's repeated ``transfer += lam`` bit for bit.  Kernel costs are
therefore bit-identical to :class:`FastCostEngine` (and the reference
simulator) for every ``supports()``-eligible policy, and the test
suite pins this across every registered scenario.

Wang's baseline rides the same tier through a *cascade factorisation*
(:class:`_WangReplay`).  Its drop cascade (``renewed_once`` flags,
second-consecutive-expiry shipping to server 0) couples each server's
next expiry to the global alive set, so the pure segmented formulation
above does not apply directly — but the coupling is sparse.  With the
fixed periods ``lam / rate[s]``, the *baseline* expiry column ``E[q] =
t[q] + period[server[q]]`` is exact for every copy created by a serve
(the overwhelming majority): renewals are again ``succ <= reach``, and
the renewal prefix-count ``r_cum`` turns "how many other copies are
alive at expiry ``E[q]``" into pure arithmetic over the candidates
sorted by the scalar heap's ``(E, server)`` pop key.  A candidate with
at least one other copy alive is an unconditional drop (its grace flag
was reset by the serve that created it); only the rare *die-out
triggers* — candidates that expire last — enter the sequential cascade.
There, at most **one** injected extension (the grace reschedule of the
only surviving copy) is alive at a time, so a compact episode machine
(:func:`repro.core.backends.KernelPrimitives.wang_cascade`) replays
just those episodes: grace extensions, second-expiry shipments to
server 0 (``transfer += lam`` with the dict-append segment on server
0), and *flips* — injected copies served locally, which convert a
predicted miss back into a renewal with an overridden segment start.
Everything downstream (charge values, the pop/serve counting
interleave, drain and finalize order, ``seq_sum`` / ``repeat_add``
reductions) reuses the machinery above, so kernel Wang is bit-identical
to ``_fast_wang``'s heap replay — the tests pin this across every
registered scenario, tie-prone hypothesis instances, and all execution
backends.  ``supports()`` therefore carries **no policy exclusions**:
heterogeneous Algorithm-1 + Wang fleets run as single-tier kernel
slabs (see :func:`run_policy_slab`).

Selection: the kernel's fixed overhead (a handful of array allocations
and one shared per-server sort) loses to the fast engine's lean scalar
loop on short traces and to the batch engine's shared trace pass on
short slabs, so ``"auto"`` prefers it only above measured crossover
trace lengths (:data:`KERNEL_MIN_M` single-cell,
:data:`KERNEL_SLAB_MIN_M` slab-wide; see ``benchmarks/bench_scaling.py``
for the measurements).  In slab mode the per-cell masks broadcast over
an ``(n_cells,)`` axis of independent columns sharing the per-trace
``succ``/``prev`` chains and one ``searchsorted`` per *distinct*
keep-duration — 12 for the paper's 121-cell fig25 grid — which is
where the tier's ≥5x per-cell advantage over the batch engine at
million-request scale comes from (``benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import abc
import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..obs import metrics as _obs
from .backends import NUMPY_PRIMS, KernelBackend, KernelPrimitives, get_backend
from .costs import CostModel
from .policy import PolicyError, ReplicationPolicy
from .simulator import SimulationResult, simulate
from .trace import Trace

__all__ = [
    "Engine",
    "EngineError",
    "ReferenceEngine",
    "FastCostEngine",
    "BatchCostEngine",
    "KernelCostEngine",
    "CostResult",
    "ENGINE_NAMES",
    "KERNEL_MIN_M",
    "KERNEL_SLAB_MIN_M",
    "get_engine",
    "select_engine",
    "run_slab",
    "run_policy_slab",
]


class EngineError(RuntimeError):
    """Raised when an engine is asked to run a policy it cannot handle."""


@dataclass(frozen=True)
class CostResult:
    """Cost-only outcome of a fast-engine run.

    Duck-compatible with :class:`~repro.core.simulator.SimulationResult`
    for every cost consumer (``total_cost`` / ``storage_cost`` /
    ``transfer_cost`` / ``policy_name`` / ``trace`` / ``model``); it
    deliberately has no event log, serves, or copy records.
    """

    trace: Trace
    model: CostModel
    policy_name: str
    storage_cost: float
    transfer_cost: float
    n_transfers: int
    engine: str = "fast"

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.transfer_cost


class Engine(abc.ABC):
    """A strategy for executing one policy over one trace."""

    name: str = "engine"

    @abc.abstractmethod
    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        """Whether :meth:`run` can execute this instance faithfully."""

    @abc.abstractmethod
    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ):
        """Execute ``policy`` over ``trace``; returns an object exposing
        ``total_cost`` / ``storage_cost`` / ``transfer_cost``."""

    def run_observed(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ):
        """:meth:`run`, wrapped in an ``engine.cell`` telemetry span.

        The disabled path is one flag check and a direct call; dispatch
        sites (per-cell slab fallback, fleets) call this so per-cell
        wall time is tagged by engine tier without touching the engine
        implementations.
        """
        if not _obs.enabled:
            return self.run(trace, model, policy, drain, drain_event_cap)
        tags = self._span_tags(1, len(trace))
        with _obs.span("engine.cell", tier=self.name, m=len(trace), **tags):
            out = self.run(trace, model, policy, drain, drain_event_cap)
        _obs.counter("repro_engine_cells_total", tier=self.name).inc()
        return out

    def _span_tags(self, n_cells: int, m: int) -> dict:
        """Extra tags for this engine's telemetry spans (kernel adds the
        active execution backend)."""
        return {}


class ReferenceEngine(Engine):
    """The full-telemetry event-driven simulator (semantic ground truth)."""

    name = "reference"

    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        return True

    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ) -> SimulationResult:
        return simulate(
            trace, model, policy, drain=drain, drain_event_cap=drain_event_cap
        )


class FastCostEngine(Engine):
    """Cost-only replay of Algorithm 1 / conventional / Wang policies.

    See the module DESIGN docstring for eligibility rules and the
    bit-identical-cost argument.
    """

    name = "fast"

    # ------------------------------------------------------------------
    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication
        from ..predictions.stream import PredictionStream

        kind = type(policy)
        if kind is WangReplication:
            return _wang_rates_ok(model)
        if kind is ConventionalReplication:
            return model.uniform_storage
        if kind is LearningAugmentedReplication:
            if not model.uniform_storage:
                return False
            # cheap type/provenance check; the stream itself is built
            # once, in run()
            return PredictionStream.supports_predictor(policy.predictor, trace)
        return False

    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ) -> CostResult:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication

        if model.n != trace.n:
            raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
        kind = type(policy)
        if kind is WangReplication:
            storage, transfer, n_tx = _fast_wang(
                trace, model, drain, drain_event_cap
            )
        elif kind in (ConventionalReplication, LearningAugmentedReplication):
            if not model.uniform_storage:
                raise PolicyError(
                    "Algorithm 1 assumes uniform storage rates (paper Section 2)"
                )
            stream = self._stream_for(policy, trace, model)
            if stream is None:
                raise EngineError(
                    f"FastCostEngine cannot stream predictor "
                    f"{policy.predictor.name!r}; use the reference engine"
                )
            storage, transfer, n_tx = _fast_algorithm1(
                trace, model, policy.alpha, stream.within, drain, drain_event_cap
            )
        else:
            raise EngineError(
                f"FastCostEngine does not support {kind.__name__}; "
                "use the reference engine"
            )
        return CostResult(
            trace=trace,
            model=model,
            policy_name=policy.name,
            storage_cost=storage,
            transfer_cost=transfer,
            n_transfers=n_tx,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _stream_for(policy, trace: Trace, model: CostModel):
        from ..algorithms.conventional import ConventionalReplication
        from ..predictions.stream import PredictionStream

        if type(policy) is ConventionalReplication:
            # alpha = 1: both prediction branches choose duration lambda
            return PredictionStream.fixed(trace, False)
        return PredictionStream.for_predictor(policy.predictor, trace, model.lam)


def _wang_rates_ok(model: CostModel) -> bool:
    rates = model.storage_rates
    return all(rates[i] <= rates[i + 1] for i in range(len(rates) - 1))


# ----------------------------------------------------------------------
# slot-state replay kernels
#
# Both kernels mirror SimContext's ledger arithmetic exactly: the same
# charges in the same order with the same scalar expressions.  The
# machinery they share — expiry heap/token protocol, t_m-clipped storage
# charging, drain loop, finalize walk — lives in _slot_machinery and
# _drain_expiries so the two policy families can never drift apart; the
# seg dict mirrors SimContext._holding's insertion order (create
# appends, renew replaces in place, drop removes) so finalization walks
# live copies in the identical sequence.
# ----------------------------------------------------------------------


def _slot_machinery(t_m: float, rates):
    """Shared scalar state: live segments, storage accumulator, expiry heap.

    Returns ``(seg, acc, charge, schedule, pop_due, token)`` closures
    mirroring ``SimContext``'s ``_charge_storage`` clipping,
    ``schedule_expiry`` token replacement, and ``_pop_due_expiry`` lazy
    stale-entry deletion bit for bit.
    """
    seg: dict[int, float] = {}       # server -> live segment start
    acc = {"storage": 0.0}
    heap: list[tuple[float, int, int]] = []
    token: dict[int, int] = {}
    counter = itertools.count()

    def charge(server: int, start: float, end: float) -> None:
        s = start if start < t_m else t_m
        e = end if end < t_m else t_m
        if e > s:
            acc["storage"] += (e - s) * rates[server]

    def schedule(server: int, when: float) -> None:
        tok = next(counter)
        token[server] = tok
        heapq.heappush(heap, (when, server, tok))

    def pop_due(until: float, inclusive: bool):
        while heap:
            when, server, tok = heap[0]
            if token.get(server) != tok:
                heapq.heappop(heap)  # stale entry
                continue
            if when < until or (inclusive and when <= until):
                heapq.heappop(heap)
                token.pop(server, None)
                return when, server
            return None
        return None

    return seg, acc, charge, schedule, pop_due, token


def _drain_expiries(pop_due, expire, seg, n: int, drain_event_cap: int | None):
    """Deliver post-final-request expirations, mirroring simulate()'s
    drain loop (event cap, fired counting, inf guard)."""
    inf = float("inf")
    cap = drain_event_cap if drain_event_cap is not None else 4 * n + 16
    fired = 0
    while fired < cap:
        due = pop_due(inf, True)
        if due is None:
            break
        w, s = due
        if w == inf:
            continue
        if s in seg:
            expire(s, w)
        fired += 1


def _fast_algorithm1(
    trace: Trace,
    model: CostModel,
    alpha: float,
    within,
    drain: bool,
    drain_event_cap: int | None,
) -> tuple[float, float, int]:
    """Replay Algorithm 1 (lines 1-25) with scalar slot state."""
    lam = model.lam
    d_within = lam
    d_beyond = alpha * lam
    seg, acc, charge, schedule, pop_due, token = _slot_machinery(
        trace.span, model.storage_rates
    )
    special = -1                    # server holding the special copy, if any
    transfer = 0.0
    n_transfers = 0

    def expire(server: int, when: float) -> None:
        nonlocal special
        if len(seg) == 1:
            special = server  # lines 20-25: keep the last copy as special
        else:
            charge(server, seg.pop(server), when)

    # plain python lists: element access in the hot loop stays scalar
    pred = within.tolist()
    times = trace.times.tolist()
    servers = trace.servers.tolist()

    # dummy request r_0: initial copy at server 0, duration from pred[0]
    seg[0] = 0.0
    schedule(0, d_within if pred[0] else d_beyond)

    for i in range(len(times)):
        t = times[i]
        j = servers[i]
        while True:
            due = pop_due(t, False)
            if due is None:
                break
            w, s = due
            if s in seg:
                expire(s, w)
        if j in seg:
            opened_now = False
        else:
            source = min(seg)
            transfer += lam
            n_transfers += 1
            src_special = special == source
            seg[j] = t                      # create at the destination
            if src_special:
                # lines 15-19: drop the special source after the transfer
                charge(source, seg.pop(source), t)
                token.pop(source, None)
                special = -1
            opened_now = True
        duration = d_within if pred[i + 1] else d_beyond
        if not opened_now:
            # local serve: renew the copy period (charge the closed one)
            charge(j, seg[j], t)
            seg[j] = t
            if special == j:
                special = -1
        schedule(j, t + duration)

    if drain:
        _drain_expiries(pop_due, expire, seg, trace.n, drain_event_cap)

    t_m = trace.span
    for s, start in seg.items():
        charge(s, start, t_m)
    return acc["storage"], transfer, n_transfers


def _fast_wang(
    trace: Trace,
    model: CostModel,
    drain: bool,
    drain_event_cap: int | None,
) -> tuple[float, float, int]:
    """Replay the Wang et al. baseline with scalar slot state."""
    rates = model.storage_rates
    if not _wang_rates_ok(model):
        raise PolicyError(
            "WangReplication requires servers indexed by ascending "
            "storage rate (mu(s_0) <= ... <= mu(s_{n-1}))"
        )
    lam = model.lam
    periods = [lam / r for r in rates]
    seg, acc, charge, schedule, pop_due, token = _slot_machinery(
        trace.span, rates
    )
    renewed_once: dict[int, bool] = {}
    transfer = 0.0
    n_transfers = 0

    def drop(server: int, when: float) -> None:
        charge(server, seg.pop(server), when)
        token.pop(server, None)

    def expire(server: int, when: float) -> None:
        nonlocal transfer, n_transfers
        only_copy = len(seg) == 1
        if server == 0:
            if only_copy:
                schedule(0, when + periods[0])
            else:
                drop(0, when)
            return
        if not only_copy:
            drop(server, when)
            return
        if not renewed_once.get(server, False):
            renewed_once[server] = True
            schedule(server, when + periods[server])
        else:
            # second consecutive expiry: ship the object to server 0
            transfer += lam
            n_transfers += 1
            seg[0] = when
            drop(server, when)
            renewed_once[server] = False
            schedule(0, when + periods[0])

    seg[0] = 0.0
    renewed_once[0] = False
    schedule(0, periods[0])

    times = trace.times.tolist()
    servers = trace.servers.tolist()
    for i in range(len(times)):
        t = times[i]
        j = servers[i]
        while True:
            due = pop_due(t, False)
            if due is None:
                break
            w, s = due
            if s in seg:
                expire(s, w)
        if j in seg:
            charge(j, seg[j], t)  # renew_copy closes the previous period
            seg[j] = t
        else:
            transfer += lam
            n_transfers += 1
            seg[j] = t
        renewed_once[j] = False
        schedule(j, t + periods[j])

    if drain:
        _drain_expiries(pop_due, expire, seg, trace.n, drain_event_cap)

    t_m = trace.span
    for s, start in seg.items():
        charge(s, start, t_m)
    return acc["storage"], transfer, n_transfers


# ----------------------------------------------------------------------
# batched slab kernel
#
# One trace pass evaluates every cell of a slab.  The cell axis is the
# second array dimension throughout; every statement below performs, per
# cell, exactly the scalar operation _fast_algorithm1 performs at the
# same moment (see the module DESIGN docstring for the bit-identity
# argument).
# ----------------------------------------------------------------------

_NO_ORDER = np.iinfo(np.int64).max  # insertion-order slot for dead copies


def _batch_algorithm1(
    trace: Trace,
    model: CostModel,
    alphas: np.ndarray,
    pred: np.ndarray,
    drain: bool,
    drain_event_cap: int | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay Algorithm 1 for a whole slab of cells in one trace pass.

    ``alphas`` has shape ``(n_cells,)`` and ``pred`` shape
    ``(m + 1, n_cells)`` (one prediction column per cell).  Returns
    ``(storage, transfer, n_transfers)`` arrays whose entry ``c`` is
    bit-identical to ``_fast_algorithm1(trace, model, alphas[c],
    pred[:, c], ...)``.
    """
    lam = model.lam
    n = trace.n
    t_m = trace.span
    if not model.uniform_storage:
        raise PolicyError(
            "Algorithm 1 assumes uniform storage rates (paper Section 2)"
        )
    rate = model.storage_rates[0]
    alphas = np.asarray(alphas, dtype=float)
    n_cells = alphas.size
    pred = np.asarray(pred, dtype=bool)
    if pred.shape != (len(trace) + 1, n_cells):
        raise ValueError(
            f"prediction matrix must be (m + 1, n_cells) = "
            f"({len(trace) + 1}, {n_cells}), got {pred.shape}"
        )
    d_beyond = alphas * lam          # the scalar path's single multiply
    inf = np.inf

    # NOTE on charges: the scalar path guards every storage charge with
    # `if e > s`.  Segment starts never exceed their expiry/renewal/
    # finalize times, so after clipping to t_m the difference `e - s` is
    # always >= 0 — and adding `0.0 * rate == +0.0` to a non-negative
    # accumulator is the IEEE identity.  The kernel therefore charges
    # unconditionally, which is bit-identical and saves the mask work.
    alive = np.zeros((n, n_cells), dtype=bool)
    start = np.zeros((n, n_cells), dtype=float)
    due = np.full((n, n_cells), inf)
    # dict insertion order == creation order, and each cell creates at
    # most one copy per request, so the request index serves as the
    # per-cell insertion counter (the initial copy is order 0)
    order = np.full((n, n_cells), _NO_ORDER, dtype=np.int64)
    special = np.full(n_cells, -1, dtype=np.int64)
    # the two per-cell integer ledgers share one array so the serve step
    # updates both with a single broadcast add
    ints = np.zeros((2, n_cells), dtype=np.int64)
    n_alive = ints[0]
    n_tx = ints[1]
    storage = np.zeros(n_cells)

    def expire(fc: np.ndarray, until: float, max_rounds: int | None = None) -> None:
        """Deliver every due expiry with time < ``until`` among the cell
        columns ``fc``, one heap pop per cell per round.

        Column subsets stay compressed (integer index arrays) so quiet
        cells cost nothing; ties pop the lowest server first, matching
        the scalar ``(time, server, token)`` heap order (``argmin``
        returns the first minimum).  Rounds run in lockstep — every
        surviving column pops exactly once per round — so capping the
        round count at ``max_rounds`` reproduces the scalar drain
        loop's per-cell fired-event cap exactly.
        """
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            if fc is all_cols:
                wv = due.min(axis=0, out=f3)
                keep = np.less(wv, until, out=b_keep)
                fc = keep.nonzero()[0]
                if not fc.size:
                    return
                wv = wv[fc]
            else:
                wv = due[:, fc].min(axis=0)
                keep = wv < until
                fc, wv = fc[keep], wv[keep]
                if not fc.size:
                    return
            srv = due[:, fc].argmin(axis=0)
            due[srv, fc] = inf                    # pop the entry
            last = n_alive[fc] == 1
            if last.all():
                # lines 20-25: keep the final copy as the special copy —
                # the dominant regime.  A single-copy cell holds at most
                # one due entry (due implies alive), so every fired
                # column is now dry: no further round can fire.
                special[fc] = srv
                return
            lc = fc[last]
            special[lc] = srv[last]
            dropm = ~last
            dc = fc[dropm]
            ds = srv[dropm]
            s_ = np.minimum(start[ds, dc], t_m)
            e_ = np.minimum(wv[dropm], t_m)
            storage[dc] += (e_ - s_) * rate
            alive[ds, dc] = False
            n_alive[dc] -= 1
            # only the dropped cells can still hold a due entry < until
            # (the special-ed cells just popped their only entry), so the
            # next round's check narrows to them
            fc = dc
            rounds += 1

    # per-request schedule rows, precomputed: row i is the scalar path's
    # t_i + (d_within if pred else d_beyond) for every cell (np.where
    # selects the operand; the add is the same scalar IEEE add)
    times = trace.times
    sched = times[:, None] + np.where(pred[1:], lam, d_beyond)

    # dummy request r_0: initial copy at server 0, duration from pred[0]
    alive[0, :] = True
    order[0, :] = 0
    n_alive[:] = 1
    due[0, :] = np.where(pred[0], lam, d_beyond)

    all_cols = np.arange(n_cells)
    times_l = times.tolist()
    servers_l = trace.servers.tolist()
    # preallocated full-width work buffers: the serve step runs once per
    # request, so allocator traffic there dominates the numpy dispatch
    # overhead this kernel's throughput is made of
    unit_rate = rate == 1.0
    f1 = np.empty(n_cells)
    f2 = np.empty(n_cells)
    f3 = np.empty(n_cells)
    b_keep = np.empty(n_cells, dtype=bool)
    b_miss = np.empty(n_cells, dtype=bool)
    b_sp = np.empty(n_cells, dtype=bool)
    b_clear = np.empty(n_cells, dtype=bool)
    i_src = np.empty(n_cells, dtype=np.intp)
    # bind ufuncs to locals: the loop body is dispatch-bound
    np_not, np_and, np_eq = np.logical_not, np.logical_and, np.equal
    np_min2, np_sub, np_mul = np.minimum, np.subtract, np.multiply
    np_add, np_copyto = np.add, np.copyto
    for i in range(len(times_l)):
        t = times_l[i]
        j = servers_l[i]
        expire(all_cols, t)
        e_t = t if t < t_m else t_m
        # one unified serve step: read the pre-state fully, then write.
        # Both branches of the scalar serve set seg[j] = t, so start/alive
        # rows are written unconditionally; per-cell branch effects ride
        # on boolean masks (adding a masked-out 0.0 charge, or charging
        # `(e - s) * 1.0` without the multiply, is the IEEE identity —
        # see the charge NOTE above).  Requests on which every cell
        # agrees (all-miss at a cold server, all-renew at a hot one) take
        # branch-free fast paths.
        has = alive[j]                     # pre-write view; reads first
        nh = np.count_nonzero(has)
        if nh == 0:
            # every cell transfers from its lowest-indexed live server
            # (min(seg)); argmax over booleans finds the first live row
            src = alive.argmax(axis=0, out=i_src)
            sp = np_eq(special, src, out=b_sp)
            start[j].fill(t)
            alive[j].fill(True)
            order[j].fill(i + 1)           # create appends to the dict
            np_add(ints, 1, out=ints)      # n_alive and n_tx together
            if sp.any():
                # lines 15-19: charge and drop the special source after
                # the transfer (the destination copy was created above)
                sc = sp.nonzero()[0]
                ss = src[sc]
                s2 = np_min2(start[ss, sc], t_m)
                if unit_rate:
                    storage[sc] += e_t - s2
                else:
                    storage[sc] += (e_t - s2) * rate
                alive[ss, sc] = False
                # a special source holds no due entry (its token was
                # popped when it became special): no heap cleanup
                n_alive[sc] -= 1
                np_copyto(special, -1, where=sp)
        elif nh == n_cells:
            # every cell renews its copy period (charge the closed one)
            clear = np_eq(special, j, out=b_clear)
            s_ = np_min2(start[j], t_m, out=f1)
            charge = np_sub(e_t, s_, out=f2)
            if not unit_rate:
                np_mul(charge, rate, out=charge)
            np_add(storage, charge, out=storage)
            start[j].fill(t)
            np_copyto(special, -1, where=clear)
        else:
            miss = np_not(has, out=b_miss)
            src = alive.argmax(axis=0, out=i_src)
            sp = np_eq(special, src, out=b_sp)
            np_and(sp, miss, out=sp)       # drop the special source
            clear = np_eq(special, j, out=b_clear)
            np_and(clear, has, out=clear)  # a renewed special copy
            s_ = np_min2(start[j], t_m, out=f1)
            charge = np_sub(e_t, s_, out=f2)
            if not unit_rate:
                np_mul(charge, rate, out=charge)
            np_mul(charge, has, out=charge)    # mask misses to +0.0
            np_add(storage, charge, out=storage)
            # writes (scalar order: create/renew seg[j], clear specials,
            # then drop a charged special source — lines 15-19)
            start[j].fill(t)
            alive[j].fill(True)
            np_copyto(order[j], i + 1, where=miss)  # renew keeps order
            np_add(ints, miss, out=ints)   # n_alive and n_tx together
            if sp.any():
                np.logical_or(clear, sp, out=clear)
                sc = sp.nonzero()[0]
                ss = src[sc]
                s2 = np_min2(start[ss, sc], t_m)
                if unit_rate:
                    storage[sc] += e_t - s2
                else:
                    storage[sc] += (e_t - s2) * rate
                alive[ss, sc] = False
                n_alive[sc] -= 1
            np_copyto(special, -1, where=clear)
        due[j, :] = sched[i]

    if drain:
        # mirror _drain_expiries: every remaining entry is delivered in
        # heap order up to the per-cell event cap (Algorithm 1 never
        # reschedules during expiry, so at most n entries fire per cell,
        # far below the default 4n + 16)
        cap = drain_event_cap if drain_event_cap is not None else 4 * n + 16
        expire(all_cols, inf, max_rounds=cap)

    # finalize: charge live copies in per-cell dict insertion order
    ord_live = np.where(alive, order, _NO_ORDER)
    for _ in range(n):
        w = ord_live.min(axis=0)
        fc = np.nonzero(w < _NO_ORDER)[0]
        if not fc.size:
            break
        fs = ord_live[:, fc].argmin(axis=0)
        s_ = np.minimum(start[fs, fc], t_m)
        storage[fc] += (t_m - s_) * rate
        ord_live[fs, fc] = _NO_ORDER

    # the scalar path accumulates `transfer += lam` once per transfer;
    # ufunc.accumulate performs the identical left-to-right additions,
    # so indexing the partial-sum sequence by each cell's transfer count
    # reproduces the repeated-addition ledger bit for bit
    max_tx = int(n_tx.max()) if n_cells else 0
    partial = np.zeros(max_tx + 1)
    if max_tx:
        np.add.accumulate(np.full(max_tx, lam), out=partial[1:])
    transfer = partial[n_tx]
    return storage, transfer, n_tx


#: a slab cell: ``(alpha, accuracy, seed)`` — the grid axes that share
#: one ``(trace, lambda)``
SlabCell = tuple[float, float, int]

#: the sweep-layer factory signature: (trace, lam, alpha, accuracy, seed)
SlabFactory = Callable[[Trace, float, float, float, int], ReplicationPolicy]


class BatchCostEngine(Engine):
    """Cost-only slab replay: every cell of ``(alpha x accuracy x seed)``
    sharing one ``(trace, lambda)`` in a single vectorized trace pass.

    See the module DESIGN docstring for the bit-identity argument.  The
    scalar :meth:`run` interface executes a one-column slab, so the
    engine is a drop-in anywhere a name from :data:`ENGINE_NAMES` is
    accepted; the throughput win comes from :meth:`run_slab`.
    """

    name = "batch"

    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        # cell-wise eligibility is exactly the fast path's
        return _ENGINES["fast"].supports(trace, model, policy)

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ) -> CostResult:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication

        if model.n != trace.n:
            raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
        kind = type(policy)
        if kind is WangReplication:
            storage, transfer, n_transfers = _fast_wang(
                trace, model, drain, drain_event_cap
            )
        elif kind in (ConventionalReplication, LearningAugmentedReplication):
            if not model.uniform_storage:
                raise PolicyError(
                    "Algorithm 1 assumes uniform storage rates (paper Section 2)"
                )
            stream = FastCostEngine._stream_for(policy, trace, model)
            if stream is None:
                raise EngineError(
                    f"BatchCostEngine cannot stream predictor "
                    f"{policy.predictor.name!r}; use the reference engine"
                )
            s_arr, t_arr, x_arr = _batch_algorithm1(
                trace,
                model,
                np.array([policy.alpha]),
                stream.within[:, None],
                drain,
                drain_event_cap,
            )
            storage = float(s_arr[0])
            transfer = float(t_arr[0])
            n_transfers = int(x_arr[0])
        else:
            raise EngineError(
                f"BatchCostEngine does not support {kind.__name__}; "
                "use the reference engine"
            )
        return CostResult(
            trace=trace,
            model=model,
            policy_name=policy.name,
            storage_cost=storage,
            transfer_cost=transfer,
            n_transfers=n_transfers,
            engine="batch",
        )

    # ------------------------------------------------------------------
    def supports_slab(
        self,
        trace: Trace,
        model: CostModel,
        factory: SlabFactory,
        cells: Sequence[SlabCell],
    ) -> bool:
        """Whether :meth:`run_slab` can evaluate this whole slab in one
        vectorized pass (every cell's policy is the same fast-path
        eligible family with a streamable predictor)."""
        return self._slab_plan(trace, model, factory, cells) is not None

    def run_slab(
        self,
        trace: Trace,
        model: CostModel,
        factory: SlabFactory,
        cells: Sequence[SlabCell],
    ) -> list[CostResult]:
        """Evaluate every cell of a slab in one trace pass.

        Returns one :class:`CostResult` per cell, in cell order, each
        bit-identical to the fast engine's scalar replay of that cell.
        """
        plan = self._slab_plan(trace, model, factory, cells)
        if plan is None:
            raise EngineError(
                "BatchCostEngine cannot evaluate this slab in one pass; "
                "the module-level run_slab() dispatcher falls back to "
                "per-cell execution"
            )
        return self._run_plan(trace, model, plan)

    def _run_plan(self, trace: Trace, model: CostModel, plan) -> list[CostResult]:
        """Execute a slab plan produced by :meth:`_slab_plan` (split out
        so the module-level dispatcher classifies each slab only once)."""
        from ..algorithms.wang import WangReplication

        policies, preds = plan
        if type(policies[0]) is WangReplication:
            # prediction-free and alpha-free: one scalar replay serves
            # every cell of the slab
            storage, transfer, n_transfers = _fast_wang(trace, model, True, None)
            return [
                CostResult(
                    trace=trace,
                    model=model,
                    policy_name=p.name,
                    storage_cost=storage,
                    transfer_cost=transfer,
                    n_transfers=n_transfers,
                    engine="batch",
                )
                for p in policies
            ]
        from ..predictions.stream import PredictionStream

        matrix = PredictionStream.batch_for_predictors(preds, trace, model.lam)
        assert matrix is not None  # vetted by _slab_plan
        alphas = np.array([p.alpha for p in policies])
        storage, transfer, n_tx = _batch_algorithm1(
            trace, model, alphas, matrix, True, None
        )
        return [
            CostResult(
                trace=trace,
                model=model,
                policy_name=p.name,
                storage_cost=float(storage[c]),
                transfer_cost=float(transfer[c]),
                n_transfers=int(n_tx[c]),
                engine="batch",
            )
            for c, p in enumerate(policies)
        ]

    # ------------------------------------------------------------------
    def _slab_plan(
        self,
        trace: Trace,
        model: CostModel,
        factory: SlabFactory,
        cells: Sequence[SlabCell],
        policies: list[ReplicationPolicy] | None = None,
    ):
        """Classify a slab: ``(policies, predictors)`` when one vectorized
        pass can evaluate it, else None.

        ``predictors`` is the per-cell streamable predictor list (a
        constant "beyond" predictor stands in for the conventional
        baseline, whose own predictor is never consulted); for a Wang
        slab it is empty.  Pre-built ``policies`` (one per cell, never
        yet queried) may be passed to avoid re-invoking the factory.
        """
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication
        from ..predictions.oracle import FixedPredictor
        from ..predictions.stream import PredictionStream

        if not cells or model.n != trace.n:
            return None
        if policies is None:
            policies = [
                factory(trace, model.lam, alpha, accuracy, seed)
                for alpha, accuracy, seed in cells
            ]
        kinds = {type(p) for p in policies}
        if kinds == {WangReplication}:
            return (policies, []) if _wang_rates_ok(model) else None
        if not kinds <= {ConventionalReplication, LearningAugmentedReplication}:
            return None
        if not model.uniform_storage:
            return None
        preds = [
            FixedPredictor(False)
            if type(p) is ConventionalReplication
            else p.predictor
            for p in policies
        ]
        if not all(PredictionStream.supports_predictor(p, trace) for p in preds):
            return None
        return policies, preds


# ----------------------------------------------------------------------
# segment-scan kernel
#
# No per-request Python loop: per-request keep-durations come straight
# from the prediction columns, slot segments are recovered as per-server
# break masks, and the ledgers are reduced with sequential
# np.add.accumulate in the scalar engine's exact charge order (see the
# module DESIGN docstring for the derivation and bit-identity argument).
# ----------------------------------------------------------------------

_EMPTY_I = np.empty(0, dtype=np.int64)


class _SegmentChains:
    """Shared per-trace precompute for segment-scan replays.

    Holds the dummy-prefixed time/server columns, the per-server
    neighbour chains (one stable sort), and a memo of ``(t + duration,
    reach)`` arrays per distinct keep-duration, so a slab pays one
    ``searchsorted`` per duration rather than one per cell.

    Thread safety: one instance may be shared by the ``threads``
    backend's cell workers.  Every precomputed array is read-only after
    ``__init__``; the duration memo is guarded by a lock (reads stay
    lock-free — CPython dict gets are atomic — and a duplicate
    ``_Shift`` built in a race is simply discarded by ``setdefault``);
    the scratch workspace is thread-local, one per worker thread.
    """

    __slots__ = (
        "m", "m1", "n", "t_m", "t_all", "j_all", "order", "same",
        "succ", "prev", "prev_clip", "prev_ok", "lastq", "idx1",
        "arange0", "idx_dtype", "_shifts", "_shift_lock", "_tls",
        "_csr", "_wangs", "_wang_lock",
    )

    def __init__(self, trace: Trace):
        m = len(trace)
        self.m = m
        self.m1 = m + 1
        self.n = trace.n
        self.t_m = trace.span
        self.t_all = np.concatenate(([0.0], trace.times))
        self.j_all = np.concatenate(([0], trace.servers))
        # 32-bit index columns halve the bandwidth of the hot passes;
        # traces beyond 2^31 requests would fall back to 64-bit
        idx = np.int32 if self.m1 < np.iinfo(np.int32).max - 1 else np.int64
        self.idx_dtype = idx
        order = np.argsort(self.j_all, kind="stable")
        js = self.j_all[order]
        same = js[1:] == js[:-1]
        succ = np.full(self.m1, self.m1, dtype=idx)
        succ[order[:-1][same]] = order[1:][same]
        prev = np.full(self.m1, -1, dtype=idx)
        prev[order[1:][same]] = order[:-1][same]
        self.order = order
        self.same = same
        self.succ = succ
        self.prev = prev
        # request-side views of the predecessor chain (for i = 1..m):
        # whether a predecessor exists, and its index clipped for gathers
        self.prev_ok = prev[1:] >= 0
        self.prev_clip = np.maximum(prev[1:], 0)
        # the last request at each touched server (no local successor)
        self.lastq = np.flatnonzero(succ == self.m1).astype(idx)
        self.idx1 = np.arange(1, self.m1, dtype=idx)
        self.arange0 = np.arange(self.m1, dtype=idx)
        self._shifts: dict[float, _Shift] = {}
        self._shift_lock = threading.Lock()
        self._tls = threading.local()
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        self._wangs: dict[tuple, "_WangReplay"] = {}
        self._wang_lock = threading.Lock()

    def workspace(self) -> "_KernelWorkspace":
        """This thread's scratch workspace (created on first use).

        Thread-local so the ``threads`` backend can replay cells
        concurrently over one shared chains instance — the serial path
        still reuses a single workspace across the whole slab.
        """
        work = getattr(self._tls, "work", None)
        if work is None:
            work = _KernelWorkspace(self.m, self.idx_dtype)
            self._tls.work = work
        return work

    def shifted(self, duration: float) -> "_Shift":
        """The cell-invariant arrays for one keep-duration, memoised.

        A slab's cells share a handful of distinct durations (``lam``
        plus one ``alpha * lam`` per alpha — 12 for the fig25 grid's 121
        cells), so everything that depends only on ``(trace, duration)``
        is computed once per duration here rather than once per cell:
        the per-cell passes then combine two cached shifts through the
        prediction column and touch mostly boolean arrays and compact
        index subsets.
        """
        hit = self._shifts.get(duration)   # lock-free fast path
        if hit is None:
            new = _Shift(self, duration)   # built outside the lock
            with self._shift_lock:
                hit = self._shifts.setdefault(duration, new)
        return hit

    def server_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(offsets, requests)`` CSR of request indices grouped by
        server (ascending within each group) — the Wang machine's
        next-local-request lookups.  Idempotent, so a build race simply
        discards a duplicate."""
        csr = self._csr
        if csr is None:
            req = self.order.astype(np.int64)
            off = np.searchsorted(
                self.j_all[self.order], np.arange(self.n + 1)
            ).astype(np.int64)
            csr = (off, req)
            self._csr = csr
        return csr

    def wang(self, lam: float, rates: tuple) -> "_WangReplay":
        """The Wang-baseline replay bundle for one ``(lam, rates)``,
        memoised like the shifts: a fleet slab's equal-model Wang cells
        share one vectorized replay instead of one scalar pass each."""
        key = (lam, rates)
        hit = self._wangs.get(key)     # lock-free fast path
        if hit is None:
            new = _WangReplay(self, lam, rates)
            with self._wang_lock:
                hit = self._wangs.setdefault(key, new)
        return hit


class _Shift:
    """Per-``(trace, duration)`` arrays shared by every cell using the
    duration: a cell's expiry column is ``where(pred, shift_within,
    shift_beyond)`` picked entrywise from two of these bundles."""

    __slots__ = ("duration", "reach", "cover", "drop", "local_alive")

    def __init__(self, chains: _SegmentChains, duration: float):
        t_all, succ = chains.t_all, chains.succ
        self.duration = duration
        exp = t_all + duration
        # reach[q]: last request index with time <= t_q + duration (the
        # strict `when < t` expiry pop, as an index); non-decreasing in
        # q because the expiries are a constant shift of sorted times
        reach = (np.searchsorted(t_all, exp, side="right") - 1).astype(
            chains.idx_dtype
        )
        self.reach = reach
        # cover[q]: q keeps its server alive for requests in (q, cover]
        self.cover = np.minimum(succ, reach)
        # the segment is live when it expires, mid-trace
        self.drop = (succ > reach) & (reach < chains.m)
        # local_alive[i-1]: would request i renew its predecessor's copy
        # under this duration (reach[prev] >= i, i.e. succ[prev] <= reach)
        alive = succ <= reach
        self.local_alive = alive[chains.prev_clip]


class _KernelWorkspace:
    """Reusable full-width scratch arrays for one :class:`_SegmentChains`.

    A slab evaluates hundreds of cells over the same trace; without
    reuse every cell would allocate (and page-fault) trace-length
    arrays, which at a million requests costs more than the arithmetic.
    Not thread-safe — one workspace per replay stream, which
    :meth:`_SegmentChains.workspace` enforces by keeping one instance
    per worker thread.
    """

    __slots__ = ("cover", "vals", "serve_cum", "dropped", "b_m1", "die", "L")

    def __init__(self, m: int, idx_dtype: type):
        m1 = m + 1
        self.vals = np.empty(m1)
        self.cover = np.empty(m1, dtype=idx_dtype)
        self.serve_cum = np.empty(m1, dtype=np.int64)
        self.dropped = np.empty(m1, dtype=bool)
        self.b_m1 = np.empty(m1, dtype=bool)
        self.die = np.empty(m, dtype=bool)
        self.L = np.empty(m, dtype=bool)


def _merge_by_expiry(
    chains: _SegmentChains,
    mask: np.ndarray,
    pred: np.ndarray,
    dur_within: float,
    dur_beyond: float,
    ws: "_KernelWorkspace",
    prims: KernelPrimitives = NUMPY_PRIMS,
) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, expiries)`` of ``mask`` in ``(E, server)`` order —
    the expiry heap's pop order.

    Each prediction branch's expiries are a constant shift of the
    strictly increasing request times, so the masked subset of either
    branch is already sorted: the ``(E, server)`` order is a two-stream
    merge, computed on the subsets (the full expiry column is never
    materialised).  The backend's ``merge_interleave`` primitive does
    the interleave (numpy: two ``searchsorted`` passes; numba: a
    compiled two-pointer loop); the server tie-break can only matter
    *across* streams, so any primitive reports cross-stream expiry ties
    by returning ``None`` and the rare tied instances fall back to a
    lexsort here.
    """
    t_all, j_all = chains.t_all, chains.j_all
    tmp = np.logical_and(mask, pred, out=ws.b_m1)
    dw = np.flatnonzero(tmp)
    np.logical_xor(mask, tmp, out=tmp)       # mask & ~pred
    db = np.flatnonzero(tmp)
    # the same scalar IEEE add as schedule(j, t + duration), per subset
    ew = t_all[dw] + dur_within
    eb = t_all[db] + dur_beyond
    if not db.size:
        return dw, ew
    if not dw.size:
        return db, eb
    merged = prims.merge_interleave(dw, ew, db, eb)
    if merged is not None:
        return merged
    mi = np.flatnonzero(mask)
    emi = t_all[mi] + np.where(pred[mi], dur_within, dur_beyond)
    order = np.lexsort((j_all[mi], emi))
    return mi[order], emi[order]


def _resolve_specials(
    chains: _SegmentChains,
    sw: _Shift,
    sb: _Shift,
    pred: np.ndarray,
    die_pos: np.ndarray,
    dur_within: float,
    dur_beyond: float,
) -> np.ndarray:
    """The special segment of each die-out group: the ``(E, server)``
    maximum among segments with ``reach == i - 1`` still current.

    Candidates are found per group without scanning the trace: each
    shift's ``reach`` column is non-decreasing, so the segments with a
    given reach form a contiguous range located by two integer
    ``searchsorted`` calls, filtered to the cell's prediction branch
    and to still-current segments (``succ > reach``).
    """
    t_all, j_all, succ = chains.t_all, chains.j_all, chains.succ
    dp = die_pos.astype(chains.idx_dtype)
    ki_parts = [_EMPTY_I]
    gi_parts = [_EMPTY_I]
    ei_parts = [np.empty(0)]
    for shift, dur, want in ((sw, dur_within, True), (sb, dur_beyond, False)):
        lo = np.searchsorted(shift.reach, dp, side="left")
        cnt = np.searchsorted(shift.reach, dp, side="right") - lo
        total = int(cnt.sum())
        if not total:
            continue
        k = np.repeat(lo - (np.cumsum(cnt) - cnt), cnt) + np.arange(total)
        g = np.repeat(die_pos, cnt)
        keep = (pred[k] == want) & (succ[k] > g)
        k, g = k[keep], g[keep]
        ki_parts.append(k)
        gi_parts.append(g)
        ei_parts.append(t_all[k] + dur)
    ki = np.concatenate(ki_parts)
    gi = np.concatenate(gi_parts)
    ei = np.concatenate(ei_parts)
    assert ki.size                  # request i-1 always qualifies
    order = np.lexsort((j_all[ki], ei, gi))
    ki, gi = ki[order], gi[order]
    last = np.empty(ki.size, dtype=bool)
    last[-1] = True
    np.not_equal(gi[1:], gi[:-1], out=last[:-1])
    spec = ki[last]
    # the segment of request i-1 is always a candidate, so every
    # die-out group resolved a special
    assert spec.size == die_pos.size
    return spec


def _tenure_starts(chains: _SegmentChains, miss_full: np.ndarray) -> np.ndarray:
    """For every request, the request index at which its server's
    current continuous tenure began (the latest transfer to it, or 0
    for server 0's initial copy) — a live copy's dict-insertion slot.

    One segmented ``maximum.accumulate`` along the shared per-server
    order: renewals inherit, misses reset.
    """
    so = chains.order
    grp_start = np.empty(so.size, dtype=bool)
    grp_start[0] = True
    np.logical_not(chains.same, out=grp_start[1:])
    gid = np.cumsum(grp_start) - 1
    vals = np.where(miss_full[so], so, -1)
    off = np.int64(chains.m1 + 1)
    run = np.maximum.accumulate(vals + gid * off) - gid * off
    tenure = np.empty(chains.m1, dtype=np.int64)
    tenure[so] = run
    return tenure


def _kernel_algorithm1(
    chains: _SegmentChains,
    rate: float,
    lam: float,
    alpha: float,
    pred: np.ndarray,
    drain: bool,
    drain_event_cap: int | None,
    prims: KernelPrimitives = NUMPY_PRIMS,
) -> tuple[float, float, int]:
    """Replay Algorithm 1 with pure array passes (no per-request loop).

    Returns ``(storage, transfer, n_transfers)`` bit-identical to
    ``_fast_algorithm1(trace, model, alpha, pred, drain,
    drain_event_cap)`` on the trace behind ``chains``.  See the module
    DESIGN docstring for the derivation.  ``prims`` supplies the
    order-sensitive reductions and the expiry merge — every registered
    implementation replays the exact IEEE op order, so the result does
    not depend on the backend (``core/backends.py``).
    """
    m, m1 = chains.m, chains.m1
    t_all, j_all = chains.t_all, chains.j_all
    t_m = chains.t_m
    pred = np.asarray(pred, dtype=bool)
    if pred.shape != (m1,):
        raise ValueError(
            f"prediction stream must have length m + 1 = {m1}, "
            f"got shape {pred.shape}"
        )
    dur_beyond = alpha * lam        # the scalar path's single multiply
    sw = chains.shifted(lam)
    sb = chains.shifted(dur_beyond)
    ws = chains.workspace()

    # die-out detection: request i finds every copy expired iff no
    # earlier segment covers it.  The per-duration cover columns are
    # cached on the shifts; the cell only selects and scans.
    cover = ws.cover
    np.copyto(cover, sb.cover)
    np.copyto(cover, sw.cover, where=pred)
    np.maximum.accumulate(cover, out=cover)
    die = np.less(cover[:-1], chains.idx1, out=ws.die)      # pos i-1 = req i
    die_pos = np.flatnonzero(die)

    # special copies: at die-out i the last segment to expire — the
    # (E, server) maximum among those with reach == i - 1 — stays live
    # and is resolved at request i itself (renewal or transfer + drop)
    spec_choice = _EMPTY_I
    if die_pos.size:
        spec_choice = _resolve_specials(
            chains, sw, sb, pred, die_pos, lam, dur_beyond
        )

    # renewal iff the previous local segment survives to the request
    # (the shifts' predecessor-alive columns, selected by the
    # *predecessor's* prediction) or the special copy is local
    L = ws.L
    np.copyto(L, sb.local_alive)
    np.copyto(L, sw.local_alive, where=pred[chains.prev_clip])
    np.logical_and(L, chains.prev_ok, out=L)
    n_renew = int(np.count_nonzero(L))
    if die_pos.size:
        spec_renew = j_all[die_pos + 1] == j_all[spec_choice]
        n_renew += int(np.count_nonzero(spec_renew))
    n_tx = m - n_renew

    # serve-phase charges (at most one per request): a renewal closes
    # the predecessor's segment, a die-out closes the special's
    serve_mask = np.logical_or(L, die, out=L)        # L is dead after this
    serve_pos = np.flatnonzero(serve_mask)   # ascending request order
    closed = chains.prev[1:][serve_pos]
    if die_pos.size:
        closed[np.searchsorted(serve_pos, die_pos)] = spec_choice

    # pop-phase drops: live segments expiring mid-trace, minus specials
    dropped = ws.dropped
    np.copyto(dropped, sb.drop)
    np.copyto(dropped, sw.drop, where=pred)
    if spec_choice.size:
        dropped[spec_choice] = False
    do, e_do = _merge_by_expiry(chains, dropped, pred, lam, dur_beyond, ws, prims)
    pop_ev = np.where(pred[do], sw.reach[do], sb.reach[do])
    pop_ev += 1                              # monotone: reach follows E

    # trailing segments (a subset of each server's last request): the
    # drain pops them in (E, server) order and the survivor finalizes
    # as the special; never-expiring copies (infinite expiry) skip the
    # drain and finalize in dict-insertion order, as do cap-stranded
    # copies
    lastq = chains.lastq
    pred_last = pred[lastq]
    r_last = np.where(pred_last, sw.reach[lastq], sb.reach[lastq])
    keep = r_last >= m
    ti = lastq[keep]
    e_ti = t_all[ti] + np.where(pred_last[keep], lam, dur_beyond)
    t_order = np.lexsort((j_all[ti], e_ti))  # at most one per server
    to = ti[t_order]
    finite_to = to[np.isfinite(e_ti[t_order])]
    inf_to = to[finite_to.size:]
    n_finite = finite_to.size
    cap = drain_event_cap if drain_event_cap is not None else 4 * chains.n + 16
    fired = min(cap, n_finite) if drain else 0
    if fired == n_finite and n_finite > 0 and not inf_to.size:
        drain_drop = finite_to[: n_finite - 1]
        finalize = finite_to[n_finite - 1 :]
    else:
        drain_drop = finite_to[:fired]
        finalize = np.concatenate((finite_to[fired:], inf_to))
        if finalize.size > 1:
            # rare (drain disabled, a binding event cap, or infinite
            # durations): order the finalize walk by dict insertion
            miss_full = np.empty(m1, dtype=bool)
            miss_full[0] = True              # the dummy creates at server 0
            np.logical_not(serve_mask, out=miss_full[1:])
            miss_full[1:][die_pos] = ~spec_renew if die_pos.size else False
            tenure = _tenure_starts(chains, miss_full)
            finalize = finalize[np.argsort(tenure[finalize], kind="stable")]

    # merge both charge sequences into the scalar accumulation order:
    # within an event, expiry pops precede the serve-step charge; the
    # drain pops (pseudo-event past every request) and then the finalize
    # walk occupy the final positions.  Both sequences are already
    # event-ordered, so their interleave needs only counting sums — a
    # cumulative count of serve events and one searchsorted over the
    # sorted pop events — not a comparison sort.
    n_pop = do.size
    n_drain = drain_drop.size
    n_fin = finalize.size
    n_serve = serve_pos.size
    # S[i] = number of serve charges with event <= i
    S = ws.serve_cum
    S[0] = 0
    np.cumsum(serve_mask, out=S[1:])
    sp1 = serve_pos + 1
    # serve charge position: rank + pops at this or an earlier event
    pos_srv = np.searchsorted(pop_ev, sp1.astype(pop_ev.dtype), side="right")
    np.add(pos_srv, chains.arange0[:n_serve], out=pos_srv)
    # pop charge position: rank + serves at earlier events
    np.subtract(pop_ev, 1, out=pop_ev)       # pop_ev is dead after this
    pos_pop = S[pop_ev]
    np.add(pos_pop, chains.arange0[:n_pop], out=pos_pop)

    # every segment is charged exactly once; each charge is the scalar
    # (end - start) * rate with end already clipped (mid-trace ends
    # precede t_m, drain/finalize end at t_m) and start a request time
    assert n_pop + n_serve + n_drain + n_fin == m1
    vals = ws.vals
    np.subtract(e_do, t_all[do], out=e_do)   # e_do is dead after this
    e_do *= rate
    vals[pos_pop] = e_do
    srv_end = t_all[sp1]
    srv_end -= t_all[closed]
    srv_end *= rate
    vals[pos_srv] = srv_end
    tail_q = np.concatenate((drain_drop, finalize))
    tail = (t_m - t_all[tail_q])
    tail *= rate
    vals[m1 - tail_q.size :] = tail
    # sequential accumulation == the scalar's ordered `storage += charge`
    # (prims.seq_sum is a strict left-to-right chain on every backend)
    storage = prims.seq_sum(vals)

    # repeated `transfer += lam`, as one sequential left-to-right chain
    transfer = prims.repeat_add(lam, n_tx)
    return storage, transfer, n_tx


class _WangReplay:
    """Per-``(trace, lam, rates)`` Wang-baseline precompute and replay.

    The cascade is state-dependent, but its *segment structure* is not:
    a copy only ever dies at its own pending expiry, so the baseline
    expiry column ``E[q] = t[q] + period[server(q)]`` and its
    ``searchsorted`` reach are exact (renewal iff the next local request
    lands inside them — no false positives, and false negatives only at
    the rare die-out extensions).  Coverage *counts* at every candidate
    expiry then come from pure counting sums — segments started minus
    renewal-closed minus expiry-closed — because cascade extensions only
    ever add coverage, a candidate with a positive baseline count drops
    unconditionally.  Only candidates whose baseline count is zero (die
    outs) go through the sequential episode machine
    (``prims.wang_cascade``), which tracks the single injected extension
    a cascade can keep alive at a time.  See the module DESIGN docstring
    for the bit-identity argument.
    """

    __slots__ = (
        "chains", "lam", "rates_arr", "periods", "req_renew", "r_cum",
        "cand_e", "cand_srv", "cand_ev", "cand_start", "trig_pos",
        "tail_when", "tail_srv", "tail_start", "_results", "_lock",
    )

    def __init__(self, chains: _SegmentChains, lam: float, rates: tuple):
        m, m1 = chains.m, chains.m1
        t_all, j_all, succ = chains.t_all, chains.j_all, chains.succ
        self.chains = chains
        self.lam = lam
        self.rates_arr = np.asarray(rates, dtype=np.float64)
        # the scalar path's per-server divisions, one by one
        periods = np.array([lam / r for r in rates], dtype=np.float64)
        self.periods = periods
        # the exact IEEE add behind schedule(j, t + periods[j]); the
        # dummy's 0.0 + p_0 is bitwise p_0, matching schedule(0, p_0)
        E = t_all + periods[j_all]
        reach = np.searchsorted(t_all, E, side="right") - 1
        renew = succ <= reach
        req_renew = np.zeros(m1, dtype=bool)
        np.logical_and(renew[chains.prev_clip], chains.prev_ok,
                       out=req_renew[1:])
        self.req_renew = req_renew
        self.r_cum = np.cumsum(req_renew)
        # mid-trace expiry fires in (E, server) order — the heap's pop
        # order (per-server streams are sorted, ties break by server)
        ci = np.flatnonzero(~renew & (reach < m))
        oc = np.lexsort((j_all[ci], E[ci]))
        cand = ci[oc]
        self.cand_e = E[cand]
        self.cand_srv = j_all[cand].astype(np.int64)
        self.cand_ev = reach[cand].astype(np.int64) + 1
        self.cand_start = t_all[cand]
        # baseline copies alive at each fire, *excluding* the firing
        # copy: segments started before the pop event, minus renewal
        # closes, minus the earlier fires (each ended a segment — a die
        # out's extension is accounted by the episode machine)
        cnt = (
            self.cand_ev
            - self.r_cum[self.cand_ev - 1]
            - np.arange(cand.size, dtype=np.int64)
            - 1
        )
        assert cnt.size == 0 or cnt.min() >= 0
        self.trig_pos = np.flatnonzero(cnt == 0)
        # pending expiries that outlive the last request (one per
        # server: non-last segments with reach >= m would be renewals)
        lastq = chains.lastq
        tl = lastq[reach[lastq] >= m]
        tl = tl[np.lexsort((j_all[tl], E[tl]))]
        self.tail_when = E[tl]
        self.tail_srv = j_all[tl].astype(np.int64)
        self.tail_start = t_all[tl]
        self._results: dict[tuple, tuple[float, float, int]] = {}
        self._lock = threading.Lock()

    def result(
        self, drain: bool, cap: int | None, prims: KernelPrimitives
    ) -> tuple[float, float, int]:
        """Memoised replay: Wang is prediction- and alpha-free, so every
        same-model cell of a slab shares one replay (results are
        backend-invariant by the primitives contract)."""
        key = (bool(drain), cap)
        hit = self._results.get(key)
        if hit is None:
            new = self._replay(drain, cap, prims)
            with self._lock:
                hit = self._results.setdefault(key, new)
        return hit

    def _replay(
        self, drain: bool, cap: int | None, prims: KernelPrimitives
    ) -> tuple[float, float, int]:
        chains = self.chains
        m, m1, t_m = chains.m, chains.m1, chains.t_m
        t_all, j_all = chains.t_all, chains.j_all
        rates = self.rates_arr
        srv_off, srv_req = chains.server_csr()
        cap_v = cap if cap is not None else 4 * chains.n + 16
        (
            suppress,
            ep_when, ep_srv, ep_start, ep_ev,
            flip_req, flip_start,
            n_tx_casc,
            dr_when, dr_srv, dr_start,
            fin_srv, fin_start, fin_kind, fin_ev,
        ) = prims.wang_cascade(
            t_all, self.periods,
            self.cand_e, self.cand_srv, self.cand_ev, self.cand_start,
            self.trig_pos, srv_off, srv_req, self.r_cum,
            self.tail_when, self.tail_srv, self.tail_start,
            m, bool(drain), int(cap_v),
        )

        # pop-phase charges: every fire drops except the suppressed
        # die-out triggers; episode charges (cascade transfer drops and
        # injected-extension drops) interleave by (when, server)
        keep = np.ones(self.cand_e.size, dtype=bool)
        keep[self.trig_pos[suppress]] = False
        pw = self.cand_e[keep]
        ps = self.cand_srv[keep]
        pst = self.cand_start[keep]
        pev = self.cand_ev[keep]
        if ep_when.size:
            pw = np.concatenate((pw, ep_when))
            ps = np.concatenate((ps, ep_srv))
            pst = np.concatenate((pst, ep_start))
            pev = np.concatenate((pev, ep_ev))
            o = np.lexsort((ps, pw))
            pw, ps, pst, pev = pw[o], ps[o], pst[o], pev[o]

        # serve-phase charges: baseline renewals plus the machine's
        # miss->renewal flips (a die-out extension served locally); a
        # flip's closed segment starts where the extension started
        serve_mask = self.req_renew
        if flip_req.size:
            serve_mask = serve_mask.copy()
            serve_mask[flip_req] = True
        serve_pos = np.flatnonzero(serve_mask)
        start_srv = t_all[chains.prev[serve_pos]]
        if flip_req.size:
            start_srv[np.searchsorted(serve_pos, flip_req)] = flip_start

        # the same counting interleave as _kernel_algorithm1: within an
        # event, pops precede the serve charge; drain then finalize last
        S = np.cumsum(serve_mask)
        n_pop = pw.size
        n_srv = serve_pos.size
        pos_pop = S[pev - 1] + np.arange(n_pop, dtype=np.int64)
        pos_srv = np.searchsorted(pev, serve_pos, side="right") + np.arange(
            n_srv, dtype=np.int64
        )

        # finalize walk in dict-insertion order: a live copy sits at the
        # slot of its creating event — the server's last true miss, a
        # mid-trace cascade create's pop phase, or a drain create
        n_fin = fin_srv.size
        if n_fin:
            miss = np.logical_not(serve_mask)
            miss[0] = True                 # the dummy creates at server 0
            ords = np.empty(n_fin, dtype=np.int64)
            for k in range(n_fin):
                kind = fin_kind[k]
                if kind == 0:
                    rk = srv_req[srv_off[fin_srv[k]]:srv_off[fin_srv[k] + 1]]
                    mk = np.flatnonzero(miss[rk])
                    ords[k] = 2 * rk[mk[-1]] + 1
                elif kind == 1:
                    ords[k] = 2 * fin_ev[k]
                else:
                    ords[k] = 2 * (m + 2) + fin_ev[k]
            fo = np.argsort(ords, kind="stable")
            fin_srv = fin_srv[fo]
            fin_start = fin_start[fo]

        # every slot interval is charged exactly once: m + 1 creates-or-
        # renewals plus one extra interval per cascade create at server 0
        n_dr = dr_when.size
        total = n_pop + n_srv + n_dr + n_fin
        assert total == m1 + n_tx_casc
        vals = np.empty(total)
        vals[pos_pop] = (pw - pst) * rates[ps]
        vals[pos_srv] = (t_all[serve_pos] - start_srv) * rates[
            j_all[serve_pos]
        ]
        if n_dr:
            vals[n_pop + n_srv : n_pop + n_srv + n_dr] = (
                np.minimum(dr_when, t_m) - np.minimum(dr_start, t_m)
            ) * rates[dr_srv]
        if n_fin:
            vals[total - n_fin :] = (t_m - np.minimum(fin_start, t_m)) * rates[
                fin_srv
            ]
        storage = prims.seq_sum(vals)
        # transfers: one lam per true miss plus one per cascade ship —
        # identical addends, so one left-to-right chain matches any
        # chronological interleave bit for bit
        n_tx = (m - n_srv) + int(n_tx_casc)
        transfer = prims.repeat_add(self.lam, n_tx)
        return storage, transfer, n_tx


def _kernel_wang(
    chains: _SegmentChains,
    model: CostModel,
    drain: bool,
    drain_event_cap: int | None,
    prims: KernelPrimitives = NUMPY_PRIMS,
) -> tuple[float, float, int]:
    """Replay the Wang et al. baseline with array passes plus the
    sequential episode machine; bit-identical to ``_fast_wang(trace,
    model, drain, drain_event_cap)`` on the trace behind ``chains``."""
    rates = tuple(float(r) for r in model.storage_rates)
    rep = chains.wang(float(model.lam), rates)
    return rep.result(drain, drain_event_cap, prims)


class KernelCostEngine(Engine):
    """Cost-only segment-scan replay: pure array passes, no per-request
    Python loop.

    Eligibility is exactly the fast path's: Algorithm 1 rides the
    segment scan of PR 5 and Wang's baseline rides the candidate-count
    formulation plus the sequential episode machine (see the module
    DESIGN docstring for both bit-identity arguments).  Costs are
    bit-identical to :class:`FastCostEngine` for every supported
    ``(policy, trace)``.  The scalar :meth:`run` interface evaluates one
    cell; :meth:`run_slab` shares the per-trace chains and per-duration
    reach arrays across a whole slab.

    ``backend`` picks the execution backend for the kernel passes
    (``core/backends.py``): ``None`` defers to the
    ``REPRO_KERNEL_BACKEND`` env override and then ``"auto"``, which
    fans wide slabs out across threads and (when importable) compiles
    the sequential reductions with numba.  Every backend is
    bit-identical — the per-cell IEEE op order never changes — so the
    choice is purely a throughput knob.
    """

    name = "kernel"

    def __init__(self, backend: "str | KernelBackend | None" = None):
        self.backend = backend

    def backend_for(self, n_cells: int, m: int) -> KernelBackend:
        """The concrete backend this engine would use for a slab."""
        return get_backend(self.backend).resolve(n_cells, m)

    def _span_tags(self, n_cells: int, m: int) -> dict:
        return {"backend": self.backend_for(n_cells, m).name}

    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication
        from ..predictions.stream import PredictionStream

        kind = type(policy)
        if kind is WangReplication:
            return _wang_rates_ok(model)
        if kind is ConventionalReplication:
            return model.uniform_storage
        if kind is LearningAugmentedReplication:
            if not model.uniform_storage:
                return False
            return PredictionStream.supports_predictor(policy.predictor, trace)
        return False

    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ) -> CostResult:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication

        if model.n != trace.n:
            raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
        kind = type(policy)
        if kind is WangReplication:
            if not _wang_rates_ok(model):
                raise PolicyError(
                    "WangReplication requires servers indexed by ascending "
                    "storage rate (mu(s_0) <= ... <= mu(s_{n-1}))"
                )
            chains = _SegmentChains(trace)
            storage, transfer, n_tx = _kernel_wang(
                chains,
                model,
                drain,
                drain_event_cap,
                self.backend_for(1, chains.m).prims(),
            )
            return CostResult(
                trace=trace,
                model=model,
                policy_name=policy.name,
                storage_cost=storage,
                transfer_cost=transfer,
                n_transfers=n_tx,
                engine="kernel",
            )
        if kind not in (ConventionalReplication, LearningAugmentedReplication):
            raise EngineError(
                f"KernelCostEngine does not support {kind.__name__}; "
                "use the fast or reference engine"
            )
        if not model.uniform_storage:
            raise PolicyError(
                "Algorithm 1 assumes uniform storage rates (paper Section 2)"
            )
        stream = FastCostEngine._stream_for(policy, trace, model)
        if stream is None:
            raise EngineError(
                f"KernelCostEngine cannot stream predictor "
                f"{policy.predictor.name!r}; use the reference engine"
            )
        chains = _SegmentChains(trace)
        storage, transfer, n_tx = _kernel_algorithm1(
            chains,
            model.storage_rates[0],
            model.lam,
            policy.alpha,
            stream.within,
            drain,
            drain_event_cap,
            self.backend_for(1, chains.m).prims(),
        )
        return CostResult(
            trace=trace,
            model=model,
            policy_name=policy.name,
            storage_cost=storage,
            transfer_cost=transfer,
            n_transfers=n_tx,
            engine="kernel",
        )

    # ------------------------------------------------------------------
    def supports_slab(
        self,
        trace: Trace,
        model: CostModel,
        factory: SlabFactory,
        cells: Sequence[SlabCell],
    ) -> bool:
        """Whether :meth:`run_slab` can evaluate this whole slab with
        shared segment chains (every cell kernel-eligible)."""
        return self._slab_plan(trace, model, factory, cells) is not None

    def run_slab(
        self,
        trace: Trace,
        model: CostModel,
        factory: SlabFactory,
        cells: Sequence[SlabCell],
    ) -> list[CostResult]:
        """Evaluate every cell of a slab over shared per-trace chains.

        Returns one :class:`CostResult` per cell, in cell order, each
        bit-identical to the fast engine's scalar replay of that cell.
        """
        plan = self._slab_plan(trace, model, factory, cells)
        if plan is None:
            raise EngineError(
                "KernelCostEngine cannot evaluate this slab; the "
                "module-level run_slab() dispatcher falls back to "
                "per-cell execution"
            )
        return self._run_plan(trace, model, plan)

    def _slab_plan(
        self,
        trace: Trace,
        model: CostModel,
        factory: SlabFactory,
        cells: Sequence[SlabCell],
        policies: list[ReplicationPolicy] | None = None,
    ):
        """A batch-tier slab plan: kernel eligibility is now exactly the
        batch tier's (Wang slabs carry no predictors and replay through
        the cascade kernel instead of the prediction matrix)."""
        return _ENGINES["batch"]._slab_plan(
            trace, model, factory, cells, policies=policies
        )

    def _run_plan(self, trace: Trace, model: CostModel, plan) -> list[CostResult]:
        from ..predictions.stream import PredictionStream

        policies, preds = plan
        chains = _SegmentChains(trace)
        backend = self.backend_for(len(policies), chains.m)
        prims = backend.prims()
        if not preds:
            # a Wang slab: prediction- and alpha-free, so one cascade
            # replay (memoised on the chains) serves every cell
            storage, transfer, n_tx = _kernel_wang(
                chains, model, True, None, prims
            )
            return [
                CostResult(
                    trace=trace,
                    model=model,
                    policy_name=p.name,
                    storage_cost=storage,
                    transfer_cost=transfer,
                    n_transfers=n_tx,
                    engine="kernel",
                )
                for p in policies
            ]
        matrix = PredictionStream.batch_for_predictors(
            preds, trace, model.lam, cell_major=True
        )
        assert matrix is not None  # vetted by _slab_plan
        rate = model.storage_rates[0]
        lam = model.lam

        def _one(c: int) -> tuple[float, float, int]:
            return _kernel_algorithm1(
                chains, rate, lam, policies[c].alpha, matrix[c], True, None, prims
            )

        # run_cells preserves cell-index order, so assembly below is
        # positionally identical to the serial loop
        tuples = backend.run_cells(len(policies), _one)
        return [
            CostResult(
                trace=trace,
                model=model,
                policy_name=p.name,
                storage_cost=storage,
                transfer_cost=transfer,
                n_transfers=n_tx,
                engine="kernel",
            )
            for p, (storage, transfer, n_tx) in zip(policies, tuples)
        ]


def run_slab(
    trace: Trace,
    model: CostModel,
    cells: Sequence[SlabCell],
    factory: SlabFactory,
    engine: str | Engine = "auto",
    backend: "str | KernelBackend | None" = None,
) -> list:
    """Evaluate a slab of grid cells sharing one ``(trace, lambda)``.

    ``cells`` is a sequence of ``(alpha, accuracy, seed)`` tuples and
    ``factory`` follows the sweep-layer policy-factory signature.  With
    ``engine`` ``"auto"``, ``"kernel"``, or ``"batch"`` the whole slab
    runs vectorized whenever every cell is eligible — ``"auto"``
    prefers the loop-free kernel above :data:`KERNEL_SLAB_MIN_M`
    requests (Wang slabs included, via the cascade kernel) and the
    batch engine's single shared trace pass below it; otherwise — a concrete engine
    was requested, or the slab mixes policy families — each cell runs
    through :func:`select_engine` individually.  ``backend`` picks the
    kernel tier's execution backend (``core/backends.py``; validated
    even when a non-kernel tier ends up running).  Per-cell costs are
    bit-identical across every path and every backend.
    """
    cells = list(cells)
    if backend is not None:
        get_backend(backend)    # strict: unknown names fail loudly
    if not cells:
        return []
    batch = _ENGINES["batch"]
    wants_slab = engine in ("auto", "batch", "kernel") or isinstance(
        engine, (BatchCostEngine, KernelCostEngine)
    )
    wants_kernel = engine == "kernel" or isinstance(engine, KernelCostEngine)
    # build each cell's policy exactly once: the plan classification and
    # the per-cell fallback below share them (predictors are lazy, so an
    # unqueried policy is indistinguishable from a fresh one)
    policies = [
        factory(trace, model.lam, alpha, accuracy, seed)
        for alpha, accuracy, seed in cells
    ]
    if wants_slab and len(cells) > 1:
        plan = batch._slab_plan(trace, model, factory, cells, policies=policies)
        if plan is not None:
            if wants_kernel or (
                engine == "auto" and len(trace) >= KERNEL_SLAB_MIN_M
            ):
                return _run_plan_observed("kernel", trace, model, plan, backend)
            return _run_plan_observed("batch", trace, model, plan)
    # per-cell fallback: "auto" keeps auto-selecting; a concrete engine
    # (including explicit "batch") stays strict and raises on policies it
    # cannot execute, exactly as the scalar paths do
    out = []
    for policy in policies:
        eng = select_engine(trace, model, policy, engine, backend=backend)
        out.append(eng.run_observed(trace, model, policy))
    return out


def _run_plan_observed(
    tier: str,
    trace: Trace,
    model: CostModel,
    plan,
    backend: "str | KernelBackend | None" = None,
) -> list:
    """Execute a slab plan under an ``engine.slab`` span tagged by tier
    (and, for the kernel tier, by the active execution backend)."""
    eng = get_engine(tier, backend=backend)
    if not _obs.enabled:
        return eng._run_plan(trace, model, plan)
    n_cells = len(plan[0])
    tags = eng._span_tags(n_cells, len(trace))
    with _obs.span("engine.slab", tier=tier, cells=n_cells, m=len(trace), **tags):
        out = eng._run_plan(trace, model, plan)
    _obs.counter("repro_engine_cells_total", tier=tier).inc(n_cells)
    return out


def run_policy_slab(
    trace: Trace,
    cells: Sequence[tuple[CostModel, ReplicationPolicy]],
    engine: str | Engine = "auto",
    backend: "str | KernelBackend | None" = None,
) -> list:
    """Evaluate pre-built ``(model, policy)`` cells sharing one trace.

    The fleet-facing sibling of :func:`run_slab`: a cross-object slab
    carries one *policy instance per object* and heterogeneous cost
    models — distinct per-object lambdas are allowed (every model must
    agree with ``trace.n``).  Slab-capable engines share the per-trace
    work across eligible cells:

    * the **kernel** tier builds one :class:`_SegmentChains` for the
      whole slab — per-duration shift columns and per-``(lam, rates)``
      Wang cascade replays are memoised on the chains, so cells with
      different lambdas still share the segment scan and mixed
      Algorithm-1 + Wang fleets run as one single-tier slab — plus one
      cell-major prediction matrix with per-lambda truth and per-seed
      draw memos (:meth:`PredictionStream.batch_for_cells`);
    * the **batch** tier groups cells by *equal* cost model and runs
      each group as one vectorized trace pass (Wang groups share one
      scalar replay, exactly as :func:`run_slab` does).

    Cells no slab tier can take fall back through :func:`select_engine`
    one at a time, so a concrete engine name stays strict (it raises on
    policies it cannot execute) while ``"auto"`` always completes.
    ``backend`` picks the kernel tier's execution backend
    (``core/backends.py``).  Per-cell costs are bit-identical to
    ``select_engine(trace, model, policy, engine).run_observed(trace,
    model, policy)`` on every path and every backend.
    """
    from ..algorithms.conventional import ConventionalReplication
    from ..algorithms.wang import WangReplication
    from ..predictions.oracle import FixedPredictor
    from ..predictions.stream import PredictionStream

    cells = list(cells)
    if backend is not None:
        get_backend(backend)    # strict: unknown names fail loudly
    if not cells:
        return []
    for model, _ in cells:
        if model.n != trace.n:
            raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
    results: list = [None] * len(cells)
    wants_slab = engine in ("auto", "batch", "kernel") or isinstance(
        engine, (BatchCostEngine, KernelCostEngine)
    )
    wants_kernel = engine == "kernel" or isinstance(engine, KernelCostEngine)
    if wants_slab and len(cells) > 1:
        kernel = _ENGINES["kernel"]
        # slab-eligible cells, split by replay shape: Algorithm-1 cells
        # share one cell-major prediction matrix, Wang cells share one
        # cascade replay per distinct (lam, rates) (memoised on the
        # chains) — both ride the same backend dispatch
        alg1: list[int] = []
        wangs: list[int] = []
        for i, (model, policy) in enumerate(cells):
            if kernel.supports(trace, model, policy):
                if type(policy) is WangReplication:
                    wangs.append(i)
                else:
                    alg1.append(i)
        use_kernel = wants_kernel or (
            engine == "auto" and len(trace) >= KERNEL_SLAB_MIN_M
        )
        n_units = len(alg1) + len(wangs)
        if use_kernel and n_units > 1:
            rows = None
            if alg1:
                rows = PredictionStream.batch_for_cells(
                    [
                        (
                            FixedPredictor(False)
                            if type(cells[i][1]) is ConventionalReplication
                            else cells[i][1].predictor,
                            cells[i][0].lam,
                        )
                        for i in alg1
                    ],
                    trace,
                )
                assert rows is not None  # supports() vetted streamability
            # a caller-supplied engine instance keeps its own backend
            # unless an explicit backend= overrides it
            if isinstance(engine, KernelCostEngine) and backend is None:
                kernel_eng = engine
            else:
                kernel_eng = get_engine("kernel", backend=backend)
            be = kernel_eng.backend_for(n_units, len(trace))
            prims = be.prims()

            def _kernel_slab() -> None:
                chains = _SegmentChains(trace)
                na = len(alg1)

                def _one(k: int) -> tuple[float, float, int]:
                    if k < na:
                        model, policy = cells[alg1[k]]
                        return _kernel_algorithm1(
                            chains,
                            model.storage_rates[0],
                            model.lam,
                            policy.alpha,
                            rows[k],
                            True,
                            None,
                            prims,
                        )
                    model, _ = cells[wangs[k - na]]
                    return _kernel_wang(chains, model, True, None, prims)

                tuples = be.run_cells(n_units, _one)
                for k, i in enumerate(alg1 + wangs):
                    model, policy = cells[i]
                    storage, transfer, n_tx = tuples[k]
                    results[i] = CostResult(
                        trace=trace,
                        model=model,
                        policy_name=policy.name,
                        storage_cost=storage,
                        transfer_cost=transfer,
                        n_transfers=n_tx,
                        engine="kernel",
                    )

            if _obs.enabled:
                with _obs.span(
                    "engine.slab",
                    tier="kernel",
                    cells=n_units,
                    m=len(trace),
                    backend=be.name,
                ):
                    _kernel_slab()
                _obs.counter("repro_engine_cells_total", tier="kernel").inc(
                    n_units
                )
            else:
                _kernel_slab()
        elif not wants_kernel:
            # batch tier: one vectorized pass per equal-model group
            by_model: dict[CostModel, list[int]] = {}
            for i in alg1:
                by_model.setdefault(cells[i][0], []).append(i)
            for model, idxs in by_model.items():
                if len(idxs) < 2:
                    continue
                policies = [cells[i][1] for i in idxs]
                preds = [
                    FixedPredictor(False)
                    if type(p) is ConventionalReplication
                    else p.predictor
                    for p in policies
                ]
                runs = _run_plan_observed(
                    "batch", trace, model, (policies, preds)
                )
                for i, r in zip(idxs, runs):
                    results[i] = r
        if not wants_kernel:
            # below the kernel crossover Wang cells ride the batch
            # tier's shared scalar replay (prediction- and alpha-free,
            # so one replay per model serves the group)
            by_model = {}
            for i, (model, policy) in enumerate(cells):
                if (
                    results[i] is None
                    and type(policy) is WangReplication
                    and _wang_rates_ok(model)
                ):
                    by_model.setdefault(model, []).append(i)
            for model, idxs in by_model.items():
                if len(idxs) < 2:
                    continue
                runs = _run_plan_observed(
                    "batch", trace, model, ([cells[i][1] for i in idxs], [])
                )
                for i, r in zip(idxs, runs):
                    results[i] = r
    # per-cell fallback: "auto" keeps auto-selecting; a concrete engine
    # stays strict, exactly as run_slab's fallback does
    for i, (model, policy) in enumerate(cells):
        if results[i] is None:
            eng = select_engine(trace, model, policy, engine, backend=backend)
            results[i] = eng.run_observed(trace, model, policy)
    return results


# ----------------------------------------------------------------------
# registry and selection
# ----------------------------------------------------------------------
_ENGINES: dict[str, Engine] = {
    "reference": ReferenceEngine(),
    "fast": FastCostEngine(),
    "batch": BatchCostEngine(),
    "kernel": KernelCostEngine(),
}

#: valid names for CLI flags and engine= parameters
ENGINE_NAMES: tuple[str, ...] = ("auto", "batch", "fast", "kernel", "reference")

#: measured auto-selection crossovers (benchmarks/bench_scaling.py, on
#: the ibm_like workload at lambda=10): the kernel's fixed array-pass
#: overhead loses to the fast engine's scalar loop on single cells only
#: below a few hundred requests, and to the batch engine's shared
#: per-slab trace pass below ~1k requests (0.6x at m=500, 1.5x by
#: m=1000, widening to >5x at a million requests)
KERNEL_MIN_M = 256
KERNEL_SLAB_MIN_M = 1_024

#: backend-configured kernel engine singletons, one per backend name
#: (``get_engine("kernel")`` without a backend keeps returning the
#: registry instance, preserving identity for selection tests and memos)
_KERNEL_VARIANTS: dict[str, KernelCostEngine] = {}


def _kernel_variant(backend: "str | KernelBackend") -> KernelCostEngine:
    name = get_backend(backend).name     # strict: validates the name
    eng = _KERNEL_VARIANTS.get(name)
    if eng is None:
        eng = _KERNEL_VARIANTS.setdefault(name, KernelCostEngine(backend=name))
    return eng


def get_engine(
    name: str | Engine, backend: "str | KernelBackend | None" = None
) -> Engine:
    """Resolve an engine instance from a name (``"fast"``/``"reference"``).

    ``backend`` configures the kernel tier's execution backend
    (``core/backends.py``); it is validated strictly but only takes
    effect when the resolved engine is the kernel — the other tiers
    have a single execution strategy.
    """
    if backend is not None:
        get_backend(backend)    # strict even when the engine ignores it
    if isinstance(name, Engine):
        return name
    try:
        eng = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(_ENGINES)} or 'auto'"
        ) from None
    if backend is not None and name == "kernel":
        return _kernel_variant(backend)
    return eng


def select_engine(
    trace: Trace,
    model: CostModel,
    policy: ReplicationPolicy,
    engine: str | Engine = "auto",
    slab_size: int = 1,
    backend: "str | KernelBackend | None" = None,
) -> Engine:
    """Pick the engine for one run (or one slab of runs).

    ``"auto"`` selects among the cost-only tiers for fast-path eligible
    policies — the segment-scan kernel for kernel-eligible runs above
    the measured crossover trace lengths (:data:`KERNEL_MIN_M` for
    single cells, :data:`KERNEL_SLAB_MIN_M` when the caller holds a slab
    of ``slab_size > 1`` cells sharing this ``(trace, lambda)``), the
    batch engine for shorter slabs, and the fast engine for shorter
    single runs — and the reference engine otherwise (see the module
    docstring).  A concrete name or :class:`Engine` instance is returned
    as-is — callers that need telemetry must pass ``"reference"``
    explicitly.  ``backend`` configures the kernel tier's execution
    backend whenever the kernel is the outcome (``core/backends.py``);
    the other tiers ignore it.
    """
    if backend is not None:
        get_backend(backend)    # strict even when the kernel loses
    if engine == "auto":
        fast = _ENGINES["fast"]
        if fast.supports(trace, model, policy):
            kernel = _ENGINES["kernel"]
            floor = KERNEL_SLAB_MIN_M if slab_size > 1 else KERNEL_MIN_M
            if len(trace) < floor:
                chosen = _ENGINES["batch"] if slab_size > 1 else fast
                reason = "below_kernel_crossover"
            elif kernel.supports(trace, model, policy):
                chosen, reason = kernel, "kernel_eligible"
                if backend is not None:
                    chosen = _kernel_variant(backend)
            else:
                # fast-path eligible but not kernel-eligible (no such
                # policy remains among the registered ones; kept for
                # engines registered out of tree)
                chosen = _ENGINES["batch"] if slab_size > 1 else fast
                reason = "kernel_ineligible"
        else:
            chosen, reason = _ENGINES["reference"], "fast_ineligible"
        if _obs.enabled:
            _obs.counter(
                "repro_engine_select_total", engine=chosen.name, reason=reason
            ).inc()
        return chosen
    return get_engine(engine, backend=backend)
