"""Tiered simulation engines: full-telemetry reference vs cost-only fast path.

DESIGN
======

Why two engines
---------------
The event-driven simulator (:func:`repro.core.simulator.simulate`) is the
semantic ground truth of this repository: it allocates an :class:`Event`
per state change, a :class:`ServeRecord` per request, and a
:class:`CopyRecord` per copy period, because the analysis layer (Section
4.1 cost allocation, validation, plotting) consumes all of that
telemetry.  The paper's evaluation grids, however, consume exactly one
scalar per cell — ``total_cost`` — so grid throughput was bounded by
bookkeeping the numbers never use.

This module splits the two concerns behind one interface:

* :class:`ReferenceEngine` — delegates to :func:`simulate` unchanged.
  Full telemetry, every policy, the only engine whose results carry
  event logs, serve records, copy records, and classifications.
* :class:`FastCostEngine` — replays the *same decision process* with
  slot-based scalar state: a dict of live copy segment starts, an expiry
  heap of plain tuples, and a precomputed
  :class:`~repro.predictions.stream.PredictionStream`.  No event log, no
  per-request dataclasses, no policy callbacks.  It returns a
  :class:`CostResult` carrying only the cost ledger totals.

Exact equivalence, not approximate
----------------------------------
The fast engine is written to mirror the reference engine's
*floating-point operation order*, not merely its semantics: storage is
charged at the same moments (renewal, drop, finalize) with the same
``(min(end, t_m) - min(start, t_m)) * rate`` expression, transfers are
accumulated by the same repeated additions of ``lambda``, expiries pop
in the same ``(time, server, token)`` heap order, and finalization walks
live copies in the same dict-insertion order as ``SimContext._holding``.
Noisy-oracle predictions are drawn as one batched ``random(m + 1)``
call, bit-identical to the incremental per-query draws.  Consequently
fast-engine costs are not just "within 1e-9" of the reference — they are
bit-identical on every instance, and the test suite pins both.

Which policies are fast-path eligible
-------------------------------------
A policy qualifies only if its decisions are a pure function of
``(trace, model, streamable predictions)``:

* :class:`LearningAugmentedReplication` (Algorithm 1) — eligible when
  its predictor is streamable (oracle / noisy oracle / adversarial
  built from the same trace, or a constant predictor).  Exact type
  only: subclasses may override behaviour.
* :class:`ConventionalReplication` — always eligible (``alpha = 1``
  makes predictions irrelevant).
* :class:`WangReplication` — always eligible (prediction-free).

Everything else falls back to the reference engine:

* :class:`AdaptiveReplication` monitors its own realized cost ratio and
  switches durations adaptively — its state depends on per-request
  telemetry the fast path does not materialise;
* history-based predictors (sliding window, Markov, EWMA, ensembles)
  learn from ``observe`` callbacks in arrival order;
* anything needing classifications, serve records, event logs, or copy
  records must use the reference engine — the fast path never produces
  telemetry, by construction.

``select_engine(trace, model, policy, "auto")`` encodes that rule: it
returns the fast engine iff :meth:`FastCostEngine.supports` holds, else
the reference engine.  ``sweep_grid`` and ``ExperimentRunner`` default
to ``"auto"`` because grid cells consume only costs;
``MultiObjectSystem.run`` defaults to ``"reference"`` because its
:class:`FleetReport` exposes full per-object results.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from dataclasses import dataclass

from .costs import CostModel
from .policy import PolicyError, ReplicationPolicy
from .simulator import SimulationResult, simulate
from .trace import Trace

__all__ = [
    "Engine",
    "EngineError",
    "ReferenceEngine",
    "FastCostEngine",
    "CostResult",
    "ENGINE_NAMES",
    "get_engine",
    "select_engine",
]


class EngineError(RuntimeError):
    """Raised when an engine is asked to run a policy it cannot handle."""


@dataclass(frozen=True)
class CostResult:
    """Cost-only outcome of a fast-engine run.

    Duck-compatible with :class:`~repro.core.simulator.SimulationResult`
    for every cost consumer (``total_cost`` / ``storage_cost`` /
    ``transfer_cost`` / ``policy_name`` / ``trace`` / ``model``); it
    deliberately has no event log, serves, or copy records.
    """

    trace: Trace
    model: CostModel
    policy_name: str
    storage_cost: float
    transfer_cost: float
    n_transfers: int
    engine: str = "fast"

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.transfer_cost


class Engine(abc.ABC):
    """A strategy for executing one policy over one trace."""

    name: str = "engine"

    @abc.abstractmethod
    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        """Whether :meth:`run` can execute this instance faithfully."""

    @abc.abstractmethod
    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ):
        """Execute ``policy`` over ``trace``; returns an object exposing
        ``total_cost`` / ``storage_cost`` / ``transfer_cost``."""


class ReferenceEngine(Engine):
    """The full-telemetry event-driven simulator (semantic ground truth)."""

    name = "reference"

    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        return True

    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ) -> SimulationResult:
        return simulate(
            trace, model, policy, drain=drain, drain_event_cap=drain_event_cap
        )


class FastCostEngine(Engine):
    """Cost-only replay of Algorithm 1 / conventional / Wang policies.

    See the module DESIGN docstring for eligibility rules and the
    bit-identical-cost argument.
    """

    name = "fast"

    # ------------------------------------------------------------------
    def supports(
        self, trace: Trace, model: CostModel, policy: ReplicationPolicy
    ) -> bool:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication
        from ..predictions.stream import PredictionStream

        kind = type(policy)
        if kind is WangReplication:
            return _wang_rates_ok(model)
        if kind is ConventionalReplication:
            return model.uniform_storage
        if kind is LearningAugmentedReplication:
            if not model.uniform_storage:
                return False
            # cheap type/provenance check; the stream itself is built
            # once, in run()
            return PredictionStream.supports_predictor(policy.predictor, trace)
        return False

    def run(
        self,
        trace: Trace,
        model: CostModel,
        policy: ReplicationPolicy,
        drain: bool = True,
        drain_event_cap: int | None = None,
    ) -> CostResult:
        from ..algorithms.conventional import ConventionalReplication
        from ..algorithms.learning_augmented import LearningAugmentedReplication
        from ..algorithms.wang import WangReplication

        if model.n != trace.n:
            raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
        kind = type(policy)
        if kind is WangReplication:
            storage, transfer, n_tx = _fast_wang(
                trace, model, drain, drain_event_cap
            )
        elif kind in (ConventionalReplication, LearningAugmentedReplication):
            if not model.uniform_storage:
                raise PolicyError(
                    "Algorithm 1 assumes uniform storage rates (paper Section 2)"
                )
            stream = self._stream_for(policy, trace, model)
            if stream is None:
                raise EngineError(
                    f"FastCostEngine cannot stream predictor "
                    f"{policy.predictor.name!r}; use the reference engine"
                )
            storage, transfer, n_tx = _fast_algorithm1(
                trace, model, policy.alpha, stream.within, drain, drain_event_cap
            )
        else:
            raise EngineError(
                f"FastCostEngine does not support {kind.__name__}; "
                "use the reference engine"
            )
        return CostResult(
            trace=trace,
            model=model,
            policy_name=policy.name,
            storage_cost=storage,
            transfer_cost=transfer,
            n_transfers=n_tx,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _stream_for(policy, trace: Trace, model: CostModel):
        from ..algorithms.conventional import ConventionalReplication
        from ..predictions.stream import PredictionStream

        if type(policy) is ConventionalReplication:
            # alpha = 1: both prediction branches choose duration lambda
            return PredictionStream.fixed(trace, False)
        return PredictionStream.for_predictor(policy.predictor, trace, model.lam)


def _wang_rates_ok(model: CostModel) -> bool:
    rates = model.storage_rates
    return all(rates[i] <= rates[i + 1] for i in range(len(rates) - 1))


# ----------------------------------------------------------------------
# slot-state replay kernels
#
# Both kernels mirror SimContext's ledger arithmetic exactly: the same
# charges in the same order with the same scalar expressions.  The
# machinery they share — expiry heap/token protocol, t_m-clipped storage
# charging, drain loop, finalize walk — lives in _slot_machinery and
# _drain_expiries so the two policy families can never drift apart; the
# seg dict mirrors SimContext._holding's insertion order (create
# appends, renew replaces in place, drop removes) so finalization walks
# live copies in the identical sequence.
# ----------------------------------------------------------------------


def _slot_machinery(t_m: float, rates):
    """Shared scalar state: live segments, storage accumulator, expiry heap.

    Returns ``(seg, acc, charge, schedule, pop_due, token)`` closures
    mirroring ``SimContext``'s ``_charge_storage`` clipping,
    ``schedule_expiry`` token replacement, and ``_pop_due_expiry`` lazy
    stale-entry deletion bit for bit.
    """
    seg: dict[int, float] = {}       # server -> live segment start
    acc = {"storage": 0.0}
    heap: list[tuple[float, int, int]] = []
    token: dict[int, int] = {}
    counter = itertools.count()

    def charge(server: int, start: float, end: float) -> None:
        s = start if start < t_m else t_m
        e = end if end < t_m else t_m
        if e > s:
            acc["storage"] += (e - s) * rates[server]

    def schedule(server: int, when: float) -> None:
        tok = next(counter)
        token[server] = tok
        heapq.heappush(heap, (when, server, tok))

    def pop_due(until: float, inclusive: bool):
        while heap:
            when, server, tok = heap[0]
            if token.get(server) != tok:
                heapq.heappop(heap)  # stale entry
                continue
            if when < until or (inclusive and when <= until):
                heapq.heappop(heap)
                token.pop(server, None)
                return when, server
            return None
        return None

    return seg, acc, charge, schedule, pop_due, token


def _drain_expiries(pop_due, expire, seg, n: int, drain_event_cap: int | None):
    """Deliver post-final-request expirations, mirroring simulate()'s
    drain loop (event cap, fired counting, inf guard)."""
    inf = float("inf")
    cap = drain_event_cap if drain_event_cap is not None else 4 * n + 16
    fired = 0
    while fired < cap:
        due = pop_due(inf, True)
        if due is None:
            break
        w, s = due
        if w == inf:
            continue
        if s in seg:
            expire(s, w)
        fired += 1


def _fast_algorithm1(
    trace: Trace,
    model: CostModel,
    alpha: float,
    within,
    drain: bool,
    drain_event_cap: int | None,
) -> tuple[float, float, int]:
    """Replay Algorithm 1 (lines 1-25) with scalar slot state."""
    lam = model.lam
    d_within = lam
    d_beyond = alpha * lam
    seg, acc, charge, schedule, pop_due, token = _slot_machinery(
        trace.span, model.storage_rates
    )
    special = -1                    # server holding the special copy, if any
    transfer = 0.0
    n_transfers = 0

    def expire(server: int, when: float) -> None:
        nonlocal special
        if len(seg) == 1:
            special = server  # lines 20-25: keep the last copy as special
        else:
            charge(server, seg.pop(server), when)

    # plain python lists: element access in the hot loop stays scalar
    pred = [bool(b) for b in within]
    times = trace.times.tolist()
    servers = trace.servers.tolist()

    # dummy request r_0: initial copy at server 0, duration from pred[0]
    seg[0] = 0.0
    schedule(0, d_within if pred[0] else d_beyond)

    for i in range(len(times)):
        t = times[i]
        j = servers[i]
        while True:
            due = pop_due(t, False)
            if due is None:
                break
            w, s = due
            if s in seg:
                expire(s, w)
        if j in seg:
            opened_now = False
        else:
            source = min(seg)
            transfer += lam
            n_transfers += 1
            src_special = special == source
            seg[j] = t                      # create at the destination
            if src_special:
                # lines 15-19: drop the special source after the transfer
                charge(source, seg.pop(source), t)
                token.pop(source, None)
                special = -1
            opened_now = True
        duration = d_within if pred[i + 1] else d_beyond
        if not opened_now:
            # local serve: renew the copy period (charge the closed one)
            charge(j, seg[j], t)
            seg[j] = t
            if special == j:
                special = -1
        schedule(j, t + duration)

    if drain:
        _drain_expiries(pop_due, expire, seg, trace.n, drain_event_cap)

    t_m = trace.span
    for s, start in seg.items():
        charge(s, start, t_m)
    return acc["storage"], transfer, n_transfers


def _fast_wang(
    trace: Trace,
    model: CostModel,
    drain: bool,
    drain_event_cap: int | None,
) -> tuple[float, float, int]:
    """Replay the Wang et al. baseline with scalar slot state."""
    rates = model.storage_rates
    if not _wang_rates_ok(model):
        raise PolicyError(
            "WangReplication requires servers indexed by ascending "
            "storage rate (mu(s_0) <= ... <= mu(s_{n-1}))"
        )
    lam = model.lam
    periods = [lam / r for r in rates]
    seg, acc, charge, schedule, pop_due, token = _slot_machinery(
        trace.span, rates
    )
    renewed_once: dict[int, bool] = {}
    transfer = 0.0
    n_transfers = 0

    def drop(server: int, when: float) -> None:
        charge(server, seg.pop(server), when)
        token.pop(server, None)

    def expire(server: int, when: float) -> None:
        nonlocal transfer, n_transfers
        only_copy = len(seg) == 1
        if server == 0:
            if only_copy:
                schedule(0, when + periods[0])
            else:
                drop(0, when)
            return
        if not only_copy:
            drop(server, when)
            return
        if not renewed_once.get(server, False):
            renewed_once[server] = True
            schedule(server, when + periods[server])
        else:
            # second consecutive expiry: ship the object to server 0
            transfer += lam
            n_transfers += 1
            seg[0] = when
            drop(server, when)
            renewed_once[server] = False
            schedule(0, when + periods[0])

    seg[0] = 0.0
    renewed_once[0] = False
    schedule(0, periods[0])

    times = trace.times.tolist()
    servers = trace.servers.tolist()
    for i in range(len(times)):
        t = times[i]
        j = servers[i]
        while True:
            due = pop_due(t, False)
            if due is None:
                break
            w, s = due
            if s in seg:
                expire(s, w)
        if j in seg:
            charge(j, seg[j], t)  # renew_copy closes the previous period
            seg[j] = t
        else:
            transfer += lam
            n_transfers += 1
            seg[j] = t
        renewed_once[j] = False
        schedule(j, t + periods[j])

    if drain:
        _drain_expiries(pop_due, expire, seg, trace.n, drain_event_cap)

    t_m = trace.span
    for s, start in seg.items():
        charge(s, start, t_m)
    return acc["storage"], transfer, n_transfers


# ----------------------------------------------------------------------
# registry and selection
# ----------------------------------------------------------------------
_ENGINES: dict[str, Engine] = {
    "reference": ReferenceEngine(),
    "fast": FastCostEngine(),
}

#: valid names for CLI flags and engine= parameters
ENGINE_NAMES: tuple[str, ...] = ("auto", "fast", "reference")


def get_engine(name: str | Engine) -> Engine:
    """Resolve an engine instance from a name (``"fast"``/``"reference"``)."""
    if isinstance(name, Engine):
        return name
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(_ENGINES)} or 'auto'"
        ) from None


def select_engine(
    trace: Trace,
    model: CostModel,
    policy: ReplicationPolicy,
    engine: str | Engine = "auto",
) -> Engine:
    """Pick the engine for one run.

    ``"auto"`` selects the fast cost-only engine whenever it supports the
    policy (see the module docstring), else the reference engine.  A
    concrete name or :class:`Engine` instance is returned as-is — callers
    that need telemetry must pass ``"reference"`` explicitly.
    """
    if engine == "auto":
        fast = _ENGINES["fast"]
        if fast.supports(trace, model, policy):
            return fast
        return _ENGINES["reference"]
    return get_engine(engine)
