"""Typed event log for replication simulations.

Every state change in the simulator is recorded as an :class:`Event` so
that tests can verify invariants (at-least-one-copy, storage integration,
transfer sourcing) *post hoc* without instrumenting algorithm internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EventKind", "Event", "EventLog"]


class EventKind(enum.Enum):
    """Kinds of simulation events."""

    REQUEST = "request"            # a request arises
    SERVE_LOCAL = "serve_local"    # request served by a local copy
    SERVE_TRANSFER = "serve_transfer"  # request served by an incoming transfer
    CREATE = "create"              # copy created at a server
    DROP = "drop"                  # copy dropped at a server
    EXPIRE = "expire"              # intended duration of a copy elapsed
    SPECIAL = "special"            # copy switched regular -> special (kept as last copy)
    RENEW = "renew"                # copy renewed with a new intended duration


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped simulation event.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        The :class:`EventKind`.
    server:
        Primary server involved (destination for transfers).
    source:
        Source server for ``SERVE_TRANSFER`` events, else ``-1``.
    request_index:
        Global index of the triggering request, ``-1`` if none.
    """

    time: float
    kind: EventKind
    server: int
    source: int = -1
    request_index: int = -1


@dataclass
class EventLog:
    """Append-only, time-ordered list of :class:`Event` records."""

    events: list[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        """Append an event; time must be non-decreasing."""
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"event log must be time-ordered: {event.time} < "
                f"{self.events[-1].time}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def copy_count_trajectory(self) -> list[tuple[float, int]]:
        """Reconstruct ``(time, #copies)`` after each create/drop event.

        Counts start at zero; the simulator logs an explicit CREATE for
        the initial copy at server 0, so full simulation logs begin with
        ``(0.0, 1)``.  Used by tests to verify the at-least-one-copy
        invariant independently of the simulator's own bookkeeping.
        """
        count = 0
        traj: list[tuple[float, int]] = []
        for e in self.events:
            if e.kind is EventKind.CREATE:
                count += 1
                traj.append((e.time, count))
            elif e.kind is EventKind.DROP:
                count -= 1
                traj.append((e.time, count))
        return traj

    def holdings_intervals(self) -> dict[int, list[tuple[float, float]]]:
        """Per-server closed intervals during which a copy was held.

        Reconstructed purely from CREATE/DROP events (simulation logs
        include the initial copy's CREATE at time 0).  A copy still held
        at the end of the log yields an interval closed at the last
        event time.
        """
        open_at: dict[int, float] = {}
        out: dict[int, list[tuple[float, float]]] = {}
        last_t = 0.0
        for e in self.events:
            last_t = max(last_t, e.time)
            if e.kind is EventKind.CREATE:
                if e.server in open_at:
                    raise ValueError(
                        f"CREATE at server {e.server} already holding a copy"
                    )
                open_at[e.server] = e.time
            elif e.kind is EventKind.DROP:
                if e.server not in open_at:
                    raise ValueError(
                        f"DROP at server {e.server} without a copy"
                    )
                out.setdefault(e.server, []).append((open_at.pop(e.server), e.time))
        for server, start in open_at.items():
            out.setdefault(server, []).append((start, last_t))
        return out

    def verify_at_least_one_copy(self) -> None:
        """Raise if the copy count ever reaches zero after the first
        creation (the at-least-one-copy invariant)."""
        for t, c in self.copy_count_trajectory():
            if c < 1:
                raise AssertionError(f"copy count dropped to {c} at time {t}")
