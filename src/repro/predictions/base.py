"""Predictor interface for binary inter-request-time predictions.

The paper's prediction model (Section 2): immediately after a request at
server ``s`` at time ``t``, a binary prediction states whether the *next*
request at ``s`` will arise within ``lambda`` time units of ``t``
(``True`` = within, the "no later than ``t + lambda``" branch of
Algorithm 1 line 10).

Predictors are queried exactly once per (server, request) pair, including
the dummy request ``r_0`` at server 0 / time 0.  Implementations must be
deterministic given their construction arguments (randomised predictors
take an explicit seed) so simulations are reproducible.
"""

from __future__ import annotations

import abc

__all__ = ["Predictor", "PredictionQuery"]


class PredictionQuery:
    """Value object describing one prediction request (for logging)."""

    __slots__ = ("server", "time", "lam")

    def __init__(self, server: int, time: float, lam: float):
        self.server = server
        self.time = time
        self.lam = lam

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PredictionQuery(server={self.server}, time={self.time}, lam={self.lam})"


class Predictor(abc.ABC):
    """Base class for binary inter-request-time predictors."""

    #: identifier used in reports
    name: str = "predictor"

    @abc.abstractmethod
    def predict_within(self, server: int, time: float, lam: float) -> bool:
        """Predict whether the next request at ``server`` arrives within
        ``lam`` time units after the request at ``time``.

        Parameters
        ----------
        server:
            The server whose next local request is being predicted.
        time:
            Arrival time of the request that just occurred at ``server``
            (``0.0`` for the dummy request at server 0).
        lam:
            The transfer cost / prediction horizon ``lambda``.
        """

    def observe(self, server: int, time: float) -> None:
        """Optional hook: learn from the request that just arrived.

        History-based predictors use this to update their state.  Called
        by the algorithms *before* :meth:`predict_within` for the same
        request.
        """
