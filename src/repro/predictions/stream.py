"""Precomputed prediction streams for the fast simulation engines.

The incremental predictors in :mod:`repro.predictions.oracle` answer one
query at a time (a bisect over per-server arrival times, plus a lazy RNG
draw for the noisy oracle).  The paper's algorithms consume predictions
in a rigid pattern — exactly one query per request, in global request
order, starting with the dummy request ``r_0`` — so the whole stream can
be materialised up front as a boolean array and indexed by
``request.index`` in O(1).

:class:`PredictionStream` does that materialisation with vectorized
numpy operations.  Two equivalence guarantees make it a drop-in for the
fast engine:

* the ground truth ``next_local_arrival <= t + lam`` is evaluated with
  the same scalar IEEE operations as the incremental ``bisect`` path;
* noisy-oracle correctness flips are drawn as one batched
  ``Generator.random(m + 1)`` call, which produces **bit-identical**
  doubles to ``m + 1`` successive ``Generator.random()`` calls from the
  same seed — the draw order of the incremental memoised path.

Streams cover the trace-backed predictor family (oracle, noisy oracle,
adversarial) plus constant predictions.  History-based predictors
(sliding window, Markov, EWMA, ensembles) observe requests one at a
time and are deliberately *not* streamable; policies using them fall
back to the reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import Trace
from .oracle import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
)

__all__ = ["PredictionStream", "truth_within_array"]


def truth_within_array(trace: Trace, lam: float) -> np.ndarray:
    """Vectorized ground truth for every prediction query of a run.

    Entry ``i`` answers the query issued immediately after request
    ``r_i`` (``i = 0`` is the dummy request at server 0, time 0): does
    the next request at the same server arrive within ``lam``?  Matches
    :func:`repro.predictions.oracle.ground_truth_within` query by query,
    including the "no further request means beyond" convention.
    """
    nxt = np.asarray(trace.next_local_time(), dtype=float)
    times = np.concatenate(([0.0], trace.times))
    # identical scalar comparison to the bisect path: times[i] <= time + lam
    return nxt <= times + lam


@dataclass(frozen=True)
class PredictionStream:
    """One boolean prediction per request index, precomputed.

    ``within[i]`` is the prediction consumed right after serving request
    ``r_i`` (index 0 = dummy request), i.e. the value the incremental
    predictor would return from ``predict_within(s_i, t_i, lam)``.
    """

    within: np.ndarray
    name: str = "stream"

    def __post_init__(self) -> None:
        # own copy: freezing an aliased caller array would make *their*
        # object read-only
        arr = np.array(self.within, dtype=bool)
        arr.flags.writeable = False
        object.__setattr__(self, "within", arr)

    def __len__(self) -> int:
        return len(self.within)

    def __getitem__(self, i: int) -> bool:
        return bool(self.within[i])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def oracle(cls, trace: Trace, lam: float) -> "PredictionStream":
        """Perfect predictions (matches :class:`OraclePredictor`)."""
        return cls(truth_within_array(trace, lam), name="oracle")

    @classmethod
    def noisy_oracle(
        cls, trace: Trace, lam: float, accuracy: float, seed: int = 0
    ) -> "PredictionStream":
        """Ground truth flipped with probability ``1 - accuracy``.

        Bit-identical to a fresh :class:`NoisyOraclePredictor` queried
        once per request in global order: the batched ``random(m + 1)``
        call consumes the PCG64 stream exactly as the incremental
        per-query ``random()`` calls do.
        """
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        truth = truth_within_array(trace, lam)
        rng = np.random.default_rng(seed)
        correct = rng.random(len(truth)) < accuracy
        return cls(
            np.where(correct, truth, ~truth),
            name=f"noisy-oracle(p={accuracy:g})",
        )

    @classmethod
    def adversarial(cls, trace: Trace, lam: float) -> "PredictionStream":
        """Always-wrong predictions (matches :class:`AdversarialPredictor`)."""
        return cls(~truth_within_array(trace, lam), name="adversarial")

    @classmethod
    def fixed(cls, trace: Trace, within: bool) -> "PredictionStream":
        """Constant predictions (matches :class:`FixedPredictor`)."""
        return cls(
            np.full(len(trace) + 1, bool(within)),
            name=f"fixed({'within' if within else 'beyond'})",
        )

    # ------------------------------------------------------------------
    @classmethod
    def supports_predictor(cls, predictor, trace: Trace) -> bool:
        """Whether :meth:`for_predictor` can stream ``predictor`` faithfully.

        Cheap (no arrays are built) — used by engine ``supports`` checks
        on every auto-selection.  False for unknown/history-based types,
        trace-backed predictors built from a *different* trace, and a
        noisy oracle that has already answered queries (its RNG position
        is no longer the fresh-seed state).
        """
        kind = type(predictor)
        if kind is FixedPredictor:
            return True
        if kind in (OraclePredictor, NoisyOraclePredictor, AdversarialPredictor):
            src = getattr(predictor, "_trace", None)
            if src is not trace and src != trace:
                return False
            if kind is NoisyOraclePredictor and predictor._memo:
                return False
            return True
        return False

    @classmethod
    def for_predictor(
        cls, predictor, trace: Trace, lam: float
    ) -> "PredictionStream | None":
        """The stream equivalent to ``predictor`` on ``trace``, or None
        when the predictor fails :meth:`supports_predictor`."""
        if not cls.supports_predictor(predictor, trace):
            return None
        kind = type(predictor)
        if kind is FixedPredictor:
            return cls.fixed(trace, predictor.within)
        if kind is OraclePredictor:
            return cls.oracle(trace, lam)
        if kind is AdversarialPredictor:
            return cls.adversarial(trace, lam)
        return cls.noisy_oracle(trace, lam, predictor.accuracy, predictor.seed)
