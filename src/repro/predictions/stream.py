"""Precomputed prediction streams for the fast simulation engines.

The incremental predictors in :mod:`repro.predictions.oracle` answer one
query at a time (a bisect over per-server arrival times, plus a lazy RNG
draw for the noisy oracle).  The paper's algorithms consume predictions
in a rigid pattern — exactly one query per request, in global request
order, starting with the dummy request ``r_0`` — so the whole stream can
be materialised up front as a boolean array and indexed by
``request.index`` in O(1).

:class:`PredictionStream` does that materialisation with vectorized
numpy operations.  Two equivalence guarantees make it a drop-in for the
fast engine:

* the ground truth ``next_local_arrival <= t + lam`` is evaluated with
  the same scalar IEEE operations as the incremental ``bisect`` path;
* noisy-oracle correctness flips are drawn as one batched
  ``Generator.random(m + 1)`` call, which produces **bit-identical**
  doubles to ``m + 1`` successive ``Generator.random()`` calls from the
  same seed — the draw order of the incremental memoised path.

Streams cover the trace-backed predictor family (oracle, noisy oracle,
adversarial) plus constant predictions.  History-based predictors
(sliding window, Markov, EWMA, ensembles) observe requests one at a
time and are deliberately *not* streamable; policies using them fall
back to the reference engine.

Batched streams
---------------
The batch engine evaluates a whole slab of grid cells in one trace
pass, so it consumes a *prediction matrix* rather than one stream:
:meth:`PredictionStream.batch` builds the ``(m + 1, n_cells)`` matrix
for the noisy-oracle family (one ``(accuracy, seed)`` pair per column)
and :meth:`PredictionStream.batch_for_predictors` does the same for an
arbitrary list of streamable predictors.  Both compute the ground truth
once and draw each seed's PCG64 stream once, shared across every column
using it — so column ``c`` is bit-identical to the scalar stream the
fast engine would build for that cell.
:meth:`PredictionStream.batch_for_cells` extends the same sharing to
cells with *heterogeneous* lambdas (per-object transfer costs in
cross-object fleet slabs): the ground truth is memoised per distinct
lambda, the per-seed draws stay shared fleet-wide.

Thread safety
-------------
The kernel tier's ``threads`` backend (``core/backends.py``) consumes
these streams from concurrent cell workers, which is safe by
construction: the per-lambda truth and per-seed draw memos in the batch
builders are *function-local* dicts — each call builds its own — and
every returned stream/matrix is fully written before the caller fans
cells out, after which the workers only read their own column.  Scalar
:class:`PredictionStream` instances additionally freeze their ``within``
array (``writeable = False``).  Keep it that way: a future cross-call
memo would need a lock or thread-local storage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import Trace
from .oracle import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
)

__all__ = ["PredictionStream", "truth_within_array"]


def truth_within_array(trace: Trace, lam: float) -> np.ndarray:
    """Vectorized ground truth for every prediction query of a run.

    Entry ``i`` answers the query issued immediately after request
    ``r_i`` (``i = 0`` is the dummy request at server 0, time 0): does
    the next request at the same server arrive within ``lam``?  Matches
    :func:`repro.predictions.oracle.ground_truth_within` query by query,
    including the "no further request means beyond" convention.
    """
    nxt = trace.next_local_time()  # float64 column, no conversion
    times = np.concatenate(([0.0], trace.times))
    # identical scalar comparison to the bisect path: times[i] <= time + lam
    return nxt <= times + lam


@dataclass(frozen=True)
class PredictionStream:
    """One boolean prediction per request index, precomputed.

    ``within[i]`` is the prediction consumed right after serving request
    ``r_i`` (index 0 = dummy request), i.e. the value the incremental
    predictor would return from ``predict_within(s_i, t_i, lam)``.
    """

    within: np.ndarray
    name: str = "stream"

    def __post_init__(self) -> None:
        # own copy: freezing an aliased caller array would make *their*
        # object read-only
        arr = np.array(self.within, dtype=bool)
        arr.flags.writeable = False
        object.__setattr__(self, "within", arr)

    def __len__(self) -> int:
        return len(self.within)

    def __getitem__(self, i: int) -> bool:
        return bool(self.within[i])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def oracle(cls, trace: Trace, lam: float) -> "PredictionStream":
        """Perfect predictions (matches :class:`OraclePredictor`)."""
        return cls(truth_within_array(trace, lam), name="oracle")

    @classmethod
    def noisy_oracle(
        cls, trace: Trace, lam: float, accuracy: float, seed: int = 0
    ) -> "PredictionStream":
        """Ground truth flipped with probability ``1 - accuracy``.

        Bit-identical to a fresh :class:`NoisyOraclePredictor` queried
        once per request in global order: the batched ``random(m + 1)``
        call consumes the PCG64 stream exactly as the incremental
        per-query ``random()`` calls do.
        """
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        truth = truth_within_array(trace, lam)
        rng = np.random.default_rng(seed)
        correct = rng.random(len(truth)) < accuracy
        return cls(
            np.where(correct, truth, ~truth),
            name=f"noisy-oracle(p={accuracy:g})",
        )

    @classmethod
    def adversarial(cls, trace: Trace, lam: float) -> "PredictionStream":
        """Always-wrong predictions (matches :class:`AdversarialPredictor`)."""
        return cls(~truth_within_array(trace, lam), name="adversarial")

    @classmethod
    def fixed(cls, trace: Trace, within: bool) -> "PredictionStream":
        """Constant predictions (matches :class:`FixedPredictor`)."""
        return cls(
            np.full(len(trace) + 1, bool(within)),
            name=f"fixed({'within' if within else 'beyond'})",
        )

    # ------------------------------------------------------------------
    # batched constructors (one column per grid cell)
    # ------------------------------------------------------------------
    @classmethod
    def batch(
        cls,
        trace: Trace,
        lam: float,
        accuracies,
        seeds,
    ) -> np.ndarray:
        """Noisy-oracle prediction matrix for a slab of grid cells.

        Returns a ``(len(trace) + 1, n_cells)`` boolean matrix whose
        column ``c`` equals ``noisy_oracle(trace, lam, accuracies[c],
        seeds[c]).within`` bit for bit (the oracle stream for
        ``accuracy == 1``, matching ``algorithm1_factory``'s predictor
        choice).  Delegates to :meth:`batch_for_predictors`, which
        computes the ground truth once and shares each distinct seed's
        batched RNG draw across every accuracy using it, so an
        ``n_cells``-wide slab costs one truth pass plus one
        ``random(m + 1)`` call per unique seed.
        """
        accuracies = list(accuracies)
        seeds = list(seeds)
        if len(accuracies) != len(seeds):
            raise ValueError(
                f"accuracies and seeds must align, got "
                f"{len(accuracies)} vs {len(seeds)}"
            )
        predictors = [
            OraclePredictor(trace)
            if acc == 1.0
            else NoisyOraclePredictor(trace, acc, seed=seed)
            for acc, seed in zip(accuracies, seeds)
        ]
        matrix = cls.batch_for_predictors(predictors, trace, lam)
        assert matrix is not None  # fresh trace-backed predictors stream
        return matrix

    @classmethod
    def batch_for_predictors(
        cls, predictors, trace: Trace, lam: float, cell_major: bool = False
    ) -> np.ndarray | None:
        """One prediction column per predictor, or None if any is not
        streamable on ``trace``.

        Columns are bit-identical to the per-predictor scalar streams
        (:meth:`for_predictor`), but the ground truth and per-seed RNG
        draws are computed once for the whole slab.

        ``cell_major=True`` returns the transposed ``(n_cells, m + 1)``
        layout instead — each cell's stream a contiguous row — which is
        what the kernel engine's per-cell replays consume; values are
        identical, only the memory layout differs.
        """
        if not all(cls.supports_predictor(p, trace) for p in predictors):
            return None
        m1 = len(trace) + 1
        if cell_major:
            out = np.empty((len(predictors), m1), dtype=bool)
            rows = out
        else:
            out = np.empty((m1, len(predictors)), dtype=bool)
            rows = out.T                       # row c views column c
        truth: np.ndarray | None = None
        draws: dict[int, np.ndarray] = {}
        for c, p in enumerate(predictors):
            kind = type(p)
            if kind is FixedPredictor:
                rows[c] = bool(p.within)
                continue
            if truth is None:
                truth = truth_within_array(trace, lam)
            if kind is OraclePredictor:
                rows[c] = truth
            elif kind is AdversarialPredictor:
                rows[c] = ~truth
            else:  # NoisyOraclePredictor (supports_predictor vetted types)
                if p.seed not in draws:
                    draws[p.seed] = np.random.default_rng(p.seed).random(m1)
                correct = draws[p.seed] < p.accuracy
                rows[c] = np.where(correct, truth, ~truth)
        return out

    @classmethod
    def batch_for_cells(cls, cells, trace: Trace) -> np.ndarray | None:
        """One contiguous prediction row per ``(predictor, lam)`` cell,
        or None if any predictor is not streamable on ``trace``.

        The fleet-facing sibling of :meth:`batch_for_predictors`: cells
        sharing a trace may carry *distinct* lambdas (per-object transfer
        costs), so the ground truth is memoised per lambda and each
        seed's PCG64 draw is still computed exactly once.  Row ``c`` is
        bit-identical to ``for_predictor(cells[c][0], trace,
        cells[c][1]).within`` — the scalar stream the fast engine would
        build for that cell.  The layout is cell-major (``(n_cells,
        m + 1)``), what the kernel engine's per-cell replays consume.
        """
        cells = list(cells)
        if not all(cls.supports_predictor(p, trace) for p, _ in cells):
            return None
        m1 = len(trace) + 1
        out = np.empty((len(cells), m1), dtype=bool)
        truths: dict[float, np.ndarray] = {}
        draws: dict[int, np.ndarray] = {}
        for c, (p, lam) in enumerate(cells):
            kind = type(p)
            if kind is FixedPredictor:
                out[c] = bool(p.within)
                continue
            truth = truths.get(lam)
            if truth is None:
                truth = truths[lam] = truth_within_array(trace, lam)
            if kind is OraclePredictor:
                out[c] = truth
            elif kind is AdversarialPredictor:
                out[c] = ~truth
            else:  # NoisyOraclePredictor (supports_predictor vetted types)
                if p.seed not in draws:
                    draws[p.seed] = np.random.default_rng(p.seed).random(m1)
                correct = draws[p.seed] < p.accuracy
                out[c] = np.where(correct, truth, ~truth)
        return out

    # ------------------------------------------------------------------
    @classmethod
    def supports_predictor(cls, predictor, trace: Trace) -> bool:
        """Whether :meth:`for_predictor` can stream ``predictor`` faithfully.

        Cheap (no arrays are built) — used by engine ``supports`` checks
        on every auto-selection.  False for unknown/history-based types,
        trace-backed predictors built from a *different* trace, and a
        noisy oracle that has already answered queries (its RNG position
        is no longer the fresh-seed state).
        """
        kind = type(predictor)
        if kind is FixedPredictor:
            return True
        if kind in (OraclePredictor, NoisyOraclePredictor, AdversarialPredictor):
            src = getattr(predictor, "_trace", None)
            if src is not trace and src != trace:
                return False
            if kind is NoisyOraclePredictor and predictor._memo:
                return False
            return True
        return False

    @classmethod
    def for_predictor(
        cls, predictor, trace: Trace, lam: float
    ) -> "PredictionStream | None":
        """The stream equivalent to ``predictor`` on ``trace``, or None
        when the predictor fails :meth:`supports_predictor`."""
        if not cls.supports_predictor(predictor, trace):
            return None
        kind = type(predictor)
        if kind is FixedPredictor:
            return cls.fixed(trace, predictor.within)
        if kind is OraclePredictor:
            return cls.oracle(trace, lam)
        if kind is AdversarialPredictor:
            return cls.adversarial(trace, lam)
        return cls.noisy_oracle(trace, lam, predictor.accuracy, predictor.seed)
