"""Measuring realized prediction accuracy on a trace.

The paper's misprediction analysis (Section 8) classifies mispredicted
requests into sets ``M1``, ``M2``, ``M3`` by the real inter-request time;
:func:`classify_mispredictions` reproduces that classification so the
bound (11) can be evaluated empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trace import Trace
from .base import Predictor
from .oracle import ground_truth_within

__all__ = [
    "PredictionOutcome",
    "evaluate_predictor",
    "classify_mispredictions",
    "MispredictionSets",
]


@dataclass(frozen=True)
class PredictionOutcome:
    """One prediction versus its ground truth.

    ``request_index`` is the index of the *later* request ``r_i`` whose
    preceding gap was predicted (the paper calls ``r_i`` mispredicted when
    the gap between ``r_{p(i)}`` and ``r_i`` was mispredicted).
    """

    request_index: int
    server: int
    issued_at: float
    predicted_within: bool
    truth_within: bool

    @property
    def correct(self) -> bool:
        return self.predicted_within == self.truth_within


def evaluate_predictor(
    trace: Trace, predictor: Predictor, lam: float
) -> list[PredictionOutcome]:
    """Replay ``trace`` through ``predictor`` and score each prediction.

    Mirrors exactly how the algorithms query predictors: one prediction
    immediately after every request (including the dummy ``r_0``), scored
    against the next local request.  Predictions whose ground truth gap
    never materialises (last request of a server) are scored against
    "beyond" and included, matching :func:`ground_truth_within`.
    """
    outcomes: list[PredictionOutcome] = []
    # map each request position to the index of the next local request
    nxt: dict[tuple[int, float], int] = {}
    last_pos: dict[int, tuple[int, float]] = {0: (0, 0.0)}
    for r in trace:
        if r.server in last_pos:
            _, prev_t = last_pos[r.server]
            nxt[(r.server, prev_t)] = r.index
        last_pos[r.server] = (r.index, r.time)

    predictor.observe(0, 0.0)
    pred = predictor.predict_within(0, 0.0, lam)
    truth = ground_truth_within(trace, 0, 0.0, lam)
    outcomes.append(
        PredictionOutcome(nxt.get((0, 0.0), -1), 0, 0.0, pred, truth)
    )
    for r in trace:
        predictor.observe(r.server, r.time)
        pred = predictor.predict_within(r.server, r.time, lam)
        truth = ground_truth_within(trace, r.server, r.time, lam)
        outcomes.append(
            PredictionOutcome(
                nxt.get((r.server, r.time), -1), r.server, r.time, pred, truth
            )
        )
    return outcomes


def realized_accuracy(outcomes: list[PredictionOutcome]) -> float:
    """Fraction of correct predictions (NaN for empty input)."""
    if not outcomes:
        return float("nan")
    return sum(1 for o in outcomes if o.correct) / len(outcomes)


@dataclass(frozen=True)
class MispredictionSets:
    """The paper's Section 8 partition of mispredicted requests.

    * ``m1``: real gap ``t_i - t_p(i) <= alpha * lambda`` (harmless);
    * ``m2``: ``alpha * lambda < gap <= lambda`` (penalty <= ``lambda``);
    * ``m3``: ``gap > lambda`` (penalty <= ``(2 - alpha) * lambda``).

    Request indices refer to the later request of each mispredicted gap.
    """

    m1: tuple[int, ...]
    m2: tuple[int, ...]
    m3: tuple[int, ...]

    def penalty_bound(self, lam: float, alpha: float) -> float:
        """Total online-cost increase bound from Section 8."""
        return lam * len(self.m2) + (2 - alpha) * lam * len(self.m3)


def classify_mispredictions(
    trace: Trace,
    outcomes: list[PredictionOutcome],
    lam: float,
    alpha: float,
) -> MispredictionSets:
    """Partition mispredicted requests into ``M1``, ``M2``, ``M3``.

    Only predictions that have a materialised later request are
    classified (the paper's sets are defined per mispredicted *request*).
    """
    gaps = trace.inter_request_gaps()
    m1: list[int] = []
    m2: list[int] = []
    m3: list[int] = []
    for o in outcomes:
        if o.correct or o.request_index < 1:
            continue
        gap = gaps[o.request_index - 1]
        if gap <= alpha * lam:
            m1.append(o.request_index)
        elif gap <= lam:
            m2.append(o.request_index)
        else:
            m3.append(o.request_index)
    return MispredictionSets(tuple(m1), tuple(m2), tuple(m3))
