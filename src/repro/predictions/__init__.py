"""Binary inter-request-time predictors (oracle, noisy, learned)."""

from .accuracy import (
    MispredictionSets,
    PredictionOutcome,
    classify_mispredictions,
    evaluate_predictor,
    realized_accuracy,
)
from .base import PredictionQuery, Predictor
from .ensemble import MajorityVotePredictor, WeightedMajorityPredictor
from .learned import (
    EwmaPredictor,
    LastGapPredictor,
    MarkovChainPredictor,
    SlidingWindowPredictor,
)
from .oracle import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    ground_truth_within,
)
from .stream import PredictionStream, truth_within_array

__all__ = [
    "Predictor",
    "PredictionQuery",
    "MajorityVotePredictor",
    "WeightedMajorityPredictor",
    "OraclePredictor",
    "NoisyOraclePredictor",
    "AdversarialPredictor",
    "FixedPredictor",
    "ground_truth_within",
    "PredictionStream",
    "truth_within_array",
    "EwmaPredictor",
    "LastGapPredictor",
    "SlidingWindowPredictor",
    "MarkovChainPredictor",
    "PredictionOutcome",
    "evaluate_predictor",
    "realized_accuracy",
    "MispredictionSets",
    "classify_mispredictions",
]
