"""History-based predictors.

The paper assumes predictions come from an external model ("based on the
request history or other features", Section 2).  These predictors build
that model online from the request history alone, giving realistic
imperfect predictions for the examples and benchmarks: no oracle access,
only what an online system could actually observe.
"""

from __future__ import annotations

from collections import deque

from .base import Predictor

__all__ = [
    "EwmaPredictor",
    "LastGapPredictor",
    "SlidingWindowPredictor",
    "MarkovChainPredictor",
]


class EwmaPredictor(Predictor):
    """Exponentially weighted moving average of local inter-request gaps.

    Predicts "within" when the EWMA gap estimate is at most ``lambda``.
    Servers with no observed gap yet fall back to ``default_within``.
    """

    def __init__(self, decay: float = 0.5, default_within: bool = False):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = float(decay)
        self.default_within = bool(default_within)
        self._last_time: dict[int, float] = {}
        self._ewma: dict[int, float] = {}
        self.name = f"ewma(decay={decay:g})"

    def observe(self, server: int, time: float) -> None:
        prev = self._last_time.get(server)
        if prev is not None:
            gap = time - prev
            old = self._ewma.get(server)
            self._ewma[server] = (
                gap if old is None else self.decay * gap + (1 - self.decay) * old
            )
        self._last_time[server] = time

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        est = self._ewma.get(server)
        if est is None:
            return self.default_within
        return est <= lam


class LastGapPredictor(Predictor):
    """Predicts the next gap equals the previous gap at the same server."""

    name = "last-gap"

    def __init__(self, default_within: bool = False):
        self.default_within = bool(default_within)
        self._last_time: dict[int, float] = {}
        self._last_gap: dict[int, float] = {}

    def observe(self, server: int, time: float) -> None:
        prev = self._last_time.get(server)
        if prev is not None:
            self._last_gap[server] = time - prev
        self._last_time[server] = time

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        gap = self._last_gap.get(server)
        if gap is None:
            return self.default_within
        return gap <= lam


class SlidingWindowPredictor(Predictor):
    """Majority vote over the last ``window`` observed gaps at the server.

    Predicts "within" when at least half the recent gaps were within
    ``lambda``.  More robust to single outliers than :class:`LastGapPredictor`.
    """

    def __init__(self, window: int = 5, default_within: bool = False):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.default_within = bool(default_within)
        self._last_time: dict[int, float] = {}
        self._gaps: dict[int, deque[float]] = {}
        self.name = f"sliding-window(w={window})"

    def observe(self, server: int, time: float) -> None:
        prev = self._last_time.get(server)
        if prev is not None:
            self._gaps.setdefault(server, deque(maxlen=self.window)).append(
                time - prev
            )
        self._last_time[server] = time

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        gaps = self._gaps.get(server)
        if not gaps:
            return self.default_within
        within = sum(1 for g in gaps if g <= lam)
        return within * 2 >= len(gaps)


class MarkovChainPredictor(Predictor):
    """Two-state Markov chain over the binary gap outcome per server.

    Tracks empirical transition counts between consecutive outcomes
    (within/beyond ``lambda``) and predicts the most likely successor of
    the last observed outcome.  Captures alternating burst/idle patterns
    that frequency-based predictors miss.
    """

    name = "markov"

    def __init__(self, default_within: bool = False, smoothing: float = 1.0):
        self.default_within = bool(default_within)
        self.smoothing = float(smoothing)
        self._last_time: dict[int, float] = {}
        self._last_outcome: dict[int, bool] = {}
        # counts[server][(prev_outcome, next_outcome)]
        self._counts: dict[int, dict[tuple[bool, bool], int]] = {}
        self._pending_lam: dict[int, float] = {}

    def observe(self, server: int, time: float) -> None:
        prev = self._last_time.get(server)
        lam = self._pending_lam.get(server)
        if prev is not None and lam is not None:
            outcome = (time - prev) <= lam
            last = self._last_outcome.get(server)
            if last is not None:
                tbl = self._counts.setdefault(server, {})
                key = (last, outcome)
                tbl[key] = tbl.get(key, 0) + 1
            self._last_outcome[server] = outcome
        self._last_time[server] = time

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        # remember the horizon so the next observe() can label this gap
        self._pending_lam[server] = lam
        last = self._last_outcome.get(server)
        if last is None:
            return self.default_within
        tbl = self._counts.get(server, {})
        p_within = tbl.get((last, True), 0) + self.smoothing
        p_beyond = tbl.get((last, False), 0) + self.smoothing
        if p_within == p_beyond:
            return last  # persistence prior: repeat the last outcome
        return p_within > p_beyond
