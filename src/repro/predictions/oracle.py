"""Oracle-derived predictors: perfect, noisy, adversarial, and fixed.

These predictors implement the paper's experimental setup (Appendix J):
"The predictions of inter-request times are randomly generated according
to the ground truth and a specified prediction accuracy."
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..core.trace import Trace
from .base import Predictor

__all__ = [
    "OraclePredictor",
    "NoisyOraclePredictor",
    "AdversarialPredictor",
    "FixedPredictor",
    "ground_truth_within",
]


def ground_truth_within(trace: Trace, server: int, time: float, lam: float) -> bool:
    """Ground truth of the binary prediction.

    True iff the next request at ``server`` strictly after ``time``
    arrives at or before ``time + lam``.  When no further request exists
    at the server, the truth is "beyond" (False), matching the intuition
    that an infinite gap exceeds ``lam``.
    """
    times = trace.per_server_times().get(server)
    if times is None or len(times) == 0:
        return False
    i = bisect_right(times, time)
    if i >= len(times):
        return False
    return times[i] <= time + lam


class _TraceBacked(Predictor):
    """Shared machinery: per-server sorted arrival times from the trace.

    The per-server index is built lazily on the first query: grid slabs
    construct hundreds of these predictors only to hand them to the
    batch/fast engines, which stream predictions from vectorized arrays
    and never query the predictor itself.
    """

    def __init__(self, trace: Trace):
        self._trace = trace  # retained so PredictionStream can verify provenance
        self._per_server: dict[int, np.ndarray] | None = None

    @property
    def _times(self) -> dict[int, np.ndarray]:
        if self._per_server is None:
            self._per_server = self._trace.per_server_times()
        return self._per_server

    def _truth(self, server: int, time: float, lam: float) -> bool:
        times = self._times.get(server)
        if times is None or len(times) == 0:
            return False
        i = bisect_right(times, time)
        if i >= len(times):
            return False
        return bool(times[i] <= time + lam)


class OraclePredictor(_TraceBacked):
    """Perfect predictions (100% accuracy) — the consistency regime."""

    name = "oracle"

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        return self._truth(server, time, lam)


class NoisyOraclePredictor(_TraceBacked):
    """Ground truth flipped independently with probability ``1 - accuracy``.

    This reproduces the paper's accuracy knob: each prediction is correct
    with probability ``accuracy``.  ``accuracy=1`` equals the oracle;
    ``accuracy=0`` equals the adversarial predictor.

    Flips are sampled lazily and memoised per (server, time) so repeated
    queries return the same answer within a run.
    """

    def __init__(self, trace: Trace, accuracy: float, seed: int = 0):
        super().__init__(trace)
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        self.accuracy = float(accuracy)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._memo: dict[tuple[int, float], bool] = {}
        self.name = f"noisy-oracle(p={accuracy:g})"

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        key = (server, time)
        if key not in self._memo:
            self._memo[key] = bool(self._rng.random() < self.accuracy)
        correct = self._memo[key]
        truth = self._truth(server, time, lam)
        return truth if correct else not truth


class AdversarialPredictor(_TraceBacked):
    """Always-wrong predictions (0% accuracy) — the robustness regime."""

    name = "adversarial"

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        return not self._truth(server, time, lam)


class FixedPredictor(Predictor):
    """Constant prediction, independent of the trace.

    ``FixedPredictor(False)`` ("always beyond") is the prediction pattern
    of the paper's Figure 5 tight robustness example.
    """

    def __init__(self, within: bool):
        self.within = bool(within)
        self.name = f"fixed({'within' if within else 'beyond'})"

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        return self.within
