"""Ensemble predictors: combining multiple forecasters.

Gollapudi and Panigrahi (ICML 2019) — cited by the paper as [3] —
consider ski-rental with *multiple* predictors.  The natural analogue
for replication is an ensemble over binary inter-request forecasters:

* :class:`MajorityVotePredictor` — unweighted vote;
* :class:`WeightedMajorityPredictor` — multiplicative-weights update on
  each member's observed correctness (the classic learning-with-experts
  scheme), so the ensemble tracks the best member over time.

The ensemble is itself a :class:`~repro.predictions.base.Predictor`, so
it plugs into Algorithm 1 unchanged, inheriting the same consistency/
robustness guarantees as a function of the ensemble's realized accuracy.
"""

from __future__ import annotations

from typing import Sequence

from .base import Predictor

__all__ = ["MajorityVotePredictor", "WeightedMajorityPredictor"]


class MajorityVotePredictor(Predictor):
    """Unweighted majority vote over member predictors.

    Ties (even member counts) resolve to ``tie_within``.
    """

    def __init__(self, members: Sequence[Predictor], tie_within: bool = False):
        if not members:
            raise ValueError("need at least one member predictor")
        self.members = list(members)
        self.tie_within = bool(tie_within)
        self.name = f"majority({', '.join(m.name for m in self.members)})"

    def observe(self, server: int, time: float) -> None:
        for m in self.members:
            m.observe(server, time)

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        votes = sum(
            1 if m.predict_within(server, time, lam) else -1
            for m in self.members
        )
        if votes == 0:
            return self.tie_within
        return votes > 0


class WeightedMajorityPredictor(Predictor):
    """Multiplicative-weights ensemble (learning with expert advice).

    Each member starts with weight 1.  After a prediction's ground truth
    materialises (the next request at the server arrives, or the horizon
    passes with the arrival of any later local request), members that
    were wrong are penalised by ``(1 - eta)``.  Predictions are the
    weight-weighted vote.

    The update is driven entirely by :meth:`observe` calls — exactly the
    information an online system has — so no oracle access is needed.
    """

    def __init__(self, members: Sequence[Predictor], eta: float = 0.3):
        if not members:
            raise ValueError("need at least one member predictor")
        if not 0.0 < eta < 1.0:
            raise ValueError(f"eta must be in (0, 1), got {eta}")
        self.members = list(members)
        self.eta = float(eta)
        self.weights = [1.0] * len(members)
        # per server: (issue_time, lam, member_votes) of the pending prediction
        self._pending: dict[int, tuple[float, float, list[bool]]] = {}
        self.name = (
            f"weighted-majority(eta={eta:g}; "
            f"{', '.join(m.name for m in self.members)})"
        )

    def observe(self, server: int, time: float) -> None:
        pending = self._pending.pop(server, None)
        if pending is not None:
            issue_time, lam, votes = pending
            truth_within = (time - issue_time) <= lam
            for k, vote in enumerate(votes):
                if vote != truth_within:
                    self.weights[k] *= 1.0 - self.eta
            # renormalise to avoid underflow on long traces
            total = sum(self.weights)
            if total > 0:
                self.weights = [w / total * len(self.weights) for w in self.weights]
        for m in self.members:
            m.observe(server, time)

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        votes = [m.predict_within(server, time, lam) for m in self.members]
        self._pending[server] = (time, lam, votes)
        mass_within = sum(w for w, v in zip(self.weights, votes) if v)
        mass_beyond = sum(w for w, v in zip(self.weights, votes) if not v)
        return mass_within >= mass_beyond

    def best_member(self) -> tuple[int, float]:
        """Index and weight of the currently highest-weighted member."""
        k = max(range(len(self.weights)), key=lambda i: self.weights[i])
        return k, self.weights[k]
