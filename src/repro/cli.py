"""Command-line interface for running the paper's experiments.

Subcommands
-----------
``sweep``
    The Appendix J grid (Figures 25-28): online-to-optimal cost ratios
    over (alpha, accuracy) for one or more lambdas.
``adaptive``
    The adapted algorithm grid (Figures 29-32).
``tight``
    The tight examples (Figures 5 and 6) and their limit ratios.
``wang``
    The Wang et al. counterexample (Figure 9).
``adversary``
    The Section 9 lower-bound adversary.
``experiments``
    The scenario registry: ``list`` the registered experiment
    configurations or ``run`` one in parallel with result caching.
``fleet``
    Multi-object fleets: ``run`` simulates every object of a fleet —
    built from a combined ``time,server,object`` access log or from a
    registered scenario's workload templates — with cross-object slab
    dispatch, sharded workers, and streaming aggregates (totals, worst
    objects, ratio quantiles) that scale to millions of objects.
``trace``
    Trace file utilities: ``info`` prints the detected format and
    summary statistics; ``convert`` rewrites a trace between the
    supported formats (csv / csv.gz / jsonl / jsonl.gz / npz), detected
    from the path suffixes.
``bench``
    Discover and run the ``benchmarks/bench_*.py`` suites that expose a
    ``main()`` entry point — one invocation replaces the per-benchmark
    CI steps (``--gate``/``--strict`` thread through to every suite,
    ``--quick`` applies each suite's declared smoke profile, and
    ``--regress PCT`` diffs each suite's declared ``GATE_METRIC``
    against the committed ``BENCH_*.json`` history, failing any suite
    that fell more than PCT percent below its baseline).
``obs``
    Telemetry utilities: ``summary`` pretty-prints a metrics snapshot
    written by ``--metrics-out``.

The ``sweep``, ``experiments run``, and ``bench`` subcommands accept
``--metrics-out`` / ``--spans-out``; either flag switches the telemetry
substrate on for the invocation and exports the collected registry when
the command finishes (Prometheus text for ``.prom``/``.txt`` metric
paths, the JSON snapshot otherwise; spans as Chrome trace-event JSON
loadable in Perfetto).  The global ``--log-level`` / ``--log-json``
flags attach a structured-logging handler to the library's ``repro``
logger hierarchy, which is silent by default.

Examples::

    repro-replication sweep --lambda 1000 --requests 2000
    repro-replication tight --alpha 0.5
    repro-replication wang --m 500
    repro-replication experiments run fig25 --workers 8
    repro-replication experiments run smoke --metrics-out m.json --spans-out s.json
    repro-replication obs summary m.json
    repro-replication trace info workload.csv.gz
    repro-replication trace convert workload.csv workload.npz
    repro-replication bench --quick --gate 1.0 --strict --out-dir .
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .algorithms import (
    AdaptiveReplication,
    LearningAugmentedReplication,
    WangReplication,
)
from .analysis.sweep import (
    PAPER_ACCURACIES,
    PAPER_ALPHAS,
    format_table,
    sweep_grid,
)
from .analysis.theory import consistency_bound, robustness_bound
from .core import CostModel, simulate
from .core.backends import BACKEND_NAMES
from .core.engine import ENGINE_NAMES
from .offline import optimal_cost
from .predictions import FixedPredictor, NoisyOraclePredictor, OraclePredictor
from .workloads import (
    LowerBoundAdversary,
    consistency_tight_trace,
    ibm_like_trace,
    robustness_tight_trace,
    wang_counterexample_trace,
)

__all__ = ["main", "build_parser"]


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Telemetry export flags shared by sweep / experiments run / bench."""
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable telemetry and write the metrics snapshot to PATH "
        "when the command finishes (.prom/.txt = Prometheus text, "
        "anything else = JSON snapshot)")
    parser.add_argument(
        "--spans-out", default=None, metavar="PATH",
        help="enable telemetry and write the recorded spans to PATH as "
        "Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro-replication",
        description="Experiments for 'Cost-Driven Data Replication with "
        "Predictions' (SPAA 2024)",
    )
    p.add_argument("--log-level", default=None, metavar="LEVEL",
                   help="attach a stderr logging handler to the library's "
                   "'repro' logger at LEVEL (debug/info/warning/error); "
                   "the library is silent without it")
    p.add_argument("--log-json", action="store_true",
                   help="emit log records as JSON lines instead of "
                   "key=value text (implies --log-level info unless set)")
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("sweep", help="Figures 25-28 grid")
    s.add_argument("--lambda", dest="lam", type=float, action="append",
                   help="transfer cost (repeatable; default 1000)")
    s.add_argument("--requests", type=int, default=2000,
                   help="trace length (default 2000; paper uses 11688)")
    s.add_argument("--servers", type=int, default=10)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--coarse", action="store_true",
                   help="6x6 grid instead of the paper's 11x11")
    s.add_argument("--heatmap", action="store_true",
                   help="also render an ASCII heat map per lambda")
    s.add_argument("--engine", choices=ENGINE_NAMES,
                   default="auto",
                   help="simulation engine: 'kernel' = loop-free "
                   "segment-scan replay (fastest at scale), 'batch' = "
                   "one vectorized pass per (trace, lambda) slab, "
                   "'fast' = cost-only slot-state replay per cell, "
                   "'reference' = full-telemetry event loop, 'auto' "
                   "(default) = kernel above its measured crossover, "
                   "batch/fast below it")
    s.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                   help="""kernel execution backend: 'threads' fans slab cells across a thread pool, 'numba' compiles the hot loops when numba is importable (numpy fallback otherwise), 'auto' (the default when the flag and REPRO_KERNEL_BACKEND are unset) picks by measured crossovers; all backends are bit-identical""")
    _add_obs_flags(s)

    a = sub.add_parser("adaptive", help="Figures 29-32 grid")
    a.add_argument("--lambda", dest="lam", type=float, default=1000.0)
    a.add_argument("--beta", type=float, default=0.1)
    a.add_argument("--requests", type=int, default=2000)
    a.add_argument("--seed", type=int, default=0)

    t = sub.add_parser("tight", help="Figures 5-6 tight examples")
    t.add_argument("--alpha", type=float, default=0.5)
    t.add_argument("--lambda", dest="lam", type=float, default=100.0)
    t.add_argument("--m", type=int, default=2001)

    w = sub.add_parser("wang", help="Figure 9 counterexample")
    w.add_argument("--lambda", dest="lam", type=float, default=100.0)
    w.add_argument("--m", type=int, default=1000)

    v = sub.add_parser("adversary", help="Section 9 lower-bound adversary")
    v.add_argument("--alpha", type=float, default=0.5)
    v.add_argument("--lambda", dest="lam", type=float, default=100.0)
    v.add_argument("--requests", type=int, default=500)

    e = sub.add_parser("experiments", help="scenario registry: list / run")
    esub = e.add_subparsers(dest="exp_command", required=True)
    el = esub.add_parser("list", help="registered experiment scenarios")
    el.add_argument("--tag", default=None, help="filter by tag")
    er = esub.add_parser("run", help="run scenarios in parallel with caching")
    er.add_argument("names", nargs="+", metavar="name",
                    help="registered scenario name(s); see 'experiments list'")
    er.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: CPU count; 1 = serial)")
    er.add_argument("--cache-dir", default=None,
                    help="result cache directory (default: "
                    "$REPRO_CACHE_DIR or ~/.cache/repro-experiments)")
    er.add_argument("--no-cache", action="store_true",
                    help="disable result caching entirely")
    er.add_argument("--out", default=None, metavar="DIR",
                    help="also save JSON/CSV artifacts under DIR")
    er.add_argument("--coarse", action="store_true",
                    help="subsample every grid axis to at most 3 values")
    er.add_argument("--quiet", action="store_true",
                    help="suppress incremental progress output")
    er.add_argument("--engine", choices=ENGINE_NAMES,
                    default="auto",
                    help="simulation engine for grid cells (default: auto "
                    "= loop-free kernel replays or batched slab passes "
                    "where eligible)")
    er.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                    help="""kernel execution backend: 'threads' fans slab cells across a thread pool, 'numba' compiles the hot loops when numba is importable (numpy fallback otherwise), 'auto' (the default when the flag and REPRO_KERNEL_BACKEND are unset) picks by measured crossovers; all backends are bit-identical""")
    _add_obs_flags(er)

    f = sub.add_parser("fleet", help="multi-object fleets: run")
    fsub = f.add_subparsers(dest="fleet_command", required=True)
    fr = fsub.add_parser(
        "run",
        help="simulate a fleet of objects with cross-object slab "
        "dispatch and streaming aggregates",
    )
    fsrc = fr.add_mutually_exclusive_group(required=True)
    fsrc.add_argument("--access-log", default=None, metavar="PATH",
                      help="combined access log CSV with time,server,object "
                      "rows (header optional); split into per-object traces")
    fsrc.add_argument("--scenario", default=None, metavar="NAME",
                      help="registered scenario whose workload seeds the "
                      "fleet's trace templates; see 'experiments list'")
    fr.add_argument("--n", type=int, default=None,
                    help="server count (required with --access-log)")
    fr.add_argument("--objects", type=int, default=1000,
                    help="fleet size with --scenario (default 1000)")
    fr.add_argument("--templates", type=int, default=8,
                    help="distinct trace templates with --scenario; objects "
                    "cycle over them, so objects sharing a template "
                    "evaluate as one cross-object slab (default 8)")
    fr.add_argument("--lambda", dest="lam", type=float, default=100.0,
                    help="transfer cost for every object (default 100)")
    fr.add_argument("--alpha", type=float, default=0.5,
                    help="Algorithm 1 trust parameter (default 0.5)")
    fr.add_argument("--accuracy", type=float, default=1.0,
                    help="predictor accuracy; 1.0 = oracle (default 1.0)")
    fr.add_argument("--seed", type=int, default=0,
                    help="base seed for templates and noisy predictors")
    fr.add_argument("--engine", choices=ENGINE_NAMES, default="auto",
                    help="simulation engine (default auto = cost-only "
                    "kernel/batch slabs where eligible)")
    fr.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                    help="""kernel execution backend: 'threads' fans slab cells across a thread pool, 'numba' compiles the hot loops when numba is importable (numpy fallback otherwise), 'auto' (the default when the flag and REPRO_KERNEL_BACKEND are unset) picks by measured crossovers; all backends are bit-identical""")
    fr.add_argument("--workers", type=int, default=None,
                    help="worker processes (default: CPU count; 1 = serial)")
    fr.add_argument("--top-k", type=int, default=16,
                    help="worst objects kept in the offenders table "
                    "(default 16)")
    fr.add_argument("--stream", action="store_true",
                    help="streaming aggregates only: never materialize "
                    "per-object outcomes (for very large fleets)")
    fr.add_argument("--no-optimal", action="store_true",
                    help="skip the offline optima (online costs only)")
    fr.add_argument("--quiet", action="store_true",
                    help="suppress incremental progress output")
    _add_obs_flags(fr)

    tr = sub.add_parser("trace", help="trace files: info / convert")
    tsub = tr.add_subparsers(dest="trace_command", required=True)
    ti = tsub.add_parser("info", help="detected format + summary statistics")
    ti.add_argument("path", help="trace file (csv/csv.gz/jsonl/jsonl.gz/npz)")
    ti.add_argument("--mmap", action="store_true",
                    help="memory-map the columns of an .npz trace "
                    "instead of reading them into memory")
    tc = tsub.add_parser("convert",
                         help="rewrite a trace in another format "
                         "(formats detected from the path suffixes)")
    tc.add_argument("src", help="input trace file")
    tc.add_argument("dst", help="output trace file")

    b = sub.add_parser("bench",
                       help="discover and run the bench_*.py suites")
    b.add_argument("names", nargs="*", metavar="name",
                   help="suite names (e.g. 'kernel' for bench_kernel.py); "
                   "default: every runnable suite")
    b.add_argument("--list", action="store_true", dest="list_suites",
                   help="list the discovered suites and exit")
    b.add_argument("--dir", default="benchmarks", metavar="DIR",
                   help="directory to discover bench_*.py in "
                   "(default: ./benchmarks)")
    b.add_argument("--out-dir", default=None, metavar="DIR",
                   help="write each suite's BENCH_<name>.json under DIR "
                   "(default: each suite's own default, next to the "
                   "benchmark sources)")
    b.add_argument("--gate", type=float, default=None,
                   help="pass this wall-clock gate to every suite "
                   "(default: each suite's own recorded gate)")
    b.add_argument("--strict", action="store_true",
                   help="suites fail the process when below the gate")
    b.add_argument("--quick", action="store_true",
                   help="apply each suite's declared QUICK_ARGS smoke "
                   "profile (the CI configuration)")
    b.add_argument("--regress", type=float, default=None, metavar="PCT",
                   help="persistent regression gate: fail any suite whose "
                   "gated metric (its GATE_METRIC report key) falls more "
                   "than PCT percent below the committed "
                   "BENCH_<name>.json history in --dir; suites without a "
                   "committed baseline or recorded metric pass with a note")
    _add_obs_flags(b)

    o = sub.add_parser("obs", help="telemetry snapshots: summary")
    osub = o.add_subparsers(dest="obs_command", required=True)
    os_ = osub.add_parser("summary",
                          help="pretty-print a --metrics-out JSON snapshot")
    os_.add_argument("path", help="snapshot file written by --metrics-out")
    return p


def _cmd_sweep(args: argparse.Namespace) -> int:
    lams = args.lam or [1000.0]
    trace = ibm_like_trace(n=args.servers, m=args.requests, seed=args.seed)
    if args.coarse:
        alphas = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
        accs = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    else:
        alphas, accs = PAPER_ALPHAS, PAPER_ACCURACIES
    result = sweep_grid(
        trace, lams, alphas, accs, seed=args.seed,
        engine=getattr(args, "engine", "auto"),
        backend=getattr(args, "backend", None),
    )
    for lam in lams:
        print(format_table(result, lam))
        if getattr(args, "heatmap", False):
            from .analysis.plotting import render_sweep_heatmap

            print(render_sweep_heatmap(result, lam))
        print()
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    trace = ibm_like_trace(m=args.requests, seed=args.seed)
    model = CostModel(lam=args.lam, n=trace.n)
    opt = optimal_cost(trace, model)
    print(f"lambda={args.lam:g} beta={args.beta:g} target<={2 + args.beta:g}")
    print("alpha  accuracy  ratio")
    for alpha in (0.1, 0.5, 1.0):
        for acc in (0.0, 0.5, 1.0):
            pred = (
                OraclePredictor(trace)
                if acc >= 1.0
                else NoisyOraclePredictor(trace, acc, seed=args.seed)
            )
            policy = AdaptiveReplication(pred, alpha=alpha, beta=args.beta)
            run = simulate(trace, model, policy)
            print(f"{alpha:5.1f}  {acc:8.0%}  {run.total_cost / opt:6.3f}")
    return 0


def _cmd_tight(args: argparse.Namespace) -> int:
    lam, alpha = args.lam, args.alpha
    model = CostModel(lam=lam, n=2)

    tr = robustness_tight_trace(lam, alpha, args.m)
    pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
    run = simulate(tr, model, pol)
    opt = optimal_cost(tr, model)
    print(
        f"Figure 5 (robustness):  ratio={run.total_cost / opt:.4f}  "
        f"limit 1+1/alpha={robustness_bound(alpha):.4f}"
    )

    cycles = max(1, args.m // 3)
    tr = consistency_tight_trace(lam, cycles=cycles)
    pol = LearningAugmentedReplication(OraclePredictor(tr), alpha)
    run = simulate(tr, model, pol)
    opt = optimal_cost(tr, model)
    print(
        f"Figure 6 (consistency): ratio={run.total_cost / opt:.4f}  "
        f"limit (5+alpha)/3={consistency_bound(alpha):.4f}"
    )
    return 0


def _cmd_wang(args: argparse.Namespace) -> int:
    tr = wang_counterexample_trace(args.lam, m=args.m)
    model = CostModel(lam=args.lam, n=2)
    run = simulate(tr, model, WangReplication())
    opt = optimal_cost(tr, model)
    print(
        f"Figure 9 (Wang et al.): ratio={run.total_cost / opt:.4f}  "
        "limit 5/2=2.5 (claimed 2 is refuted)"
    )
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    adv = LowerBoundAdversary(lam=args.lam)
    pol = LearningAugmentedReplication(FixedPredictor(False), args.alpha)
    out = adv.run(pol, n_requests=args.requests)
    opt = optimal_cost(out.trace, CostModel(lam=args.lam, n=2))
    print(
        f"Section 9 adversary vs alpha={args.alpha:g}: "
        f"ratio={out.result.total_cost / opt:.4f} (lower bound 1.5)"
    )
    return 0


def _coarsen(values: tuple, keep: int = 3) -> tuple:
    """At most ``keep`` values spread over the axis, endpoints included."""
    if len(values) <= keep:
        return values
    idx = sorted({round(i * (len(values) - 1) / (keep - 1)) for i in range(keep)})
    return tuple(values[i] for i in idx)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import (
        ArtifactStore,
        ConsoleProgress,
        ExperimentRunner,
        NullProgress,
        ResultCache,
        get_scenario,
        list_scenarios,
        summary_table,
    )

    if args.exp_command == "list":
        scenarios = list_scenarios(tag=args.tag)
        if not scenarios:
            print("no scenarios registered" +
                  (f" with tag {args.tag!r}" if args.tag else ""))
            return 1
        width = max(len(s.name) for s in scenarios)
        for s in scenarios:
            tags = f" [{', '.join(s.tags)}]" if s.tags else ""
            print(f"{s.name:<{width}}  {s.n_jobs:>6} jobs{tags}  "
                  f"{s.description}")
        return 0

    if args.no_cache:
        cache = None
    else:
        cache_dir = args.cache_dir or os.environ.get(
            "REPRO_CACHE_DIR",
            os.path.join("~", ".cache", "repro-experiments"),
        )
        cache = ResultCache(os.path.expanduser(cache_dir))
    runner = ExperimentRunner(
        workers=args.workers,
        cache=cache,
        progress=NullProgress() if args.quiet else ConsoleProgress(),
        engine=getattr(args, "engine", "auto"),
        backend=getattr(args, "backend", None),
    )
    store = ArtifactStore(args.out) if args.out else None
    for name in args.names:
        try:
            scenario = get_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if args.coarse:
            scenario = scenario.with_grid(
                lambdas=_coarsen(scenario.lambdas),
                alphas=_coarsen(scenario.alphas),
                accuracies=_coarsen(scenario.accuracies),
            )
        result = runner.run(scenario)
        print(summary_table(result))
        if store is not None:
            path = store.save(result)
            print(f"artifacts saved to {path}")
        print()
    return 0


def _read_fleet_log(path: str) -> list[tuple[float, int, str]]:
    """Parse a combined access log CSV into ``(time, server, object)``
    rows.  A non-numeric first field (a header) is skipped."""
    import csv

    rows: list[tuple[float, int, str]] = []
    with open(path, newline="", encoding="utf-8") as fh:
        for rec in csv.reader(fh):
            if len(rec) < 3:
                continue
            try:
                t = float(rec[0])
            except ValueError:
                continue
            rows.append((t, int(rec[1]), rec[2].strip()))
    return rows


def _cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from .analysis.sweep import algorithm1_factory
    from .core.trace import TraceError
    from .experiments import (
        ConsoleProgress,
        ExperimentRunner,
        NullProgress,
        get_scenario,
    )
    from .system.multi_object import (
        MultiObjectSystem,
        ObjectSpec,
        split_trace_by_object,
    )

    lam, alpha, accuracy, seed = args.lam, args.alpha, args.accuracy, args.seed

    def policy_factory(trace, model):
        return algorithm1_factory(trace, model.lam, alpha, accuracy, seed)

    specs = []
    if args.access_log:
        if args.n is None:
            print("--n is required with --access-log", file=sys.stderr)
            return 2
        try:
            rows = _read_fleet_log(args.access_log)
            traces = split_trace_by_object(rows, args.n)
        except (TraceError, OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not traces:
            print(f"no usable rows in {args.access_log}", file=sys.stderr)
            return 2
        n = args.n
        for obj, tr in sorted(traces.items()):
            specs.append(ObjectSpec(obj, tr, lam, policy_factory))
    else:
        try:
            scenario = get_scenario(args.scenario)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        templates = [
            scenario.build_trace(lam, alpha, accuracy, seed + t)
            for t in range(max(1, args.templates))
        ]
        n = templates[0].n
        width = len(str(max(0, args.objects - 1)))
        for i in range(args.objects):
            specs.append(
                ObjectSpec(
                    f"obj-{i:0{width}d}",
                    templates[i % len(templates)],
                    lam,
                    policy_factory,
                )
            )
    system = MultiObjectSystem(n, specs)
    runner = ExperimentRunner(
        workers=args.workers,
        progress=NullProgress() if args.quiet else ConsoleProgress(),
    )
    t0 = time.perf_counter()
    report = runner.run_fleet(
        system,
        compute_optimal=not args.no_optimal,
        engine=args.engine,
        materialize=not args.stream,
        top_k=args.top_k,
        backend=getattr(args, "backend", None),
    )
    elapsed = time.perf_counter() - t0
    print(report.summary_table(top_k=args.top_k))
    rate = len(specs) / elapsed if elapsed > 0 else float("inf")
    line = (
        f"\n{len(specs)} objects, n={n}, engine={args.engine} "
        f"in {elapsed:.2f}s ({rate:,.0f} objects/s)"
    )
    if not args.no_optimal:
        line += (
            f"\nfleet ratio {report.fleet_ratio:.4f}, worst object "
            f"{report.worst_object_ratio:.4f}, ratio p50/p90/p99 "
            f"{report.ratio_quantile(0.5):.3f}/"
            f"{report.ratio_quantile(0.9):.3f}/"
            f"{report.ratio_quantile(0.99):.3f}"
        )
    print(line)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.trace import TraceError
    from .system.trace_io import detect_trace_format, load_trace, save_trace

    try:
        if args.trace_command == "info":
            fmt = detect_trace_format(args.path)
            trace = load_trace(args.path, fmt=fmt, mmap=args.mmap)
            s = trace.summary()
            print(f"path            {args.path}")
            print(f"format          {fmt}"
                  + (" (memory-mapped)" if args.mmap and fmt == "npz" else ""))
            print(f"file size       {os.path.getsize(args.path)} bytes")
            print(f"servers (n)     {trace.n}")
            print(f"requests (m)    {len(trace)}")
            print(f"span            {s['span']:g}")
            print(f"servers touched {int(s['servers_touched'])}")
            print(f"mean local gap  {s['mean_local_gap']:g}")
            print(f"median local gap {s['median_local_gap']:g}")
            return 0
        # convert
        src_fmt = detect_trace_format(args.src)
        dst_fmt = detect_trace_format(args.dst)
        trace = load_trace(args.src, fmt=src_fmt, mmap=src_fmt == "npz")
        save_trace(trace, args.dst, fmt=dst_fmt)
        print(
            f"{args.src} ({src_fmt}) -> {args.dst} ({dst_fmt}): "
            f"n={trace.n} m={len(trace)}"
        )
        return 0
    except (TraceError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _discover_bench_suites(bench_dir: str) -> dict[str, str]:
    """Map suite name -> path for every ``bench_*.py`` with a ``main()``.

    Membership is decided from the source text (``def main(``) so that
    pytest-only figure benchmarks are never imported here.
    """
    suites: dict[str, str] = {}
    try:
        entries = sorted(os.listdir(bench_dir))
    except OSError:
        return suites
    for fname in entries:
        if not (fname.startswith("bench_") and fname.endswith(".py")):
            continue
        path = os.path.join(bench_dir, fname)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        if "\ndef main(" in source:
            suites[fname[len("bench_"):-len(".py")]] = path
    return suites


def _cmd_bench(args: argparse.Namespace) -> int:
    import importlib.util

    suites = _discover_bench_suites(args.dir)
    if not suites:
        print(f"no runnable bench_*.py suites found in {args.dir!r}",
              file=sys.stderr)
        return 2
    if args.list_suites:
        width = max(len(n) for n in suites)
        for name, path in suites.items():
            print(f"{name:<{width}}  {path}")
        return 0
    names = args.names or list(suites)
    unknown = [n for n in names if n not in suites]
    if unknown:
        print(f"unknown suite(s) {unknown}; available: {sorted(suites)}",
              file=sys.stderr)
        return 2
    # suites import their shared helpers (benchcli) as siblings, which
    # works when run as scripts; mirror that here, restoring sys.path
    # afterwards so a long-lived caller's imports are not shadowed
    bench_dir = os.path.abspath(args.dir)
    inserted = bench_dir not in sys.path
    if inserted:
        sys.path.insert(0, bench_dir)
    failed: list[str] = []
    try:
        for name in names:
            path = suites[name]
            spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
            module = importlib.util.module_from_spec(spec)
            sys.modules[spec.name] = module
            spec.loader.exec_module(module)
            argv: list[str] = []
            out_path = os.path.join(bench_dir, f"BENCH_{name}.json")
            if args.out_dir:
                os.makedirs(args.out_dir, exist_ok=True)
                out_path = os.path.join(args.out_dir, f"BENCH_{name}.json")
                argv += ["--out", out_path]
            if args.gate is not None:
                argv += ["--gate", str(args.gate)]
            if args.strict:
                argv.append("--strict")
            if args.quick:
                argv += list(getattr(module, "QUICK_ARGS", ()))
            metric = getattr(module, "GATE_METRIC", "speedup")
            baseline = None
            if args.regress is not None:
                import benchcli  # sibling helper; bench_dir is on sys.path

                # read the committed history BEFORE the suite runs —
                # with --out-dir pointing at the bench dir, the fresh
                # report overwrites the baseline file
                baseline = benchcli.read_metric(
                    os.path.join(bench_dir, f"BENCH_{name}.json"), metric
                )
            print(f"=== bench {name} {' '.join(argv)}")
            code = module.main(argv)
            if code:
                failed.append(name)
            elif args.regress is not None:
                import benchcli

                new_value = benchcli.read_metric(out_path, metric)
                if baseline is None or new_value is None:
                    print(
                        f"bench {name}: no committed {metric} history; "
                        "regression gate skipped"
                    )
                elif benchcli.regressed(new_value, baseline, args.regress):
                    print(
                        f"FAIL: bench {name}: {metric} {new_value:.3f} is "
                        f"more than {args.regress:g}% below the committed "
                        f"baseline {baseline:.3f}",
                        file=sys.stderr,
                    )
                    failed.append(name)
                else:
                    print(
                        f"bench {name}: {metric} {new_value:.3f} vs "
                        f"committed {baseline:.3f} (within "
                        f"{args.regress:g}%)"
                    )
    finally:
        if inserted:
            try:
                sys.path.remove(bench_dir)
            except ValueError:
                pass
    if failed:
        print(f"FAILED suites: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"{len(names)} suite(s) passed")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import exporters

    try:
        snap = exporters.load_snapshot_json(args.path)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(exporters.summarize(snap))
    return 0


def _export_obs(args: argparse.Namespace) -> None:
    """Write the registry collected during this invocation to the paths
    given by ``--metrics-out`` / ``--spans-out``."""
    from .obs import exporters, metrics

    snap = metrics.get_registry().snapshot()
    if args.metrics_out:
        exporters.write_metrics(snap, args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.spans_out:
        exporters.write_chrome_trace(snap, args.spans_out)
        print(f"spans written to {args.spans_out}", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.log_level is not None or args.log_json:
        from .obs import logging as obs_logging

        obs_logging.configure(
            level=args.log_level or "info", json_output=args.log_json
        )
    want_obs = bool(
        getattr(args, "metrics_out", None) or getattr(args, "spans_out", None)
    )
    if want_obs:
        from .obs import metrics

        metrics.enable()
    handlers = {
        "sweep": _cmd_sweep,
        "adaptive": _cmd_adaptive,
        "tight": _cmd_tight,
        "wang": _cmd_wang,
        "adversary": _cmd_adversary,
        "experiments": _cmd_experiments,
        "fleet": _cmd_fleet,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "obs": _cmd_obs,
    }
    try:
        code = handlers[args.command](args)
        if want_obs:
            _export_obs(args)
        return code
    except KeyboardInterrupt:
        resumable = (
            args.command == "experiments"
            and getattr(args, "exp_command", "") == "run"
            and not getattr(args, "no_cache", False)
        )
        print(
            "\ninterrupted — completed cells are cached and the next run "
            "resumes from them" if resumable else "\ninterrupted",
            file=sys.stderr,
        )
        return 130
    finally:
        if want_obs:
            # leave no global state behind for in-process callers
            from .obs import metrics

            metrics.disable()
            metrics.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
