"""repro — reproduction of "Cost-Driven Data Replication with Predictions".

Zuo, Tang, Lee (SPAA 2024, arXiv:2404.16489).

A learning-augmented online algorithm for dynamically creating and
deleting copies of a data object across geo-distributed servers, with

* ``(5 + alpha) / 3``-consistency and ``(1 + 1/alpha)``-robustness,
* an adaptive variant with bounded robustness ``2 + beta``,
* exact optimal offline solvers, predictors, workload generators,
  adversarial instances, and a full reproduction of the paper's
  experimental evaluation.

Quickstart::

    from repro import (
        CostModel, simulate, LearningAugmentedReplication,
        OraclePredictor, optimal_cost,
    )
    from repro.workloads import poisson_trace

    trace = poisson_trace(n=10, rate=0.02, horizon=100_000.0, seed=1)
    model = CostModel(lam=1000.0, n=trace.n)
    policy = LearningAugmentedReplication(OraclePredictor(trace), alpha=0.3)
    run = simulate(trace, model, policy)
    print(run.total_cost / optimal_cost(trace, model))
"""

from .algorithms import (
    AdaptiveReplication,
    AlwaysHold,
    BlindFollowPredictions,
    ConventionalReplication,
    LearningAugmentedReplication,
    NeverHold,
    RandomizedSkiRental,
    RequestClassification,
    RequestType,
    WangReplication,
)
from .analysis import (
    analyze_run,
    competitive_ratio,
    consistency_bound,
    robustness_bound,
    sweep_grid,
)
from .core import (
    BACKEND_NAMES,
    BatchCostEngine,
    CostLedger,
    CostModel,
    CostResult,
    Engine,
    EngineError,
    EventKind,
    EventLog,
    FastCostEngine,
    InteractiveSimulation,
    KernelCostEngine,
    PolicyError,
    ReferenceEngine,
    ReplicationPolicy,
    Request,
    SimulationResult,
    Trace,
    TraceError,
    get_backend,
    get_engine,
    run_slab,
    select_engine,
    simulate,
)
from .offline import (
    brute_force_optimal_cost,
    opt_lower_bound,
    optimal_cost,
    optimal_schedule,
)
from .experiments import (
    ArtifactStore,
    ExperimentResult,
    ExperimentRunner,
    ResultCache,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from .predictions import (
    AdversarialPredictor,
    EwmaPredictor,
    FixedPredictor,
    LastGapPredictor,
    MarkovChainPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    PredictionStream,
    Predictor,
    SlidingWindowPredictor,
)
from .system import (
    FleetReport,
    MultiObjectSystem,
    ObjectOutcome,
    ObjectSpec,
    load_access_log_csv,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
    split_trace_by_object,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "Trace",
    "TraceError",
    "Request",
    "CostModel",
    "CostLedger",
    "EventKind",
    "EventLog",
    "ReplicationPolicy",
    "PolicyError",
    "SimulationResult",
    "simulate",
    "InteractiveSimulation",
    # engines (tiered simulation)
    "Engine",
    "EngineError",
    "CostResult",
    "BatchCostEngine",
    "FastCostEngine",
    "KernelCostEngine",
    "ReferenceEngine",
    "get_engine",
    "run_slab",
    "select_engine",
    "BACKEND_NAMES",
    "get_backend",
    "PredictionStream",
    # algorithms
    "LearningAugmentedReplication",
    "AdaptiveReplication",
    "ConventionalReplication",
    "WangReplication",
    "AlwaysHold",
    "NeverHold",
    "BlindFollowPredictions",
    "RandomizedSkiRental",
    "RequestType",
    "RequestClassification",
    # offline
    "optimal_cost",
    "optimal_schedule",
    "brute_force_optimal_cost",
    "opt_lower_bound",
    # predictions
    "Predictor",
    "OraclePredictor",
    "NoisyOraclePredictor",
    "AdversarialPredictor",
    "FixedPredictor",
    "EwmaPredictor",
    "LastGapPredictor",
    "SlidingWindowPredictor",
    "MarkovChainPredictor",
    # analysis
    "analyze_run",
    "competitive_ratio",
    "consistency_bound",
    "robustness_bound",
    "sweep_grid",
    # system (deployment-facing layer)
    "MultiObjectSystem",
    "ObjectSpec",
    "ObjectOutcome",
    "FleetReport",
    "split_trace_by_object",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "load_access_log_csv",
    # experiments (orchestration layer)
    "ExperimentRunner",
    "ExperimentResult",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "ResultCache",
    "ArtifactStore",
]
