"""Exhaustive optimal offline search for tiny instances.

This is the gold standard used to validate :mod:`repro.offline.dp`: a
dynamic program over ``(event index, set of servers holding copies)``
that considers *every* replication schedule in which state changes happen
at request times.  (Changing state strictly between requests is dominated:
storage cost is linear in holding time, so creations can be delayed to
the next request and drops advanced to the previous one without
increasing cost.)

Complexity is ``O(m * 4^n)`` — only usable for ``n <= ~4``, ``m <= ~14``,
which is exactly its purpose.  Unlike the fast DP it supports distinct
per-server storage rates, so it also validates the Wang et al. baseline
scenarios.

The transition is evaluated with the same gap-array machinery as the
engines: subsets are bitmask rows of ``(2^n,)`` NumPy vectors, the
per-request inter-arrival gap multiplies a precomputed per-subset
storage-rate vector, and the ``(S, S2)`` candidate sweep is one
broadcast add + column min per request instead of a nested Python loop.
Every candidate's cost is built from the identical scalar IEEE
operations the loop formulation performs (``cost + rate(S) * dt`` then
``+ lam * n_transfers``), and a column minimum over identical doubles is
order-independent, so the vectorized search is *exactly* equivalent —
:func:`_brute_force_reference` keeps the loop formulation and the test
suite pins the two against each other.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..core.costs import CostModel
from ..core.trace import Trace

__all__ = ["brute_force_optimal_cost"]


def _all_subsets(universe: tuple[int, ...]):
    for k in range(len(universe) + 1):
        for combo in combinations(universe, k):
            yield frozenset(combo)


def _check_size(trace: Trace, model: CostModel, max_requests: int, max_servers: int):
    if model.n != trace.n:
        raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
    m = len(trace)
    if m > max_requests:
        raise ValueError(
            f"instance too large for brute force: m={m} > {max_requests}"
        )
    if trace.n > max_servers:
        raise ValueError(
            f"instance too large for brute force: n={trace.n} > {max_servers}"
        )


def brute_force_optimal_cost(
    trace: Trace,
    model: CostModel,
    max_requests: int = 16,
    max_servers: int = 5,
) -> float:
    """Exact optimal offline cost by exhaustive state-space search.

    Raises ``ValueError`` when the instance exceeds the tractable size
    guards (override them explicitly if you know what you are doing).
    """
    _check_size(trace, model, max_requests, max_servers)
    m = len(trace)
    if m == 0:
        return 0.0

    lam = model.lam
    rates = model.storage_rates
    n = trace.n
    n_sets = 1 << n
    masks = np.arange(n_sets)

    # per-subset storage rate, accumulated in ascending server order —
    # the same addition sequence as the loop formulation's sum()
    rate_vec = np.zeros(n_sets)
    popcount = np.zeros(n_sets, dtype=np.int64)
    for s in range(n):
        has = ((masks >> s) & 1).astype(bool)
        rate_vec[has] += rates[s]
        popcount += has

    # extra[S, S2] = the brand-new copies S2 \ S as a bitmask
    extra = masks[None, :] & ~masks[:, None]
    tx_by_server: dict[int, np.ndarray] = {}

    times = np.concatenate(([0.0], trace.times))
    servers = trace.servers
    cost = np.full(n_sets, np.inf)
    cost[1] = 0.0                       # server 0 holds the initial copy

    for i in range(m):
        j = int(servers[i])
        dt = float(times[i + 1] - times[i])
        Tj = tx_by_server.get(j)
        if Tj is None:
            # transfers: serving (if not local) + any brand-new copies;
            # when the serve transfer lands at the request's server, the
            # retained copy there is free
            Tj = popcount[extra & ~(1 << j)] + (1 - ((masks >> j) & 1))[:, None]
            tx_by_server[j] = Tj
        hold = cost + rate_vec * dt
        c2 = hold[:, None] + lam * Tj
        new_cost = c2.min(axis=0)
        new_cost[0] = np.inf            # at-least-one-copy invariant
        cost = new_cost

    return float(cost.min())


def _brute_force_reference(
    trace: Trace,
    model: CostModel,
    max_requests: int = 16,
    max_servers: int = 5,
) -> float:
    """The original nested-loop formulation, kept as the semantic
    reference the vectorized search is tested against."""
    _check_size(trace, model, max_requests, max_servers)
    m = len(trace)
    if m == 0:
        return 0.0

    lam = model.lam
    rates = model.storage_rates
    servers = tuple(range(trace.n))
    seq = trace.with_dummy()

    def storage_rate(S: frozenset[int]) -> float:
        return sum(rates[s] for s in S)

    # states after event i: frozenset of holders -> min cost
    states: dict[frozenset[int], float] = {frozenset({0}): 0.0}

    for i in range(1, m + 1):
        req = seq[i]
        dt = seq[i].time - seq[i - 1].time
        new_states: dict[frozenset[int], float] = {}
        for S, cost in states.items():
            hold_cost = cost + storage_rate(S) * dt
            served_free = req.server in S
            for S2 in _all_subsets(servers):
                if not S2:
                    continue  # at-least-one-copy invariant
                extra = S2 - S
                n_transfers = len(extra - {req.server})
                if not served_free:
                    n_transfers += 1  # the serve transfer itself
                c2 = hold_cost + lam * n_transfers
                if c2 < new_states.get(S2, float("inf")):
                    new_states[S2] = c2
        states = new_states

    return min(states.values())
