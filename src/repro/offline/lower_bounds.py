"""Lower bounds on the optimal offline cost.

``opt_lower_bound`` is the quantity ``OPT_L`` from the paper's Section 8
(the denominator of equation (11)); the adapted algorithm maintains it
incrementally, and tests verify the incremental and batch versions agree
and that the bound never exceeds the exact optimum.
"""

from __future__ import annotations

from ..core.costs import CostModel
from ..core.trace import Trace

__all__ = ["opt_lower_bound"]


def opt_lower_bound(trace: Trace, model: CostModel) -> float:
    """The paper's ``OPT_L`` lower bound on the optimal offline cost.

    Per request ``r_i``:

    * if the local gap ``t_i - t_p(i)`` exceeds ``lambda``, any strategy
      pays at least ``lambda`` for ``r_i`` (a transfer, or >= ``lambda``
      of storage); otherwise it pays at least the gap itself
      (Proposition 5);
    * first requests at servers other than server 0 have no preceding
      local copy, hence cost at least ``lambda`` (counted via the
      infinite-gap convention);
    * additionally, the at-least-one-copy requirement forces storage
      ``t_i - t_{i-1}`` across every global gap; the part beyond
      ``lambda`` is not already counted, contributing
      ``t_i - t_{i-1} - lambda`` when positive.
    """
    if model.n != trace.n:
        raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
    lam = model.lam
    total = 0.0
    gaps = trace.inter_request_gaps()
    prev_t = 0.0
    for r, gap in zip(trace, gaps):
        total += lam if gap > lam else gap
        global_gap = r.time - prev_t
        if global_gap > lam:
            total += global_gap - lam
        prev_t = r.time
    return total
