"""Optimal offline solvers and lower bounds."""

from .brute_force import brute_force_optimal_cost
from .dp import OfflineDecision, optimal_cost, optimal_schedule
from .lower_bounds import opt_lower_bound

__all__ = [
    "optimal_cost",
    "optimal_schedule",
    "OfflineDecision",
    "brute_force_optimal_cost",
    "opt_lower_bound",
]
