"""Exact optimal offline replication cost in ``O(m * n)``.

Derivation (from the paper's structural Propositions 3-6; see DESIGN.md):
there exists an optimal offline strategy in which

1. every request ``r_i`` is either served by a copy held at ``s[r_i]``
   continuously since the preceding local request ``r_{p(i)}`` ("keep",
   storage cost ``t_i - t_p(i)``), or served by a transfer (cost
   ``lambda``);  (Props. 4/5; prefetching earlier than ``t_p(i)`` or
   creating copies not serving local requests is dominated)
2. copies exist only over such kept inter-request intervals, except for
   *bridging*: whenever no kept interval spans the gap between two
   globally consecutive requests, the at-least-one-copy constraint forces
   one copy to survive across the gap, costing exactly the gap length
   (rate-1 storage; Prop. 6 / "Case A" of the paper's Section 5).

The decision for each request is therefore binary and the only coupling
between decisions is gap coverage, which depends only on the *latest
expiry time among currently open kept intervals*.  Scanning requests in
time order with that scalar as the DP state gives an exact algorithm; at
most one open interval per server exists at any time, so the state space
is bounded by ``n`` and the total complexity is ``O(m * n)``.

The implementation is validated in the test suite against an exhaustive
exponential search (``repro.offline.brute_force``) on thousands of random
tiny instances and against the closed-form optima of the paper's tight
examples (Figures 5, 6, 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costs import CostModel
from ..core.trace import Trace

__all__ = ["optimal_cost", "optimal_schedule", "OfflineDecision"]

_EPS = 1e-9


@dataclass(frozen=True)
class OfflineDecision:
    """Reconstructed optimal decision for one request ``r_i`` (i >= 1).

    ``keep`` means server ``s[r_i]`` keeps its copy from ``t_i`` until its
    next local request (which is then served locally); ``keep=False``
    means the copy is not held and the next local request (if any) is
    served by a transfer.  ``bridged`` marks requests whose preceding
    global gap ``(t_{i-1}, t_i)`` was not covered by any kept interval and
    required a bridging copy.
    """

    request_index: int
    keep: bool
    bridged: bool


def _prepare(trace: Trace, model: CostModel):
    if model.n != trace.n:
        raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
    if not model.uniform_storage:
        raise ValueError(
            "optimal_cost assumes uniform storage rates (the paper's "
            "setting); use brute_force for small non-uniform instances"
        )
    rate = model.storage_rates[0]
    seq = trace.with_dummy()
    nxt = trace.next_local_time()
    return seq, nxt, rate


def optimal_cost(trace: Trace, model: CostModel) -> float:
    """Exact minimum offline cost of serving ``trace`` under ``model``.

    Storage is accounted over ``[0, t_m]`` and each transfer costs
    ``lambda`` — the same conventions as the simulator, so online/optimal
    ratios are directly comparable.

    The scan inputs (dummy-prefixed times, next-local times, per-gap and
    per-keep storage charges) are prepared as vectorized numpy arrays in
    one pass; the sequential frontier walk then maintains the DP state as
    a Pareto front sorted by expiry — larger ``E`` costs strictly more —
    merged in O(frontier) per request with *exact* dominance pruning (a
    state with smaller-or-equal expiry and greater-or-equal cost can
    never beat its dominator on any suffix, so dropping it is lossless,
    unlike the older tolerance-based prune).
    """
    if model.n != trace.n:
        raise ValueError(f"model.n={model.n} != trace.n={trace.n}")
    if not model.uniform_storage:
        raise ValueError(
            "optimal_cost assumes uniform storage rates (the paper's "
            "setting); use brute_force for small non-uniform instances"
        )
    rate = model.storage_rates[0]
    lam = model.lam
    m = len(trace)
    if m == 0:
        return 0.0
    inf = float("inf")

    # vectorized scan inputs (numpy), consumed as plain lists in the walk
    times_arr = np.concatenate(([0.0], trace.times))
    nxt_arr = trace.next_local_time()  # float64 column, no conversion
    gap_costs = (np.diff(times_arr) * rate).tolist()   # bridging charge per gap
    keep_costs = ((nxt_arr - times_arr) * rate).tolist()  # keep charge per request
    times = times_arr.tolist()
    nxt = nxt_arr.tolist()

    # base cost: the first request at every server other than server 0 is
    # necessarily served by a transfer (no earlier local copy can exist)
    servers = trace.servers
    n_first = len(np.unique(servers[servers != 0]))
    base = 0.0
    for _ in range(n_first):
        base += lam

    # Pareto front over states (E = latest expiry among open kept
    # intervals, -inf when none): Es strictly descending, cs strictly
    # descending (a larger E is only worth carrying at a higher cost).
    Es = [-inf]
    cs = [0.0]

    for i in range(m + 1):
        if i:
            # bridging charge for states whose open intervals do not span
            # the gap (E < t_i - eps); they form a suffix of the front
            thresh = times[i] - _EPS
            if Es[-1] < thresh:
                g = gap_costs[i - 1]
                lo, hi = 0, len(Es)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if Es[mid] >= thresh:
                        lo = mid + 1
                    else:
                        hi = mid
                new_E = Es[:lo]
                new_c = cs[:lo]
                best = new_c[-1] if new_c else inf
                for j in range(lo, len(Es)):
                    c = cs[j] + g
                    if c < best:
                        new_E.append(Es[j])
                        new_c.append(c)
                        best = c
                Es, cs = new_E, new_c

        nl = nxt[i]
        if nl == inf:
            continue  # last local request: no keep interval to open
        K = keep_costs[i]

        # keep branch: (max(E, nl), c + K) — entries with E <= nl collapse
        # onto E = nl at the front's minimum (= last) cost; skip branch:
        # (E, c + lam).  Both branches inherit the front's sort order, so
        # one linear merge with exact dominance filtering rebuilds it.
        n_states = len(Es)
        lo, hi = 0, n_states
        while lo < hi:
            mid = (lo + hi) // 2
            if Es[mid] > nl:
                lo = mid + 1
            else:
                hi = mid
        split = lo
        collapse = split < n_states
        k_total = split + 1 if collapse else split
        ck_last = cs[-1] + K if collapse else 0.0

        out_E: list[float] = []
        out_c: list[float] = []
        best = inf
        a = 0
        b = 0
        while True:
            if a < k_total and b < n_states:
                kE = Es[a] if a < split else nl
                sE = Es[b]
                if kE > sE:
                    E = kE
                    c = cs[a] + K if a < split else ck_last
                    a += 1
                elif sE > kE:
                    E = sE
                    c = cs[b] + lam
                    b += 1
                else:
                    c1 = cs[a] + K if a < split else ck_last
                    c2 = cs[b] + lam
                    E = kE
                    c = c1 if c1 < c2 else c2
                    a += 1
                    b += 1
            elif a < k_total:
                E = Es[a] if a < split else nl
                c = cs[a] + K if a < split else ck_last
                a += 1
            elif b < n_states:
                E = Es[b]
                c = cs[b] + lam
                b += 1
            else:
                break
            if c < best:
                out_E.append(E)
                out_c.append(c)
                best = c
        Es, cs = out_E, out_c

    return base + cs[-1]


def optimal_schedule(trace: Trace, model: CostModel) -> tuple[float, list[OfflineDecision]]:
    """Optimal cost plus the reconstructed per-request decisions.

    Runs the same DP as :func:`optimal_cost` but keeps back-pointers; the
    returned decisions are one optimal solution (ties broken toward
    "keep") and cover ``r_0 .. r_m`` (index 0 is the dummy request's
    decision about the initial copy).  Intended for inspection and the
    partition analysis rather than hot loops.
    """
    seq, nxt, rate = _prepare(trace, model)
    lam = model.lam
    m = len(seq) - 1
    if m == 0:
        return 0.0, []

    seen = {0}
    base = 0.0
    for r in seq[1:]:
        if r.server not in seen:
            base += lam
            seen.add(r.server)

    NEG = float("-inf")
    # state: E -> (cost, parent_key, decision at this step, bridged)
    Hist = dict[float, tuple[float, float | None, bool | None, bool]]
    layers: list[Hist] = []

    def decide(i: int, cur: Hist) -> Hist:
        t_i = seq[i].time
        nl = nxt[i]
        out: Hist = {}
        for E, (c, _, _, bridged) in cur.items():
            if nl != float("inf"):
                kE = max(E, nl)
                kc = c + (nl - t_i) * rate
                if kc < out.get(kE, (float("inf"), None, None, False))[0]:
                    out[kE] = (kc, E, True, bridged)
                sc = c + lam
                if sc < out.get(E, (float("inf"), None, None, False))[0]:
                    out[E] = (sc, E, False, bridged)
            else:
                if c < out.get(E, (float("inf"), None, None, False))[0]:
                    out[E] = (c, E, False, bridged)
        return out

    cur: Hist = {NEG: (0.0, None, None, False)}
    cur = decide(0, cur)
    layers.append(cur)
    for i in range(1, m + 1):
        gap = seq[i].time - seq[i - 1].time
        t_i = seq[i].time
        moved: Hist = {}
        for E, (c, _, _, _) in cur.items():
            bridged = E < t_i - _EPS
            cc = c + (gap * rate if bridged else 0.0)
            if cc < moved.get(E, (float("inf"), None, None, False))[0]:
                moved[E] = (cc, E, None, bridged)
        cur = decide(i, moved)
        layers.append(cur)

    bestE = min(cur, key=lambda E: cur[E][0])
    total = base + cur[bestE][0]

    # walk back through layers to recover decisions (r_m down to r_0)
    decisions: list[OfflineDecision] = []
    key: float | None = bestE
    for i in range(m, 0, -1):
        entry = layers[i][key]  # type: ignore[index]
        _, parent, keep, bridged = entry
        decisions.append(
            OfflineDecision(
                request_index=i,
                keep=bool(keep) if keep is not None else False,
                bridged=bool(bridged),
            )
        )
        key = parent
    # the dummy request r_0's decision (keep the initial copy at server 0
    # until its next local request) lives in layer 0
    entry0 = layers[0][key]  # type: ignore[index]
    decisions.append(
        OfflineDecision(
            request_index=0,
            keep=bool(entry0[2]) if entry0[2] is not None else False,
            bridged=False,
        )
    )
    decisions.reverse()
    return total, decisions
