"""Adapted Algorithm 1 with bounded robustness (Section 8).

The consistency/robustness trade-off of Algorithm 1 is unattractive when
``alpha`` is small: robustness ``1 + 1/alpha`` explodes.  The paper's fix
exploits that mispredictions *reveal themselves* (when a request arrives
we learn whether the previous prediction was right) and monitors an upper
bound of the online-to-optimal cost ratio online:

* ``OPT_L`` — a lower bound on the optimal offline cost: per request,
  ``lambda`` when the local gap exceeds ``lambda`` else the gap itself,
  plus the uncovered part ``(t_i - t_{i-1} - lambda)`` of long global
  gaps (the denominator of the paper's equation (11));
* ``Online_U`` — an upper bound on the online cost: the Proposition 2
  allocations of all arisen requests plus a conservative ``2 * lambda``
  for each server's still-open tail (its pending regular copy plus the
  worst-case misprediction penalty — both cases of Section 8's analysis
  are bounded by ``2 * lambda``).

Whenever ``Online_U / OPT_L > 2 + beta``, the intended duration after the
current request is forced to ``lambda`` (the conventional 2-competitive
behaviour); otherwise Algorithm 1 runs unchanged.  This maintains
robustness ``2 + beta`` while retaining consistency on good predictions.
"""

from __future__ import annotations

import math

from ..core.costs import CostModel
from ..core.simulator import SimContext
from ..core.trace import Request
from ..predictions.base import Predictor
from .learning_augmented import (
    LearningAugmentedReplication,
    RequestType,
)

__all__ = ["AdaptiveReplication"]


class AdaptiveReplication(LearningAugmentedReplication):
    """Algorithm 1 adapted to a robustness target of ``2 + beta``.

    Parameters
    ----------
    predictor, alpha:
        As in :class:`LearningAugmentedReplication`.
    beta:
        Robustness slack ``beta >= 0``; the monitored ratio is kept at or
        below ``2 + beta``.
    warmup:
        Number of initial requests during which the original Algorithm 1
        runs unconditionally while the monitors accumulate state (the
        paper uses 100).
    """

    def __init__(
        self,
        predictor: Predictor,
        alpha: float,
        beta: float,
        warmup: int = 100,
    ):
        super().__init__(predictor, alpha)
        if beta < 0:
            raise ValueError(f"beta must be >= 0, got {beta}")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.beta = float(beta)
        self.warmup = int(warmup)
        self.name = (
            f"adaptive(alpha={alpha:g}, beta={beta:g}, {predictor.name})"
        )

    # ------------------------------------------------------------------
    def reset(self, model: CostModel) -> None:
        super().reset(model)
        self.opt_lower = 0.0
        self.online_upper_base = 0.0  # sum of Prop. 2 allocations so far
        self._servers_seen: set[int] = {0}
        self._prev_global_time = 0.0
        self._requests_seen = 0
        self._force_conventional = False
        #: history of (request_index, monitored_ratio, forced) for analysis
        self.monitor_history: list[tuple[int, float, bool]] = []

    # ------------------------------------------------------------------
    @property
    def online_upper(self) -> float:
        """Current ``Online_U``: allocations + 2*lambda per active server."""
        assert self._model is not None
        return self.online_upper_base + 2.0 * self._model.lam * len(
            self._servers_seen
        )

    @property
    def monitored_ratio(self) -> float:
        """Current ``Online_U / OPT_L`` (inf while ``OPT_L = 0``)."""
        if self.opt_lower <= 0.0:
            return float("inf")
        return self.online_upper / self.opt_lower

    # ------------------------------------------------------------------
    def _note_request(
        self,
        ctx: SimContext,
        request: Request,
        rtype: RequestType,
        l_i: float,
        t_prime: float,
        t_p: float,
    ) -> None:
        assert self._model is not None
        lam = self._model.lam
        t = request.time
        self._requests_seen += 1
        self._servers_seen.add(request.server)

        # --- OPT_L (denominator of eq. 11) -----------------------------
        local_gap = t - t_p if not math.isnan(t_p) else float("inf")
        self.opt_lower += lam if local_gap > lam else local_gap
        global_gap = t - self._prev_global_time
        if global_gap > lam:
            self.opt_lower += global_gap - lam
        self._prev_global_time = t

        # --- Online_U (Prop. 2 allocations of arisen requests) ---------
        if rtype is RequestType.TYPE_1:
            self.online_upper_base += lam + (0.0 if math.isnan(l_i) else l_i)
        elif rtype is RequestType.TYPE_2:
            self.online_upper_base += (
                lam + (t - t_prime) + (0.0 if math.isnan(l_i) else l_i)
            )
        else:  # Type-3 / Type-4: t_i - t_p(i)
            self.online_upper_base += t - t_p

        # --- trip / release the conventional fallback -------------------
        forced = False
        if self._requests_seen > self.warmup:
            forced = self.monitored_ratio > 2.0 + self.beta
        self._force_conventional = forced
        self.monitor_history.append(
            (request.index, self.monitored_ratio, forced)
        )

    # ------------------------------------------------------------------
    def _duration_for(self, predicted_within: bool) -> float:
        assert self._model is not None
        if self._force_conventional:
            return self._model.lam
        return super()._duration_for(predicted_within)
