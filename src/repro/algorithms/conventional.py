"""Prediction-free online baselines.

``ConventionalReplication`` is Algorithm 1 with ``alpha = 1``: the
intended duration after every request is exactly ``lambda`` regardless of
predictions.  The paper (Section 8, Section 11) notes this is the best
achievable deterministic online strategy without predictions, with a
competitive ratio of 2 — improving on the ratio 3 of Wang et al. [16].
"""

from __future__ import annotations

from ..predictions.base import Predictor
from .learning_augmented import LearningAugmentedReplication

__all__ = ["ConventionalReplication"]


class _IgnoredPredictor(Predictor):
    """Placeholder predictor; its output is irrelevant at ``alpha = 1``."""

    name = "ignored"

    def predict_within(self, server: int, time: float, lam: float) -> bool:
        return False


class ConventionalReplication(LearningAugmentedReplication):
    """The 2-competitive prediction-free strategy (``alpha = 1``).

    With ``alpha = 1`` both prediction branches of Algorithm 1 select the
    same intended duration ``lambda``, so the predictor is never able to
    influence behaviour; we pass a constant one for clarity.
    """

    def __init__(self) -> None:
        super().__init__(_IgnoredPredictor(), alpha=1.0)
        self.name = "conventional(alpha=1)"
