"""Online replication algorithms: the paper's Algorithm 1, its adaptive
variant, and every baseline used in the evaluation."""

from .adaptive import AdaptiveReplication
from .conventional import ConventionalReplication
from .learning_augmented import (
    LearningAugmentedReplication,
    RequestClassification,
    RequestType,
)
from .naive import AlwaysHold, BlindFollowPredictions, NeverHold
from .randomized import RandomizedSkiRental, sample_ski_rental_duration
from .wang import WangReplication

__all__ = [
    "RandomizedSkiRental",
    "sample_ski_rental_duration",
    "LearningAugmentedReplication",
    "RequestClassification",
    "RequestType",
    "AdaptiveReplication",
    "ConventionalReplication",
    "WangReplication",
    "AlwaysHold",
    "NeverHold",
    "BlindFollowPredictions",
]
