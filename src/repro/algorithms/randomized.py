"""Randomized ski-rental replication baseline.

The paper's related work (Kumar et al. [8], Karlin et al. [6]) centres on
the ski-rental problem, where randomization improves the deterministic
factor 2 to ``e/(e-1) ~ 1.58`` in expectation.  Replication at a single
server is ski-rental-like (hold = buy amortised per unit time, transfer
= rent), so a natural baseline — and a candidate the paper implicitly
compares against by fixing deterministic durations — draws each copy's
intended duration from the classical optimal density

    f(z) = e^z / (e - 1),  z in [0, 1]   (duration = z * lambda)

independently per request.  The at-least-one-copy patch (special copies)
is kept, as without it no strategy is feasible.

This is *not* an algorithm from the paper; it is an extension baseline
for the ablation benchmarks.  Its per-server expected competitive ratio
against a non-adaptive adversary is ``e/(e-1)``, but the multi-server
interaction (transfers can originate anywhere) means no global guarantee
is claimed — the benchmarks measure it empirically.
"""

from __future__ import annotations

import numpy as np

from ..core.costs import CostModel
from ..core.policy import ReplicationPolicy
from ..core.simulator import SimContext
from ..core.trace import Request

__all__ = ["RandomizedSkiRental", "sample_ski_rental_duration"]


def sample_ski_rental_duration(rng: np.random.Generator, lam: float) -> float:
    """One draw from the optimal randomized ski-rental density.

    Inverse-CDF sampling of ``f(z) = e^z/(e-1)`` on ``[0, 1]``:
    ``F(z) = (e^z - 1)/(e - 1)``, so ``z = ln(1 + u (e - 1))`` for
    uniform ``u``.  Returns ``z * lam``.
    """
    u = rng.random()
    z = float(np.log1p(u * (np.e - 1.0)))
    return z * lam


class RandomizedSkiRental(ReplicationPolicy):
    """Hold each copy for an independently sampled random duration.

    Parameters
    ----------
    seed:
        RNG seed (runs are reproducible given the seed).
    scale:
        Multiplier on the sampled duration (1.0 = classical ski-rental
        thresholds in ``[0, lambda]``).
    """

    def __init__(self, seed: int = 0, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.seed = int(seed)
        self.scale = float(scale)
        self.name = f"randomized-ski-rental(seed={seed})"

    def reset(self, model: CostModel) -> None:
        self._model = model
        self._rng = np.random.default_rng(self.seed)

    def _duration(self) -> float:
        return self.scale * sample_ski_rental_duration(self._rng, self._model.lam)

    def on_init(self, ctx: SimContext) -> None:
        d = self._duration()
        ctx.copy_record(0).intended_duration = d
        ctx.schedule_expiry(0, d)

    def on_request(self, ctx: SimContext, request: Request) -> None:
        j = request.server
        if ctx.has_copy(j):
            ctx.serve_local()
            ctx.renew_copy(j, float("nan"), request.index)
        else:
            source = min(ctx.holders())
            source_special = ctx.is_special(source)
            ctx.serve_via_transfer(source)
            ctx.create_copy(j, opening_request=request.index)
            if source_special:
                ctx.drop_copy(source)
        d = self._duration()
        ctx.copy_record(j).intended_duration = d
        ctx.schedule_expiry(j, request.time + d)

    def on_expiry(self, ctx: SimContext, server: int, time: float) -> None:
        if ctx.copy_count == 1:
            ctx.mark_special(server)
        else:
            ctx.drop_copy(server)
