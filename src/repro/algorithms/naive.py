"""Naive baseline strategies.

These are the extreme points of the storage/transfer trade-off plus the
Section 3 strawman that trusts predictions unconditionally.  None has a
bounded competitive ratio in general; they exist to anchor benchmark
tables and to demonstrate *why* the paper's balancing is necessary.
"""

from __future__ import annotations

from ..core.costs import CostModel
from ..core.policy import ReplicationPolicy
from ..core.simulator import SimContext
from ..core.trace import Request
from ..predictions.base import Predictor

__all__ = ["AlwaysHold", "NeverHold", "BlindFollowPredictions"]


class AlwaysHold(ReplicationPolicy):
    """Create a copy at every server on first access and never drop it.

    Minimises transfers (one per server) at unbounded storage cost; the
    right extreme when requests are extremely dense everywhere.
    """

    name = "always-hold"

    def reset(self, model: CostModel) -> None:
        self._model = model

    def on_request(self, ctx: SimContext, request: Request) -> None:
        if ctx.has_copy(request.server):
            ctx.serve_local()
        else:
            ctx.serve_via_transfer(min(ctx.holders()))
            ctx.create_copy(request.server, opening_request=request.index)


class NeverHold(ReplicationPolicy):
    """Keep only the initial copy at server 0; serve all others by transfer.

    Minimises storage (exactly one copy) at unbounded transfer cost; the
    left extreme when requests are sparse.
    """

    name = "never-hold"

    def reset(self, model: CostModel) -> None:
        self._model = model

    def on_request(self, ctx: SimContext, request: Request) -> None:
        if ctx.has_copy(request.server):
            ctx.serve_local()
        else:
            ctx.serve_via_transfer(min(ctx.holders()))


class BlindFollowPredictions(ReplicationPolicy):
    """Section 3's strawman: trust predictions unconditionally.

    * predicted within ``lambda``: hold the copy until the next local
      request, **however long that takes** (this is what breaks
      robustness — a misprediction can cost unbounded storage);
    * predicted beyond ``lambda``: drop the copy immediately after
      serving, unless it is the system's only copy (kept as a special
      copy until the next request anywhere, to preserve feasibility).

    With perfect predictions this strategy is cost-optimal per server;
    with mispredictions its competitive ratio is unbounded in both
    directions (Section 3's discussion).
    """

    def __init__(self, predictor: Predictor):
        self.predictor = predictor
        self.name = f"blind-follow({predictor.name})"

    def reset(self, model: CostModel) -> None:
        self._model = model

    def on_init(self, ctx: SimContext) -> None:
        self.predictor.observe(0, 0.0)
        if not self.predictor.predict_within(0, 0.0, self._model.lam):
            # cannot drop the only copy: it simply persists as the last copy
            ctx.mark_special(0)
        # predicted within: hold until the next local request (no expiry)

    def on_request(self, ctx: SimContext, request: Request) -> None:
        j = request.server
        if ctx.has_copy(j):
            ctx.serve_local()
            ctx.renew_copy(j, float("inf"), request.index)
        else:
            source = min(ctx.holders())
            source_special = ctx.is_special(source)
            ctx.serve_via_transfer(source)
            ctx.create_copy(j, opening_request=request.index)
            if source_special:
                ctx.drop_copy(source)
        self.predictor.observe(j, request.time)
        if self.predictor.predict_within(j, request.time, self._model.lam):
            return  # hold with no expiry until the next local request
        # predicted beyond: drop right away unless it is the only copy
        if ctx.copy_count == 1:
            ctx.mark_special(j)
        else:
            ctx.drop_copy(j)
