"""The online algorithm of Wang et al. [17] (INFOCOM 2021).

Reproduced from the paper's Section 11 description, where it serves as a
baseline and as the subject of the counterexample (Figure 9) refuting the
claimed competitive ratio of 2: the true ratio is at least 5/2 even with
uniform storage rates.

Servers may have distinct storage cost rates ``mu(s_0) <= ... <=
mu(s_{n-1})`` (server 0 is the cheapest).  Behaviour:

* after serving a local request, server ``s_i`` keeps the copy for
  ``lambda / mu(s_i)`` time units (storage over this period costs exactly
  one transfer);
* a local request within the period renews it;
* when server 0's copy expires: renew for another period if it is the
  only copy, else drop;
* when server ``i != 0``'s copy expires: drop unless it is the only copy;
  if it is the only copy and this is the *first* expiry since the last
  local request, renew once; on the *second* consecutive expiry, transfer
  the object to server 0 and drop the local copy.
"""

from __future__ import annotations

from ..core.costs import CostModel
from ..core.policy import PolicyError, ReplicationPolicy
from ..core.simulator import SimContext
from ..core.trace import Request

__all__ = ["WangReplication"]


class WangReplication(ReplicationPolicy):
    """Wang et al.'s storage-rate-aware online replication strategy."""

    name = "wang2021"

    def reset(self, model: CostModel) -> None:
        rates = model.storage_rates
        if any(rates[i] > rates[i + 1] for i in range(len(rates) - 1)):
            raise PolicyError(
                "WangReplication requires servers indexed by ascending "
                "storage rate (mu(s_0) <= ... <= mu(s_{n-1}))"
            )
        self._model = model
        # True when the server's only-copy has already been renewed once
        # since its most recent local request
        self._renewed_once: dict[int, bool] = {}

    def _period(self, server: int) -> float:
        return self._model.lam / self._model.rate(server)

    def on_init(self, ctx: SimContext) -> None:
        # the paper's boundary assumption: the object starts at s_0 and the
        # first (dummy) request arises there at time 0
        self._renewed_once[0] = False
        ctx.schedule_expiry(0, self._period(0))

    def on_request(self, ctx: SimContext, request: Request) -> None:
        j = request.server
        if ctx.has_copy(j):
            ctx.serve_local()
            ctx.renew_copy(j, self._period(j), request.index)
        else:
            source = min(ctx.holders())
            ctx.serve_via_transfer(source)
            ctx.create_copy(j, opening_request=request.index)
            ctx.copy_record(j).intended_duration = self._period(j)
        self._renewed_once[j] = False
        ctx.schedule_expiry(j, request.time + self._period(j))

    def on_expiry(self, ctx: SimContext, server: int, time: float) -> None:
        only_copy = ctx.copy_count == 1
        if server == 0:
            if only_copy:
                # cheapest server: keep renewing while it holds the last copy
                ctx.schedule_expiry(0, time + self._period(0))
            else:
                ctx.drop_copy(0)
            return
        if not only_copy:
            ctx.drop_copy(server)
            return
        if not self._renewed_once.get(server, False):
            # first expiry since the last local request: renew once
            self._renewed_once[server] = True
            ctx.schedule_expiry(server, time + self._period(server))
        else:
            # second consecutive expiry: ship the object to the cheapest
            # server and drop the local copy
            ctx.transfer_copy(server, 0)
            ctx.copy_record(0).intended_duration = self._period(0)
            ctx.drop_copy(server)
            self._renewed_once[server] = False
            ctx.schedule_expiry(0, time + self._period(0))
