"""Algorithm 1: Dynamic Replication with Predictions.

This is the paper's primary contribution (Section 3).  Each server keeps
a *regular copy* for an intended duration after serving a local request:

* ``lambda`` when the next local request is predicted within ``lambda``;
* ``alpha * lambda`` when predicted beyond, with ``alpha in (0, 1]`` the
  distrust hyper-parameter (``alpha -> 0`` trusts predictions fully,
  ``alpha = 1`` ignores them).

When a regular copy expires while being the only copy in the system it
becomes a *special copy* (tag ``K_j = 1``) and is kept until the next
request anywhere: a local request renews it; a remote request is served
by a transfer after which the special copy is dropped (so at least one
copy always exists).

Guarantees (proved in the paper, verified empirically by this repo's
tests and benchmarks): ``(5 + alpha) / 3``-consistency and
``(1 + 1/alpha)``-robustness.

The implementation also classifies every request into the paper's
Type-1/2/3/4 taxonomy (Section 4.1) and records the quantities (``l_i``,
``t'_i``) needed for the Proposition 2 cost allocation, which powers both
the analysis module and the adaptive variant of Section 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.costs import CostModel
from ..core.policy import PolicyError, ReplicationPolicy
from ..core.simulator import SimContext
from ..core.trace import Request
from ..predictions.base import Predictor

__all__ = ["RequestType", "RequestClassification", "LearningAugmentedReplication"]


class RequestType(enum.Enum):
    """The paper's Section 4.1 request taxonomy.

    * ``TYPE_1`` — served by a transfer from a *regular* copy;
    * ``TYPE_2`` — served by a transfer from a *special* copy;
    * ``TYPE_3`` — served by a local *regular* copy;
    * ``TYPE_4`` — served by a local *special* copy.
    """

    TYPE_1 = 1
    TYPE_2 = 2
    TYPE_3 = 3
    TYPE_4 = 4


@dataclass(frozen=True)
class RequestClassification:
    """Per-request record backing the Proposition 2 cost allocation.

    Attributes
    ----------
    request_index:
        Global index of the request ``r_i``.
    rtype:
        The request's :class:`RequestType`.
    l_i:
        Intended duration of the regular copy at ``s[r_i]`` after
        ``r_{p(i)}`` (``nan`` for the first request at a server, whose
        allocation instead receives a trailing-copy duration).
    t_prime:
        Switch time of the serving special copy (Type-2/4 only, else
        ``nan``).
    t_i:
        Arrival time.
    t_p:
        Time of the preceding local request ``r_{p(i)}`` (``nan`` for
        first requests; 0.0 when the predecessor is the dummy request).
    duration_set:
        The new intended duration chosen after serving ``r_i``.
    predicted_within:
        The prediction consumed when serving ``r_i``.
    """

    request_index: int
    rtype: RequestType
    l_i: float
    t_prime: float
    t_i: float
    t_p: float
    duration_set: float
    predicted_within: bool

    @property
    def allocated_cost(self) -> float:
        """Proposition 2 allocation (excluding first-request trailing terms).

        Type-1: ``l_i + lambda`` — the ``lambda`` term is added by the
        caller (it needs the cost model); this property returns only the
        storage component, i.e. everything except transfer costs.
        """
        if self.rtype is RequestType.TYPE_1:
            return self.l_i
        if self.rtype is RequestType.TYPE_2:
            return (self.t_i - self.t_prime) + self.l_i
        # Type-3 and Type-4: t_i - t_p(i)
        return self.t_i - self.t_p


class LearningAugmentedReplication(ReplicationPolicy):
    """The paper's Algorithm 1.

    Parameters
    ----------
    predictor:
        Source of binary inter-request-time predictions.
    alpha:
        Distrust level in ``(0, 1]``.  ``alpha = 0`` is accepted when
        ``allow_zero_alpha=True`` for studying the full-trust limit
        (robustness is then unbounded, cf. Section 3).
    allow_zero_alpha:
        Permit ``alpha = 0`` (drop predicted-beyond copies immediately).
    """

    def __init__(
        self,
        predictor: Predictor,
        alpha: float,
        allow_zero_alpha: bool = False,
    ):
        if not (alpha > 0.0 or (allow_zero_alpha and alpha == 0.0)) or alpha > 1.0:
            raise ValueError(
                f"alpha must be in (0, 1] (or 0 with allow_zero_alpha), got {alpha}"
            )
        self.predictor = predictor
        self.alpha = float(alpha)
        self.name = f"algorithm1(alpha={alpha:g}, {predictor.name})"
        self._model: CostModel | None = None
        # per-server intended duration set by the most recent local request
        self._last_duration: dict[int, float] = {}
        self.classifications: list[RequestClassification] = []
        self._last_local_time: dict[int, float] = {}

    # ------------------------------------------------------------------
    def reset(self, model: CostModel) -> None:
        if not model.uniform_storage:
            raise PolicyError(
                "Algorithm 1 assumes uniform storage rates (paper Section 2)"
            )
        self._model = model
        self._last_duration = {}
        self._last_local_time = {}
        self.classifications = []

    # ------------------------------------------------------------------
    def _intended_duration(self, server: int, time: float) -> tuple[float, bool]:
        """Duration from the prediction: ``lambda`` if within else ``alpha*lambda``."""
        assert self._model is not None
        lam = self._model.lam
        within = self.predictor.predict_within(server, time, lam)
        return self._duration_for(within), within

    def _duration_for(self, predicted_within: bool) -> float:
        """Map a prediction to an intended duration (adaptive overrides)."""
        assert self._model is not None
        lam = self._model.lam
        return lam if predicted_within else self.alpha * lam

    def _note_request(
        self,
        ctx: SimContext,
        request: Request,
        rtype: RequestType,
        l_i: float,
        t_prime: float,
        t_p: float,
    ) -> None:
        """Hook called after serving/classifying ``request`` but before the
        new intended duration is chosen (the adaptive variant updates its
        cost monitors here)."""

    def on_init(self, ctx: SimContext) -> None:
        """Set the initial copy's intended duration from the ``r_0`` prediction."""
        self.predictor.observe(0, 0.0)
        duration, _ = self._intended_duration(0, 0.0)
        rec = ctx.copy_record(0)
        rec.intended_duration = duration
        self._last_duration[0] = duration
        self._last_local_time[0] = 0.0
        ctx.schedule_expiry(0, duration)

    # ------------------------------------------------------------------
    def on_request(self, ctx: SimContext, request: Request) -> None:
        assert self._model is not None
        j = request.server
        t = request.time
        lam = self._model.lam

        l_i = self._last_duration.get(j, float("nan"))
        t_p = self._last_local_time.get(j, float("nan"))

        if ctx.has_copy(j):
            # lines 4-5: serve by the local copy (t_i <= E_j or K_j = 1)
            special = ctx.is_special(j)
            t_prime = ctx.copy_record(j).special_at if special else float("nan")
            ctx.serve_local()
            rtype = RequestType.TYPE_4 if special else RequestType.TYPE_3
        else:
            # lines 6-9: serve by a transfer from any server with a copy
            source = self._pick_source(ctx)
            special = ctx.is_special(source)
            t_prime = ctx.copy_record(source).special_at if special else float("nan")
            ctx.serve_via_transfer(source)
            if special:
                # lines 15-19: the special copy is dropped right after the
                # outgoing transfer (the new copy at s_j keeps c >= 1)
                ctx.create_copy(j, opening_request=request.index)
                ctx.drop_copy(source)
            else:
                ctx.create_copy(j, opening_request=request.index)
            rtype = RequestType.TYPE_2 if special else RequestType.TYPE_1

        # lines 10-14: set the new intended duration from the prediction
        self.predictor.observe(j, t)
        self._note_request(ctx, request, rtype, l_i, t_prime, t_p)
        duration, within = self._intended_duration(j, t)
        if ctx.copy_record(j).opening_request != request.index:
            ctx.renew_copy(j, duration, request.index)
        rec = ctx.copy_record(j)
        rec.intended_duration = duration
        ctx.schedule_expiry(j, t + duration)
        self._last_duration[j] = duration
        self._last_local_time[j] = t

        self.classifications.append(
            RequestClassification(
                request_index=request.index,
                rtype=rtype,
                l_i=l_i,
                t_prime=t_prime,
                t_i=t,
                t_p=t_p,
                duration_set=duration,
                predicted_within=within,
            )
        )

    # ------------------------------------------------------------------
    def on_expiry(self, ctx: SimContext, server: int, time: float) -> None:
        """Lines 20-25: drop the copy unless it is the system's last one."""
        if ctx.copy_count == 1:
            ctx.mark_special(server)
        else:
            ctx.drop_copy(server)

    # ------------------------------------------------------------------
    @staticmethod
    def _pick_source(ctx: SimContext) -> int:
        """Deterministic transfer source: any holder (minimum index).

        By Proposition 1 a special copy is always the only copy, so the
        regular/special distinction of the source never depends on this
        tie-break; costs are identical for all sources (uniform lambda).
        """
        holders = ctx.holders()
        if not holders:
            raise PolicyError("no copy in the system — invariant violated")
        return min(holders)
