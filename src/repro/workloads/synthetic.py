"""Synthetic workload generators.

All generators are deterministic given a seed and produce validated
:class:`~repro.core.trace.Trace` objects.  ``zipf_assignment`` reproduces
the paper's experimental setup (Appendix J.1): requests of one object are
distributed over servers with probability proportional to ``1/i``.
"""

from __future__ import annotations

import numpy as np

from ..core.trace import Trace

__all__ = [
    "zipf_server_probabilities",
    "assign_servers_zipf",
    "dedupe_times",
    "poisson_trace",
    "bursty_trace",
    "periodic_trace",
    "diurnal_trace",
    "uniform_random_trace",
]


def zipf_server_probabilities(n: int, exponent: float = 1.0) -> np.ndarray:
    """The paper's Zipf law: server ``i`` (1-based) has probability
    ``i^-exponent / sum_j j^-exponent``."""
    if n <= 0:
        raise ValueError(f"need n >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-exponent)
    return w / w.sum()


def assign_servers_zipf(
    times: np.ndarray, n: int, exponent: float = 1.0, seed: int = 0
) -> Trace:
    """Assign each arrival time to a server by the paper's Zipf rule."""
    rng = np.random.default_rng(seed)
    probs = zipf_server_probabilities(n, exponent)
    servers = rng.choice(n, size=len(times), p=probs)
    times = np.sort(np.asarray(times, dtype=float))
    times = dedupe_times(times)
    return Trace.from_arrays(times, servers, n=n)


def dedupe_times(times: np.ndarray, min_sep: float = 1e-9) -> np.ndarray:
    """Enforce strictly increasing times (the paper assumes distinct
    arrival instants) by nudging collisions forward.

    The already-strictly-increasing common case is detected with one
    vectorized comparison and returned as-is (no copy); only a trace
    with actual collisions falls back to the sequential nudge, starting
    at the first violation (the nudge recurrence ``out[i] = out[i-1] +
    min_sep`` depends on its own output, so the fallback stays a loop to
    keep the produced times bit-identical).
    """
    times = np.asarray(times, dtype=float)
    m = len(times)
    if m == 0 or bool(np.all(times[1:] > times[:-1])):
        return times
    out = times.copy()
    start = int(np.argmax(out[1:] <= out[:-1])) + 1
    for i in range(start, m):
        if out[i] <= out[i - 1]:
            out[i] = out[i - 1] + min_sep
    return out


def poisson_trace(
    n: int,
    rate: float,
    horizon: float,
    seed: int = 0,
    zipf_exponent: float | None = 1.0,
) -> Trace:
    """Poisson arrivals at aggregate ``rate`` over ``[0, horizon]``.

    Servers are assigned by the Zipf rule (or uniformly when
    ``zipf_exponent`` is None).
    """
    if rate <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    rng = np.random.default_rng(seed)
    m = rng.poisson(rate * horizon)
    times = np.sort(rng.uniform(0.0, horizon, size=m))
    times = times[times > 0]
    times = dedupe_times(times)
    if zipf_exponent is None:
        servers = rng.integers(0, n, size=len(times))
        return Trace.from_arrays(times, servers, n=n)
    return assign_servers_zipf(times, n, zipf_exponent, seed=seed + 1)


def bursty_trace(
    n: int,
    n_bursts: int,
    burst_size: int,
    burst_spread: float,
    quiet_gap: float,
    seed: int = 0,
) -> Trace:
    """Alternating burst/idle arrivals (a two-state MMPP-style process).

    Each burst drops ``burst_size`` requests within ``burst_spread`` time
    units at one Zipf-chosen server, separated by exponential quiet gaps
    of mean ``quiet_gap``.  This stresses the within/beyond-``lambda``
    boundary that drives Algorithm 1's decisions.
    """
    rng = np.random.default_rng(seed)
    probs = zipf_server_probabilities(n)
    time_parts: list[np.ndarray] = []
    burst_servers = np.empty(n_bursts, dtype=np.int64)
    t = 0.0
    for b in range(n_bursts):
        t += rng.exponential(quiet_gap)
        burst_servers[b] = int(rng.choice(n, p=probs))
        offsets = np.sort(rng.uniform(0.0, burst_spread, size=burst_size))
        time_parts.append(t + offsets)
        t += burst_spread
    times = (
        np.concatenate(time_parts) if time_parts else np.empty(0, dtype=float)
    )
    servers = np.repeat(burst_servers, burst_size)
    order = np.lexsort((servers, times))
    return Trace.from_arrays(dedupe_times(times[order]), servers[order], n=n)


def periodic_trace(
    n: int,
    period: float,
    cycles: int,
    jitter: float = 0.0,
    seed: int = 0,
) -> Trace:
    """Round-robin periodic arrivals: one request per server per cycle.

    With ``jitter = 0`` the trace is fully deterministic — useful for
    hand-checkable tests.
    """
    rng = np.random.default_rng(seed)
    base = np.arange(1, cycles * n + 1, dtype=float) * period
    if jitter:
        times = base + rng.uniform(-jitter, jitter, size=cycles * n)
    else:
        times = base
    times = np.maximum(times, 1e-9)
    servers = np.tile(np.arange(n, dtype=np.int64), cycles)
    order = np.lexsort((servers, times))
    return Trace.from_arrays(dedupe_times(times[order]), servers[order], n=n)


def diurnal_trace(
    n: int,
    days: int,
    base_rate: float,
    peak_rate: float,
    day_length: float = 1440.0,
    tail_exponent: float = 1.5,
    max_session: int = 50,
    session_spread: float = 5.0,
    seed: int = 0,
) -> Trace:
    """Diurnal arrivals with heavy-tailed sessions.

    Session *starts* follow a nonhomogeneous Poisson process (thinning)
    whose intensity swings sinusoidally between ``base_rate`` (nightly
    trough) and ``peak_rate`` (midday peak) over each ``day_length``
    period; each session issues ``1 + floor(Pareto(tail_exponent))``
    requests (clipped at ``max_session``) at one Zipf-chosen server,
    spread uniformly over ``session_spread`` time units.

    The mix exercises both regimes Algorithm 1 has to trade off: dense
    daytime sessions reward holding copies (within-``lambda`` gaps),
    while the heavy tail and the overnight troughs punish over-holding —
    and the load pattern is the canonical shape of real user-facing
    traffic, which the flat Poisson and burst generators above do not
    capture.
    """
    if days <= 0 or day_length <= 0:
        raise ValueError("days and day_length must be positive")
    if not 0 <= base_rate <= peak_rate or peak_rate <= 0:
        raise ValueError("need 0 <= base_rate <= peak_rate with peak_rate > 0")
    if tail_exponent <= 0:
        raise ValueError(f"tail_exponent must be > 0, got {tail_exponent}")
    if max_session < 1:
        raise ValueError(f"max_session must be >= 1, got {max_session}")
    rng = np.random.default_rng(seed)
    horizon = days * day_length
    n_candidates = rng.poisson(peak_rate * horizon)
    candidates = np.sort(rng.uniform(0.0, horizon, size=n_candidates))
    phase = 2.0 * np.pi * candidates / day_length
    intensity = base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - np.cos(phase))
    starts = candidates[rng.random(n_candidates) < intensity / peak_rate]
    probs = zipf_server_probabilities(n)
    servers = rng.choice(n, size=len(starts), p=probs)
    sizes = 1 + np.minimum(
        rng.pareto(tail_exponent, size=len(starts)), max_session - 1
    ).astype(int)
    # one batched draw consumes the PCG64 stream exactly as the per-
    # session draws would; a lexsort keyed by session id sorts every
    # session's offsets at once (the per-session np.sort equivalent)
    total = int(sizes.sum())
    draws = rng.uniform(0.0, session_spread, size=total)
    session_ids = np.repeat(np.arange(len(sizes)), sizes)
    offsets = draws[np.lexsort((draws, session_ids))]
    times = np.repeat(starts, sizes) + offsets
    req_servers = np.repeat(servers.astype(np.int64), sizes)
    order = np.lexsort((req_servers, times))
    times = dedupe_times(np.maximum(times[order], 1e-9))
    return Trace.from_arrays(times, req_servers[order], n=n)


def uniform_random_trace(
    n: int, m: int, horizon: float, seed: int = 0
) -> Trace:
    """``m`` uniformly random arrivals with uniform server choice.

    The workhorse for property-based tests: no structure at all.
    """
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(horizon * 1e-6, horizon, size=m))
    times = dedupe_times(times)
    servers = rng.integers(0, n, size=m)
    return Trace.from_arrays(times, servers, n=n)
