"""Synthetic workload generators.

All generators are deterministic given a seed and produce validated
:class:`~repro.core.trace.Trace` objects.  ``zipf_assignment`` reproduces
the paper's experimental setup (Appendix J.1): requests of one object are
distributed over servers with probability proportional to ``1/i``.
"""

from __future__ import annotations

import numpy as np

from ..core.trace import Trace

__all__ = [
    "zipf_server_probabilities",
    "assign_servers_zipf",
    "poisson_trace",
    "bursty_trace",
    "periodic_trace",
    "diurnal_trace",
    "uniform_random_trace",
]


def zipf_server_probabilities(n: int, exponent: float = 1.0) -> np.ndarray:
    """The paper's Zipf law: server ``i`` (1-based) has probability
    ``i^-exponent / sum_j j^-exponent``."""
    if n <= 0:
        raise ValueError(f"need n >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-exponent)
    return w / w.sum()


def assign_servers_zipf(
    times: np.ndarray, n: int, exponent: float = 1.0, seed: int = 0
) -> Trace:
    """Assign each arrival time to a server by the paper's Zipf rule."""
    rng = np.random.default_rng(seed)
    probs = zipf_server_probabilities(n, exponent)
    servers = rng.choice(n, size=len(times), p=probs)
    times = np.sort(np.asarray(times, dtype=float))
    times = _dedupe_times(times)
    return Trace.from_arrays(times, servers, n=n)


def _dedupe_times(times: np.ndarray, min_sep: float = 1e-9) -> np.ndarray:
    """Enforce strictly increasing times (the paper assumes distinct
    arrival instants) by nudging collisions forward."""
    out = times.copy()
    for i in range(1, len(out)):
        if out[i] <= out[i - 1]:
            out[i] = out[i - 1] + min_sep
    return out


def poisson_trace(
    n: int,
    rate: float,
    horizon: float,
    seed: int = 0,
    zipf_exponent: float | None = 1.0,
) -> Trace:
    """Poisson arrivals at aggregate ``rate`` over ``[0, horizon]``.

    Servers are assigned by the Zipf rule (or uniformly when
    ``zipf_exponent`` is None).
    """
    if rate <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be positive")
    rng = np.random.default_rng(seed)
    m = rng.poisson(rate * horizon)
    times = np.sort(rng.uniform(0.0, horizon, size=m))
    times = times[times > 0]
    times = _dedupe_times(times)
    if zipf_exponent is None:
        servers = rng.integers(0, n, size=len(times))
        return Trace.from_arrays(times, servers, n=n)
    return assign_servers_zipf(times, n, zipf_exponent, seed=seed + 1)


def bursty_trace(
    n: int,
    n_bursts: int,
    burst_size: int,
    burst_spread: float,
    quiet_gap: float,
    seed: int = 0,
) -> Trace:
    """Alternating burst/idle arrivals (a two-state MMPP-style process).

    Each burst drops ``burst_size`` requests within ``burst_spread`` time
    units at one Zipf-chosen server, separated by exponential quiet gaps
    of mean ``quiet_gap``.  This stresses the within/beyond-``lambda``
    boundary that drives Algorithm 1's decisions.
    """
    rng = np.random.default_rng(seed)
    probs = zipf_server_probabilities(n)
    items: list[tuple[float, int]] = []
    t = 0.0
    for _ in range(n_bursts):
        t += rng.exponential(quiet_gap)
        server = int(rng.choice(n, p=probs))
        offsets = np.sort(rng.uniform(0.0, burst_spread, size=burst_size))
        for off in offsets:
            items.append((t + off, server))
        t += burst_spread
    items.sort()
    times = _dedupe_times(np.array([x[0] for x in items]))
    servers = [x[1] for x in items]
    return Trace.from_arrays(times, servers, n=n)


def periodic_trace(
    n: int,
    period: float,
    cycles: int,
    jitter: float = 0.0,
    seed: int = 0,
) -> Trace:
    """Round-robin periodic arrivals: one request per server per cycle.

    With ``jitter = 0`` the trace is fully deterministic — useful for
    hand-checkable tests.
    """
    rng = np.random.default_rng(seed)
    items: list[tuple[float, int]] = []
    for c in range(cycles):
        for s in range(n):
            base = (c * n + s + 1) * period
            t = base + (rng.uniform(-jitter, jitter) if jitter else 0.0)
            items.append((max(t, 1e-9), s))
    items.sort()
    times = _dedupe_times(np.array([x[0] for x in items]))
    servers = [x[1] for x in items]
    return Trace.from_arrays(times, servers, n=n)


def diurnal_trace(
    n: int,
    days: int,
    base_rate: float,
    peak_rate: float,
    day_length: float = 1440.0,
    tail_exponent: float = 1.5,
    max_session: int = 50,
    session_spread: float = 5.0,
    seed: int = 0,
) -> Trace:
    """Diurnal arrivals with heavy-tailed sessions.

    Session *starts* follow a nonhomogeneous Poisson process (thinning)
    whose intensity swings sinusoidally between ``base_rate`` (nightly
    trough) and ``peak_rate`` (midday peak) over each ``day_length``
    period; each session issues ``1 + floor(Pareto(tail_exponent))``
    requests (clipped at ``max_session``) at one Zipf-chosen server,
    spread uniformly over ``session_spread`` time units.

    The mix exercises both regimes Algorithm 1 has to trade off: dense
    daytime sessions reward holding copies (within-``lambda`` gaps),
    while the heavy tail and the overnight troughs punish over-holding —
    and the load pattern is the canonical shape of real user-facing
    traffic, which the flat Poisson and burst generators above do not
    capture.
    """
    if days <= 0 or day_length <= 0:
        raise ValueError("days and day_length must be positive")
    if not 0 <= base_rate <= peak_rate or peak_rate <= 0:
        raise ValueError("need 0 <= base_rate <= peak_rate with peak_rate > 0")
    if tail_exponent <= 0:
        raise ValueError(f"tail_exponent must be > 0, got {tail_exponent}")
    if max_session < 1:
        raise ValueError(f"max_session must be >= 1, got {max_session}")
    rng = np.random.default_rng(seed)
    horizon = days * day_length
    n_candidates = rng.poisson(peak_rate * horizon)
    candidates = np.sort(rng.uniform(0.0, horizon, size=n_candidates))
    phase = 2.0 * np.pi * candidates / day_length
    intensity = base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - np.cos(phase))
    starts = candidates[rng.random(n_candidates) < intensity / peak_rate]
    probs = zipf_server_probabilities(n)
    servers = rng.choice(n, size=len(starts), p=probs)
    sizes = 1 + np.minimum(
        rng.pareto(tail_exponent, size=len(starts)), max_session - 1
    ).astype(int)
    items: list[tuple[float, int]] = []
    for t0, server, size in zip(starts, servers, sizes):
        offsets = np.sort(rng.uniform(0.0, session_spread, size=size))
        for off in offsets:
            items.append((t0 + off, int(server)))
    items.sort()
    times = _dedupe_times(
        np.maximum(np.array([x[0] for x in items]), 1e-9)
    )
    return Trace.from_arrays(times, [x[1] for x in items], n=n)


def uniform_random_trace(
    n: int, m: int, horizon: float, seed: int = 0
) -> Trace:
    """``m`` uniformly random arrivals with uniform server choice.

    The workhorse for property-based tests: no structure at all.
    """
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(horizon * 1e-6, horizon, size=m))
    times = _dedupe_times(times)
    servers = rng.integers(0, n, size=m)
    return Trace.from_arrays(times, servers, n=n)
