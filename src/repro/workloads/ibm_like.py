"""Substitute for the IBM Cloud Object Storage trace used in Appendix J.

The paper evaluates on read requests of one object from the public IBM
object-storage traces (object ``652aaef228286e0a``: 11688 reads over 7
days, i.e. a mean inter-arrival of ~52 s and a mean *per-server*
inter-request time of ~500 s once spread over 10 servers by the Zipf
rule).  The traces are not redistributable and unavailable offline, so —
per the substitution rule in DESIGN.md — this module synthesises an
arrival sequence that matches the statistics the paper's analysis
actually depends on:

* total request count and 7-day span (mean per-server gap ~500 s);
* heavy-tailed, bursty inter-arrivals (log-normal mixture: dense bursts
  well below the smaller ``lambda`` values and long idles well above the
  larger ones), so that each ``lambda`` in {10, 100, 1000, 10000} splits
  the gap distribution non-trivially — the property §J.2's reasoning is
  built on;
* diurnal intensity modulation over the 7 days.

The generator is deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from ..core.trace import Trace
from .synthetic import assign_servers_zipf, dedupe_times

__all__ = ["ibm_like_arrivals", "ibm_like_trace", "IBM_TRACE_REQUESTS", "IBM_TRACE_SPAN"]

#: request count of the paper's representative object
IBM_TRACE_REQUESTS = 11688
#: 7 days in seconds
IBM_TRACE_SPAN = 7 * 24 * 3600.0


def ibm_like_arrivals(
    m: int = IBM_TRACE_REQUESTS,
    span: float = IBM_TRACE_SPAN,
    seed: int = 0,
    burst_fraction: float = 0.55,
    burst_scale: float = 4.0,
    idle_sigma: float = 1.6,
) -> np.ndarray:
    """Arrival times of an IBM-like object-access stream.

    Inter-arrival gaps are a mixture: with probability ``burst_fraction``
    a short log-normal gap (median ``burst_scale`` seconds — bursts of
    closely spaced reads), otherwise a long log-normal gap (heavy tail —
    idle periods of minutes to hours).  A diurnal sinusoid modulates the
    gaps.  The sequence is rescaled to end exactly at ``span``.
    """
    if m < 2:
        raise ValueError(f"need at least 2 requests, got {m}")
    rng = np.random.default_rng(seed)
    is_burst = rng.random(m) < burst_fraction
    short = rng.lognormal(mean=np.log(burst_scale), sigma=1.0, size=m)
    long_med = span / m * 3.0  # long gaps dominate the total span
    long = rng.lognormal(mean=np.log(long_med), sigma=idle_sigma, size=m)
    gaps = np.where(is_burst, short, long)
    t = np.cumsum(gaps)
    # diurnal modulation: compress gaps during "day", stretch at "night"
    phase = 2 * np.pi * (t / 86400.0)
    t = np.cumsum(gaps * (1.0 + 0.45 * np.sin(phase)))
    # rescale to the exact span, keep strictly positive increasing times
    t = t / t[-1] * span
    return dedupe_times(np.maximum.accumulate(t), min_sep=1e-6)


def ibm_like_trace(
    n: int = 10,
    m: int = IBM_TRACE_REQUESTS,
    span: float = IBM_TRACE_SPAN,
    seed: int = 0,
    zipf_exponent: float = 1.0,
) -> Trace:
    """The paper's experimental workload: IBM-like arrivals spread over
    ``n`` servers by the Zipf rule (Appendix J.1)."""
    times = ibm_like_arrivals(m=m, span=span, seed=seed)
    return assign_servers_zipf(times, n, exponent=zipf_exponent, seed=seed + 7)
