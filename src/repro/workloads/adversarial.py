"""Adversarial instances from the paper's analysis sections.

* :func:`robustness_tight_trace` — Figure 5: two servers with gaps
  ``alpha*lambda + eps`` and always-"beyond" predictions drive
  Algorithm 1 to ratio ``1 + 1/alpha``.
* :func:`consistency_tight_trace` — Figure 6: three-request cycles where
  even perfect predictions cost ``(5 + alpha) / 3`` times the optimum.
* :func:`wang_counterexample_trace` — Figure 9: requests ``2*lambda +
  eps`` apart at one server push Wang et al.'s algorithm to ratio 5/2.
* :class:`LowerBoundAdversary` — Section 9: the adaptive adversary that
  forces ratio >= 3/2 on *any* deterministic learning-augmented
  algorithm, implemented against the interactive simulation API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costs import CostModel
from ..core.policy import ReplicationPolicy
from ..core.simulator import InteractiveSimulation, SimulationResult
from ..core.trace import Trace

__all__ = [
    "robustness_tight_trace",
    "consistency_tight_trace",
    "wang_counterexample_trace",
    "LowerBoundAdversary",
    "AdversaryOutcome",
]


def robustness_tight_trace(
    lam: float, alpha: float, m: int, eps: float | None = None
) -> Trace:
    """Figure 5's tight robustness instance.

    Requests alternate between two servers with per-server gap
    ``alpha*lambda + eps``: ``r_1`` at server 1 at ``eps``, then each
    subsequent request lands just after the previous regular copy of its
    own server expired (predictions are always "beyond", so durations are
    ``alpha*lambda``).  Online cost ``(m-1)(alpha*lambda + lambda) +
    lambda`` vs optimal ``(m-1)(alpha*lambda + eps) + lambda``; the ratio
    tends to ``1 + 1/alpha`` as ``m -> inf``, ``eps -> 0``.

    Use with ``FixedPredictor(within=False)`` (which is *wrong* for these
    gaps — that is the point of the robustness regime).
    """
    if m < 1:
        raise ValueError(f"need m >= 1 requests, got {m}")
    if eps is None:
        eps = alpha * lam * 1e-3
    gap = alpha * lam + eps
    # dummy r_0 at server 0 / time 0 is implicit; r_1 at server 1 at eps,
    # then the servers alternate with per-server gap alpha*lambda + eps.
    i = np.arange(1, m + 1, dtype=float)
    odd = np.arange(1, m + 1) % 2 == 1
    times = np.where(odd, eps + (i - 1) / 2 * gap, i / 2 * gap)
    servers = odd.astype(np.int64)  # r_1, r_3, ... at server 1
    order = np.lexsort((servers, times))
    return Trace.from_arrays(times[order], servers[order], n=2)


def consistency_tight_trace(
    lam: float, cycles: int = 1, eps: float | None = None
) -> Trace:
    """Figure 6's tight consistency instance (extended to many cycles).

    One cycle: ``r_1`` at server 1 at ``t = lambda``, ``r_2`` at server 0
    at ``lambda + eps``, ``r_3`` at server 1 at ``2*lambda + eps``.  With
    perfect predictions (every local gap exceeds ``lambda``) Algorithm 1
    pays ``5*lambda + alpha*lambda`` per cycle versus the optimal
    ``3*lambda + 2*eps``; the paper notes the example repeats by treating
    ``r_3`` as the next cycle's ``r_0`` with server roles swapped.
    """
    if cycles < 1:
        raise ValueError(f"need >= 1 cycle, got {cycles}")
    if eps is None:
        eps = lam * 1e-4
    # cycle starts t0_c satisfy t0_{c+1} = (t0_c + 2*lam) + eps; the
    # interleaved accumulate reproduces that two-step addition chain bit
    # for bit (ufunc.accumulate == repeated left-to-right additions)
    inc = np.empty(2 * cycles)
    inc[0::2] = 2 * lam
    inc[1::2] = eps
    acc = np.add.accumulate(inc)
    t0 = np.concatenate(([0.0], acc[1::2][:-1]))
    times = np.empty(3 * cycles)
    times[0::3] = t0 + lam                # r_1 at the other server
    times[1::3] = (t0 + lam) + eps        # r_2 back at r_0's server
    times[2::3] = acc[1::2]               # r_3 = next cycle's r_0
    # roles (a = "server of r_0", b = other) swap every cycle
    c = np.arange(cycles, dtype=np.int64)
    a = c % 2
    b = 1 - a
    servers = np.empty(3 * cycles, dtype=np.int64)
    servers[0::3] = b
    servers[1::3] = a
    servers[2::3] = b
    return Trace.from_arrays(times, servers, n=2)


def wang_counterexample_trace(
    lam: float, m: int, eps: float | None = None
) -> Trace:
    """Figure 9's counterexample to Wang et al.'s claimed 2-competitiveness.

    ``r_1`` arises at server 0 (merged into the implicit dummy request in
    our convention: the object starts at server 0 at time 0), ``r_2`` at
    server 1 at ``eps``, and subsequent requests hit server 1 every
    ``2*lambda + eps``.  Wang et al.'s algorithm pays ~``5*lambda`` per
    cycle; the optimum pays ``2*lambda + eps`` (keep a copy at server 1).
    The ratio approaches 5/2.

    ``m`` counts the requests at server 1 (the paper's ``r_2 .. r_m``).
    """
    if m < 1:
        raise ValueError(f"need m >= 1 requests, got {m}")
    if eps is None:
        eps = lam * 1e-4
    # paper times: t2 = eps, t3 = 2 lam + 2 eps, t4 = 4 lam + 3 eps, ...
    times = eps + np.arange(m, dtype=float) * (2 * lam + eps)
    return Trace.from_arrays(times, np.ones(m, dtype=np.int64), n=2)


@dataclass
class AdversaryOutcome:
    """Result of one adversary run: the generated trace, the online run,
    and the adversary's per-request bookkeeping."""

    trace: Trace
    result: SimulationResult
    kinds: list[str]  # "K1a" | "K1b" | "K1c" | "K2" per generated request


class LowerBoundAdversary:
    """The Section 9 adaptive adversary (two servers).

    Feeds correct "beyond" predictions implicitly (all gaps it generates
    exceed ``lambda`` per server) and chooses each next request from the
    observed behaviour of the algorithm:

    * if the idle server ``s`` holds no copy at
      ``t' = max(t_{i-1} + eps, t_k + lambda + eps)``, request at ``s`` at
      ``t'`` (Type-K1a/K1b — forces a transfer);
    * else if ``s`` drops its copy at ``t*`` within ``(t', t_{i-1} +
      lambda)``, request at ``s`` at ``t* + eps`` (Type-K1c — forces a
      transfer);
    * else (``s`` paid storage throughout) request at ``s[r_{i-1}]`` at
      ``t_{i-1} + lambda + eps`` (Type-K2).

    Against any deterministic algorithm the online-to-optimal ratio of
    the generated instance approaches at least 3/2 as ``eps -> 0``.
    """

    def __init__(self, lam: float, eps: float | None = None):
        if lam <= 0:
            raise ValueError(f"lambda must be > 0, got {lam}")
        self.lam = lam
        self.eps = eps if eps is not None else lam * 1e-4

    def run(
        self,
        policy: ReplicationPolicy,
        n_requests: int,
        model: CostModel | None = None,
    ) -> AdversaryOutcome:
        """Generate ``n_requests`` adversarial requests against ``policy``."""
        lam, eps = self.lam, self.eps
        model = model or CostModel(lam=lam, n=2)
        sim = InteractiveSimulation(2, model, policy)
        kinds: list[str] = []

        # r_1 at the other server right after time 0
        last_time = eps
        last_server = 1
        # last request time per server; dummy r_0 at server 0, time 0
        last_at = {0: 0.0, 1: eps}
        sim.submit(eps, 1)
        kinds.append("K1b")  # r_1 always forces a transfer

        for _ in range(n_requests - 1):
            s = 1 - last_server
            t_k = last_at[s]
            t_prime = max(last_time + eps, t_k + lam + eps)
            if not sim.holds_copy_at(s, t_prime):
                kind = "K1a" if t_prime == t_k + lam + eps else "K1b"
                sim.submit(t_prime, s)
                last_time, last_server = t_prime, s
                last_at[s] = t_prime
                kinds.append(kind)
                continue
            t_star = sim.watch_for_drop(s, last_time + lam)
            if t_star is not None and t_star > t_prime:
                t_req = t_star + eps
                sim.submit(t_req, s)
                last_time, last_server = t_req, s
                last_at[s] = t_req
                kinds.append("K1c")
            else:
                t_req = last_time + lam + eps
                sim.submit(t_req, last_server)
                last_at[last_server] = t_req
                last_time = t_req
                kinds.append("K2")

        result = sim.finish()
        return AdversaryOutcome(result.trace, result, kinds)
