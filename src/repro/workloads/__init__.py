"""Workload generators: synthetic, IBM-like, and adversarial instances."""

from .adversarial import (
    AdversaryOutcome,
    LowerBoundAdversary,
    consistency_tight_trace,
    robustness_tight_trace,
    wang_counterexample_trace,
)
from .ibm_like import (
    IBM_TRACE_REQUESTS,
    IBM_TRACE_SPAN,
    ibm_like_arrivals,
    ibm_like_trace,
)
from .synthetic import (
    assign_servers_zipf,
    dedupe_times,
    bursty_trace,
    diurnal_trace,
    periodic_trace,
    poisson_trace,
    uniform_random_trace,
    zipf_server_probabilities,
)

__all__ = [
    "robustness_tight_trace",
    "consistency_tight_trace",
    "wang_counterexample_trace",
    "LowerBoundAdversary",
    "AdversaryOutcome",
    "ibm_like_arrivals",
    "ibm_like_trace",
    "IBM_TRACE_REQUESTS",
    "IBM_TRACE_SPAN",
    "zipf_server_probabilities",
    "assign_servers_zipf",
    "dedupe_times",
    "poisson_trace",
    "bursty_trace",
    "periodic_trace",
    "diurnal_trace",
    "uniform_random_trace",
]
