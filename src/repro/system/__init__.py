"""Deployment-facing layer: multi-object fleets and trace I/O."""

from .multi_object import (
    FleetReport,
    MultiObjectSystem,
    ObjectOutcome,
    ObjectSpec,
    split_trace_by_object,
)
from .trace_io import (
    load_access_log_csv,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)

__all__ = [
    "ObjectSpec",
    "ObjectOutcome",
    "FleetReport",
    "MultiObjectSystem",
    "split_trace_by_object",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "load_access_log_csv",
]
