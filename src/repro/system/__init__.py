"""Deployment-facing layer: multi-object fleets and trace I/O."""

from .multi_object import (
    FleetReport,
    FleetStats,
    MultiObjectSystem,
    ObjectOutcome,
    ObjectSpec,
    split_trace_by_object,
)
from .trace_io import (
    TRACE_FORMATS,
    detect_trace_format,
    load_access_log_csv,
    load_trace,
    load_trace_csv,
    load_trace_jsonl,
    load_trace_npz,
    save_trace,
    save_trace_csv,
    save_trace_jsonl,
    save_trace_npz,
)

__all__ = [
    "ObjectSpec",
    "ObjectOutcome",
    "FleetReport",
    "FleetStats",
    "MultiObjectSystem",
    "split_trace_by_object",
    "TRACE_FORMATS",
    "detect_trace_format",
    "save_trace",
    "load_trace",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "save_trace_npz",
    "load_trace_npz",
    "load_access_log_csv",
]
