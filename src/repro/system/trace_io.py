"""Trace persistence and access-log ingestion.

Lets users plug their own workloads into the library:

* CSV / JSONL round-tripping of :class:`~repro.core.trace.Trace`, with
  transparent gzip compression for ``.csv.gz`` / ``.jsonl.gz`` paths;
* a binary columnar ``.npz`` format (:func:`save_trace_npz` /
  :func:`load_trace_npz`) that stores the trace's ``times`` / ``servers``
  columns directly — loading is one bulk read instead of m parsed rows,
  and ``mmap=True`` maps the columns straight off disk with **zero
  copies**, so many processes loading the same file share one physical
  copy in the page cache;
* format autodetection (:func:`detect_trace_format`, :func:`load_trace`,
  :func:`save_trace`) keyed on the path suffix, used by the
  ``repro trace info|convert`` CLI;
* :func:`load_access_log_csv` parses object-storage access logs in the
  layout of the IBM traces the paper evaluates on
  (``timestamp_ms operation object_id [size ...]``), filters read
  operations, and produces per-object traces — so when the real IBM
  trace is available the paper's exact experiment can be rerun without
  code changes (cf. the substitution note in DESIGN.md).
"""

from __future__ import annotations

import csv
import gzip
import json
import struct
import zipfile
from pathlib import Path
from typing import IO, Iterable

import numpy as np

from ..core.trace import Trace, TraceError
from ..obs import metrics as _obs
from ..obs.logging import get_logger, kv
from ..workloads.synthetic import dedupe_times, zipf_server_probabilities

_log = get_logger("system.trace_io")

__all__ = [
    "TRACE_FORMATS",
    "detect_trace_format",
    "save_trace",
    "load_trace",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "save_trace_npz",
    "load_trace_npz",
    "load_access_log_csv",
]

#: formats understood by :func:`save_trace` / :func:`load_trace`,
#: detected from the path suffix
TRACE_FORMATS: tuple[str, ...] = ("csv", "csv.gz", "jsonl", "jsonl.gz", "npz")


def _open_text(path: Path, mode: str, gz: bool | None = None) -> IO[str]:
    """Open a text trace file, transparently gzipped for ``.gz`` paths.

    ``gz=None`` infers compression from the path suffix; an explicit
    bool (from a ``fmt`` override) wins over the suffix.  ``newline=""``
    keeps the csv module in charge of line endings on both paths.
    """
    if gz if gz is not None else path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return path.open(mode, newline="", encoding="utf-8")


def detect_trace_format(path: str | Path) -> str:
    """The trace format implied by ``path``'s suffix.

    Raises :class:`TraceError` for a suffix outside
    :data:`TRACE_FORMATS`.
    """
    name = Path(path).name.lower()
    for fmt in sorted(TRACE_FORMATS, key=len, reverse=True):
        if name.endswith("." + fmt):
            return fmt
    raise TraceError(
        f"{path}: cannot detect trace format from suffix; expected one of "
        + ", ".join("." + f for f in TRACE_FORMATS)
    )


def save_trace(trace: Trace, path: str | Path, fmt: str | None = None) -> None:
    """Write ``trace`` in the format implied by ``path`` (or ``fmt``).

    An explicit ``fmt`` wins over the path suffix — ``fmt="npz"`` with a
    suffix-less path still writes the binary format to exactly ``path``.
    """
    fmt = fmt or detect_trace_format(path)
    with _obs.span("trace_io.save", fmt=fmt) if _obs.enabled else _obs.NOOP_SPAN:
        if fmt in ("csv", "csv.gz"):
            save_trace_csv(trace, path, gz=fmt.endswith(".gz"))
        elif fmt in ("jsonl", "jsonl.gz"):
            save_trace_jsonl(trace, path, gz=fmt.endswith(".gz"))
        elif fmt == "npz":
            save_trace_npz(trace, path)
        else:
            raise TraceError(f"unknown trace format {fmt!r}")


def load_trace(
    path: str | Path, fmt: str | None = None, mmap: bool = False
) -> Trace:
    """Read a trace in the format implied by ``path`` (or ``fmt``).

    ``mmap`` applies to the ``npz`` format only (text formats always
    parse row by row).  An explicit ``fmt`` wins over the path suffix.
    """
    fmt = fmt or detect_trace_format(path)
    with _obs.span("trace_io.load", fmt=fmt) if _obs.enabled else _obs.NOOP_SPAN:
        if fmt in ("csv", "csv.gz"):
            return load_trace_csv(path, gz=fmt.endswith(".gz"))
        if fmt in ("jsonl", "jsonl.gz"):
            return load_trace_jsonl(path, gz=fmt.endswith(".gz"))
        if fmt == "npz":
            return load_trace_npz(path, mmap=mmap)
        raise TraceError(f"unknown trace format {fmt!r}")


# ----------------------------------------------------------------------
# text formats (CSV / JSONL, optionally gzipped)
# ----------------------------------------------------------------------


def save_trace_csv(
    trace: Trace, path: str | Path, gz: bool | None = None
) -> None:
    """Write a trace as ``time,server`` rows with an ``n`` header.

    A ``.csv.gz`` path is gzip-compressed transparently (or force
    compression with ``gz``).
    """
    path = Path(path)
    times = trace.times.tolist()
    servers = trace.servers.tolist()
    with _open_text(path, "w", gz) as fh:
        writer = csv.writer(fh)
        writer.writerow(["# n", trace.n])
        writer.writerow(["time", "server"])
        writer.writerows(
            (repr(times[i]), servers[i]) for i in range(len(times))
        )


def load_trace_csv(path: str | Path, gz: bool | None = None) -> Trace:
    """Read a trace written by :func:`save_trace_csv` (plain or ``.gz``)."""
    path = Path(path)
    with _open_text(path, "r", gz) as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if not header or header[0] != "# n":
            raise TraceError(f"{path}: missing '# n' header row")
        n = int(header[1])
        cols = next(reader, None)
        if cols != ["time", "server"]:
            raise TraceError(f"{path}: expected 'time,server' column row")
        times: list[float] = []
        servers: list[int] = []
        for t, s in reader:
            times.append(float(t))
            servers.append(int(s))
    return Trace.from_arrays(
        np.asarray(times, dtype=np.float64),
        np.asarray(servers, dtype=np.int64),
        n=n,
    )


def save_trace_jsonl(
    trace: Trace, path: str | Path, gz: bool | None = None
) -> None:
    """Write one JSON object per request plus a metadata first line.

    A ``.jsonl.gz`` path is gzip-compressed transparently (or force
    compression with ``gz``).
    """
    path = Path(path)
    times = trace.times.tolist()
    servers = trace.servers.tolist()
    with _open_text(path, "w", gz) as fh:
        fh.write(json.dumps({"kind": "trace-meta", "n": trace.n}) + "\n")
        for i in range(len(times)):
            fh.write(
                json.dumps(
                    {"time": times[i], "server": servers[i], "index": i + 1}
                )
                + "\n"
            )


def load_trace_jsonl(path: str | Path, gz: bool | None = None) -> Trace:
    """Read a trace written by :func:`save_trace_jsonl` (plain or ``.gz``)."""
    path = Path(path)
    with _open_text(path, "r", gz) as fh:
        meta_line = fh.readline()
        if not meta_line:
            raise TraceError(f"{path}: empty file")
        meta = json.loads(meta_line)
        if meta.get("kind") != "trace-meta":
            raise TraceError(f"{path}: first line must be trace-meta")
        times: list[float] = []
        servers: list[int] = []
        for line in fh:
            rec = json.loads(line)
            times.append(float(rec["time"]))
            servers.append(int(rec["server"]))
    return Trace.from_arrays(
        np.asarray(times, dtype=np.float64),
        np.asarray(servers, dtype=np.int64),
        n=int(meta["n"]),
    )


# ----------------------------------------------------------------------
# binary columnar format (.npz)
# ----------------------------------------------------------------------


def save_trace_npz(trace: Trace, path: str | Path) -> None:
    """Write a trace as an uncompressed ``.npz`` with columnar arrays.

    Members: ``times`` (float64), ``servers`` (int64), ``n`` (int64
    scalar).  Uncompressed storage is what makes the ``mmap=True`` load
    path possible — the raw column bytes live contiguously in the file.
    """
    path = Path(path)
    # write through a file object: np.savez given a *filename* appends
    # '.npz' when the suffix is missing, which would break fmt overrides
    with _obs.span("trace_io.save_npz", m=len(trace)) if _obs.enabled \
            else _obs.NOOP_SPAN:
        with path.open("wb") as fh:
            np.savez(
                fh,
                times=np.asarray(trace.times, dtype=np.float64),
                servers=np.asarray(trace.servers, dtype=np.int64),
                n=np.int64(trace.n),
            )
    if _obs.enabled:
        _obs.counter("repro_trace_io_files_total", op="save", fmt="npz").inc()
        _obs.counter("repro_trace_io_bytes_total", op="save").inc(
            path.stat().st_size
        )
    _log.debug(
        "trace saved", **kv(fmt="npz", m=len(trace), path=str(path))
    )


def _npz_column_mmaps(path: Path) -> dict[str, np.ndarray] | None:
    """Memory-map every array member of an uncompressed ``.npz``.

    Returns None when the file cannot be mapped (compressed members,
    unsupported npy headers) — callers fall back to a copying load.
    The zip local-file headers are parsed directly so each member's
    array data offset within the single file is known exactly; the
    returned arrays are read-only ``np.memmap`` views sharing the OS
    page cache across processes.
    """
    out: dict[str, np.ndarray] = {}
    try:
        with open(path, "rb") as fh, zipfile.ZipFile(fh) as zf:
            for info in zf.infolist():
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                fh.seek(info.header_offset)
                local = fh.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    return None
                name_len, extra_len = struct.unpack("<HH", local[26:30])
                fh.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                if shape == ():
                    # 0-d scalars (the n member) are tiny: plain read
                    out[name] = np.fromfile(fh, dtype=dtype, count=1).reshape(())
                else:
                    out[name] = np.memmap(
                        path, dtype=dtype, mode="r", offset=fh.tell(), shape=shape
                    )
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
    return out


def load_trace_npz(
    path: str | Path, mmap: bool = False, validate: bool = True
) -> Trace:
    """Read a trace written by :func:`save_trace_npz`.

    With ``mmap=True`` the ``times`` / ``servers`` columns are
    memory-mapped read-only straight off disk and adopted by the trace
    without copying: construction is O(1) in the trace length, pages are
    faulted in on first touch, and every process mapping the same file
    shares one physical copy.  Falls back to a regular load when the
    file cannot be mapped.  ``validate=False`` skips the invariant scan
    for trusted files (it would fault in every page).
    """
    path = Path(path)
    if _obs.enabled:
        _obs.counter(
            "repro_trace_io_files_total", op="load", fmt="npz", mmap=bool(mmap)
        ).inc()
        _obs.counter("repro_trace_io_bytes_total", op="load").inc(
            path.stat().st_size
        )
        sp = _obs.span("trace_io.load_npz", mmap=bool(mmap))
    else:
        sp = _obs.NOOP_SPAN
    with sp:
        trace = _load_trace_npz(path, mmap, validate)
    _log.debug(
        "trace loaded", **kv(fmt="npz", m=len(trace), mmap=bool(mmap))
    )
    return trace


def _load_trace_npz(path: Path, mmap: bool, validate: bool) -> Trace:
    if mmap:
        members = _npz_column_mmaps(path)
        if members is not None:
            try:
                times = members["times"]
                servers = members["servers"]
                n = int(members["n"])
            except KeyError as exc:
                raise TraceError(
                    f"{path}: not a trace .npz (missing member {exc.args[0]!r})"
                ) from None
            return Trace.from_arrays(times, servers, n=n, validate=validate)
    try:
        z = np.load(path)
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        raise TraceError(f"{path}: not a valid .npz file ({exc})") from None
    if not hasattr(z, "files"):  # a bare .npy, not an archive
        raise TraceError(f"{path}: not a trace .npz archive")
    with z:
        try:
            times = z["times"]
            servers = z["servers"]
            n = int(z["n"])
        except KeyError as exc:
            raise TraceError(
                f"{path}: not a trace .npz (missing member {exc.args[0]!r})"
            ) from None
    return Trace.from_arrays(times, servers, n=n, validate=validate)


# ----------------------------------------------------------------------
# access-log ingestion
# ----------------------------------------------------------------------


def load_access_log_csv(
    path: str | Path,
    n: int,
    read_ops: Iterable[str] = ("REST.GET.OBJECT", "GET", "read"),
    time_unit: float = 1e-3,
    zipf_exponent: float = 1.0,
    seed: int = 0,
    delimiter: str = " ",
    min_requests: int = 2,
) -> dict[str, Trace]:
    """Parse an IBM-style object-storage access log into per-object traces.

    Expected row layout (whitespace- or ``delimiter``-separated):
    ``timestamp operation object_id [extra columns ignored]``.  Rows whose
    operation is not in ``read_ops`` are dropped (the paper filters out
    writes).  Each object's requests are distributed over ``n`` servers by
    the paper's Zipf rule, mirroring Appendix J.1.

    Per-object post-processing (sort, anchor shift, timestamp-collision
    nudge, server assignment) is fully vectorized; only the line parsing
    itself is per-row.

    Parameters
    ----------
    time_unit:
        Multiplier converting log timestamps to seconds (IBM logs are in
        milliseconds, hence the 1e-3 default).
    min_requests:
        Objects with fewer read requests are skipped.
    """
    path = Path(path)
    read_ops = set(read_ops)
    per_object: dict[str, list[float]] = {}
    with path.open(encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            parts = raw.split(delimiter) if delimiter != " " else raw.split()
            if len(parts) < 3:
                raise TraceError(
                    f"{path}:{lineno}: expected >= 3 columns, got {len(parts)}"
                )
            ts, op, obj = parts[0], parts[1], parts[2]
            if op not in read_ops:
                continue
            per_object.setdefault(obj, []).append(float(ts) * time_unit)

    rng = np.random.default_rng(seed)
    probs = zipf_server_probabilities(n, zipf_exponent)
    out: dict[str, Trace] = {}
    for obj, raw_times in per_object.items():
        if len(raw_times) < min_requests:
            continue
        times = np.sort(np.asarray(raw_times, dtype=np.float64))
        # anchor at 1s so time 0 stays the dummy's, then nudge collisions
        # forward (strictly increasing times, the paper's assumption)
        shifted = dedupe_times(times - times[0] + 1.0, min_sep=1e-6)
        servers = rng.choice(n, size=len(shifted), p=probs)
        out[obj] = Trace.from_arrays(shifted, servers, n=n)
    return out
