"""Trace persistence and access-log ingestion.

Lets users plug their own workloads into the library:

* CSV / JSONL round-tripping of :class:`~repro.core.trace.Trace`;
* :func:`load_access_log_csv` parses object-storage access logs in the
  layout of the IBM traces the paper evaluates on
  (``timestamp_ms operation object_id [size ...]``), filters read
  operations, and produces per-object traces — so when the real IBM
  trace is available the paper's exact experiment can be rerun without
  code changes (cf. the substitution note in DESIGN.md).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

import numpy as np

from ..core.trace import Trace, TraceError
from ..workloads.synthetic import zipf_server_probabilities

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "load_access_log_csv",
]


def save_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace as ``time,server`` rows with an ``n`` header."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["# n", trace.n])
        writer.writerow(["time", "server"])
        for r in trace:
            writer.writerow([repr(r.time), r.server])


def load_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace_csv`."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if not header or header[0] != "# n":
            raise TraceError(f"{path}: missing '# n' header row")
        n = int(header[1])
        cols = next(reader, None)
        if cols != ["time", "server"]:
            raise TraceError(f"{path}: expected 'time,server' column row")
        items = [(float(t), int(s)) for t, s in reader]
    return Trace(n, items)


def save_trace_jsonl(trace: Trace, path: str | Path) -> None:
    """Write one JSON object per request plus a metadata first line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": "trace-meta", "n": trace.n}) + "\n")
        for r in trace:
            fh.write(
                json.dumps({"time": r.time, "server": r.server, "index": r.index})
                + "\n"
            )


def load_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace_jsonl`."""
    path = Path(path)
    with path.open(encoding="utf-8") as fh:
        meta_line = fh.readline()
        if not meta_line:
            raise TraceError(f"{path}: empty file")
        meta = json.loads(meta_line)
        if meta.get("kind") != "trace-meta":
            raise TraceError(f"{path}: first line must be trace-meta")
        items = []
        for line in fh:
            rec = json.loads(line)
            items.append((float(rec["time"]), int(rec["server"])))
    return Trace(int(meta["n"]), items)


def load_access_log_csv(
    path: str | Path,
    n: int,
    read_ops: Iterable[str] = ("REST.GET.OBJECT", "GET", "read"),
    time_unit: float = 1e-3,
    zipf_exponent: float = 1.0,
    seed: int = 0,
    delimiter: str = " ",
    min_requests: int = 2,
) -> dict[str, Trace]:
    """Parse an IBM-style object-storage access log into per-object traces.

    Expected row layout (whitespace- or ``delimiter``-separated):
    ``timestamp operation object_id [extra columns ignored]``.  Rows whose
    operation is not in ``read_ops`` are dropped (the paper filters out
    writes).  Each object's requests are distributed over ``n`` servers by
    the paper's Zipf rule, mirroring Appendix J.1.

    Parameters
    ----------
    time_unit:
        Multiplier converting log timestamps to seconds (IBM logs are in
        milliseconds, hence the 1e-3 default).
    min_requests:
        Objects with fewer read requests are skipped.
    """
    path = Path(path)
    read_ops = set(read_ops)
    per_object: dict[str, list[float]] = {}
    with path.open(encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            parts = raw.split(delimiter) if delimiter != " " else raw.split()
            if len(parts) < 3:
                raise TraceError(
                    f"{path}:{lineno}: expected >= 3 columns, got {len(parts)}"
                )
            ts, op, obj = parts[0], parts[1], parts[2]
            if op not in read_ops:
                continue
            per_object.setdefault(obj, []).append(float(ts) * time_unit)

    rng = np.random.default_rng(seed)
    probs = zipf_server_probabilities(n, zipf_exponent)
    out: dict[str, Trace] = {}
    for obj, times in per_object.items():
        if len(times) < min_requests:
            continue
        times.sort()
        t0 = times[0]
        shifted = []
        prev = 0.0
        for t in times:
            t = t - t0 + 1.0  # anchor at 1s so time 0 stays the dummy's
            if t <= prev:
                t = prev + 1e-6
            shifted.append(t)
            prev = t
        servers = rng.choice(n, size=len(shifted), p=probs)
        out[obj] = Trace(n, list(zip(shifted, servers.tolist())))
    return out
