"""Multi-object replication management.

The paper analyses a single data object and notes (Section 2, footnote)
that "different objects can be handled separately" because there are no
capacity limits.  A real deployment hosts many objects, each with its own
request stream, transfer cost (object size), and predictor state.  This
module provides that deployment-facing layer:

* :class:`ObjectSpec` — one object's trace, cost model, and policy
  factory;
* :class:`MultiObjectSystem` — runs every object's simulation, aggregates
  costs, and reports per-object and fleet-level competitive ratios;
* :class:`FleetReport` / :class:`FleetStats` — materialized or streaming
  aggregation of per-object outcomes;
* :func:`split_trace_by_object` — turns a combined ``(time, server,
  object)`` access log into per-object traces.

DESIGN — why sharded and slabbed fleet runs are exact
-----------------------------------------------------
Everything reduces to independent single-object runs (exactly the
paper's decomposition): with no storage capacity limits, the optimal
strategy for the combined instance is the union of per-object optima,
and any per-object guarantee carries to the fleet total.  That
independence is what makes every fleet execution mode *bit-identical*
to the serial per-object loop, not merely statistically equivalent:

1. **Per-object costs.**  Each object is one ``(trace, model, policy)``
   cell.  Cross-object slabs (:func:`repro.core.engine.run_policy_slab`)
   share the per-trace work — segment chains on the kernel tier, the
   vectorized trace pass on the batch tier — but each cell's arithmetic
   is the engine-tier replay already proven bit-identical to the scalar
   fast engine and the reference simulator.  Grouping objects by
   ``(trace digest, lambda)`` only changes *which* engine evaluates a
   cell, never the floats it produces.
2. **Offline optima.**  ``optimal_cost(trace, model)`` is a
   deterministic function of ``(trace, lambda, n)``; computing it once
   per distinct ``(trace digest, lambda)`` group and sharing the float
   across the group's objects reproduces the per-object values exactly.
3. **Aggregation order.**  Serial totals are left-to-right Python sums
   in spec order.  Parallel runs complete chunks in nondeterministic
   order, so the runner folds outcomes through an index-ordered reorder
   buffer: every accumulator (:class:`FleetStats`) sees objects in spec
   order, making streaming totals bitwise equal to ``sum()`` over
   materialized outcomes.
4. **Worker state.**  Workers rebuild ``CostModel(lam, n)`` from the
   same scalars and resolve traces by content digest (fork-inherited
   object or mmap of the spooled columns — the exact bytes the parent
   hashed), so policies and predictor RNG streams are bit-identical to
   the ones the serial loop builds.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.costs import CostModel
from ..core.engine import CostResult, Engine, run_policy_slab, select_engine
from ..core.policy import ReplicationPolicy
from ..core.simulator import SimulationResult
from ..core.trace import Trace, TraceError
from ..offline.dp import optimal_cost

__all__ = [
    "ObjectSpec",
    "ObjectOutcome",
    "FleetStats",
    "FleetReport",
    "MultiObjectSystem",
    "split_trace_by_object",
]

PolicyFactory = Callable[[Trace, CostModel], ReplicationPolicy]


@dataclass(frozen=True)
class ObjectSpec:
    """One object's workload and configuration.

    ``lam`` scales with object size (a bigger object costs more to
    transfer); ``policy_factory`` builds a fresh policy per run so that
    predictor state never leaks across objects.
    """

    object_id: str
    trace: Trace
    lam: float
    policy_factory: PolicyFactory

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError(
                f"object {self.object_id}: lambda must be > 0, got {self.lam}"
            )


@dataclass(frozen=True)
class ObjectOutcome:
    """Result of one object's simulation plus its offline optimum.

    ``result`` is a full :class:`SimulationResult` under the reference
    engine, or a cost-only :class:`CostResult` under the fast engines.
    ``n_requests`` is recorded at fold time so report tables never need
    to reach through ``result.trace`` (cost-only results assembled from
    compact worker rows still carry the parent's trace, but streaming
    consumers must not depend on it).
    """

    object_id: str
    result: SimulationResult | CostResult
    optimal: float
    n_requests: int = -1

    @property
    def online(self) -> float:
        return self.result.total_cost

    @property
    def ratio(self) -> float:
        if self.optimal == 0:
            return 1.0 if self.online == 0 else float("inf")
        return self.online / self.optimal

    @property
    def requests(self) -> int:
        """Request count, from the recorded field or the result trace."""
        if self.n_requests >= 0:
            return self.n_requests
        return len(self.result.trace)


#: log-spaced ratio buckets: 16 per decade over [1, 10^4)
_SKETCH_PER_DECADE = 16
_SKETCH_DECADES = 4
_SKETCH_BUCKETS = _SKETCH_PER_DECADE * _SKETCH_DECADES


class _RatioSketch:
    """Deterministic log-bucket histogram of per-object ratios.

    Fixed bucket edges (no data-dependent rebalancing), so observing the
    same ratios in any order yields the same counts — quantiles are
    reproducible across serial, sharded, and streaming runs.  Quantile
    answers are bucket upper edges: exact to a factor of
    ``10^(1/16) ~ 1.15``, which is ample for fleet dashboards.
    """

    __slots__ = ("underflow", "overflow", "counts")

    def __init__(self) -> None:
        self.underflow = 0          # ratio < 1 (fp slack below optimal)
        self.overflow = 0           # ratio >= 10^4, or infinite
        self.counts = [0] * _SKETCH_BUCKETS

    def observe(self, ratio: float) -> None:
        if not math.isfinite(ratio) or ratio >= 10.0**_SKETCH_DECADES:
            self.overflow += 1
            return
        if ratio < 1.0:
            self.underflow += 1
            return
        idx = int(math.log10(ratio) * _SKETCH_PER_DECADE)
        # guard the fp edge where log10 rounds up to the next bucket
        self.counts[min(idx, _SKETCH_BUCKETS - 1)] += 1

    @property
    def total(self) -> int:
        return self.underflow + self.overflow + sum(self.counts)

    def quantile(self, q: float) -> float:
        """Upper bucket edge of the ``q``-quantile ratio (nan if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            return float("nan")
        rank = min(total - 1, int(q * total))
        cum = self.underflow
        if rank < cum:
            return 1.0
        for i, c in enumerate(self.counts):
            cum += c
            if rank < cum:
                return 10.0 ** ((i + 1) / _SKETCH_PER_DECADE)
        return float("inf")


class FleetStats:
    """Streaming per-object accumulator behind :class:`FleetReport`.

    Holds O(top_k + sketch) state regardless of fleet size: running
    totals, the worst object, a fixed log-bucket ratio sketch, and a
    top-k offender heap.  Objects must be observed in spec order for
    totals to stay bitwise equal to the serial ``sum()`` (the runner's
    reorder buffer guarantees that; see the module DESIGN docstring).
    """

    def __init__(self, top_k: int = 16):
        self.top_k = max(0, int(top_k))
        self.n_objects = 0
        self.online_total = 0.0
        self.optimal_total = 0.0
        self.n_requests_total = 0
        self.worst_object_id: str | None = None
        self._worst_ratio: float | None = None
        self.sketch = _RatioSketch()
        # min-heap of (ratio, -order, object_id, online, optimal,
        # n_requests): ties prefer the earliest-observed object
        self._top: list[tuple] = []

    def observe(
        self,
        object_id: str,
        online: float,
        optimal: float,
        n_requests: int,
    ) -> None:
        if optimal == 0:
            ratio = 1.0 if online == 0 else float("inf")
        else:
            ratio = online / optimal
        order = self.n_objects
        self.n_objects += 1
        self.online_total += online
        self.optimal_total += optimal
        self.n_requests_total += max(0, n_requests)
        if self._worst_ratio is None or ratio > self._worst_ratio:
            self._worst_ratio = ratio
            self.worst_object_id = object_id
        self.sketch.observe(ratio)
        if self.top_k:
            item = (ratio, -order, object_id, online, optimal, n_requests)
            if len(self._top) < self.top_k:
                heapq.heappush(self._top, item)
            elif item > self._top[0]:
                heapq.heapreplace(self._top, item)

    @property
    def worst_ratio(self) -> float:
        """Worst per-object ratio seen (1.0 for an empty fleet, matching
        ``max(ratios, default=1.0)`` on the materialized path)."""
        return 1.0 if self._worst_ratio is None else self._worst_ratio

    def top_offenders(self) -> list[dict]:
        """The ``top_k`` worst objects, ratio-descending (ties: earliest
        observed first)."""
        rows = sorted(self._top, reverse=True)
        return [
            {
                "object_id": object_id,
                "ratio": ratio,
                "online": online,
                "optimal": optimal,
                "n_requests": n_requests,
            }
            for ratio, _neg_order, object_id, online, optimal, n_requests in rows
        ]


class FleetReport:
    """Aggregated outcome across all objects.

    Two modes share one ``add()`` entry point:

    * ``materialize=True`` (default) keeps every :class:`ObjectOutcome`
      in :attr:`outcomes` — the historical behaviour, right for small
      fleets and notebook inspection;
    * ``materialize=False`` streams each object through
      :class:`FleetStats` only, so a million-object run holds O(top_k)
      state: totals, worst object, ratio quantiles, and the top-k
      offender table survive, individual outcomes do not.

    Totals are identical between the modes bit for bit when objects are
    added in the same order (the streaming accumulator performs the
    same left-to-right float additions as ``sum()`` over the list).
    """

    def __init__(
        self,
        outcomes: Iterable[ObjectOutcome] | None = None,
        materialize: bool = True,
        top_k: int = 16,
    ):
        self.materialize = bool(materialize)
        self.outcomes: list[ObjectOutcome] = []
        self.stats = FleetStats(top_k=top_k)
        for o in outcomes or ():
            self.add_outcome(o)

    # ------------------------------------------------------------------
    def add(
        self,
        object_id: str,
        online: float,
        optimal: float,
        n_requests: int,
        result: SimulationResult | CostResult | None = None,
    ) -> None:
        """Fold one object in (spec order for bit-identical totals).

        ``result`` is required when materializing; streaming reports
        accept and ignore it.
        """
        self.stats.observe(object_id, online, optimal, n_requests)
        if self.materialize:
            if result is None:
                raise ValueError(
                    "materialized FleetReport.add() needs the result object; "
                    "pass materialize=False for cost-only streaming"
                )
            self.outcomes.append(
                ObjectOutcome(object_id, result, optimal, n_requests)
            )

    def add_outcome(self, outcome: ObjectOutcome) -> None:
        """Fold a pre-built outcome (spec order, as with :meth:`add`)."""
        self.stats.observe(
            outcome.object_id, outcome.online, outcome.optimal, outcome.requests
        )
        if self.materialize:
            self.outcomes.append(outcome)

    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self.outcomes) if self.outcomes else self.stats.n_objects

    @property
    def online_total(self) -> float:
        # the materialized sum tolerates outcomes appended directly to
        # the list (bypassing add); both paths produce identical floats
        # when add() saw every object
        if self.outcomes:
            return sum(o.online for o in self.outcomes)
        return self.stats.online_total

    @property
    def optimal_total(self) -> float:
        if self.outcomes:
            return sum(o.optimal for o in self.outcomes)
        return self.stats.optimal_total

    @property
    def fleet_ratio(self) -> float:
        if self.optimal_total == 0:
            return 1.0 if self.online_total == 0 else float("inf")
        return self.online_total / self.optimal_total

    @property
    def worst_object_ratio(self) -> float:
        if self.outcomes:
            return max((o.ratio for o in self.outcomes), default=1.0)
        return self.stats.worst_ratio

    def ratio_quantile(self, q: float) -> float:
        """Approximate per-object ratio quantile from the log sketch."""
        return self.stats.sketch.quantile(q)

    def top_offenders(self) -> list[dict]:
        """Worst objects by ratio (at most ``top_k`` rows, descending)."""
        return self.stats.top_offenders()

    def by_object(self) -> dict[str, ObjectOutcome]:
        if not self.materialize and self.stats.n_objects:
            raise ValueError(
                "streaming FleetReport holds no per-object outcomes; use "
                "top_offenders() / summary_table(), or run with "
                "materialize=True"
            )
        return {o.object_id: o for o in self.outcomes}

    def summary_table(self, top_k: int | None = None) -> str:
        """Human-readable per-object breakdown.

        Materialized reports list every object (sorted by id) unless
        ``top_k`` caps the table at the worst offenders; streaming
        reports always show the accumulator's top-k offender rows.  The
        TOTAL line is fleet-wide in every case.
        """
        header = (
            f"{'object':<24} {'requests':>9} {'online':>12} "
            f"{'optimal':>12} {'ratio':>7}"
        )
        lines = [header]
        n_total = self.n_objects
        if self.outcomes:
            rows = sorted(self.outcomes, key=lambda x: x.object_id)
            if top_k is not None and len(rows) > top_k:
                rows = sorted(
                    self.outcomes, key=lambda x: (-x.ratio, x.object_id)
                )[:top_k]
            for o in rows:
                lines.append(
                    f"{o.object_id:<24} {o.requests:>9} "
                    f"{o.online:>12,.0f} {o.optimal:>12,.0f} {o.ratio:>7.3f}"
                )
            shown = len(rows)
            requests_total = sum(o.requests for o in self.outcomes)
        else:
            offenders = self.top_offenders()
            if top_k is not None:
                offenders = offenders[:top_k]
            for row in offenders:
                lines.append(
                    f"{row['object_id']:<24} {row['n_requests']:>9} "
                    f"{row['online']:>12,.0f} {row['optimal']:>12,.0f} "
                    f"{row['ratio']:>7.3f}"
                )
            shown = len(offenders)
            requests_total = self.stats.n_requests_total
        if shown < n_total:
            lines.append(
                f"{'...':<24} (top {shown} of {n_total} objects by ratio)"
            )
        lines.append(
            f"{'TOTAL':<24} {requests_total:>9} "
            f"{self.online_total:>12,.0f} {self.optimal_total:>12,.0f} "
            f"{self.fleet_ratio:>7.3f}"
        )
        return "\n".join(lines)


class MultiObjectSystem:
    """Simulate a fleet of independently replicated objects.

    The decomposition is exact: with no storage capacity limits, the
    optimal strategy for the combined instance is the union of per-object
    optima, and any per-object competitive guarantee carries to the
    fleet total (a ratio-weighted average of per-object ratios).  See
    the module DESIGN docstring for why every execution mode below is
    bit-identical to the serial per-object loop.
    """

    def __init__(self, n: int, specs: Iterable[ObjectSpec]):
        if n <= 0:
            raise ValueError(f"need at least one server, got n={n}")
        self.n = n
        self.specs = list(specs)
        ids = [s.object_id for s in self.specs]
        if len(set(ids)) != len(ids):
            raise ValueError("object_ids must be unique")
        for s in self.specs:
            if s.trace.n != n:
                raise ValueError(
                    f"object {s.object_id}: trace.n={s.trace.n} != system n={n}"
                )

    def run(
        self,
        compute_optimal: bool = True,
        runner=None,
        engine: str | Engine = "reference",
        grouped: bool = False,
        materialize: bool = True,
        top_k: int = 16,
        backend: str | None = None,
    ) -> FleetReport:
        """Simulate every object; optionally skip the offline optima.

        ``runner`` may be an :class:`repro.experiments.ExperimentRunner`;
        per-object simulations then shard across its worker processes
        with results identical to the serial path (objects are
        independent).  The default preserves serial execution.

        ``engine`` selects the simulation engine per object.  The default
        ``"reference"`` keeps full per-object telemetry in the report
        (serves, event logs, copy records); ``"auto"``/``"fast"``/
        ``"batch"``/``"kernel"`` runs cost-only where the policy is
        fast-path eligible — outcomes then carry a
        :class:`~repro.core.engine.CostResult` with identical costs but
        no telemetry (``"auto"`` picks the loop-free kernel for long
        eligible traces).  ``backend`` picks the kernel tier's execution
        backend (``core/backends.py``), bit-identical across choices.

        ``grouped=True`` evaluates objects sharing a ``(trace, lambda)``
        as one cross-object engine slab in-process
        (:func:`~repro.core.engine.run_policy_slab`) and computes each
        group's offline optimum once — the serial sibling of the
        runner's sharded dispatch, bit-identical to ``grouped=False``.

        ``materialize=False`` streams outcomes through the
        :class:`FleetStats` accumulator instead of keeping one
        :class:`ObjectOutcome` per object; ``top_k`` sizes its offender
        table.
        """
        if runner is not None:
            return runner.run_fleet(
                self,
                compute_optimal=compute_optimal,
                engine=engine,
                materialize=materialize,
                top_k=top_k,
                backend=backend,
            )
        report = FleetReport(materialize=materialize, top_k=top_k)
        opt_memo: dict[tuple[int, float], float] = {}

        def opt_for(trace: Trace, lam: float) -> float:
            # optimal_cost is deterministic in (trace, lam, n), so the
            # memo returns the identical float the per-object call would
            if not compute_optimal:
                return 0.0
            key = (id(trace), lam)
            if key not in opt_memo:
                opt_memo[key] = optimal_cost(
                    trace, CostModel(lam=lam, n=self.n)
                )
            return opt_memo[key]

        if grouped:
            groups: dict[tuple[int, float], list[int]] = {}
            for i, spec in enumerate(self.specs):
                groups.setdefault((id(spec.trace), spec.lam), []).append(i)
            rows: list = [None] * len(self.specs)
            for (_tid, lam), idxs in groups.items():
                trace = self.specs[idxs[0]].trace
                model = CostModel(lam=lam, n=self.n)
                cells = [
                    (model, self.specs[i].policy_factory(trace, model))
                    for i in idxs
                ]
                runs = run_policy_slab(trace, cells, engine, backend=backend)
                opt = opt_for(trace, lam)
                for i, r in zip(idxs, runs):
                    rows[i] = (r, opt)
            for spec, (result, opt) in zip(self.specs, rows):
                report.add(
                    spec.object_id,
                    result.total_cost,
                    opt,
                    len(spec.trace),
                    result=result if materialize else None,
                )
            return report
        for spec in self.specs:
            model = CostModel(lam=spec.lam, n=self.n)
            policy = spec.policy_factory(spec.trace, model)
            result = select_engine(
                spec.trace, model, policy, engine, backend=backend
            ).run_observed(spec.trace, model, policy)
            report.add(
                spec.object_id,
                result.total_cost,
                opt_for(spec.trace, spec.lam),
                len(spec.trace),
                result=result if materialize else None,
            )
        return report


def split_trace_by_object(
    accesses: Sequence[tuple[float, int, str]],
    n: int,
) -> dict[str, Trace]:
    """Split a combined access log into per-object traces.

    ``accesses`` holds ``(time, server, object_id)`` records in any
    order.  Per-object request times must be distinct (the paper's
    assumption); a collision raises :class:`TraceError`.

    The per-row Python loop is replaced by array columns and one global
    lexsort ordering rows by ``(object, time)``: the object ids become a
    fixed-width unicode column (sorted directly — cheaper than
    object-dtype uniquing), group boundaries fall out of one adjacent
    inequality over the sorted ids, and all trace invariants are checked
    in one vectorized pass over the whole sorted log (resetting the
    previous-time column at group starts) instead of once per group — so
    each per-object trace adopts a zero-copy slice of the sorted columns
    with no further validation.  Error messages match the scalar path
    exactly, including the first-violating object and its local request
    index (the server sort key only matters for rows tying on time —
    a collision that is about to raise — and keeps the reported
    violation identical to a per-object ``(time, server)`` sort).
    Object ids are returned in sorted order.
    """
    records = accesses if isinstance(accesses, list) else list(accesses)
    if not records:
        return {}
    times = np.asarray([r[0] for r in records], dtype=np.float64)
    servers = np.asarray([r[1] for r in records], dtype=np.int64)
    objects = np.asarray([r[2] for r in records])
    order = np.lexsort((servers, times, objects))
    obj_sorted = objects[order]
    times = times[order]
    servers = servers[order]
    boundary = np.nonzero(obj_sorted[1:] != obj_sorted[:-1])[0] + 1
    starts = np.concatenate(([0], boundary))
    ends = np.concatenate((boundary, [len(obj_sorted)]))
    # One global invariant pass: per-group "previous time" is the sorted
    # times column shifted by one, reset to 0.0 at every group start.
    prevs = np.empty_like(times)
    prevs[0] = 0.0
    prevs[1:] = times[:-1]
    prevs[boundary] = 0.0
    bad = (times <= prevs) | (servers < 0) | (servers >= n)
    if bad.any():
        k = int(np.argmax(bad))
        key = obj_sorted[k].item()
        i = k - int(starts[np.searchsorted(starts, k, side="right") - 1])
        if times[k] <= prevs[k]:
            raise TraceError(
                f"object {key}: request times must be strictly increasing "
                f"and > 0 (violation at index {i + 1}: "
                f"{times[k]} <= {prevs[k]})"
            )
        if servers[k] < 0:
            raise TraceError(
                f"object {key}: server index must be >= 0, got {servers[k]}"
            )
        raise TraceError(
            f"object {key}: request {i + 1} at server {servers[k]} but n={n}"
        )
    out: dict[str, Trace] = {}
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        key = obj_sorted[lo].item()
        try:
            out[key] = Trace.from_arrays(
                times[lo:hi], servers[lo:hi], n=n, validate=False
            )
        except TraceError as exc:
            raise TraceError(f"object {key}: {exc}") from exc
    return out
