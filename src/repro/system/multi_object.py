"""Multi-object replication management.

The paper analyses a single data object and notes (Section 2, footnote)
that "different objects can be handled separately" because there are no
capacity limits.  A real deployment hosts many objects, each with its own
request stream, transfer cost (object size), and predictor state.  This
module provides that deployment-facing layer:

* :class:`ObjectSpec` — one object's trace, cost model, and policy
  factory;
* :class:`MultiObjectSystem` — runs every object's simulation, aggregates
  costs, and reports per-object and fleet-level competitive ratios;
* :func:`split_trace_by_object` — turns a combined ``(time, server,
  object)`` access log into per-object traces.

Everything reduces to independent single-object runs (exactly the
paper's decomposition), so all guarantees carry over per object and,
by summation, to the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.costs import CostModel
from ..core.engine import CostResult, Engine, select_engine
from ..core.policy import ReplicationPolicy
from ..core.simulator import SimulationResult
from ..core.trace import Trace, TraceError
from ..offline.dp import optimal_cost

__all__ = [
    "ObjectSpec",
    "ObjectOutcome",
    "FleetReport",
    "MultiObjectSystem",
    "split_trace_by_object",
]

PolicyFactory = Callable[[Trace, CostModel], ReplicationPolicy]


@dataclass(frozen=True)
class ObjectSpec:
    """One object's workload and configuration.

    ``lam`` scales with object size (a bigger object costs more to
    transfer); ``policy_factory`` builds a fresh policy per run so that
    predictor state never leaks across objects.
    """

    object_id: str
    trace: Trace
    lam: float
    policy_factory: PolicyFactory

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError(
                f"object {self.object_id}: lambda must be > 0, got {self.lam}"
            )


@dataclass(frozen=True)
class ObjectOutcome:
    """Result of one object's simulation plus its offline optimum.

    ``result`` is a full :class:`SimulationResult` under the reference
    engine, or a cost-only :class:`CostResult` under the fast engine.
    """

    object_id: str
    result: SimulationResult | CostResult
    optimal: float

    @property
    def online(self) -> float:
        return self.result.total_cost

    @property
    def ratio(self) -> float:
        if self.optimal == 0:
            return 1.0 if self.online == 0 else float("inf")
        return self.online / self.optimal


@dataclass
class FleetReport:
    """Aggregated outcome across all objects."""

    outcomes: list[ObjectOutcome] = field(default_factory=list)

    @property
    def online_total(self) -> float:
        return sum(o.online for o in self.outcomes)

    @property
    def optimal_total(self) -> float:
        return sum(o.optimal for o in self.outcomes)

    @property
    def fleet_ratio(self) -> float:
        if self.optimal_total == 0:
            return 1.0 if self.online_total == 0 else float("inf")
        return self.online_total / self.optimal_total

    @property
    def worst_object_ratio(self) -> float:
        return max((o.ratio for o in self.outcomes), default=1.0)

    def by_object(self) -> dict[str, ObjectOutcome]:
        return {o.object_id: o for o in self.outcomes}

    def summary_table(self) -> str:
        """Human-readable per-object breakdown."""
        lines = [f"{'object':<24} {'requests':>9} {'online':>12} "
                 f"{'optimal':>12} {'ratio':>7}"]
        for o in sorted(self.outcomes, key=lambda x: x.object_id):
            lines.append(
                f"{o.object_id:<24} {len(o.result.trace):>9} "
                f"{o.online:>12,.0f} {o.optimal:>12,.0f} {o.ratio:>7.3f}"
            )
        lines.append(
            f"{'TOTAL':<24} "
            f"{sum(len(o.result.trace) for o in self.outcomes):>9} "
            f"{self.online_total:>12,.0f} {self.optimal_total:>12,.0f} "
            f"{self.fleet_ratio:>7.3f}"
        )
        return "\n".join(lines)


class MultiObjectSystem:
    """Simulate a fleet of independently replicated objects.

    The decomposition is exact: with no storage capacity limits, the
    optimal strategy for the combined instance is the union of per-object
    optima, and any per-object competitive guarantee carries to the
    fleet total (a ratio-weighted average of per-object ratios).
    """

    def __init__(self, n: int, specs: Iterable[ObjectSpec]):
        if n <= 0:
            raise ValueError(f"need at least one server, got n={n}")
        self.n = n
        self.specs = list(specs)
        ids = [s.object_id for s in self.specs]
        if len(set(ids)) != len(ids):
            raise ValueError("object_ids must be unique")
        for s in self.specs:
            if s.trace.n != n:
                raise ValueError(
                    f"object {s.object_id}: trace.n={s.trace.n} != system n={n}"
                )

    def run(
        self,
        compute_optimal: bool = True,
        runner=None,
        engine: str | Engine = "reference",
    ) -> FleetReport:
        """Simulate every object; optionally skip the offline optima.

        ``runner`` may be an :class:`repro.experiments.ExperimentRunner`;
        per-object simulations then run across its worker processes with
        results identical to the serial path (objects are independent).
        The default preserves serial execution.

        ``engine`` selects the simulation engine per object.  The default
        ``"reference"`` keeps full per-object telemetry in the report
        (serves, event logs, copy records); ``"auto"``/``"fast"``/
        ``"batch"``/``"kernel"`` runs cost-only where the policy is
        fast-path eligible — outcomes then carry a
        :class:`~repro.core.engine.CostResult` with identical costs but
        no telemetry (``"auto"`` picks the loop-free kernel for long
        eligible traces).  (Objects have distinct traces, so fleets run
        per-object; the batch engine's slab throughput applies to
        parameter grids over one trace.)
        """
        if runner is not None:
            return runner.run_fleet(
                self, compute_optimal=compute_optimal, engine=engine
            )
        report = FleetReport()
        for spec in self.specs:
            model = CostModel(lam=spec.lam, n=self.n)
            policy = spec.policy_factory(spec.trace, model)
            result = select_engine(spec.trace, model, policy, engine).run_observed(
                spec.trace, model, policy
            )
            opt = optimal_cost(spec.trace, model) if compute_optimal else 0.0
            report.outcomes.append(
                ObjectOutcome(spec.object_id, result, opt)
            )
        return report


def split_trace_by_object(
    accesses: Sequence[tuple[float, int, str]],
    n: int,
) -> dict[str, Trace]:
    """Split a combined access log into per-object traces.

    ``accesses`` holds ``(time, server, object_id)`` records in any
    order.  Per-object request times must be distinct (the paper's
    assumption); a collision raises :class:`TraceError`.
    """
    per_object: dict[str, list[tuple[float, int]]] = {}
    for time, server, obj in accesses:
        per_object.setdefault(obj, []).append((float(time), int(server)))
    out: dict[str, Trace] = {}
    for obj, items in per_object.items():
        items.sort()
        try:
            out[obj] = Trace(n, items)
        except TraceError as exc:
            raise TraceError(f"object {obj}: {exc}") from exc
    return out
