"""Content-addressed on-disk result cache for experiment runs.

Every cacheable unit of work (one simulation cell, one offline-optimal
computation) is identified by a *key payload*: a JSON-serialisable
mapping of everything the result depends on — the trace content digest,
the cost-model and policy parameters, the scenario version, and the
global :data:`CACHE_VERSION`.  The payload is canonicalised, hashed with
SHA-256, and the result stored at ``<root>/<key[:2]>/<key>.json``.

Because the trace *content* (not its generator's name) is part of the
key, editing a workload generator automatically invalidates the affected
entries.  Changes to policy code are not content-hashed; bump the
scenario's ``version`` (or :data:`CACHE_VERSION` for package-wide
changes) to invalidate.

Writes are atomic (temp file + ``os.replace``), so an interrupted grid
leaves only whole entries behind and the next run resumes from them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from ..core.trace import Trace
from ..obs import metrics as _obs

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "NullCache",
    "content_key",
    "trace_digest",
]

#: bump to invalidate every existing cache entry (e.g. after a change to
#: the simulator or the offline solver)
CACHE_VERSION = 1


def content_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace: server count plus every request."""
    h = hashlib.sha256()
    h.update(str(trace.n).encode())
    h.update(trace.times.tobytes())
    h.update(trace.servers.tobytes())
    return h.hexdigest()


class ResultCache:
    """Disk-backed key/value store for experiment results.

    Values are small JSON objects (costs, not full simulation logs).
    ``hits`` / ``misses`` counters make cache behaviour observable in
    tests and progress reports.
    """

    def __init__(self, root: str | os.PathLike[str], version: int = CACHE_VERSION):
        self.root = Path(root)
        self.version = int(version)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _key(self, payload: Mapping[str, Any]) -> str:
        return content_key({**payload, "cache_version": self.version})

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, payload: Mapping[str, Any]) -> dict[str, Any] | None:
        """Return the stored value for ``payload``, or None on a miss."""
        path = self._path(self._key(payload))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            if _obs.enabled:
                _obs.counter("repro_cache_requests_total", outcome="miss").inc()
            return None
        self.hits += 1
        if _obs.enabled:
            _obs.counter("repro_cache_requests_total", outcome="hit").inc()
        return entry.get("value")

    def put(self, payload: Mapping[str, Any], value: Mapping[str, Any]) -> str:
        """Store ``value`` under ``payload``'s key; returns the key."""
        key = self._key(payload)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": dict(payload), "value": dict(value)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, default=str)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if _obs.enabled:
            _obs.counter("repro_cache_writes_total").inc()
        return key

    def contains(self, payload: Mapping[str, Any]) -> bool:
        return self._path(self._key(payload)).exists()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class NullCache:
    """Cache stand-in that never stores anything (``--no-cache``)."""

    hits = 0
    misses = 0

    def get(self, payload: Mapping[str, Any]) -> None:
        return None

    def put(self, payload: Mapping[str, Any], value: Mapping[str, Any]) -> str:
        return ""

    def contains(self, payload: Mapping[str, Any]) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0
