"""Parallel experiment orchestration: registry, runner, cache, artifacts.

The subsystem turns the paper's embarrassingly parallel evaluation grids
into named, cacheable, resumable experiments::

    from repro.experiments import ExperimentRunner, ResultCache

    runner = ExperimentRunner(workers=8, cache=ResultCache(".repro-cache"))
    result = runner.run("fig25")          # registered scenario by name
    print(result.sweep_result().at(10.0, 0.2, 1.0).ratio)

or, from the command line::

    repro experiments list
    repro experiments run fig25 --workers 8
"""

from .artifacts import ArtifactStore, provenance
from .cache import CACHE_VERSION, NullCache, ResultCache, content_key, trace_digest
from .progress import ConsoleProgress, NullProgress, ProgressReporter, summary_table
from .registry import (
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from .runner import ExperimentResult, ExperimentRunner, Job, JobResult

__all__ = [
    # registry
    "Scenario",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "unregister_scenario",
    # runner
    "ExperimentRunner",
    "ExperimentResult",
    "Job",
    "JobResult",
    # cache
    "ResultCache",
    "NullCache",
    "CACHE_VERSION",
    "content_key",
    "trace_digest",
    # artifacts
    "ArtifactStore",
    "provenance",
    # progress
    "ProgressReporter",
    "NullProgress",
    "ConsoleProgress",
    "summary_table",
]
