"""Named, reproducible experiment configurations.

A :class:`Scenario` bundles everything needed to replicate one of the
paper's evaluation grids — a workload factory, a policy factory, and the
``lambda x alpha x accuracy x seed`` axes — under a stable name.  The
module-level registry maps names to scenarios so that benchmarks, the
CLI (``repro experiments run fig25``), and tests all resolve the same
configuration, and adding a new experiment family is one registration.

Built-ins cover the paper's evaluation (Zuo, Tang, Lee, SPAA 2024):

* ``fig25`` .. ``fig28`` — Algorithm 1 on the IBM-like trace, one
  scenario per ``lambda`` in {10, 100, 1000, 10000} (Appendix J.2);
* ``fig29`` .. ``fig32`` — the adapted algorithm with robustness target
  ``2 + beta`` for ``(lambda, beta)`` in {1000, 10000} x {0.1, 1};
* ``ablation-alpha`` and ``ablation-predictor-*`` — the DESIGN.md
  ablations (consistency/robustness dial, deployable predictors);
* ``tight-robustness`` / ``tight-consistency`` — the Figure 5/6 tight
  examples;
* ``adversarial-lower-bound`` — the Section 9 adaptive adversary;
* ``bursty`` / ``periodic`` / ``diurnal`` — Algorithm 1 grids over the
  synthetic workload family (burst/idle alternation, jittered
  round-robin, and day/night heavy-tail sessions), seeded per
  replication;
* ``smoke`` — a seconds-scale grid for CI and quick installs checks.

Scenarios are declarative: no trace is built and no simulation runs at
registration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..analysis.sweep import (
    PAPER_ACCURACIES,
    PAPER_ALPHAS,
    PolicyFactory,
    algorithm1_factory,
)
from ..core.policy import ReplicationPolicy
from ..core.trace import Trace

__all__ = [
    "Scenario",
    "PolicyFactory",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "unregister_scenario",
]

#: job parameters a trace factory may declare a dependency on
_JOB_PARAMS = ("lam", "alpha", "accuracy", "seed")


@dataclass(frozen=True)
class Scenario:
    """One named, reproducible experiment grid.

    ``trace_factory`` is called with the keyword subset of job parameters
    named in ``trace_params`` (empty tuple: one fixed trace for the whole
    grid; ``("seed",)``: one trace per replication seed; the tight
    examples use ``("lam", "alpha")`` because the instance itself depends
    on those).  ``version`` participates in cache keys — bump it whenever
    the factories change meaning, so stale cached results are never
    returned.
    """

    name: str
    description: str
    trace_factory: Callable[..., Trace]
    policy_factory: PolicyFactory
    lambdas: tuple[float, ...]
    alphas: tuple[float, ...]
    accuracies: tuple[float, ...]
    seeds: tuple[int, ...] = (0,)
    trace_params: tuple[str, ...] = ("seed",)
    tags: tuple[str, ...] = ()
    version: int = 1
    cache_salt: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        for axis in ("lambdas", "alphas", "accuracies", "seeds"):
            if not getattr(self, axis):
                raise ValueError(f"scenario {self.name}: {axis} must be non-empty")
        bad = [p for p in self.trace_params if p not in _JOB_PARAMS]
        if bad:
            raise ValueError(
                f"scenario {self.name}: unknown trace_params {bad}; "
                f"allowed: {_JOB_PARAMS}"
            )

    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return (
            len(self.lambdas)
            * len(self.alphas)
            * len(self.accuracies)
            * len(self.seeds)
        )

    def trace_args(
        self, lam: float, alpha: float, accuracy: float, seed: int
    ) -> dict[str, float | int]:
        """The keyword arguments ``trace_factory`` receives for one cell."""
        values = {"lam": lam, "alpha": alpha, "accuracy": accuracy, "seed": seed}
        return {k: values[k] for k in self.trace_params}

    def build_trace(
        self, lam: float, alpha: float, accuracy: float, seed: int
    ) -> Trace:
        return self.trace_factory(**self.trace_args(lam, alpha, accuracy, seed))

    def with_grid(
        self,
        lambdas: Sequence[float] | None = None,
        alphas: Sequence[float] | None = None,
        accuracies: Sequence[float] | None = None,
        seeds: Sequence[int] | None = None,
        name: str | None = None,
    ) -> "Scenario":
        """A copy with some axes replaced (e.g. a coarse/smoke variant)."""
        return replace(
            self,
            name=name if name is not None else self.name,
            lambdas=tuple(lambdas) if lambdas is not None else self.lambdas,
            alphas=tuple(alphas) if alphas is not None else self.alphas,
            accuracies=(
                tuple(accuracies) if accuracies is not None else self.accuracies
            ),
            seeds=tuple(seeds) if seeds is not None else self.seeds,
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(obj: Scenario | Callable[[], Scenario]):
    """Register a scenario under its name.

    Usable directly (``register_scenario(Scenario(...))``) or as a
    decorator on a zero-argument builder function, which is called once
    at import time::

        @register_scenario
        def fig25() -> Scenario:
            return Scenario(name="fig25", ...)
    """
    scenario = obj() if callable(obj) and not isinstance(obj, Scenario) else obj
    if not isinstance(scenario, Scenario):
        raise TypeError(f"expected a Scenario, got {type(scenario).__name__}")
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return obj


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario; raises KeyError with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def list_scenarios(tag: str | None = None) -> list[Scenario]:
    """All registered scenarios (optionally filtered by tag), by name."""
    out = [
        s
        for s in _REGISTRY.values()
        if tag is None or tag in s.tags
    ]
    return sorted(out, key=lambda s: s.name)


def scenario_names(tag: str | None = None) -> list[str]:
    return [s.name for s in list_scenarios(tag)]


def unregister_scenario(name: str) -> None:
    """Remove a registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------

def _paper_trace(seed: int) -> Trace:
    """The Appendix J.1 workload: IBM-like arrivals over 10 servers."""
    from ..workloads import ibm_like_trace

    return ibm_like_trace(n=10, seed=seed)


def _adaptive_factory(beta: float, warmup: int = 100) -> PolicyFactory:
    """Policy factory for the adapted algorithm (Figures 29-32)."""

    def factory(
        trace: Trace, lam: float, alpha: float, accuracy: float, seed: int
    ) -> ReplicationPolicy:
        from ..algorithms import AdaptiveReplication
        from ..predictions import NoisyOraclePredictor, OraclePredictor

        pred = (
            OraclePredictor(trace)
            if accuracy >= 1.0
            else NoisyOraclePredictor(trace, accuracy, seed=seed)
        )
        # the adaptive variant requires alpha > 0; the paper's grids use
        # 0.1 as the stand-in for the full-trust limit
        return AdaptiveReplication(
            pred, alpha if alpha > 0 else 0.1, beta=beta, warmup=warmup
        )

    return factory


def _fixed_beyond_factory(
    trace: Trace, lam: float, alpha: float, accuracy: float, seed: int
) -> ReplicationPolicy:
    """Algorithm 1 fed constant "beyond" predictions (robustness regime)."""
    from ..algorithms import LearningAugmentedReplication
    from ..predictions import FixedPredictor

    return LearningAugmentedReplication(FixedPredictor(False), alpha)


def _oracle_factory(
    trace: Trace, lam: float, alpha: float, accuracy: float, seed: int
) -> ReplicationPolicy:
    """Algorithm 1 with perfect predictions (consistency regime)."""
    from ..algorithms import LearningAugmentedReplication
    from ..predictions import OraclePredictor

    return LearningAugmentedReplication(OraclePredictor(trace), alpha)


def _robustness_trace(lam: float, alpha: float) -> Trace:
    from ..workloads import robustness_tight_trace

    return robustness_tight_trace(lam, alpha, m=2001)


def _consistency_trace(lam: float) -> Trace:
    from ..workloads import consistency_tight_trace

    return consistency_tight_trace(lam, cycles=667)


def _adversary_trace(lam: float, alpha: float) -> Trace:
    """The Section 9 adaptive adversary's instance against Algorithm 1.

    The adversary adapts to the deterministic policy; replaying the same
    policy on the generated trace reproduces the adversarial run.
    """
    from ..algorithms import LearningAugmentedReplication
    from ..predictions import FixedPredictor
    from ..workloads import LowerBoundAdversary

    policy = LearningAugmentedReplication(FixedPredictor(False), alpha)
    return LowerBoundAdversary(lam=lam).run(policy, n_requests=500).trace


def _smoke_trace(seed: int) -> Trace:
    from ..workloads import uniform_random_trace

    return uniform_random_trace(n=4, m=60, horizon=500.0, seed=seed)


def _bursty_scenario_trace(seed: int) -> Trace:
    """Burst/idle alternation: ~1000 requests in 200 tight bursts."""
    from ..workloads import bursty_trace

    return bursty_trace(
        n=10, n_bursts=200, burst_size=5, burst_spread=15.0,
        quiet_gap=800.0, seed=seed,
    )


def _periodic_scenario_trace(seed: int) -> Trace:
    """Jittered round-robin: periodic structure with noise."""
    from ..workloads import periodic_trace

    return periodic_trace(n=8, period=40.0, cycles=150, jitter=12.0, seed=seed)


def _diurnal_scenario_trace(seed: int) -> Trace:
    """Two days of day/night traffic with heavy-tail sessions."""
    from ..workloads import diurnal_trace

    return diurnal_trace(
        n=10, days=2, base_rate=0.05, peak_rate=1.0, day_length=400.0,
        seed=seed,
    )


def _register_builtins() -> None:
    for figure, lam in (
        ("fig25", 10.0),
        ("fig26", 100.0),
        ("fig27", 1000.0),
        ("fig28", 10000.0),
    ):
        register_scenario(
            Scenario(
                name=figure,
                description=(
                    f"Appendix J.2 grid at lambda={lam:g}: Algorithm 1 with "
                    "noisy-oracle predictions on the IBM-like trace"
                ),
                trace_factory=_paper_trace,
                policy_factory=algorithm1_factory,
                lambdas=(lam,),
                alphas=PAPER_ALPHAS,
                accuracies=PAPER_ACCURACIES,
                tags=("figures", "paper-grid"),
            )
        )

    for figure, lam, beta in (
        ("fig29", 1000.0, 0.1),
        ("fig30", 10000.0, 0.1),
        ("fig31", 1000.0, 1.0),
        ("fig32", 10000.0, 1.0),
    ):
        register_scenario(
            Scenario(
                name=figure,
                description=(
                    f"Adapted algorithm grid at lambda={lam:g}, beta={beta:g} "
                    f"(robustness target {2 + beta:g}, 100-request warm-up)"
                ),
                trace_factory=_paper_trace,
                policy_factory=_adaptive_factory(beta),
                lambdas=(lam,),
                alphas=PAPER_ALPHAS,
                accuracies=PAPER_ACCURACIES,
                tags=("figures", "adaptive"),
            )
        )

    register_scenario(
        Scenario(
            name="ablation-alpha",
            description=(
                "Consistency/robustness dial: alpha sweep at lambda=1000 "
                "and accuracies {0, 50%, 100%} on the IBM-like trace"
            ),
            # the ablation fixes the workload and varies only the policy,
            # so the trace ignores the replication seed
            trace_factory=lambda: _paper_trace(0),
            policy_factory=algorithm1_factory,
            lambdas=(1000.0,),
            alphas=(0.05, 0.2, 0.5, 1.0),
            accuracies=(0.0, 0.5, 1.0),
            seeds=(4,),
            trace_params=(),
            tags=("ablation",),
        )
    )

    for pred_name, factory in _PREDICTOR_ABLATIONS.items():
        register_scenario(
            Scenario(
                name=f"ablation-predictor-{pred_name}",
                description=(
                    f"Deployable-predictor ablation: {pred_name} predictor "
                    "on the bursty workload (alpha=0.25, lambda=300)"
                ),
                trace_factory=_bursty_ablation_trace,
                policy_factory=factory,
                lambdas=(300.0,),
                alphas=(0.25,),
                accuracies=(1.0,),
                trace_params=(),
                tags=("ablation", "predictors"),
            )
        )

    register_scenario(
        Scenario(
            name="tight-robustness",
            description=(
                "Figure 5 tight robustness instances: always-'beyond' "
                "predictions, ratio -> 1 + 1/alpha"
            ),
            trace_factory=_robustness_trace,
            policy_factory=_fixed_beyond_factory,
            lambdas=(100.0,),
            alphas=(0.2, 0.5, 1.0),
            accuracies=(0.0,),
            trace_params=("lam", "alpha"),
            tags=("tight", "adversarial"),
        )
    )

    register_scenario(
        Scenario(
            name="tight-consistency",
            description=(
                "Figure 6 tight consistency instances: perfect predictions "
                "still cost (5 + alpha)/3 times the optimum"
            ),
            trace_factory=_consistency_trace,
            policy_factory=_oracle_factory,
            lambdas=(100.0,),
            alphas=(0.2, 0.5, 1.0),
            accuracies=(1.0,),
            trace_params=("lam",),
            tags=("tight", "adversarial"),
        )
    )

    register_scenario(
        Scenario(
            name="adversarial-lower-bound",
            description=(
                "Section 9 adaptive adversary vs Algorithm 1 "
                "(deterministic lower bound 3/2)"
            ),
            trace_factory=_adversary_trace,
            policy_factory=_fixed_beyond_factory,
            lambdas=(100.0,),
            alphas=(0.2, 0.5, 1.0),
            accuracies=(0.0,),
            trace_params=("lam", "alpha"),
            tags=("adversarial",),
        )
    )

    for name, factory, blurb in (
        (
            "bursty",
            _bursty_scenario_trace,
            "burst/idle workload (200 bursts of 5, long quiet gaps)",
        ),
        (
            "periodic",
            _periodic_scenario_trace,
            "jittered round-robin workload (8 servers, 150 cycles)",
        ),
        (
            "diurnal",
            _diurnal_scenario_trace,
            "day/night heavy-tail sessions (2 days, Pareto session sizes)",
        ),
    ):
        register_scenario(
            Scenario(
                name=name,
                description=(
                    f"Algorithm 1 with noisy-oracle predictions on the "
                    f"{blurb}"
                ),
                trace_factory=factory,
                policy_factory=algorithm1_factory,
                lambdas=(100.0, 1000.0),
                alphas=(0.1, 0.2, 0.5, 1.0),
                accuracies=(0.0, 0.5, 0.8, 1.0),
                seeds=(0, 1),
                tags=("workloads", "synthetic"),
            )
        )

    register_scenario(
        Scenario(
            name="smoke",
            description=(
                "Seconds-scale CI grid: Algorithm 1 on a small uniform "
                "random trace (4 servers, 60 requests)"
            ),
            trace_factory=_smoke_trace,
            policy_factory=algorithm1_factory,
            lambdas=(10.0, 100.0),
            alphas=(0.2, 1.0),
            accuracies=(0.0, 1.0),
            tags=("smoke",),
        )
    )


def _bursty_ablation_trace() -> Trace:
    from ..workloads import bursty_trace

    return bursty_trace(
        n=8, n_bursts=150, burst_size=6, burst_spread=20.0, quiet_gap=1200.0,
        seed=31,
    )


def _predictor_factory(make):
    def factory(
        trace: Trace, lam: float, alpha: float, accuracy: float, seed: int
    ) -> ReplicationPolicy:
        from ..algorithms import LearningAugmentedReplication

        return LearningAugmentedReplication(make(trace), alpha)

    return factory


def _make_oracle(trace):
    from ..predictions import OraclePredictor

    return OraclePredictor(trace)


def _make_sliding_window(trace):
    from ..predictions import SlidingWindowPredictor

    return SlidingWindowPredictor(window=5)


def _make_markov(trace):
    from ..predictions import MarkovChainPredictor

    return MarkovChainPredictor()


def _make_ewma(trace):
    from ..predictions import EwmaPredictor

    return EwmaPredictor(decay=0.4)


def _make_always_wrong(trace):
    from ..predictions import NoisyOraclePredictor

    return NoisyOraclePredictor(trace, 0.0, seed=1)


_PREDICTOR_ABLATIONS: dict[str, PolicyFactory] = {
    "oracle": _predictor_factory(_make_oracle),
    "sliding-window": _predictor_factory(_make_sliding_window),
    "markov": _predictor_factory(_make_markov),
    "ewma": _predictor_factory(_make_ewma),
    "always-wrong": _predictor_factory(_make_always_wrong),
}

_register_builtins()
