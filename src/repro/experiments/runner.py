"""Parallel experiment execution with caching and deterministic results.

:class:`ExperimentRunner` expands a :class:`~.registry.Scenario` into
atomic :class:`Job`s — one per ``(lambda, alpha, accuracy, seed)`` cell
— and shards them across a ``ProcessPoolExecutor``.  Three properties
make the parallelism safe to adopt everywhere:

* **Determinism** — every job seeds its own predictor from the job's
  ``seed`` field, exactly as the serial :func:`~..analysis.sweep.sweep_grid`
  loop does, so ``workers=8`` is bit-identical to ``workers=1`` and to
  the legacy serial path.
* **Caching / resumability** — each completed job (and each offline-
  optimal computation) is written to the :class:`~.cache.ResultCache` as
  it finishes; an interrupted grid resumes from the completed cells and
  a warm re-run executes zero simulations.
* **Cheap dispatch** — jobs are tiny tuples; traces and factories reach
  the workers through fork-inherited module state (never pickled), and
  jobs are chunked to amortise the remaining IPC.
* **Columnar trace hand-off** — a large trace (``spill_threshold``
  requests and up, with ``workers > 1``) is not handed to workers as a
  Python object at all: the parent writes its columns once to a
  content-addressed ``<digest>.npz`` spool file and the context carries
  only ``(digest, path)``.  Each worker memory-maps the file on first
  use (``load_trace_npz(mmap=True)``) and caches it by digest, so all
  processes share one physical copy of the columns through the OS page
  cache — nothing is pickled, nothing is duplicated per worker, and the
  arrays the workers compute on are the exact bytes the parent hashed.

On platforms without the ``fork`` start method (or with ``workers<=1``)
execution falls back to the identical in-process code path.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..analysis.sweep import SweepPoint, SweepResult, algorithm1_factory
from ..core import backends
from ..core.costs import CostModel
from ..core.engine import (
    CostResult,
    Engine,
    run_policy_slab,
    run_slab,
)
from ..core.trace import Trace
from ..obs import metrics as _obs
from ..obs.logging import get_logger, kv
from ..offline.dp import optimal_cost
from .cache import NullCache, ResultCache, trace_digest
from .progress import NullProgress, ProgressReporter
from .registry import PolicyFactory, Scenario, get_scenario

__all__ = [
    "Job",
    "JobResult",
    "ExperimentResult",
    "ExperimentRunner",
]

_log = get_logger("experiments.runner")


@dataclass(frozen=True)
class Job:
    """One atomic simulation cell of a scenario grid."""

    index: int
    scenario: str
    lam: float
    alpha: float
    accuracy: float
    seed: int
    trace_key: tuple = ()

    @property
    def params(self) -> dict[str, float | int]:
        return {
            "lam": self.lam,
            "alpha": self.alpha,
            "accuracy": self.accuracy,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class JobResult:
    """A completed job: its parameters plus both measured costs."""

    job: Job
    online_cost: float
    optimal_cost: float
    cached: bool = False

    @property
    def ratio(self) -> float:
        if self.optimal_cost == 0:
            return float("inf")
        return self.online_cost / self.optimal_cost

    def as_row(self) -> dict[str, Any]:
        return {
            "scenario": self.job.scenario,
            "seed": self.job.seed,
            "lam": self.job.lam,
            "alpha": self.job.alpha,
            "accuracy": self.job.accuracy,
            "online_cost": self.online_cost,
            "optimal_cost": self.optimal_cost,
            "ratio": self.ratio,
            "cached": self.cached,
        }


@dataclass
class ExperimentResult:
    """All rows of one scenario run plus execution statistics."""

    scenario: str
    description: str
    results: list[JobResult] = field(default_factory=list)
    workers: int = 1
    executed: int = 0
    cached: int = 0
    opt_executed: int = 0
    opt_cached: int = 0
    elapsed: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def rows(self) -> list[dict[str, Any]]:
        return [r.as_row() for r in self.results]

    def seeds(self) -> list[int]:
        return sorted({r.job.seed for r in self.results})

    def sweep_result(self, seed: int | None = None) -> SweepResult:
        """The rows of one seed as a legacy :class:`SweepResult`.

        With a single-seed scenario the seed argument may be omitted; the
        returned points follow the serial ``sweep_grid`` ordering.
        """
        seeds = self.seeds()
        if seed is None:
            if len(seeds) > 1:
                raise ValueError(
                    f"scenario {self.scenario} has seeds {seeds}; pass seed="
                )
            seed = seeds[0] if seeds else 0
        out = SweepResult()
        for r in sorted(self.results, key=lambda r: r.job.index):
            if r.job.seed != seed:
                continue
            out.add(
                SweepPoint(
                    lam=r.job.lam,
                    alpha=r.job.alpha,
                    accuracy=r.job.accuracy,
                    online_cost=r.online_cost,
                    optimal_cost=r.optimal_cost,
                )
            )
        return out


# ----------------------------------------------------------------------
# worker-side state and task functions
#
# The scenario (with its arbitrary, possibly unpicklable factories) and
# the pre-built traces are published in this module-level slot *before*
# the pool is created; forked workers inherit the snapshot, so task
# arguments stay tiny and nothing user-defined is ever pickled.
# ----------------------------------------------------------------------
_WORKER_CONTEXT: dict[str, Any] | None = None

#: per-process cache of spooled traces, keyed by content digest — one
#: mmap per worker process regardless of how many chunks touch the trace
_TRACE_MEMO: dict[str, Trace] = {}


def _ctx() -> dict[str, Any]:
    if _WORKER_CONTEXT is None:  # pragma: no cover - defensive
        raise RuntimeError("experiment worker context is not initialised")
    return _WORKER_CONTEXT


def _resolve_trace(trace_key: tuple) -> Trace:
    """The trace for ``trace_key``: fork-inherited object, or a lazily
    memory-mapped spool file shared by every process (see the module
    docstring's columnar hand-off note)."""
    ctx = _ctx()
    trace = ctx["traces"].get(trace_key)
    if trace is not None:
        return trace
    digest, path = ctx["trace_files"][trace_key]
    trace = _TRACE_MEMO.get(digest)
    if trace is None:
        from ..system.trace_io import load_trace_npz

        # the parent validated the trace before spooling it; skipping
        # re-validation keeps the load O(1) (no page is faulted in)
        trace = load_trace_npz(path, mmap=True, validate=False)
        _TRACE_MEMO[digest] = trace
    return trace


#: bucket bounds for the cells-per-dispatched-chunk histogram: 1 cell up
#: to 10k cells, two buckets per decade
_SLAB_CELL_BUCKETS = _obs.log_buckets(1.0, 1e4, per_decade=2)


def _chunk_observed(kind: str, cells: int, thunk: Callable[[], Any]):
    """Run one worker chunk, piggybacking telemetry on its result.

    Every task function returns ``(payload, delta)`` where ``delta`` is
    the worker's drained registry snapshot (None when instrumentation is
    off, so the disabled path ships no extra bytes over the IPC).  The
    parent folds each delta in with :func:`repro.obs.metrics.merge_delta`
    at the consumption site.
    """
    if not _obs.enabled:
        return thunk(), None
    with _obs.span("runner.chunk", kind=kind, cells=cells) as sp:
        payload = thunk()
    _obs.counter("repro_worker_busy_seconds_total").inc(sp.elapsed)
    return payload, _obs.drain()


def _opt_task(item: tuple[tuple, float]):
    trace_key, lam = item

    def compute() -> tuple[tuple, float, float]:
        trace = _resolve_trace(trace_key)
        opt = optimal_cost(trace, CostModel(lam=lam, n=trace.n))
        return trace_key, lam, opt

    return _chunk_observed("opt", 1, compute)


def _slab_chunk_task(
    item: tuple[tuple, float, Sequence[tuple[int, float, float, int]]],
):
    """Evaluate one slab chunk: cells sharing a ``(trace, lambda)``.

    ``item`` is ``(trace_key, lam, cells)`` with each cell an
    ``(index, alpha, accuracy, seed)`` tuple.  The whole chunk runs in
    one vectorized batch pass when the engine and policies allow it and
    falls back to bit-identical per-cell execution otherwise, so one IPC
    round covers the entire slab either way.
    """
    trace_key, lam, cells = item
    if _obs.enabled:
        _obs.histogram(
            "repro_runner_slab_cells", bounds=_SLAB_CELL_BUCKETS
        ).observe(len(cells))

    def compute() -> list[tuple[int, float]]:
        ctx = _ctx()
        scenario: Scenario = ctx["scenario"]
        trace = _resolve_trace(trace_key)
        engine = ctx.get("engine", "auto")
        backend = ctx.get("backend")
        model = CostModel(lam=lam, n=trace.n)
        runs = run_slab(
            trace,
            model,
            [(alpha, accuracy, seed) for _, alpha, accuracy, seed in cells],
            scenario.policy_factory,
            engine=engine,
            backend=backend,
        )
        return [(cell[0], run.total_cost) for cell, run in zip(cells, runs)]

    return _chunk_observed("sim", len(cells), compute)


def _fleet_chunk_task(chunk: Sequence[tuple]):
    """Evaluate one fleet chunk: a tuple of cross-object sub-slabs.

    Each sub-slab is ``(trace_key, lam, spec_indices, factory_indices)``
    — the objects of one ``(trace digest, lambda)`` group assigned to
    this chunk.  The worker resolves the shared trace once (fork-
    inherited object or digest-addressed mmap), builds every object's
    policy from the fork-inherited factory table, and evaluates the
    whole sub-slab through :func:`~repro.core.engine.run_policy_slab`
    (kernel/batch slab where eligible, per-cell fallback otherwise).

    Returned rows are ``(spec_index, row)`` where ``row`` is the bare
    online cost in streaming mode, or a compact
    ``("cost", name, engine, storage, transfer, n_tx)`` tuple /
    ``("full", SimulationResult)`` payload when the parent materializes
    outcomes — compact rows keep a million-object run's IPC free of
    per-object trace pickling (the parent rebuilds each
    :class:`~repro.core.engine.CostResult` against its own trace
    reference, bitwise-identical totals).
    """
    n_objects = sum(len(idxs) for _, _, idxs, _ in chunk)

    def compute() -> list[tuple[int, Any]]:
        ctx = _ctx()
        n: int = ctx["n"]
        engine = ctx.get("engine", "reference")
        backend = ctx.get("backend")
        factories = ctx["factories"]
        ship_results: bool = ctx["fleet_ship_results"]
        rows: list[tuple[int, Any]] = []
        for trace_key, lam, idxs, fidxs in chunk:
            trace = _resolve_trace(trace_key)
            model = CostModel(lam=lam, n=n)
            cells = [(model, factories[f](trace, model)) for f in fidxs]
            if _obs.enabled:
                # tag with the backend the kernel tier would resolve for
                # this sub-slab's shape, so `repro obs summary` groups
                # fleet chunks per backend exactly like engine spans
                be = backends.get_backend(backend).resolve(
                    len(cells), len(trace)
                )
                with _obs.span(
                    "fleet.chunk",
                    objects=len(idxs),
                    m=len(trace),
                    lam=lam,
                    backend=be.name,
                ):
                    runs = run_policy_slab(trace, cells, engine, backend=backend)
            else:
                runs = run_policy_slab(trace, cells, engine, backend=backend)
            for i, result in zip(idxs, runs):
                if not ship_results:
                    rows.append((i, result.total_cost))
                elif type(result) is CostResult:
                    rows.append(
                        (
                            i,
                            (
                                "cost",
                                result.policy_name,
                                result.engine,
                                result.storage_cost,
                                result.transfer_cost,
                                result.n_transfers,
                            ),
                        )
                    )
                else:
                    rows.append((i, ("full", result)))
        return rows

    return _chunk_observed("fleet", n_objects, compute)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _stable_identity(fn) -> str | None:
    """``module.qualname`` if that path resolves back to ``fn``, else None.

    Closures, lambdas, and bound methods share a qualname across
    distinct parameterisations, so their identity is not cache-safe.
    """
    mod = getattr(fn, "__module__", None)
    qual = getattr(fn, "__qualname__", "")
    if not mod or "<locals>" in qual or "<lambda>" in qual:
        return None
    obj = sys.modules.get(mod)
    for part in qual.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return None
    return f"{mod}.{qual}" if obj is fn else None


class _Executor:
    """Uniform chunk executor: forked process pool, or in-process.

    Publishes ``context`` to :data:`_WORKER_CONTEXT` for the duration of
    the run so the task functions behave identically on both paths.

    When forking, also installs a kernel thread budget of
    ``cores // workers`` *before* the pool is created, so forked workers
    inherit the cap and the ``threads`` backend never oversubscribes the
    box beyond ``workers x threads <= cores`` (the serial path keeps the
    full budget).  The previous budget is restored on exit.
    """

    _NO_BUDGET = object()     # sentinel: budget untouched (serial path)

    def __init__(self, workers: int, context: dict[str, Any]):
        self._context = context
        self._mp = _fork_context() if workers > 1 else None
        self.workers = workers if self._mp is not None else 1
        self._prev_budget: Any = self._NO_BUDGET

    def __enter__(self) -> "_Executor":
        global _WORKER_CONTEXT
        _WORKER_CONTEXT = self._context
        if self.workers > 1:
            self._prev_budget = backends.set_thread_budget(
                max(1, (os.cpu_count() or 1) // self.workers)
            )
        self._pool = (
            ProcessPoolExecutor(max_workers=self.workers, mp_context=self._mp)
            if self.workers > 1
            else None
        )
        return self

    def __exit__(self, *exc) -> None:
        global _WORKER_CONTEXT
        if self._pool is not None:
            # cancel anything still queued (interrupt/resume support)
            self._pool.shutdown(wait=True, cancel_futures=True)
        if self._prev_budget is not self._NO_BUDGET:
            backends.set_thread_budget(self._prev_budget)
            self._prev_budget = self._NO_BUDGET
        _WORKER_CONTEXT = None

    def run(self, fn, chunks: Sequence[Any]):
        """Yield ``fn(chunk)`` results as they complete (any order)."""
        yield from (
            result for _, result in self.run_tagged([(None, fn, c) for c in chunks])
        )

    def run_tagged(
        self,
        tasks,
        window: int | None = None,
    ):
        """Yield ``(tag, fn(arg))`` for heterogeneous tasks as they
        complete.

        ``tasks`` is any iterable of ``(tag, fn, arg)`` triples.  With
        ``window=None`` every task enters the pool together, so cheap
        and expensive kinds never serialise behind each other.  A finite
        ``window`` keeps at most that many tasks in flight and refills
        from the iterable as futures complete — the shared-queue half of
        work-stealing dispatch: a worker that drains its small chunks
        immediately pulls the next one while a straggler is still busy,
        and the parent never holds more than ``window`` futures for an
        arbitrarily long task stream.
        """
        if self._pool is None:
            for tag, fn, arg in tasks:
                yield tag, fn(arg)
            return
        it = iter(tasks)
        limit = float("inf") if window is None else max(1, window)
        tags: dict[Any, Any] = {}
        pending: set = set()

        def refill() -> None:
            while len(pending) < limit:
                nxt = next(it, None)
                if nxt is None:
                    return
                tag, fn, arg = nxt
                fut = self._pool.submit(fn, arg)
                tags[fut] = tag
                pending.add(fut)

        refill()
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                yield tags.pop(fut), fut.result()
            refill()


class ExperimentRunner:
    """Run scenarios, grids, and fleets in parallel with result caching.

    Parameters
    ----------
    workers:
        Process count; ``None`` auto-detects (``os.cpu_count()``), values
        ``<= 1`` run serially in-process (still with caching/progress).
    cache:
        A :class:`ResultCache` for on-disk memoisation, or ``None`` to
        disable caching entirely.
    chunk_size:
        Jobs per dispatched task; ``None`` picks a size that keeps every
        worker busy while amortising pickling.
    progress:
        A :class:`~.progress.ProgressReporter`; defaults to silent.
    engine:
        Simulation engine for grid cells: ``"auto"`` (default) evaluates
        each dispatched slab of cells sharing a ``(trace, lambda)``
        with loop-free kernel replays (long traces) or one vectorized
        batch pass when every cell is fast-path eligible, per-cell on
        the fast or reference engine otherwise; ``"kernel"``/
        ``"batch"``/``"fast"``/``"reference"`` force one engine.
        Results are bit-identical across engines, so the result cache is
        shared between them.
    backend:
        Kernel execution backend (``core/backends.py``): ``None``
        defers to ``REPRO_KERNEL_BACKEND`` and then ``"auto"``;
        ``"numpy"``/``"threads"``/``"numba"`` force one.  Backends are
        bit-identical too, so the cache is shared across them as well.
        When this runner forks worker processes it caps the thread
        backend's fan-out at ``cores // workers`` for the duration of
        the run (workers x threads <= cores).
    spill_dir:
        Directory for content-addressed ``<digest>.npz`` trace spool
        files (the columnar worker hand-off).  ``None`` (default) uses a
        per-run temporary directory that is removed when the run ends; a
        persistent directory is reused across runs (files are keyed by
        trace content, so stale entries are impossible).
    spill_threshold:
        Minimum trace length (requests) for the spool hand-off; shorter
        traces ride along in the fork-inherited context as before.
        ``None`` disables spooling entirely.
    """

    #: traces at least this long are handed to workers by digest + mmap
    #: path instead of as in-context objects
    DEFAULT_SPILL_THRESHOLD = 100_000

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultCache | None = None,
        chunk_size: int | None = None,
        progress: ProgressReporter | None = None,
        engine: str | Engine = "auto",
        spill_dir: str | os.PathLike[str] | None = None,
        spill_threshold: int | None = DEFAULT_SPILL_THRESHOLD,
        backend: str | None = None,
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.cache = cache if cache is not None else NullCache()
        self.chunk_size = chunk_size
        self.progress = progress if progress is not None else NullProgress()
        self.engine = engine
        self.backend = backend
        self.spill_dir = spill_dir
        self.spill_threshold = spill_threshold

    # ------------------------------------------------------------------
    def run(self, scenario: str | Scenario) -> ExperimentResult:
        """Execute every cell of a scenario (registered name or object)."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        return self._run_scenario(scenario)

    def run_grid(
        self,
        trace: Trace,
        lambdas: Sequence[float],
        alphas: Sequence[float],
        accuracies: Sequence[float],
        factory: PolicyFactory = algorithm1_factory,
        seed: int = 0,
        optimal_cache: dict[float, float] | None = None,
        engine: str | Engine | None = None,
        backend: str | None = None,
    ) -> SweepResult:
        """Drop-in parallel equivalent of the serial ``sweep_grid`` loop.

        Simulation results are disk-cached only when ``factory`` is a
        plain module-level function whose name is a stable identity;
        closures, lambdas, and bound methods carry hidden state the
        cache key cannot see, so their grids run uncached (the offline
        optima, which depend only on the trace, stay cached either way).
        """
        salt = _stable_identity(factory)
        scenario = Scenario(
            name="adhoc-grid",
            description="ad-hoc sweep_grid delegation",
            trace_factory=lambda: trace,
            policy_factory=factory,
            lambdas=tuple(lambdas),
            alphas=tuple(alphas),
            accuracies=tuple(accuracies),
            seeds=(seed,),
            trace_params=(),
            cache_salt=salt or "",
        )
        result = self._run_scenario(
            scenario,
            optimal_cache=optimal_cache,
            sim_cache=self.cache if salt is not None else NullCache(),
            engine=engine,
            backend=backend,
        )
        return result.sweep_result(seed)

    def run_fleet(
        self,
        system,
        compute_optimal: bool = True,
        engine: str | Engine | None = None,
        materialize: bool = True,
        top_k: int = 16,
        backend: str | None = None,
    ):
        """Parallel equivalent of ``MultiObjectSystem.run``.

        Object results are not cached (policy factories of ad-hoc specs
        have no stable identity); parallelism and progress only.  The
        dispatch is built for fleet scale:

        * objects are grouped by ``(trace digest, lambda)`` and each
          group evaluates as one cross-object engine slab in the worker
          (:func:`~repro.core.engine.run_policy_slab`);
        * workers receive only their own chunk's spec indices — the
          distinct traces travel once through the fork-inherited context
          or the content-addressed mmap spool, never per object;
        * chunks are sized by total trace length and pulled from a
          shared refill queue (``run_tagged(window=...)``), so one giant
          object among thousands of tiny ones does not straggle;
        * each group's offline optimum is computed once and shared.

        Outcomes fold through an index-ordered reorder buffer, keeping
        every mode bit-identical to the serial per-object loop (see the
        DESIGN docstring in :mod:`repro.system.multi_object`).

        ``engine`` threads through to every per-object simulation.
        ``None`` (the default) inherits the engine this runner was
        configured with, except that the runner default ``"auto"``
        resolves to ``"reference"`` here: fleet reports expose full
        per-object simulation results (serves, logs), so only an
        explicit cost-only choice — ``ExperimentRunner(engine="fast")``,
        or ``engine="auto"``/``"fast"``/``"batch"`` passed directly —
        trades that telemetry away.

        ``materialize=False`` streams outcomes through the report's
        :class:`~repro.system.multi_object.FleetStats` accumulator
        (totals, worst object, ratio sketch, ``top_k`` offenders) and
        ships only online costs back from workers, so million-object
        runs hold O(top_k) state end to end.
        """
        from ..system.multi_object import FleetReport

        if engine is None:
            engine = "reference" if self.engine == "auto" else self.engine
        if backend is None:
            backend = self.backend
        specs = list(system.specs)
        report = FleetReport(materialize=materialize, top_k=top_k)
        if not specs:
            return report
        n: int = system.n

        # distinct traces: dedupe by object identity first (cheap), then
        # by content digest — the digest is the trace's worker-side name
        digest_by_id: dict[int, str] = {}
        traces: dict[str, Trace] = {}
        spec_digest: list[str] = []
        for spec in specs:
            d = digest_by_id.get(id(spec.trace))
            if d is None:
                d = trace_digest(spec.trace)
                digest_by_id[id(spec.trace)] = d
                traces.setdefault(d, spec.trace)
            spec_digest.append(d)

        # distinct policy factories, fork-inherited; chunks carry indices
        findex: dict[int, int] = {}
        factories: list[Any] = []
        spec_f: list[int] = []
        for spec in specs:
            k = id(spec.policy_factory)
            if k not in findex:
                findex[k] = len(factories)
                factories.append(spec.policy_factory)
            spec_f.append(findex[k])

        # (digest, lambda) slab groups, spec order within each group
        groups: dict[tuple[str, float], list[int]] = {}
        for i, spec in enumerate(specs):
            groups.setdefault((spec_digest[i], spec.lam), []).append(i)
        group_items = [(d, lam, idxs) for (d, lam), idxs in groups.items()]

        inherit, trace_files, spool_cleanup = self._spool_traces(
            traces, {d: d for d in traces}
        )
        context = {
            "traces": inherit,
            "trace_files": trace_files,
            "n": n,
            "engine": engine,
            "backend": backend,
            "factories": factories,
            "fleet_ship_results": bool(materialize),
        }
        chunks = self._fleet_chunks(group_items, specs, spec_f)
        opt_tasks = (
            [("opt", _opt_task, (d, lam)) for d, lam, _ in group_items]
            if compute_optimal
            else []
        )
        tasks = itertools.chain(
            opt_tasks, (("sim", _fleet_chunk_task, c) for c in chunks)
        )
        self.progress.start(len(specs), label="fleet", unit="objects")
        opts: dict[tuple[str, float], float] = {}
        pending_rows: dict[int, Any] = {}
        spec_key = [(spec_digest[i], specs[i].lam) for i in range(len(specs))]
        next_i = 0

        def drain() -> None:
            # reorder buffer: outcomes enter the report in spec-index
            # order (and only once their group's optimum is known), so
            # streaming totals repeat the serial sum's float additions
            nonlocal next_i
            while next_i < len(specs):
                if next_i not in pending_rows:
                    return
                key = spec_key[next_i]
                if compute_optimal and key not in opts:
                    return
                row = pending_rows.pop(next_i)
                spec = specs[next_i]
                if materialize:
                    if row[0] == "full":
                        result = row[1]
                    else:
                        _, name, eng_name, storage, transfer, n_tx = row
                        result = CostResult(
                            trace=spec.trace,
                            model=CostModel(lam=spec.lam, n=n),
                            policy_name=name,
                            storage_cost=storage,
                            transfer_cost=transfer,
                            n_transfers=n_tx,
                            engine=eng_name,
                        )
                    online = result.total_cost
                else:
                    result = None
                    online = row
                report.add(
                    spec.object_id,
                    online,
                    opts.get(key, 0.0),
                    len(spec.trace),
                    result=result,
                )
                next_i += 1
                self.progress.update()

        window = self.workers * 4 if self.workers > 1 else None
        with _obs.timed_span("runner.fleet", objects=len(specs)) as sp:
            try:
                with _Executor(self.workers, context) as ex:
                    for tag, (result, delta) in ex.run_tagged(
                        tasks, window=window
                    ):
                        _obs.merge_delta(delta)
                        if tag == "opt":
                            tk, lam, opt = result
                            opts[(tk, lam)] = opt
                        else:
                            if _obs.enabled:
                                _obs.counter(
                                    "repro_runner_jobs_total",
                                    source="executed",
                                ).inc(len(result))
                            for i, row in result:
                                pending_rows[i] = row
                        drain()
            finally:
                spool_cleanup()
        self.progress.finish()
        if _obs.enabled and sp.elapsed > 0:
            _obs.gauge("repro_fleet_objects_per_second").set(
                len(specs) / sp.elapsed
            )
        _log.info(
            "fleet finished",
            **kv(
                objects=len(specs),
                groups=len(group_items),
                chunks=len(chunks),
                workers=self.workers,
                materialize=bool(materialize),
                elapsed_s=round(sp.elapsed, 3),
            ),
        )
        return report

    # ------------------------------------------------------------------
    def _spool_traces(
        self, traces: Mapping[tuple, Trace], digests: Mapping[tuple, str]
    ) -> tuple[dict[tuple, Trace], dict[tuple, tuple[str, str]], Any]:
        """Write spool-eligible traces to content-addressed npz files.

        Returns ``(inherit, trace_files, cleanup)``: the traces the
        worker context keeps as objects, a ``trace_key -> (digest,
        path)`` map for the spooled ones, and a zero-argument cleanup
        callable (a no-op when a persistent ``spill_dir`` is configured,
        whose content-addressed files are reusable across runs).
        """
        threshold = self.spill_threshold
        # spool only when the run will actually fork workers: the
        # in-process fallback (workers <= 1, or no fork start method)
        # would map the files in the parent for no benefit
        if (
            threshold is None
            or self.workers <= 1
            or _fork_context() is None
        ):
            return dict(traces), {}, lambda: None
        big = [k for k, tr in traces.items() if len(tr) >= threshold]
        if not big:
            return dict(traces), {}, lambda: None
        from ..system.trace_io import save_trace_npz

        if self.spill_dir is not None:
            root = Path(self.spill_dir)
            root.mkdir(parents=True, exist_ok=True)
            cleanup: Any = lambda: None
        else:
            tmp = tempfile.TemporaryDirectory(
                prefix="repro-trace-spool-", ignore_cleanup_errors=True
            )
            root = Path(tmp.name)
            cleanup = tmp.cleanup
        trace_files: dict[tuple, tuple[str, str]] = {}
        for k in big:
            digest = digests[k]
            path = root / f"{digest}.npz"
            if not path.exists():
                # write-then-rename: a persistent spool dir may be shared
                # by concurrent runs, and the digest names the content
                tmp_path = root / f".{digest}.{os.getpid()}.tmp.npz"
                save_trace_npz(traces[k], tmp_path)
                os.replace(tmp_path, path)
                _log.info(
                    "trace spooled",
                    **kv(digest=digest[:12], bytes=path.stat().st_size),
                )
                if _obs.enabled:
                    _obs.counter("repro_runner_spool_files_total").inc()
                    _obs.counter("repro_runner_spool_bytes_total").inc(
                        path.stat().st_size
                    )
            trace_files[k] = (digest, str(path))
        inherit = {k: tr for k, tr in traces.items() if k not in trace_files}
        return inherit, trace_files, cleanup

    # ------------------------------------------------------------------
    def _chunk_size(self, n_tasks: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        if n_tasks == 0:
            return 1
        # ~4 chunks per worker balances load against dispatch overhead
        return max(1, min(64, -(-n_tasks // (self.workers * 4))))

    #: ceiling on objects per fleet chunk, bounding worker row lists
    FLEET_CHUNK_MAX_OBJECTS = 16_384
    #: per-object fixed work (policy build, row assembly) in
    #: request-equivalents, so tiny-trace fleets still get finite chunks
    FLEET_OBJECT_OVERHEAD = 64

    def _fleet_chunks(
        self,
        group_items: Sequence[tuple[str, float, Sequence[int]]],
        specs: Sequence[Any],
        spec_f: Sequence[int],
    ) -> list[tuple]:
        """Pack ``(digest, lambda)`` groups into dispatch chunks by work.

        Chunk cost is total trace length plus a per-object overhead, not
        object count, so a skewed fleet (one million-request object among
        thousands of tiny ones) splits into comparable work parcels: the
        giant object lands in its own chunk while the tiny objects pack
        densely.  Groups larger than one budget split across chunks;
        groups smaller than it share chunks (each contributing a
        sub-slab).  The packing is a pure function of spec order, trace
        lengths, and the worker/chunk-size configuration — deterministic
        run to run.  An explicit ``chunk_size`` reverts to object-count
        parcels of that size.
        """
        def cost(i: int) -> int:
            return len(specs[i].trace) + self.FLEET_OBJECT_OVERHEAD

        if self.chunk_size is not None:
            budget = None
            max_objs = max(1, self.chunk_size)
        else:
            total = sum(
                cost(i) for _, _, idxs in group_items for i in idxs
            )
            # ~4 chunks per worker: enough granularity for the refill
            # queue to rebalance, few enough to amortise dispatch
            budget = max(1, -(-total // (self.workers * 4)))
            max_objs = self.FLEET_CHUNK_MAX_OBJECTS
        chunks: list[tuple] = []
        cur: list[tuple] = []
        cur_cost = 0
        cur_objs = 0

        def close() -> None:
            nonlocal cur, cur_cost, cur_objs
            if cur:
                chunks.append(tuple(cur))
                cur, cur_cost, cur_objs = [], 0, 0

        for digest, lam, idxs in group_items:
            pos = 0
            while pos < len(idxs):
                take: list[int] = []
                fids: list[int] = []
                while pos < len(idxs):
                    c = cost(idxs[pos])
                    full = cur_objs >= max_objs or (
                        budget is not None and cur_cost + c > budget
                    )
                    # an empty chunk always accepts one object, so a
                    # single over-budget giant still dispatches
                    if full and (cur or take):
                        break
                    take.append(idxs[pos])
                    fids.append(spec_f[idxs[pos]])
                    cur_cost += c
                    cur_objs += 1
                    pos += 1
                if take:
                    cur.append((digest, lam, tuple(take), tuple(fids)))
                if pos < len(idxs):
                    close()
        close()
        return chunks

    def _slab_chunk_size(self, n_cells: int, engine: str | Engine) -> int:
        """Cells per dispatched slab chunk.

        Slab-capable engines (batch, kernel) want the widest chunks the
        pool can still load-balance (the vectorized trace pass — or the
        kernel's shared per-trace chains — amortises across every cell
        of a chunk, and wider chunks mean fewer IPC rounds); the
        per-cell engines keep the finer-grained sizing.
        """
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        name = engine.name if isinstance(engine, Engine) else engine
        if name in ("auto", "batch", "kernel"):
            return max(1, -(-n_cells // (self.workers * 2)))
        return self._chunk_size(n_cells)

    def _run_scenario(
        self,
        scenario: Scenario,
        optimal_cache: dict[float, float] | None = None,
        sim_cache: ResultCache | NullCache | None = None,
        engine: str | Engine | None = None,
        backend: str | None = None,
    ) -> ExperimentResult:
        busy0 = (
            _obs.counter("repro_worker_busy_seconds_total").value
            if _obs.enabled
            else 0.0
        )
        # the span both records the scenario in the timeline (when
        # enabled) and is the stopwatch behind ExperimentResult.elapsed
        with _obs.timed_span("runner.scenario", scenario=scenario.name) as sp:
            out = self._run_scenario_inner(
                scenario, optimal_cache, sim_cache, engine, backend
            )
        out.elapsed = sp.elapsed
        _log.info(
            "scenario finished",
            **kv(
                scenario=scenario.name,
                jobs=len(out),
                executed=out.executed,
                cached=out.cached,
                workers=self.workers,
                elapsed_s=round(out.elapsed, 3),
            ),
        )
        if _obs.enabled and out.elapsed > 0:
            busy = _obs.counter("repro_worker_busy_seconds_total").value - busy0
            _obs.gauge("repro_worker_utilization").set(
                min(1.0, busy / (self.workers * out.elapsed))
            )
        return out

    def _run_scenario_inner(
        self,
        scenario: Scenario,
        optimal_cache: dict[float, float] | None,
        sim_cache: ResultCache | NullCache | None,
        engine: str | Engine | None,
        backend: str | None = None,
    ) -> ExperimentResult:
        if sim_cache is None:
            sim_cache = self.cache
        if engine is None:
            engine = self.engine
        if backend is None:
            backend = self.backend
        jobs = _enumerate_jobs(scenario)
        out = ExperimentResult(
            scenario=scenario.name,
            description=scenario.description,
            workers=self.workers,
        )

        # build each distinct trace once, in the parent
        traces: dict[tuple, Trace] = {}
        digests: dict[tuple, str] = {}
        for job in jobs:
            if job.trace_key not in traces:
                tr = scenario.build_trace(**job.params)
                traces[job.trace_key] = tr
                digests[job.trace_key] = trace_digest(tr)

        # large traces are handed off by digest + mmap path, small ones
        # ride along in the fork-inherited context
        inherit, trace_files, spool_cleanup = self._spool_traces(traces, digests)
        context = {
            "scenario": scenario,
            "traces": inherit,
            "trace_files": trace_files,
            "engine": engine,
            "backend": backend,
        }
        opts: dict[tuple[tuple, float], float] = {}
        online: dict[int, tuple[float, bool]] = {}

        # ----- offline optima: one per distinct (trace, lambda) -------
        opt_pairs = list(dict.fromkeys((j.trace_key, j.lam) for j in jobs))
        opt_misses: list[tuple[tuple, float]] = []
        single_trace = len(traces) == 1
        with _obs.span("runner.cache_lookup", jobs=len(jobs)):
            for tk, lam in opt_pairs:
                if (
                    optimal_cache is not None
                    and single_trace
                    and lam in optimal_cache
                ):
                    opts[(tk, lam)] = optimal_cache[lam]
                    out.opt_cached += 1
                    continue
                hit = self.cache.get(
                    self._opt_payload(scenario, digests[tk], lam)
                )
                if hit is not None:
                    opts[(tk, lam)] = float(hit["optimal_cost"])
                    out.opt_cached += 1
                else:
                    opt_misses.append((tk, lam))

            # ----- simulations: consult the cache, then dispatch misses
            sim_misses: list[Job] = []
            for job in jobs:
                hit = sim_cache.get(
                    self._sim_payload(scenario, digests[job.trace_key], job)
                )
                if hit is not None:
                    online[job.index] = (float(hit["online_cost"]), True)
                    out.cached += 1
                else:
                    sim_misses.append(job)
        if _obs.enabled:
            _obs.counter("repro_runner_jobs_total", source="cached").inc(
                out.cached
            )

        self.progress.start(
            len(jobs), cached=out.cached, label=scenario.name
        )
        by_index = {j.index: j for j in sim_misses}
        # group cache misses into slabs keyed by (trace digest, lambda):
        # every cell of a slab shares one trace pass on the batch engine,
        # and one slab chunk costs one IPC round.  Each slab is split
        # into at most ~2 chunks per worker so wide grids still load-
        # balance across the pool.
        slabs: dict[tuple[str, float], tuple[tuple, list[Job]]] = {}
        for j in sim_misses:
            key = (digests[j.trace_key], j.lam)
            slabs.setdefault(key, (j.trace_key, []))[1].append(j)
        chunks: list[tuple[tuple, float, tuple]] = []
        for (_, lam), (trace_key, slab_jobs) in slabs.items():
            cells = [(j.index, j.alpha, j.accuracy, j.seed) for j in slab_jobs]
            size = self._slab_chunk_size(len(cells), engine)
            chunks.extend(
                (trace_key, lam, tuple(part)) for part in _chunked(cells, size)
            )
        # optima and simulation chunks enter the pool together: the
        # optima are consumed only at assembly below, so nothing waits
        # on the (expensive) DP before simulations start
        tasks = [("opt", _opt_task, pair) for pair in opt_misses]
        tasks += [("sim", _slab_chunk_task, chunk) for chunk in chunks]
        try:
            with _Executor(self.workers, context) as ex:
                for tag, (result, delta) in ex.run_tagged(tasks):
                    _obs.merge_delta(delta)
                    if tag == "opt":
                        tk, lam, opt = result
                        opts[(tk, lam)] = opt
                        out.opt_executed += 1
                        self.cache.put(
                            self._opt_payload(scenario, digests[tk], lam),
                            {"optimal_cost": opt},
                        )
                        if optimal_cache is not None and single_trace:
                            optimal_cache[lam] = opt
                        continue
                    if _obs.enabled:
                        _obs.counter(
                            "repro_runner_jobs_total", source="executed"
                        ).inc(len(result))
                    for index, cost in result:
                        online[index] = (cost, False)
                        out.executed += 1
                        job = by_index[index]
                        sim_cache.put(
                            self._sim_payload(
                                scenario, digests[job.trace_key], job
                            ),
                            {"online_cost": cost},
                        )
                        self.progress.update()
        finally:
            spool_cleanup()

        for job in jobs:
            cost, was_cached = online[job.index]
            out.results.append(
                JobResult(
                    job=job,
                    online_cost=cost,
                    optimal_cost=opts[(job.trace_key, job.lam)],
                    cached=was_cached,
                )
            )
        self.progress.finish()
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _base_payload(scenario: Scenario, digest: str) -> dict[str, Any]:
        return {
            "scenario": scenario.name,
            "scenario_version": scenario.version,
            "salt": scenario.cache_salt,
            "trace": digest,
        }

    def _opt_payload(
        self, scenario: Scenario, digest: str, lam: float
    ) -> dict[str, Any]:
        # the offline optimum depends only on the trace and lambda, so the
        # payload deliberately omits scenario identity: grids sharing a
        # trace share their optima
        return {"kind": "opt", "trace": digest, "lam": lam}

    def _sim_payload(
        self, scenario: Scenario, digest: str, job: Job
    ) -> dict[str, Any]:
        return {
            "kind": "sim",
            **self._base_payload(scenario, digest),
            **job.params,
        }


def _enumerate_jobs(scenario: Scenario) -> list[Job]:
    """Expand a scenario grid in the serial ``sweep_grid`` order."""
    jobs: list[Job] = []
    for seed, lam, alpha, accuracy in itertools.product(
        scenario.seeds, scenario.lambdas, scenario.alphas, scenario.accuracies
    ):
        key = tuple(
            scenario.trace_args(lam, alpha, accuracy, seed).values()
        )
        jobs.append(
            Job(
                index=len(jobs),
                scenario=scenario.name,
                lam=lam,
                alpha=alpha,
                accuracy=accuracy,
                seed=seed,
                trace_key=key,
            )
        )
    return jobs


def _chunked(items: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [items[i : i + size] for i in range(0, len(items), size)]
