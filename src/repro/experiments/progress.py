"""Incremental progress reporting and result summary tables.

Runners accept any object with the small :class:`ProgressReporter`
surface; :class:`ConsoleProgress` throttles itself so a million-job grid
does not drown the terminal, and :func:`summary_table` renders a
finished :class:`~.runner.ExperimentResult` in the same per-lambda
table layout the paper's figures use.
"""

from __future__ import annotations

import sys
import time
from typing import IO

from ..obs import metrics as _obs

__all__ = [
    "ProgressReporter",
    "NullProgress",
    "ConsoleProgress",
    "summary_table",
]


class ProgressReporter:
    """Minimal progress surface: ``start``, ``update``, ``finish``."""

    def start(
        self, total: int, cached: int = 0, label: str = "", unit: str = "cells"
    ) -> None:
        """Begin a run of ``total`` jobs, ``cached`` of them pre-resolved.

        ``unit`` names what is being counted in rate lines (grid runs
        count "cells", fleet runs count "objects").
        """

    def update(self, n: int = 1) -> None:
        """Record ``n`` newly executed jobs."""

    def finish(self) -> None:
        """The run completed."""


class NullProgress(ProgressReporter):
    """Silent reporter (the default for library use)."""


class ConsoleProgress(ProgressReporter):
    """Line-based progress on a stream, rate-limited to ``min_interval``.

    Prints one line at start (total and cache hits), periodic count
    lines with throughput and an ETA while jobs execute, and a
    completion line with throughput.

    When instrumentation is on (:func:`repro.obs.metrics.enable`) the
    executed-job count is read from the ``repro_runner_jobs_total``
    telemetry counter the runner maintains — one source of truth shared
    with exporters and the summary command — with this reporter's own
    ``update()`` tally as the floor for callers driving it outside the
    runner.  Counters are monotonic across runs, so ``start()`` records
    a baseline.
    """

    def __init__(self, stream: IO[str] | None = None, min_interval: float = 0.5):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._total = 0
        self._cached = 0
        self._done = 0
        self._label = ""
        self._t0 = 0.0
        self._last_print = 0.0
        self._exec_counter = None
        self._exec_base = 0.0
        self._unit = "cells"

    def _emit(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def _executed(self) -> int:
        """Jobs executed since ``start()``: the telemetry counter when
        instrumentation is on, this reporter's own tally otherwise."""
        local = self._done - self._cached
        if self._exec_counter is None:
            return local
        return max(local, int(self._exec_counter.value - self._exec_base))

    def start(
        self, total: int, cached: int = 0, label: str = "", unit: str = "cells"
    ) -> None:
        self._total, self._cached, self._done = total, cached, cached
        self._label = label or "experiment"
        self._unit = unit
        self._t0 = self._last_print = time.monotonic()
        if _obs.enabled:
            self._exec_counter = _obs.counter(
                "repro_runner_jobs_total", source="executed"
            )
            self._exec_base = self._exec_counter.value
        else:
            self._exec_counter = None
        todo = total - cached
        self._emit(
            f"[{self._label}] {total} jobs "
            f"({cached} cached, {todo} to run)"
        )

    def update(self, n: int = 1) -> None:
        self._done += n
        now = time.monotonic()
        if now - self._last_print < self.min_interval and self._done < self._total:
            return
        self._last_print = now
        executed = self._executed()
        done = min(self._total, self._cached + executed)
        elapsed = now - self._t0
        line = f"[{self._label}] {done}/{self._total} done"
        if executed > 0 and elapsed > 0:
            rate = executed / elapsed
            remaining = self._total - done
            line += f" ({rate:.1f} {self._unit}/s, eta {remaining / rate:.0f}s)"
        self._emit(line)

    def finish(self) -> None:
        elapsed = time.monotonic() - self._t0
        executed = self._executed()
        rate = executed / elapsed if elapsed > 0 else float("inf")
        self._emit(
            f"[{self._label}] finished: {executed} executed, "
            f"{self._cached} cached in {elapsed:.1f}s ({rate:.1f} {self._unit}/s)"
        )


def summary_table(result) -> str:
    """Render an :class:`~.runner.ExperimentResult` for humans.

    One header block with execution statistics, then the per-lambda
    ratio tables (alpha rows x accuracy columns) per seed.
    """
    from ..analysis.sweep import format_table

    lines = [
        f"scenario: {result.scenario} — {result.description}",
        f"jobs: {len(result)} "
        f"(executed {result.executed}, cached {result.cached}; "
        f"optima computed {result.opt_executed}, cached {result.opt_cached})",
        f"workers: {result.workers}, elapsed: {result.elapsed:.2f}s",
    ]
    seeds = result.seeds()
    ratios = [r.ratio for r in result.results]
    if ratios:
        lines.append(
            f"ratio range: {min(ratios):.4f} .. {max(ratios):.4f}"
        )
    for seed in seeds:
        sweep = result.sweep_result(seed)
        for lam in sweep.lambdas():
            title = f"{result.scenario}: lambda = {lam:g}"
            if len(seeds) > 1:
                title += f", seed = {seed}"
            lines.append("")
            lines.append(format_table(sweep, lam, title=title))
    return "\n".join(lines)
