"""JSON/CSV artifact store for experiment results with provenance.

One saved experiment is a directory ``<root>/<name>/`` holding

* ``result.json`` — provenance (git SHA, UTC timestamp, package and
  Python versions), the parameter grid actually run, execution
  statistics, and every result row;
* ``rows.csv`` — the same rows in spreadsheet-friendly form.

Artifacts are plain files on purpose: they diff cleanly, survive
refactors of the in-memory classes, and downstream plotting needs no
imports from this package.
"""

from __future__ import annotations

import csv
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = ["ArtifactStore", "provenance"]

_ROW_FIELDS = (
    "scenario",
    "seed",
    "lam",
    "alpha",
    "accuracy",
    "online_cost",
    "optimal_cost",
    "ratio",
    "cached",
)


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance() -> dict[str, Any]:
    """Reproducibility metadata attached to every saved artifact."""
    from .. import __version__

    return {
        "git_sha": _git_sha(),
        "created_at": datetime.now(timezone.utc).isoformat(),
        "package_version": __version__,
        "python_version": sys.version.split()[0],
    }


class ArtifactStore:
    """Save and load experiment results under one root directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        return self.root / name

    # ------------------------------------------------------------------
    def save(self, result, name: str | None = None) -> Path:
        """Persist an :class:`~.runner.ExperimentResult`; returns its dir."""
        name = name or result.scenario
        out_dir = self.path_for(name)
        out_dir.mkdir(parents=True, exist_ok=True)
        rows = result.rows()
        grid = {
            "lambdas": sorted({r["lam"] for r in rows}),
            "alphas": sorted({r["alpha"] for r in rows}),
            "accuracies": sorted({r["accuracy"] for r in rows}),
            "seeds": sorted({r["seed"] for r in rows}),
        }
        payload = {
            "provenance": provenance(),
            "scenario": result.scenario,
            "description": result.description,
            "grid": grid,
            "stats": {
                "jobs": len(result),
                "executed": result.executed,
                "cached": result.cached,
                "opt_executed": result.opt_executed,
                "opt_cached": result.opt_cached,
                "workers": result.workers,
                "elapsed_seconds": result.elapsed,
            },
            "rows": rows,
        }
        with open(out_dir / "result.json", "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
        with open(out_dir / "rows.csv", "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=_ROW_FIELDS)
            writer.writeheader()
            writer.writerows(rows)
        return out_dir

    def load(self, name: str) -> dict[str, Any]:
        """Load a saved ``result.json`` back as a plain dict."""
        with open(self.path_for(name) / "result.json", encoding="utf-8") as fh:
            return json.load(fh)

    def names(self) -> list[str]:
        """Saved experiment names (directories containing result.json)."""
        if not self.root.exists():
            return []
        return sorted(
            p.parent.name for p in self.root.glob("*/result.json")
        )
