"""``repro.obs`` — zero-overhead telemetry: spans, metrics, exporters.

DESIGN
======

Why an observability layer
--------------------------
The engine tiers, the slab runner, and the mmap trace spool made grid
evaluation fast, but also *opaque*: engine-tier selection decisions,
cache hit rates, slab shapes, worker utilization, and spool behaviour
all happened silently.  This package is the system's telemetry spine —
every layer records into one process-local :class:`~.metrics.Registry`,
and three exporters (JSON snapshot, Prometheus text exposition, Chrome
trace-event timelines) turn a run into data a dashboard, a CI trend
gate, or Perfetto can consume.

The zero-overhead argument
--------------------------
Telemetry is off by default and must cost (almost) nothing when off:

* every instrumented call site is guarded by **one module-attribute
  read** — ``if metrics.enabled:`` — before any telemetry object is
  touched.  A Python attribute load plus a branch is a few tens of
  nanoseconds; the call sites sit at cell/slab/file granularity (never
  inside per-request loops), so a full grid pays a few hundred checks
  total.  ``benchmarks/bench_obs.py`` measures the end-to-end cost on
  the fig25 kernel grid and gates it below 2%;
* the constructors the guard protects are never reached when disabled;
  API entry points that cannot be guarded (a ``with obs span`` in
  caller code) return the shared :data:`~.metrics.NOOP_SPAN` singleton,
  whose enter/exit do not even read the clock;
* instruments are lock-free plain-attribute accumulators: recording,
  when enabled, is a dict get + integer add.

The bit-identity-neutrality argument
------------------------------------
Instrumentation must never change *what* the system computes, only
observe it.  That holds by construction, not by testing alone:

* telemetry draws **no randomness** — there is no sampling, so the RNG
  streams that make engine results reproducible are never advanced by
  an observation;
* telemetry imposes **no ordering** — instruments are updated after
  decisions are made, never consulted by them; no simulation value is
  read back from a counter or span;
* the only values telemetry reads are the monotonic clock (which no
  engine consumes) and already-computed results (counts, byte sizes);
* worker deltas ride on the existing result IPC and merge into the
  parent with commutative operations (counter/histogram addition, gauge
  max), so worker scheduling cannot leak into merged counts.

``tests/test_obs.py`` pins the consequence: sweep/runner results are
bit-identical with telemetry enabled vs disabled across every engine
tier, and serial counters equal pooled counters.

Public surface
--------------
:mod:`repro.obs.metrics`
    ``enabled`` flag + ``enable()``/``disable()``, ``Counter`` /
    ``Gauge`` / ``Histogram`` (fixed log-spaced buckets via
    ``log_buckets``), ``span()`` / ``timed_span()`` / ``@traced``,
    the fork-aware process ``Registry`` and the worker
    ``drain()`` / ``merge_delta()`` protocol.
:mod:`repro.obs.exporters`
    ``write_snapshot_json`` / ``load_snapshot_json``,
    ``to_prometheus`` (text exposition format), ``to_chrome_trace``
    (Perfetto-loadable), ``summarize`` (the ``repro obs summary``
    pretty-printer).
:mod:`repro.obs.logging`
    stdlib-``logging`` structured logs (key=value or JSON lines),
    library-silent by default, configured by the CLI's
    ``--log-level`` / ``--log-json`` flags.

CLI wiring: ``repro sweep|experiments run|bench --metrics-out M
--spans-out S`` enable telemetry for the run and export on exit;
``repro obs summary M`` pretty-prints a snapshot.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    Span,
    SpanRecord,
    counter,
    disable,
    drain,
    enable,
    enabled_scope,
    gauge,
    get_registry,
    histogram,
    log_buckets,
    merge_delta,
    reset,
    span,
    timed_span,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "SpanRecord",
    "counter",
    "disable",
    "drain",
    "enable",
    "enabled_scope",
    "gauge",
    "get_registry",
    "histogram",
    "log_buckets",
    "merge_delta",
    "reset",
    "span",
    "timed_span",
    "traced",
]
