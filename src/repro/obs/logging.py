"""Structured logging for the library: key=value or JSON lines.

The library logs under the ``"repro"`` logger hierarchy and is silent by
default (a ``NullHandler`` on the root library logger, per the stdlib
convention for libraries) — importing :mod:`repro` never configures the
logging system or writes to ``sys.stderr``.  Applications opt in with
:func:`configure`, and the ``repro`` CLI does so through its
``--log-level`` / ``--log-json`` flags.

Structured fields travel on the standard :mod:`logging` machinery: pass
``extra={"fields": {...}}`` (or use the :func:`kv` shorthand) and both
formatters render the mapping — :class:`KeyValueFormatter` as trailing
``key=value`` tokens, :class:`JsonFormatter` as one JSON object per
line.  Handlers attached by other applications see ordinary
``LogRecord`` objects either way.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Any, Mapping

__all__ = [
    "LIBRARY_LOGGER",
    "get_logger",
    "configure",
    "kv",
    "KeyValueFormatter",
    "JsonFormatter",
]

#: the root of the library's logger hierarchy
LIBRARY_LOGGER = "repro"

# library convention: silent unless the application configures handlers
logging.getLogger(LIBRARY_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger inside the library hierarchy.

    ``get_logger("experiments.runner")`` names
    ``repro.experiments.runner``; ``None`` returns the root library
    logger.  Loggers are silent until :func:`configure` (or an
    application's own handler setup) attaches handlers.
    """
    if name is None or name == LIBRARY_LOGGER:
        return logging.getLogger(LIBRARY_LOGGER)
    if name.startswith(LIBRARY_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LIBRARY_LOGGER}.{name}")


def kv(**fields: Any) -> dict[str, Any]:
    """Shorthand for the structured-fields ``extra``:
    ``log.info("spooled", **kv(bytes=123))``."""
    return {"extra": {"fields": fields}}


class KeyValueFormatter(logging.Formatter):
    """``time level logger message key=value ...`` single-line records."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record)} {record.levelname.lower():<7} "
            f"{record.name} {record.getMessage()}"
        )
        fields: Mapping[str, Any] | None = getattr(record, "fields", None)
        if fields:
            base += " " + " ".join(f"{k}={v}" for k, v in fields.items())
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, plus fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields: Mapping[str, Any] | None = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure(
    level: str | int = "warning",
    json_output: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach one stream handler to the library root logger.

    Idempotent: a handler previously attached by this function is
    replaced, not stacked, so repeated CLI invocations in one process
    never duplicate lines.  Returns the configured library logger.
    """
    logger = logging.getLogger(LIBRARY_LOGGER)
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_output else KeyValueFormatter())
    handler.set_name("repro-obs-logging")
    for h in list(logger.handlers):
        if h.get_name() == "repro-obs-logging":
            logger.removeHandler(h)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
