"""Process-local telemetry instruments: counters, gauges, histograms, spans.

The module keeps exactly one piece of mutable global state per process —
:data:`enabled`, the instrumentation switch, plus the process registry it
guards — and exposes two families of API:

* **instruments** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  — plain accumulator objects with no locks and no I/O, created
  get-or-create style from a :class:`Registry` keyed by ``(name, tags)``;
* **spans** (:func:`span`, :func:`timed_span`, :func:`traced`) —
  monotonic-clock wall-time intervals recorded as flat tuples into the
  registry's span log, exportable as a Chrome trace timeline.

Call sites throughout the library guard their instrumentation with one
module-attribute read (``if metrics.enabled:``); see the package
docstring (:mod:`repro.obs`) for the zero-overhead and bit-identity
arguments.

Fork/merge protocol
-------------------
:func:`get_registry` is fork-aware: a registry inherited through
``fork()`` is discarded on first access in the child (the pid no longer
matches), so worker processes always start from an empty registry and
their telemetry is never double-counted against the parent's.  Workers
call :func:`drain` at the end of each task and piggyback the returned
delta dict on their result IPC; the parent calls :func:`merge_delta` on
each one.  Merging is commutative for counters and histograms (integer
and float additions of disjoint work), takes the maximum for gauges, and
concatenates span logs — so the merged registry's counter values do not
depend on worker scheduling order.
"""

from __future__ import annotations

import bisect
import functools
import math
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, NamedTuple

__all__ = [
    "enabled",
    "enable",
    "disable",
    "enabled_scope",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanRecord",
    "Span",
    "NOOP_SPAN",
    "span",
    "timed_span",
    "traced",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "reset",
    "drain",
    "merge_delta",
    "log_buckets",
    "DEFAULT_TIME_BUCKETS",
    "MAX_SPANS",
]

#: the module-level instrumentation switch.  Call sites read it as a
#: module attribute (``metrics.enabled``) so :func:`enable` /
#: :func:`disable` take effect everywhere immediately; never import the
#: bare name (``from ... import enabled`` would freeze its value).
enabled: bool = False

#: span-log cap per registry: a bound on telemetry memory, not a silent
#: truncation — overflow increments :attr:`Registry.dropped_spans`,
#: which every exporter surfaces.
MAX_SPANS = 100_000


def enable() -> None:
    """Turn instrumentation on for this process (and future forks)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn instrumentation off; the registry contents are kept."""
    global enabled
    enabled = False


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily set the enabled flag (tests and benchmarks)."""
    global enabled
    prev = enabled
    enabled = on
    try:
        yield
    finally:
        enabled = prev


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds, ``lo`` .. ``hi``.

    Returns ``per_decade`` geometrically spaced bounds per factor of 10,
    endpoints included; every histogram sharing ``(lo, hi, per_decade)``
    gets bit-identical bounds, which is what makes cross-process
    histogram merges well defined.
    """
    if not (0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got ({lo}, {hi})")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = round(math.log10(hi / lo) * per_decade)
    return tuple(lo * 10 ** (k / per_decade) for k in range(n + 1))


#: default bounds for wall-time histograms: 10 microseconds to 1000
#: seconds, two buckets per decade (plus the implicit +Inf overflow)
DEFAULT_TIME_BUCKETS = log_buckets(1e-5, 1e3, per_decade=2)


def _tag_key(tags: Mapping[str, Any]) -> tuple:
    # keys are unique, so sorting never compares the (possibly
    # heterogeneous) values
    return tuple(sorted(tags.items()))


class Counter:
    """A monotonically increasing accumulator (int or float increments)."""

    kind = "counter"
    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: Mapping[str, Any] | None = None):
        self.name = name
        self.tags = dict(tags or {})
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.tags!r}, value={self.value})"


class Gauge:
    """A point-in-time value (last write wins; merges take the max)."""

    kind = "gauge"
    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: Mapping[str, Any] | None = None):
        self.name = name
        self.tags = dict(tags or {})
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.tags!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with log-spaced upper bounds.

    ``bounds`` are ascending inclusive upper bounds; one implicit +Inf
    overflow bucket follows them (``counts`` has ``len(bounds) + 1``
    entries).  ``observe`` is two integer updates and one float add — no
    allocation, no sorting.
    """

    kind = "histogram"
    __slots__ = ("name", "tags", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        tags: Mapping[str, Any] | None = None,
        bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ):
        self.name = name
        self.tags = dict(tags or {})
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name!r}, {self.tags!r}, count={self.count}, "
            f"sum={self.sum})"
        )


class SpanRecord(NamedTuple):
    """One finished span: flat, picklable, exporter-ready."""

    name: str
    tags: tuple  # sorted (key, value) pairs
    start_ns: int
    dur_ns: int
    pid: int
    tid: int


class Registry:
    """Process-local home of every instrument and the span log.

    Not thread-safe by design: the library's hot paths are single-
    threaded per process (workers are processes, not threads), and a
    lock per ``inc()`` would be most of the cost of the instrument.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self.spans: list[SpanRecord] = []
        self.dropped_spans: int = 0
        self.pid = os.getpid()

    # -- instruments ---------------------------------------------------
    def counter(self, name: str, **tags: Any) -> Counter:
        key = ("counter", name, _tag_key(tags))
        hit = self._metrics.get(key)
        if hit is None:
            hit = self._metrics[key] = Counter(name, tags)
        return hit

    def gauge(self, name: str, **tags: Any) -> Gauge:
        key = ("gauge", name, _tag_key(tags))
        hit = self._metrics.get(key)
        if hit is None:
            hit = self._metrics[key] = Gauge(name, tags)
        return hit

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        **tags: Any,
    ) -> Histogram:
        key = ("histogram", name, _tag_key(tags))
        hit = self._metrics.get(key)
        if hit is None:
            hit = self._metrics[key] = Histogram(name, tags, bounds)
        return hit

    def record_span(
        self, name: str, tags: Mapping[str, Any], start_ns: int, dur_ns: int
    ) -> None:
        if len(self.spans) >= MAX_SPANS:
            self.dropped_spans += 1
            return
        self.spans.append(
            SpanRecord(
                name,
                _tag_key(tags),
                start_ns,
                dur_ns,
                os.getpid(),
                threading.get_ident(),
            )
        )

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable copy of everything recorded so far.

        Metric lists are sorted by ``(name, tags)`` so two registries
        holding the same values produce byte-identical snapshots
        regardless of creation order.
        """
        counters, gauges, histograms = [], [], []
        for (kind, name, tkey), m in sorted(self._metrics.items()):
            entry: dict[str, Any] = {"name": name, "tags": dict(tkey)}
            if kind == "counter":
                entry["value"] = m.value
                counters.append(entry)
            elif kind == "gauge":
                entry["value"] = m.value
                gauges.append(entry)
            else:
                entry["bounds"] = list(m.bounds)
                entry["counts"] = list(m.counts)
                entry["sum"] = m.sum
                entry["count"] = m.count
                histograms.append(entry)
        return {
            "kind": "repro-obs-snapshot",
            "version": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": [
                {
                    "name": s.name,
                    "tags": dict(s.tags),
                    "start_ns": s.start_ns,
                    "dur_ns": s.dur_ns,
                    "pid": s.pid,
                    "tid": s.tid,
                }
                for s in self.spans
            ],
            "dropped_spans": self.dropped_spans,
        }

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` / :func:`drain` delta into this registry.

        Counter and histogram contributions add; gauges keep the maximum
        (the only commutative, order-independent choice without
        timestamps); spans append subject to :data:`MAX_SPANS`.
        """
        if delta.get("kind") != "repro-obs-snapshot":
            raise ValueError("not an obs snapshot delta")
        for c in delta.get("counters", ()):
            self.counter(c["name"], **c["tags"]).inc(c["value"])
        for g in delta.get("gauges", ()):
            inst = self.gauge(g["name"], **g["tags"])
            inst.value = max(inst.value, g["value"])
        for h in delta.get("histograms", ()):
            inst = self.histogram(
                h["name"], bounds=tuple(h["bounds"]), **h["tags"]
            )
            if list(inst.bounds) != list(h["bounds"]):
                raise ValueError(
                    f"histogram {h['name']!r} bucket bounds mismatch on merge"
                )
            for i, n in enumerate(h["counts"]):
                inst.counts[i] += n
            inst.sum += h["sum"]
            inst.count += h["count"]
        for s in delta.get("spans", ()):
            if len(self.spans) >= MAX_SPANS:
                self.dropped_spans += 1
                continue
            self.spans.append(
                SpanRecord(
                    s["name"],
                    tuple(sorted(s["tags"].items())),
                    s["start_ns"],
                    s["dur_ns"],
                    s["pid"],
                    s["tid"],
                )
            )
        self.dropped_spans += delta.get("dropped_spans", 0)

    def reset(self) -> None:
        self._metrics.clear()
        self.spans.clear()
        self.dropped_spans = 0


# ----------------------------------------------------------------------
# process registry (fork-aware)
# ----------------------------------------------------------------------
_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-local registry.

    A registry inherited through ``fork()`` is replaced by a fresh one on
    first access in the child, so worker telemetry starts at zero and the
    parent's counts are never replayed through a worker delta.
    """
    global _REGISTRY
    if _REGISTRY.pid != os.getpid():
        _REGISTRY = Registry()
    return _REGISTRY


def counter(name: str, **tags: Any) -> Counter:
    """Get-or-create a counter in the process registry."""
    return get_registry().counter(name, **tags)


def gauge(name: str, **tags: Any) -> Gauge:
    """Get-or-create a gauge in the process registry."""
    return get_registry().gauge(name, **tags)


def histogram(
    name: str, bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS, **tags: Any
) -> Histogram:
    """Get-or-create a histogram in the process registry."""
    return get_registry().histogram(name, bounds=bounds, **tags)


def reset() -> None:
    """Clear the process registry (tests, or between CLI invocations)."""
    get_registry().reset()


def drain() -> dict[str, Any] | None:
    """Snapshot-and-clear the process registry; None when disabled.

    Worker task functions call this once per task and ship the delta
    back on the result IPC; :func:`merge_delta` folds it into the
    parent.  In-process execution drains and re-merges the same
    registry, which is value-preserving.
    """
    if not enabled:
        return None
    reg = get_registry()
    snap = reg.snapshot()
    reg.reset()
    return snap


def merge_delta(delta: Mapping[str, Any] | None) -> None:
    """Fold a worker delta (or None, a no-op) into the process registry."""
    if delta is not None:
        get_registry().merge(delta)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class Span:
    """A monotonic-clock wall-time interval, context-manager style.

    ``elapsed`` (seconds) is valid after exit whether or not the span
    was recorded, so callers may use a span purely as a stopwatch (see
    :func:`timed_span`).
    """

    __slots__ = ("name", "tags", "elapsed", "_start", "_record")

    def __init__(
        self, name: str, tags: Mapping[str, Any] | None = None, record: bool = True
    ):
        self.name = name
        self.tags = dict(tags or {})
        self.elapsed: float = 0.0
        self._start = 0
        self._record = record

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        dur = time.perf_counter_ns() - self._start
        self.elapsed = dur * 1e-9
        if self._record:
            get_registry().record_span(self.name, self.tags, self._start, dur)


class _NoopSpan:
    """The shared disabled-path span: no clock reads, no allocation."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(name: str, **tags: Any) -> Span | _NoopSpan:
    """A recorded span when enabled, the shared no-op otherwise."""
    if not enabled:
        return NOOP_SPAN
    return Span(name, tags)


def timed_span(name: str, **tags: Any) -> Span:
    """A span that always measures ``elapsed`` but records only when
    enabled — for call sites whose own logic consumes the duration
    (e.g. ``ExperimentResult.elapsed``)."""
    return Span(name, tags, record=enabled)


def traced(name: str | None = None, **tags: Any) -> Callable:
    """Decorator form of :func:`span`; the disabled path is one flag
    check and a direct call."""

    def deco(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not enabled:
                return fn(*args, **kwargs)
            with Span(label, tags):
                return fn(*args, **kwargs)

        return wrapper

    return deco
