"""Telemetry exporters: JSON snapshot, Prometheus text, Chrome trace.

All three exporters consume the plain-dict snapshot produced by
:meth:`repro.obs.metrics.Registry.snapshot` (never live registry
objects), so exporting is side-effect free and a snapshot written today
re-exports identically tomorrow.

* :func:`write_snapshot_json` / :func:`load_snapshot_json` — the
  canonical on-disk form; round-trips exactly.
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, ``name{label="v"} value`` samples, cumulative
  ``_bucket``/``_sum``/``_count`` histogram series), suitable for a
  textfile collector or a pushgateway.
* :func:`to_chrome_trace` — Chrome trace-event JSON (complete ``"X"``
  events in microseconds), loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev for a span timeline across processes.
* :func:`summarize` — the human-readable rendering behind
  ``repro obs summary``.
"""

from __future__ import annotations

import json
import math
import os
import re
from collections import defaultdict
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "write_snapshot_json",
    "load_snapshot_json",
    "to_prometheus",
    "to_chrome_trace",
    "write_metrics",
    "write_chrome_trace",
    "summarize",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _check_snapshot(snap: Mapping[str, Any]) -> Mapping[str, Any]:
    if snap.get("kind") != "repro-obs-snapshot":
        raise ValueError("not a repro obs snapshot (missing kind marker)")
    return snap


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------


def write_snapshot_json(snap: Mapping[str, Any], path: str | os.PathLike) -> None:
    """Write a registry snapshot as indented JSON."""
    _check_snapshot(snap)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_snapshot_json(path: str | os.PathLike) -> dict[str, Any]:
    """Read a snapshot back; validates the kind marker."""
    with open(path, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    _check_snapshot(snap)
    return snap


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_value(v: float) -> str:
    if isinstance(v, float) and math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v) if isinstance(v, float) else str(v)


def _prom_labels(tags: Mapping[str, Any], extra: tuple = ()) -> str:
    items = [(k, v) for k, v in sorted(tags.items())] + list(extra)
    if not items:
        return ""
    parts = []
    for k, v in items:
        val = str(v).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{_LABEL_RE.sub("_", str(k))}="{val}"')
    return "{" + ",".join(parts) + "}"


def to_prometheus(snap: Mapping[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    _check_snapshot(snap)
    by_name: dict[tuple[str, str], list[str]] = defaultdict(list)
    for c in snap.get("counters", ()):
        name = _prom_name(c["name"])
        by_name[(name, "counter")].append(
            f"{name}{_prom_labels(c['tags'])} {_prom_value(c['value'])}"
        )
    for g in snap.get("gauges", ()):
        name = _prom_name(g["name"])
        by_name[(name, "gauge")].append(
            f"{name}{_prom_labels(g['tags'])} {_prom_value(g['value'])}"
        )
    for h in snap.get("histograms", ()):
        name = _prom_name(h["name"])
        lines = by_name[(name, "histogram")]
        cum = 0
        for bound, n in zip(h["bounds"], h["counts"]):
            cum += n
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels(h['tags'], (('le', _prom_value(float(bound))),))}"
                f" {cum}"
            )
        cum += h["counts"][len(h["bounds"])]
        lines.append(
            f"{name}_bucket{_prom_labels(h['tags'], (('le', '+Inf'),))} {cum}"
        )
        lines.append(f"{name}_sum{_prom_labels(h['tags'])} {_prom_value(h['sum'])}")
        lines.append(f"{name}_count{_prom_labels(h['tags'])} {h['count']}")
    out: list[str] = []
    for (name, kind), lines in sorted(by_name.items()):
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# Chrome trace-event format (Perfetto-loadable)
# ----------------------------------------------------------------------


def to_chrome_trace(snap: Mapping[str, Any]) -> dict[str, Any]:
    """Render the snapshot's spans as Chrome trace-event JSON.

    Complete (``"ph": "X"``) events, timestamps in microseconds,
    normalised so the earliest span starts at 0.  Each span's tags are
    exposed as ``args``; the category is the span-name prefix before the
    first dot (``engine.slab`` -> ``engine``), which Perfetto can filter
    on.
    """
    _check_snapshot(snap)
    spans = snap.get("spans", [])
    t0 = min((s["start_ns"] for s in spans), default=0)
    events: list[dict[str, Any]] = []
    for s in spans:
        name = s["name"]
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": (s["start_ns"] - t0) / 1e3,
                "dur": s["dur_ns"] / 1e3,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": dict(s["tags"]),
            }
        )
    pids = sorted({s["pid"] for s in spans})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_spans": snap.get("dropped_spans", 0)},
    }


# ----------------------------------------------------------------------
# path-based front doors (CLI)
# ----------------------------------------------------------------------


def write_metrics(snap: Mapping[str, Any], path: str | os.PathLike) -> None:
    """Write metrics to ``path``: Prometheus text for ``.prom`` / ``.txt``
    suffixes, the JSON snapshot otherwise."""
    if Path(path).suffix.lower() in (".prom", ".txt"):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus(snap))
    else:
        write_snapshot_json(snap, path)


def write_chrome_trace(snap: Mapping[str, Any], path: str | os.PathLike) -> None:
    """Write the snapshot's spans as a Chrome trace JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(snap), fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# human-readable summary
# ----------------------------------------------------------------------


def _fmt_tags(tags: Mapping[str, Any]) -> str:
    if not tags:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "}"


def summarize(snap: Mapping[str, Any]) -> str:
    """Pretty-print a snapshot (the ``repro obs summary`` output)."""
    _check_snapshot(snap)
    lines: list[str] = []
    counters = snap.get("counters", [])
    gauges = snap.get("gauges", [])
    histograms = snap.get("histograms", [])
    spans = snap.get("spans", [])
    lines.append(
        f"obs snapshot: {len(counters)} counters, {len(gauges)} gauges, "
        f"{len(histograms)} histograms, {len(spans)} spans"
        + (
            f" ({snap['dropped_spans']} dropped)"
            if snap.get("dropped_spans")
            else ""
        )
    )
    if counters:
        lines.append("")
        lines.append("counters:")
        for c in counters:
            lines.append(f"  {c['name']}{_fmt_tags(c['tags'])} = {c['value']:g}")
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for g in gauges:
            lines.append(f"  {g['name']}{_fmt_tags(g['tags'])} = {g['value']:g}")
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for h in histograms:
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {h['name']}{_fmt_tags(h['tags'])}: "
                f"count={h['count']} sum={h['sum']:g} mean={mean:g}"
            )
    if spans:
        lines.append("")
        lines.append("span totals (wall time by name):")
        by_name: dict[str, tuple[int, float]] = {}
        for s in spans:
            # engine spans carry the active kernel execution backend;
            # keep the backends' stats apart instead of lumping every
            # kernel cell/slab into one row
            key = s["name"]
            backend = (s.get("tags") or {}).get("backend")
            if backend:
                key = f"{key}{{backend={backend}}}"
            n, tot = by_name.get(key, (0, 0.0))
            by_name[key] = (n + 1, tot + s["dur_ns"] * 1e-9)
        width = max(len(n) for n in by_name)
        for name in sorted(by_name, key=lambda n: -by_name[n][1]):
            n, tot = by_name[name]
            lines.append(f"  {name:<{width}}  n={n:<6d} total={tot:.4f}s")
    return "\n".join(lines)
