"""Figures 25-28: online-to-optimal cost ratio over (alpha, accuracy).

One benchmark per lambda in {10, 100, 1000, 10000}.  Each regenerates
the paper's 3-D surface as a text table (alpha rows x accuracy columns)
and asserts the qualitative findings of Appendix J.2:

* every ratio respects robustness ``1 + 1/alpha``; the 100%-accuracy
  column respects consistency ``(5 + alpha)/3``;
* the ``alpha = 1`` row is constant (predictions unused);
* the minimum lies at (small alpha, high accuracy);
* ``lambda = 10``: all ratios close to 1;
* ``lambda = 10000``: ratios close to 1 except toward (0, 0).

The timed portion is one full-accuracy simulation at alpha = 0.2 (the
grid itself is computed once per lambda outside the timer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostModel, LearningAugmentedReplication, OraclePredictor, simulate
from repro.analysis.sweep import format_table
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.experiments import ExperimentRunner, get_scenario, trace_digest

from conftest import ACCURACIES, ALPHAS, WORKERS, emit

_GRIDS: dict[float, object] = {}
_TRACE_CHECKED = False
_FIGURE_SCENARIO = {10.0: "fig25", 100.0: "fig26", 1000.0: "fig27", 10000.0: "fig28"}


def _grid(trace, lam):
    """The figure's grid via the experiment registry, at bench scale.

    The registered scenarios build their own trace; the one-time digest
    check keeps it in lockstep with the ``paper_trace`` fixture the
    timed units use (all four figures share one trace factory).
    """
    global _TRACE_CHECKED
    if lam not in _GRIDS:
        scenario = get_scenario(_FIGURE_SCENARIO[lam]).with_grid(
            alphas=ALPHAS, accuracies=ACCURACIES
        )
        if not _TRACE_CHECKED:
            scenario_trace = scenario.build_trace(
                lam=lam, alpha=ALPHAS[0], accuracy=ACCURACIES[0], seed=0
            )
            assert trace_digest(scenario_trace) == trace_digest(trace), (
                "registry scenario workload diverged from the bench fixture"
            )
            _TRACE_CHECKED = True
        runner = ExperimentRunner(workers=WORKERS)
        _GRIDS[lam] = runner.run(scenario).sweep_result()
    return _GRIDS[lam]


def _check_and_emit(result, lam, figure):
    lines = [format_table(result, lam, title=f"{figure}: lambda = {lam:g}")]
    for p in result.points:
        if p.alpha > 0:
            assert p.ratio <= robustness_bound(p.alpha) + 1e-7, p
        if p.accuracy == 1.0:
            assert p.ratio <= consistency_bound(p.alpha) + 1e-7, p
    # alpha = 1 row constant
    row = [result.at(lam, 1.0, a).ratio for a in result.accuracies()]
    assert max(row) - min(row) < 1e-9
    # minimum at small alpha + perfect accuracy (paper's J.2 observation):
    # the best cell must be in the top-accuracy column
    mat = result.ratios_for_lambda(lam)
    best_alpha_i, best_acc_j = np.unravel_index(np.argmin(mat), mat.shape)
    assert best_acc_j == mat.shape[1] - 1
    lines.append(
        f"min ratio {mat.min():.4f} at alpha={result.alphas()[best_alpha_i]:g}, "
        f"accuracy={result.accuracies()[best_acc_j]:.0%} "
        f"(paper: minimum toward alpha->0, accuracy->100%)"
    )
    emit(f"{figure} (lambda={lam:g})", "\n".join(lines))
    return mat


@pytest.mark.parametrize(
    "figure,lam",
    [
        ("Figure 25", 10.0),
        ("Figure 26", 100.0),
        ("Figure 27", 1000.0),
        ("Figure 28", 10000.0),
    ],
)
def test_fig25_28_grid(benchmark, paper_trace, figure, lam):
    result = _grid(paper_trace, lam)
    mat = _check_and_emit(result, lam, figure)

    if lam == 10.0:
        # paper: ratios close to 1 everywhere (gaps >> lambda)
        assert mat.max() < 1.6
    if lam == 10000.0:
        # paper: "almost no difference ... unless both alpha and
        # prediction accuracy approach 0": flat away from the corner,
        # peaked at (alpha -> 0, accuracy -> 0)
        away_from_corner = mat[2:, 1:]  # alpha >= 0.4, accuracy >= 20%
        assert away_from_corner.max() < 1.35
        assert mat[0, 0] == mat.max()  # the corner is the global peak
        assert mat[:, -1].max() < consistency_bound(1.0)  # perfect: near 1

    # timed unit: one oracle-prediction run at alpha = 0.2
    model = CostModel(lam=lam, n=paper_trace.n)

    def unit():
        pol = LearningAugmentedReplication(OraclePredictor(paper_trace), 0.2)
        return simulate(paper_trace, model, pol).total_cost

    benchmark(unit)
