"""Partition-level verification of the Section 5 analysis at scale.

Not a paper figure, but the paper's *proof structure*: every partition of
the request sequence (induced by the optimal strategy) must satisfy the
consistency bound with perfect predictions.  Running it on the full
evaluation workload turns the proof into a measurement.
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostModel,
    LearningAugmentedReplication,
    OraclePredictor,
    simulate,
)
from repro.analysis.partition import partition_report
from repro.analysis.theory import consistency_bound

from conftest import emit


def test_partition_bounds_at_scale(benchmark, paper_trace):
    # a moderate slice keeps the partition scan affordable in CI
    trace = paper_trace.slice_time(0.0, paper_trace.times[2000])
    lam, alpha = 1000.0, 0.3
    model = CostModel(lam=lam, n=trace.n)
    pol = LearningAugmentedReplication(OraclePredictor(trace), alpha)
    res = simulate(trace, model, pol)
    parts = partition_report(trace, model, res, pol.classifications)

    ratios = np.array([p.ratio for p in parts if p.opt > 0])
    bound = consistency_bound(alpha)
    assert ratios.max() <= bound + 1e-7
    emit(
        "Section 5 partition analysis (perfect predictions, lambda=1000)",
        "\n".join(
            [
                f"{len(parts)} partitions over {len(trace)} requests",
                f"per-partition ratio: max {ratios.max():.4f}, "
                f"mean {ratios.mean():.4f}, median {np.median(ratios):.4f}",
                f"consistency bound (5+alpha)/3 = {bound:.4f} — "
                "holds for every partition",
            ]
        ),
    )

    def unit():
        return len(partition_report(trace, model, res, pol.classifications))

    benchmark(unit)
