"""Engine tier benchmark: reference event loop vs fast cost-only replay.

Runs the *engines smoke grid* — Algorithm 1 with noisy-oracle
predictions over ``lambda x alpha x accuracy`` = {100, 1000} x
{0.2, 1.0} x {0, 1} on a 2000-request IBM-like trace — once per engine,
asserts the two cost ledgers are identical, and records wall-clock and
speedup.  A 2000-request trace keeps the grid seconds-scale for CI while
being long enough that per-request overheads (not fixed setup) dominate,
which is what the engine tiers differ in.

Standalone use (the CI smoke step)::

    python benchmarks/bench_engines.py [--out benchmarks/BENCH_engines.json]

writes ``BENCH_engines.json`` seeding the perf trajectory:
``{"speedup": ..., "reference_s": ..., "fast_s": ..., "cells": [...]}``.
Cost equality between the engines is always asserted; the wall-clock
speedup gate only fails the process under ``--strict`` (CI smoke runs
non-strict so a contended shared runner cannot flake unrelated PRs —
the pytest entry point keeps the gate for dedicated perf runs).
"""

from __future__ import annotations

import os
import sys
import time

SMOKE_LAMBDAS = (100.0, 1000.0)
SMOKE_ALPHAS = (0.2, 1.0)
SMOKE_ACCURACIES = (0.0, 1.0)
SMOKE_M = 2000
SMOKE_N = 10
SMOKE_SEED = 0

#: CI gate; locally measured speedups are ~13x (see BENCH_engines.json),
#: the gate leaves headroom for noisy shared runners
MIN_SPEEDUP = 8.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "speedup"


def _smoke_trace():
    from repro.workloads import ibm_like_trace

    return ibm_like_trace(n=SMOKE_N, m=SMOKE_M, seed=SMOKE_SEED)


def run_engine_grid(trace=None, repeats: int = 3) -> dict:
    """Time both engines over every smoke-grid cell; best of ``repeats``.

    Policies are constructed outside the timers (predictor setup is
    identical for both engines); each timed unit is one ``engine.run``.
    """
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import FastCostEngine, ReferenceEngine

    if trace is None:
        trace = _smoke_trace()
    fast = FastCostEngine()
    ref = ReferenceEngine()
    cells = []
    total_ref = 0.0
    total_fast = 0.0
    for lam in SMOKE_LAMBDAS:
        model = CostModel(lam=lam, n=trace.n)
        for alpha in SMOKE_ALPHAS:
            for acc in SMOKE_ACCURACIES:
                best_ref = best_fast = float("inf")
                for _ in range(repeats):
                    policy = algorithm1_factory(trace, lam, alpha, acc, SMOKE_SEED)
                    t0 = time.perf_counter()
                    r = ref.run(trace, model, policy)
                    best_ref = min(best_ref, time.perf_counter() - t0)

                    policy = algorithm1_factory(trace, lam, alpha, acc, SMOKE_SEED)
                    t0 = time.perf_counter()
                    f = fast.run(trace, model, policy)
                    best_fast = min(best_fast, time.perf_counter() - t0)

                    assert f.storage_cost == r.storage_cost, (lam, alpha, acc)
                    assert f.transfer_cost == r.transfer_cost, (lam, alpha, acc)
                total_ref += best_ref
                total_fast += best_fast
                cells.append(
                    {
                        "lam": lam,
                        "alpha": alpha,
                        "accuracy": acc,
                        "total_cost": f.total_cost,
                        "reference_s": best_ref,
                        "fast_s": best_fast,
                        "speedup": best_ref / best_fast,
                    }
                )
    return {
        "grid": "engines-smoke",
        "trace": {"workload": "ibm_like", "n": SMOKE_N, "m": SMOKE_M,
                  "seed": SMOKE_SEED},
        "reference_s": total_ref,
        "fast_s": total_fast,
        "speedup": total_ref / total_fast,
        "cells": cells,
    }


def test_engine_speedup(benchmark, paper_trace):
    """Fast engine: identical costs, >= MIN_SPEEDUP x on the smoke grid."""
    from conftest import emit
    from repro.core.costs import CostModel
    from repro.core.engine import FastCostEngine
    from repro.analysis.sweep import algorithm1_factory

    report = run_engine_grid()
    lines = [
        f"{c['lam']:>8g} {c['alpha']:>5g} {c['accuracy']:>4g} "
        f"{c['reference_s'] * 1e3:>9.2f}ms {c['fast_s'] * 1e3:>8.2f}ms "
        f"{c['speedup']:>6.1f}x"
        for c in report["cells"]
    ]
    emit(
        "Engine tiers (reference vs fast, smoke grid)",
        "  lambda alpha  acc  reference     fast  speedup\n"
        + "\n".join(lines)
        + f"\nTOTAL reference {report['reference_s']:.3f}s  fast "
        f"{report['fast_s']:.3f}s  speedup {report['speedup']:.1f}x",
    )
    assert report["speedup"] >= MIN_SPEEDUP

    # timed unit: one fast-engine run on the full-length paper trace
    model = CostModel(lam=1000.0, n=paper_trace.n)
    fast = FastCostEngine()
    policy = algorithm1_factory(paper_trace, 1000.0, 0.2, 1.0, 0)
    benchmark(lambda: fast.run(paper_trace, model, policy).total_cost)


def main(argv=None) -> int:
    from benchcli import gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_engines.json"),
        MIN_SPEEDUP,
    )
    report = run_engine_grid()
    write_report(report, out)
    print(
        f"engines smoke grid ({len(report['cells'])} cells, "
        f"m={SMOKE_M}): reference {report['reference_s']:.3f}s, "
        f"fast {report['fast_s']:.3f}s, speedup {report['speedup']:.1f}x "
        f"-> {out}"
    )
    return gate_exit(report["speedup"], gate, strict, label="speedup")


if __name__ == "__main__":
    sys.exit(main())
