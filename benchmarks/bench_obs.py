"""Telemetry overhead benchmark: the fig25 grid with obs off vs on.

The ``repro.obs`` substrate claims to compile to near-zero overhead when
disabled (one module-attribute check per call site) and to cost a few
percent at most when enabled (instrumentation sits at slab/cell/file
granularity, never inside per-request loops).  This suite measures both
claims on the paper's *fig25 grid* — the full ``alpha x accuracy`` =
11 x 11 slab at ``lambda = 10`` on an IBM-like trace — evaluated
through :func:`repro.core.engine.run_slab` with the ``auto`` engine,
which is exactly the instrumented path the sweep and the experiment
runner drive.

Three numbers come out:

* ``disabled_s`` / ``enabled_s`` — best-of-N wall time for the whole
  slab with instrumentation off and on; ``speedup = disabled_s /
  enabled_s`` is the gated quantity (default gate
  :data:`MIN_SPEEDUP` = 0.98, i.e. the enabled path may cost at most
  ~2%).
* ``guard_ns`` — nanoseconds per disabled-path guard check, measured on
  a tight loop of flag reads (the entire cost instrumentation adds to
  an uninstrumented call site when obs is off).
* bit-identity — per-cell costs with obs on are asserted equal, bit for
  bit, to the costs with obs off before any timing is reported.

Standalone use (the CI smoke step runs this via ``repro bench``)::

    python benchmarks/bench_obs.py [--out benchmarks/BENCH_obs.json]
                                   [--requests 300000]
                                   [--gate 0.98] [--strict]
"""

from __future__ import annotations

import os
import sys
import time

FIG25_LAMBDA = 10.0
FULL_M = 300_000
SMOKE_N = 10
SMOKE_SEED = 0

#: the enabled path may cost at most ~2% over the disabled path at slab
#: granularity (speedup = disabled / enabled)
MIN_SPEEDUP = 0.98

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "speedup"

#: iterations for the guard micro-benchmark
GUARD_ITERS = 1_000_000

#: quick profile appended by `repro bench --quick` (the CI smoke step)
QUICK_ARGS = ["--requests", "50000"]


def _grid_cells():
    from repro.analysis.sweep import PAPER_ACCURACIES, PAPER_ALPHAS

    return [
        (alpha, acc, SMOKE_SEED)
        for alpha in PAPER_ALPHAS
        for acc in PAPER_ACCURACIES
    ]


def _time_guard(iters: int = GUARD_ITERS) -> float:
    """Nanoseconds per disabled-path guard check (``metrics.enabled``)."""
    from repro.obs import metrics

    assert not metrics.enabled
    t0 = time.perf_counter_ns()
    hits = 0
    for _ in range(iters):
        if metrics.enabled:  # the exact call-site pattern
            hits += 1
    elapsed = time.perf_counter_ns() - t0
    assert hits == 0
    return elapsed / iters


def run_obs_overhead(requests: int = FULL_M, repeats: int = 3) -> dict:
    """Time the fig25 slab with instrumentation off vs on; best of
    ``repeats`` each, alternating so thermal drift hits both sides."""
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import run_slab
    from repro.obs import metrics
    from repro.workloads import ibm_like_trace

    trace = ibm_like_trace(n=SMOKE_N, m=requests, seed=SMOKE_SEED)
    cells = _grid_cells()
    model = CostModel(lam=FIG25_LAMBDA, n=trace.n)

    best_off = best_on = float("inf")
    runs_off = runs_on = None
    for _ in range(repeats):
        with metrics.enabled_scope(False):
            t0 = time.perf_counter()
            runs_off = run_slab(
                trace, model, cells, algorithm1_factory, engine="auto"
            )
            best_off = min(best_off, time.perf_counter() - t0)
        with metrics.enabled_scope(True):
            t0 = time.perf_counter()
            runs_on = run_slab(
                trace, model, cells, algorithm1_factory, engine="auto"
            )
            best_on = min(best_on, time.perf_counter() - t0)

    # bit-identity: instrumentation must not perturb a single cost
    for cell, off, on in zip(cells, runs_off, runs_on):
        assert off.total_cost == on.total_cost, cell
        assert off.storage_cost == on.storage_cost, cell
        assert off.transfer_cost == on.transfer_cost, cell
        assert off.n_transfers == on.n_transfers, cell

    snap = metrics.get_registry().snapshot()
    cells_counted = sum(
        c["value"]
        for c in snap["counters"]
        if c["name"] == "repro_engine_cells_total"
    )
    metrics.reset()
    guard_ns = _time_guard()

    n_cells = len(cells)
    return {
        "grid": "fig25",
        "lam": FIG25_LAMBDA,
        "trace": {"workload": "ibm_like", "n": SMOKE_N, "m": requests,
                  "seed": SMOKE_SEED},
        "cells": n_cells,
        "repeats": repeats,
        "disabled_s": best_off,
        "enabled_s": best_on,
        "overhead_pct": (best_on / best_off - 1.0) * 100.0,
        "speedup": best_off / best_on,
        "guard_ns": guard_ns,
        "cells_counted": cells_counted,
    }


def main(argv=None) -> int:
    from benchcli import flag_value, gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_obs.json"),
        MIN_SPEEDUP,
    )
    raw = flag_value(args, "--requests")
    requests = int(raw) if raw is not None else FULL_M
    report = run_obs_overhead(requests=requests)
    write_report(report, out)
    print(
        f"fig25 grid ({report['cells']} cells, m={requests}): "
        f"obs off {report['disabled_s']:.2f}s, "
        f"on {report['enabled_s']:.2f}s "
        f"({report['overhead_pct']:+.2f}% overhead), "
        f"guard {report['guard_ns']:.0f}ns/check -> {out}"
    )
    return gate_exit(
        report["speedup"], gate, strict, label="disabled/enabled ratio"
    )


if __name__ == "__main__":
    sys.exit(main())
