"""Kernel backend benchmark: numpy vs thread-parallel vs compiled loops.

Runs the paper's *fig25 grid* (Algorithm 1 with noisy-oracle
predictions over the full ``alpha x accuracy`` axes at ``lambda = 10``)
through the kernel engine once per registered execution backend
(``core/backends.py``), plus a heterogeneous-lambda *mixed-policy*
fleet slab (Conventional + Wang cells, all on the kernel tier) through
:func:`run_policy_slab`:

* ``numpy`` — the serial vectorized baseline (speedup 1.0 by
  definition);
* ``threads`` — cells fanned over a thread pool, swept across thread
  budgets (2 .. cpu_count) via :func:`set_thread_budget`; the sweep is
  empty on a single-core box (oversubscribed threads would record a
  bogus crossover), and each swept budget records whether it actually
  beat the serial baseline on this core count;
* ``numba`` — compiled hot loops, timed only when numba is importable
  (best-of-repeats excludes the first-call JIT compile).

Per-cell cost equality against the numpy baseline is asserted bit for
bit for every backend and both slab shapes — the backends' whole value
proposition is speed at *zero* numeric drift, so the benchmark fails
rather than record a fast-but-wrong number.

Standalone use (the CI smoke step runs this via ``repro bench``)::

    python benchmarks/bench_backends.py [--out benchmarks/BENCH_backends.json]
                                        [--requests 1000000]
                                        [--gate 2.0] [--strict]

writes ``BENCH_backends.json``: per-backend wall clock and speedups
over numpy plus the measurement environment (``cpu_count``,
``thread_budget``, ``numba``) — a recorded speedup is meaningless
without the core count it was measured on.  The gated metric is the
best any backend achieves over numpy; numpy itself anchors it at 1.0,
so the default CI gate (``--gate 1.0 --strict``) asserts "no backend
regresses the suite" on single-core runners while multi-core boxes
must show threads actually winning before the recorded full-size run
clears :data:`MIN_SPEEDUP`.
"""

from __future__ import annotations

import os
import sys
import time

FIG25_LAMBDA = 10.0
FULL_M = 1_000_000
SMOKE_N = 10
SMOKE_SEED = 0

#: fleet slab shape: objects with heterogeneous per-object lambdas
FLEET_CELLS = 64

#: gate at the recorded full size on a multi-core box (the ISSUE's bar:
#: threads >= 2x over numpy on 8 cores); single-core boxes record
#: best_speedup ~= 1.0 and the CI quick profile gates at 1.0
MIN_SPEEDUP = 2.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "best_speedup"

#: quick profile appended by `repro bench --quick` (the CI smoke step)
QUICK_ARGS = ["--requests", "60000"]


def _grid_cells():
    from repro.analysis.sweep import PAPER_ACCURACIES, PAPER_ALPHAS

    return [
        (alpha, acc, SMOKE_SEED)
        for alpha in PAPER_ALPHAS
        for acc in PAPER_ACCURACIES
    ]


def _thread_counts() -> list[int]:
    """Thread budgets to sweep: 2 and the box's core count, but never
    more threads than there are cores.  On a single-core box the sweep
    is empty — threads cannot win there, and forcing a budget of 2 (as
    this helper once did) records a bogus oversubscribed "crossover"
    into BENCH_backends.json; ``auto`` never picks threads at budget 1
    for the same reason."""
    cores = os.cpu_count() or 1
    return [t for t in sorted({2, cores}) if 2 <= t <= cores]


def _assert_identical(cells, base, other, label):
    for cell, a, b in zip(cells, base, other):
        assert a.storage_cost == b.storage_cost, (label, cell)
        assert a.transfer_cost == b.transfer_cost, (label, cell)
        assert a.n_transfers == b.n_transfers, (label, cell)


def run_backend_grid(requests: int = FULL_M, repeats: int | None = None) -> dict:
    """Time the fig25 kernel slab and a fleet slab per backend; best of
    ``repeats`` (default: 1 at full size, 2 below — the second numba
    repeat is the one free of JIT compilation)."""
    from repro.algorithms.conventional import ConventionalReplication
    from repro.algorithms.wang import WangReplication
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.backends import numba_available, set_thread_budget
    from repro.core.costs import CostModel
    from repro.core.engine import get_engine, run_policy_slab
    from repro.workloads import ibm_like_trace

    if repeats is None:
        repeats = 1 if requests >= 500_000 else 2
    trace = ibm_like_trace(n=SMOKE_N, m=requests, seed=SMOKE_SEED)
    cells = _grid_cells()
    model = CostModel(lam=FIG25_LAMBDA, n=trace.n)
    # mixed-policy fleet: every fourth object runs the Wang baseline,
    # which is kernel-eligible now and shares the single-tier slab
    fleet = [
        (
            CostModel(lam=5.0 + i, n=trace.n),
            WangReplication() if i % 4 == 3 else ConventionalReplication(),
        )
        for i in range(FLEET_CELLS)
    ]

    def time_grid(backend: str) -> tuple[float, list]:
        eng = get_engine("kernel", backend=backend)
        best, runs = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            runs = eng.run_slab(trace, model, algorithm1_factory, cells)
            best = min(best, time.perf_counter() - t0)
        return best, runs

    def time_fleet(backend: str) -> tuple[float, list]:
        best, runs = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            runs = run_policy_slab(trace, fleet, "kernel", backend=backend)
            best = min(best, time.perf_counter() - t0)
        return best, runs

    backends_report: dict[str, dict] = {}
    numpy_s, base_grid = time_grid("numpy")
    numpy_fleet_s, base_fleet = time_fleet("numpy")
    backends_report["numpy"] = {
        "grid_s": numpy_s,
        "fleet_s": numpy_fleet_s,
        "speedup": 1.0,
    }

    for t in _thread_counts():
        prev = set_thread_budget(t)
        try:
            grid_s, grid_runs = time_grid("threads")
            fleet_s, fleet_runs = time_fleet("threads")
        finally:
            set_thread_budget(prev)
        _assert_identical(cells, base_grid, grid_runs, f"threads[{t}]")
        _assert_identical(range(FLEET_CELLS), base_fleet, fleet_runs,
                          f"threads[{t}]-fleet")
        backends_report[f"threads[{t}]"] = {
            "grid_s": grid_s,
            "fleet_s": fleet_s,
            "speedup": numpy_s / grid_s,
            # per-core-count crossover record: does this thread budget
            # actually beat the serial baseline on this box?
            "thread_count": t,
            "wins": numpy_s / grid_s > 1.0,
        }

    if numba_available():
        grid_s, grid_runs = time_grid("numba")
        fleet_s, fleet_runs = time_fleet("numba")
        _assert_identical(cells, base_grid, grid_runs, "numba")
        _assert_identical(range(FLEET_CELLS), base_fleet, fleet_runs,
                          "numba-fleet")
        backends_report["numba"] = {
            "grid_s": grid_s,
            "fleet_s": fleet_s,
            "speedup": numpy_s / grid_s,
        }

    best = max(b["speedup"] for b in backends_report.values())
    return {
        "grid": "fig25",
        "lam": FIG25_LAMBDA,
        "trace": {"workload": "ibm_like", "n": SMOKE_N, "m": requests,
                  "seed": SMOKE_SEED},
        "cells": len(cells),
        "fleet_cells": FLEET_CELLS,
        "cpu_count": os.cpu_count() or 1,
        "thread_counts": _thread_counts(),
        "numba": numba_available(),
        "backends": backends_report,
        "best_speedup": best,
    }


def test_backend_grid(benchmark, paper_trace):
    """Backends: identical costs on the fig25 slab, threads timed."""
    from conftest import emit
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.backends import set_thread_budget
    from repro.core.costs import CostModel
    from repro.core.engine import get_engine

    report = run_backend_grid(requests=100_000, repeats=2)
    lines = [
        f"{name}: grid {b['grid_s']:.2f}s fleet {b['fleet_s']:.2f}s "
        f"speedup {b['speedup']:.2f}x"
        for name, b in report["backends"].items()
    ]
    emit(
        "Kernel execution backends (fig25 slab + fleet slab, bit-identical)",
        f"m={report['trace']['m']} cores={report['cpu_count']} "
        f"numba={report['numba']}\n" + "\n".join(lines),
    )
    assert report["best_speedup"] >= 1.0

    # timed unit: the threads backend on the paper-scale fig25 slab
    model = CostModel(lam=FIG25_LAMBDA, n=paper_trace.n)
    eng = get_engine("kernel", backend="threads")
    cells = _grid_cells()
    prev = set_thread_budget(os.cpu_count() or 1)
    try:
        benchmark(
            lambda: eng.run_slab(paper_trace, model, algorithm1_factory, cells)
        )
    finally:
        set_thread_budget(prev)


def main(argv=None) -> int:
    from benchcli import flag_value, gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_backends.json"),
        MIN_SPEEDUP,
    )
    raw = flag_value(args, "--requests")
    requests = int(raw) if raw is not None else FULL_M
    report = run_backend_grid(requests=requests)
    write_report(report, out)
    print(
        f"fig25 grid ({report['cells']} cells, m={requests}, "
        f"{report['cpu_count']} cores, numba={report['numba']}):"
    )
    for name, b in report["backends"].items():
        print(
            f"  {name:<12s} grid {b['grid_s']:.2f}s  "
            f"fleet {b['fleet_s']:.2f}s  speedup {b['speedup']:.2f}x"
        )
    print(f"best speedup {report['best_speedup']:.2f}x -> {out}")
    return gate_exit(report["best_speedup"], gate, strict, label="best_speedup")


if __name__ == "__main__":
    sys.exit(main())
