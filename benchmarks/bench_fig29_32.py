"""Figures 29-32: the adapted Algorithm 1 with robustness target 2+beta.

Grid: lambda in {1000, 10000} x beta in {0.1, 1}, following Appendix J
(the lambda in {10, 100} cases coincide with the original algorithm and
are covered by Figures 25-26).  Following the paper, the first 100
requests run the original Algorithm 1 as warm-up.

Both grids resolve through the experiment registry (``fig29`` ..
``fig32`` for the adapted algorithm, ``fig27`` / ``fig28`` for the plain
baseline at the same lambda) and run through the parallel
:class:`ExperimentRunner`, scaled down to the bench axes.

Asserted shape: the adapted algorithm's ratio never exceeds the target
``2 + beta`` by more than the warm-up contribution, and wherever plain
Algorithm 1 already respected the target the two coincide closely.
"""

from __future__ import annotations

import pytest

from repro import AdaptiveReplication, CostModel, NoisyOraclePredictor, \
    OraclePredictor, simulate
from repro.analysis.theory import adaptive_robustness_bound
from repro.experiments import ExperimentRunner, get_scenario

from conftest import WORKERS, emit

ALPHAS = (0.0, 0.2, 0.5, 1.0)
ACCURACIES = (0.0, 0.5, 1.0)
_GRIDS: dict[str, object] = {}
_PLAIN_SCENARIO = {1000.0: "fig27", 10000.0: "fig28"}


def _predictor(trace, acc, seed=0):
    if acc >= 1.0:
        return OraclePredictor(trace)
    return NoisyOraclePredictor(trace, acc, seed=seed)


def _grid(name):
    if name not in _GRIDS:
        scenario = get_scenario(name).with_grid(
            alphas=ALPHAS, accuracies=ACCURACIES
        )
        _GRIDS[name] = ExperimentRunner(workers=WORKERS).run(
            scenario
        ).sweep_result()
    return _GRIDS[name]


@pytest.mark.parametrize(
    "figure,lam,beta",
    [
        ("Figure 29", 1000.0, 0.1),
        ("Figure 30", 10000.0, 0.1),
        ("Figure 31", 1000.0, 1.0),
        ("Figure 32", 10000.0, 1.0),
    ],
)
def test_fig29_32_adaptive(benchmark, paper_trace, figure, lam, beta):
    adaptive_name = {
        (1000.0, 0.1): "fig29",
        (10000.0, 0.1): "fig30",
        (1000.0, 1.0): "fig31",
        (10000.0, 1.0): "fig32",
    }[(lam, beta)]
    plain_grid = _grid(_PLAIN_SCENARIO[lam])
    adaptive_grid = _grid(adaptive_name)
    target = adaptive_robustness_bound(beta)

    lines = [
        f"{figure}: lambda = {lam:g}, beta = {beta:g}, target ratio <= {target:g}",
        f"{'alpha':>6} {'acc':>5} {'plain':>8} {'adaptive':>9}",
    ]
    worst = 0.0
    for alpha in ALPHAS:
        for acc in ACCURACIES:
            plain = plain_grid.at(lam, alpha, acc).ratio
            adaptive = adaptive_grid.at(lam, alpha, acc).ratio
            worst = max(worst, adaptive)
            lines.append(
                f"{alpha:>6.1f} {acc:>5.0%} {plain:>8.3f} {adaptive:>9.3f}"
            )
            # the paper's claim: the adapted algorithm prevents the ratio
            # from growing beyond the target (modulo warm-up prefix)
            assert adaptive <= target * 1.25 + 0.05, (figure, alpha, acc)
            # and it never does worse than plain when plain is in budget
            if plain <= target:
                assert adaptive <= max(plain * 1.1, target * 1.05)
    lines.append(f"worst adaptive ratio: {worst:.3f} (target {target:g})")
    # the registry grid reports costs only; re-run the most adversarial
    # cell (small alpha, 0% accuracy) directly to keep the monitor's
    # forced-fallback fraction observable in the emitted results
    probe = AdaptiveReplication(
        _predictor(paper_trace, 0.0), 0.2, beta=beta, warmup=100
    )
    model = CostModel(lam=lam, n=paper_trace.n)
    simulate(paper_trace, model, probe)
    forced = sum(1 for (_, _, f) in probe.monitor_history if f) / max(
        1, len(probe.monitor_history)
    )
    lines.append(
        f"monitor forced-fallback fraction at (alpha=0.2, acc=0%): {forced:.1%}"
    )
    emit(figure, "\n".join(lines))

    def unit():
        pol = AdaptiveReplication(
            _predictor(paper_trace, 0.5), 0.2, beta=beta, warmup=100
        )
        return simulate(paper_trace, model, pol).total_cost

    benchmark(unit)
