"""Figures 29-32: the adapted Algorithm 1 with robustness target 2+beta.

Grid: lambda in {1000, 10000} x beta in {0.1, 1}, following Appendix J
(the lambda in {10, 100} cases coincide with the original algorithm and
are covered by Figures 25-26).  Following the paper, the first 100
requests run the original Algorithm 1 as warm-up.

Asserted shape: the adapted algorithm's ratio never exceeds the target
``2 + beta`` by more than the warm-up contribution, and wherever plain
Algorithm 1 already respected the target the two coincide closely.
"""

from __future__ import annotations

import pytest

from repro import (
    AdaptiveReplication,
    CostModel,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import adaptive_robustness_bound

from conftest import emit

ALPHAS = (0.0, 0.2, 0.5, 1.0)
ACCURACIES = (0.0, 0.5, 1.0)
_OPT: dict[float, float] = {}


def _predictor(trace, acc, seed=0):
    if acc >= 1.0:
        return OraclePredictor(trace)
    return NoisyOraclePredictor(trace, acc, seed=seed)


@pytest.mark.parametrize(
    "figure,lam,beta",
    [
        ("Figure 29", 1000.0, 0.1),
        ("Figure 30", 10000.0, 0.1),
        ("Figure 31", 1000.0, 1.0),
        ("Figure 32", 10000.0, 1.0),
    ],
)
def test_fig29_32_adaptive(benchmark, paper_trace, figure, lam, beta):
    model = CostModel(lam=lam, n=paper_trace.n)
    if lam not in _OPT:
        _OPT[lam] = optimal_cost(paper_trace, model)
    opt = _OPT[lam]
    target = adaptive_robustness_bound(beta)

    lines = [
        f"{figure}: lambda = {lam:g}, beta = {beta:g}, target ratio <= {target:g}",
        f"{'alpha':>6} {'acc':>5} {'plain':>8} {'adaptive':>9} {'forced%':>8}",
    ]
    worst = 0.0
    for alpha in ALPHAS:
        for acc in ACCURACIES:
            plain_pol = LearningAugmentedReplication(
                _predictor(paper_trace, acc), alpha, allow_zero_alpha=True
            )
            plain = simulate(paper_trace, model, plain_pol).total_cost / opt
            ada_alpha = alpha if alpha > 0 else 0.1  # adaptive needs alpha>0
            ada_pol = AdaptiveReplication(
                _predictor(paper_trace, acc), ada_alpha, beta=beta, warmup=100
            )
            adaptive = simulate(paper_trace, model, ada_pol).total_cost / opt
            forced = sum(1 for (_, _, f) in ada_pol.monitor_history if f) / len(
                ada_pol.monitor_history
            )
            worst = max(worst, adaptive)
            lines.append(
                f"{alpha:>6.1f} {acc:>5.0%} {plain:>8.3f} {adaptive:>9.3f} "
                f"{forced:>8.1%}"
            )
            # the paper's claim: the adapted algorithm prevents the ratio
            # from growing beyond the target (modulo warm-up prefix)
            assert adaptive <= target * 1.25 + 0.05, (figure, alpha, acc)
            # and it never does worse than plain when plain is in budget
            if plain <= target:
                assert adaptive <= max(plain * 1.1, target * 1.05)
    lines.append(f"worst adaptive ratio: {worst:.3f} (target {target:g})")
    emit(figure, "\n".join(lines))

    def unit():
        pol = AdaptiveReplication(
            _predictor(paper_trace, 0.5), 0.2, beta=beta, warmup=100
        )
        return simulate(paper_trace, model, pol).total_cost

    benchmark(unit)
