"""Engineering benchmarks: simulator throughput and offline DP scaling.

Not a paper figure — these justify that the reproduction comfortably
handles the paper's workload sizes and beyond (the DP is O(m n), the
simulator O(m log n) amortised).
"""

from __future__ import annotations

import pytest

from repro import (
    ConventionalReplication,
    CostModel,
    LearningAugmentedReplication,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.workloads import poisson_trace

from conftest import emit


@pytest.mark.parametrize("m", [1_000, 10_000, 40_000])
def test_simulator_throughput(benchmark, m):
    trace = poisson_trace(n=10, rate=1.0, horizon=float(m), seed=1)
    model = CostModel(lam=50.0, n=10)

    def unit():
        pol = ConventionalReplication()
        return simulate(trace, model, pol).total_cost

    result = benchmark(unit)
    assert result > 0
    emit(
        f"simulator throughput (m~{m})",
        f"{len(trace)} requests simulated per call",
    )


@pytest.mark.parametrize("m", [1_000, 10_000, 40_000])
def test_offline_dp_scaling(benchmark, m):
    trace = poisson_trace(n=10, rate=1.0, horizon=float(m), seed=2)
    model = CostModel(lam=50.0, n=10)
    result = benchmark(lambda: optimal_cost(trace, model))
    assert result > 0


def test_end_to_end_ratio_paper_scale(benchmark, paper_trace):
    """One complete experiment cell at the paper's full trace size."""
    model = CostModel(lam=1000.0, n=paper_trace.n)
    opt = optimal_cost(paper_trace, model)

    def unit():
        pol = LearningAugmentedReplication(OraclePredictor(paper_trace), 0.2)
        return simulate(paper_trace, model, pol).total_cost / opt

    ratio = benchmark(unit)
    assert 1.0 <= ratio <= 2.0
