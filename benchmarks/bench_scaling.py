"""Engine-tier scaling sweep: trace size x engine, per-cell wall clock.

Sweeps the engine registry (reference, fast, batch, kernel) over
growing IBM-like traces on a compact Algorithm-1 grid and records the
per-cell cost of each tier — the measurements behind the ``auto``
selection crossovers (:data:`repro.core.engine.KERNEL_MIN_M` /
:data:`KERNEL_SLAB_MIN_M`).  Per-cell costs are asserted bit-identical
across every tier at every size; the reference simulator runs only at
the smallest size (it exists to anchor correctness, not throughput).

Standalone use (the CI smoke step runs this via ``repro bench``)::

    python benchmarks/bench_scaling.py [--out benchmarks/BENCH_scaling.json]
                                       [--sizes 2000,20000,200000]
                                       [--gate 2.0] [--strict]

writes ``BENCH_scaling.json`` with one row per ``(size, engine)`` plus
a speedup summary at the largest size.  The gate requires the kernel
tier to beat the batch tier per cell at the largest size by the given
factor (default :data:`MIN_SPEEDUP`); it only fails the process under
``--strict`` — CI runs ``--gate 1.0 --strict``.
"""

from __future__ import annotations

import os
import sys
import time

try:
    import pytest
except ImportError:  # pragma: no cover - `repro bench` without test deps
    pytest = None

SCALE_LAMBDA = 10.0
SMOKE_N = 10
SMOKE_SEED = 0
DEFAULT_SIZES = (2_000, 20_000, 200_000)

#: the compact grid: enough cells to amortise slab passes, small enough
#: that per-cell tiers stay affordable at every size
SCALE_ALPHAS = (0.2, 0.5, 0.8, 1.0)
SCALE_ACCURACIES = (0.0, 0.6, 1.0)

#: reference-tier ceiling: the event simulator only runs at sizes
#: at or below this (one cell of it costs more than a whole slab above)
REFERENCE_MAX_M = 2_000

#: kernel-over-batch per-cell gate at the largest swept size; locally
#: measured ~18x at 200k requests on this 12-cell grid (narrow slabs
#: amortise the batch engine's shared trace pass poorly — on the full
#: 121-cell fig25 grid the same comparison is ~5x, see BENCH_kernel.json)
MIN_SPEEDUP = 2.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "kernel_vs_batch_at_largest"

#: quick profile appended by `repro bench --quick` (the CI smoke step)
QUICK_ARGS = ["--sizes", "2000,20000,50000"]


def _cells():
    return [
        (alpha, acc, SMOKE_SEED)
        for alpha in SCALE_ALPHAS
        for acc in SCALE_ACCURACIES
    ]


def _time_per_cell(engine_name, trace, model, cells):
    """One timed pass of the whole cell set on one engine tier.

    Slab-capable tiers (batch, kernel) run their ``run_slab`` path; the
    per-cell tiers replay cell by cell — exactly how each tier is used
    by the layers above.
    """
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.engine import get_engine

    engine = get_engine(engine_name)
    t0 = time.perf_counter()
    if hasattr(engine, "run_slab"):
        runs = engine.run_slab(trace, model, algorithm1_factory, cells)
    else:
        runs = [
            engine.run(
                trace, model,
                algorithm1_factory(trace, model.lam, alpha, acc, seed),
            )
            for alpha, acc, seed in cells
        ]
    elapsed = time.perf_counter() - t0
    return elapsed, runs


def run_scaling_sweep(sizes=DEFAULT_SIZES) -> dict:
    """Sweep trace size x engine tier; returns the report dict."""
    from repro.core.costs import CostModel
    from repro.workloads import ibm_like_trace

    cells = _cells()
    rows = []
    for m in sizes:
        trace = ibm_like_trace(n=SMOKE_N, m=m, seed=SMOKE_SEED)
        model = CostModel(lam=SCALE_LAMBDA, n=trace.n)
        engines = ["fast", "batch", "kernel"]
        if m <= REFERENCE_MAX_M:
            engines.insert(0, "reference")
        costs = None
        for name in engines:
            elapsed, runs = _time_per_cell(name, trace, model, cells)
            got = [(r.storage_cost, r.transfer_cost) for r in runs]
            if costs is None:
                costs = got
            else:
                assert got == costs, f"cost mismatch: {name} at m={m}"
            rows.append(
                {
                    "m": m,
                    "engine": name,
                    "cells": len(cells),
                    "total_s": elapsed,
                    "per_cell_ms": elapsed / len(cells) * 1e3,
                }
            )
    largest = max(sizes)
    at_top = {
        r["engine"]: r["per_cell_ms"] for r in rows if r["m"] == largest
    }
    return {
        "grid": {
            "lam": SCALE_LAMBDA,
            "alphas": SCALE_ALPHAS,
            "accuracies": SCALE_ACCURACIES,
        },
        "trace": {"workload": "ibm_like", "n": SMOKE_N, "seed": SMOKE_SEED},
        "sizes": list(sizes),
        "rows": rows,
        "kernel_vs_batch_at_largest": at_top["batch"] / at_top["kernel"],
        "kernel_vs_fast_at_largest": at_top["fast"] / at_top["kernel"],
    }


def format_rows(report: dict) -> str:
    lines = ["       m     engine  cells  total      per-cell"]
    for r in report["rows"]:
        lines.append(
            f"{r['m']:>8d} {r['engine']:>10s} {r['cells']:>6d} "
            f"{r['total_s']:>7.2f}s {r['per_cell_ms']:>10.2f}ms"
        )
    return "\n".join(lines)


def test_engine_tier_scaling(benchmark):
    """Every tier agrees bit for bit; kernel wins per cell at scale."""
    from conftest import emit
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import KernelCostEngine
    from repro.workloads import ibm_like_trace

    report = run_scaling_sweep(sizes=(2_000, 20_000))
    emit("Engine tier scaling (size x tier, per-cell)", format_rows(report))
    assert report["kernel_vs_batch_at_largest"] >= 1.0
    assert report["kernel_vs_fast_at_largest"] >= 1.0

    trace = ibm_like_trace(n=SMOKE_N, m=20_000, seed=SMOKE_SEED)
    model = CostModel(lam=SCALE_LAMBDA, n=trace.n)
    kernel = KernelCostEngine()
    cells = _cells()
    benchmark(
        lambda: kernel.run_slab(trace, model, algorithm1_factory, cells)
    )


if pytest is not None:
    @pytest.mark.parametrize("m", [1_000, 10_000, 40_000])
    def test_offline_dp_scaling(benchmark, m):
        """The offline DP stays near-linear at growing trace sizes
        (carried over from the pre-registry version of this file)."""
        from repro import CostModel, optimal_cost
        from repro.workloads import poisson_trace

        trace = poisson_trace(n=10, rate=1.0, horizon=float(m), seed=2)
        model = CostModel(lam=50.0, n=10)
        result = benchmark(lambda: optimal_cost(trace, model))
        assert result > 0


def test_end_to_end_ratio_paper_scale(benchmark, paper_trace):
    """One complete experiment cell at the paper's full trace size keeps
    the 2-competitive bound (carried over from the pre-registry
    version of this file); the cell runs on the kernel tier."""
    from repro import (
        CostModel,
        KernelCostEngine,
        LearningAugmentedReplication,
        OraclePredictor,
        optimal_cost,
    )

    model = CostModel(lam=1000.0, n=paper_trace.n)
    opt = optimal_cost(paper_trace, model)
    kernel = KernelCostEngine()

    def unit():
        pol = LearningAugmentedReplication(OraclePredictor(paper_trace), 0.2)
        return kernel.run(paper_trace, model, pol).total_cost / opt

    ratio = benchmark(unit)
    assert 1.0 <= ratio <= 2.0


def main(argv=None) -> int:
    from benchcli import flag_value, gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_scaling.json"),
        MIN_SPEEDUP,
    )
    raw = flag_value(args, "--sizes")
    sizes = (
        tuple(int(s) for s in raw.split(",")) if raw is not None
        else DEFAULT_SIZES
    )
    report = run_scaling_sweep(sizes=sizes)
    write_report(report, out)
    print(format_rows(report))
    speedup = report["kernel_vs_batch_at_largest"]
    print(
        f"kernel vs batch per-cell at m={max(sizes)}: {speedup:.2f}x "
        f"(vs fast: {report['kernel_vs_fast_at_largest']:.2f}x) -> {out}"
    )
    return gate_exit(
        speedup, gate, strict, label="kernel-over-batch speedup"
    )


if __name__ == "__main__":
    sys.exit(main())
