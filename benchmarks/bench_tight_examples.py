"""Figures 5 and 6: tightness of the robustness and consistency analyses.

Regenerates the limit series: as the instance grows (m -> inf) and
eps -> 0, the measured ratio must converge to ``1 + 1/alpha`` (Figure 5)
and ``(5 + alpha)/3`` (Figure 6).
"""

from __future__ import annotations

import pytest

from repro import (
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import consistency_tight_trace, robustness_tight_trace

from conftest import emit

LAM = 100.0


def test_fig5_robustness_tightness(benchmark):
    lines = [
        "Figure 5: robustness tight example (always-'beyond' predictions)",
        f"{'alpha':>6} {'m':>6} {'measured':>9} {'limit 1+1/a':>12}",
    ]
    for alpha in (0.2, 0.5, 0.8, 1.0):
        for m in (101, 1001, 4001):
            tr = robustness_tight_trace(LAM, alpha, m=m, eps=LAM * 1e-5)
            pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
            run = simulate(tr, CostModel(lam=LAM, n=2), pol)
            ratio = run.total_cost / optimal_cost(tr, CostModel(lam=LAM, n=2))
            lines.append(
                f"{alpha:>6.1f} {m:>6} {ratio:>9.4f} "
                f"{robustness_bound(alpha):>12.4f}"
            )
            if m >= 4001:
                assert ratio == pytest.approx(robustness_bound(alpha), rel=2e-3)
            assert ratio <= robustness_bound(alpha) + 1e-7
    emit("Figure 5 (robustness tightness)", "\n".join(lines))

    def unit():
        tr = robustness_tight_trace(LAM, 0.5, m=2001, eps=LAM * 1e-5)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        return simulate(tr, CostModel(lam=LAM, n=2), pol).total_cost

    benchmark(unit)


def test_fig6_consistency_tightness(benchmark):
    lines = [
        "Figure 6: consistency tight example (perfect predictions)",
        f"{'alpha':>6} {'cycles':>7} {'measured':>9} {'limit (5+a)/3':>14}",
    ]
    for alpha in (0.1, 0.4, 0.7, 1.0):
        for cycles in (10, 100, 400):
            tr = consistency_tight_trace(LAM, cycles=cycles, eps=LAM * 1e-6)
            pol = LearningAugmentedReplication(OraclePredictor(tr), alpha)
            run = simulate(tr, CostModel(lam=LAM, n=2), pol)
            ratio = run.total_cost / optimal_cost(tr, CostModel(lam=LAM, n=2))
            lines.append(
                f"{alpha:>6.1f} {cycles:>7} {ratio:>9.4f} "
                f"{consistency_bound(alpha):>14.4f}"
            )
            if cycles >= 100:
                assert ratio == pytest.approx(consistency_bound(alpha), rel=1e-3)
            assert ratio <= consistency_bound(alpha) + 1e-7
    emit("Figure 6 (consistency tightness)", "\n".join(lines))

    def unit():
        tr = consistency_tight_trace(LAM, cycles=200, eps=LAM * 1e-6)
        pol = LearningAugmentedReplication(OraclePredictor(tr), 0.4)
        return simulate(tr, CostModel(lam=LAM, n=2), pol).total_cost

    benchmark(unit)
