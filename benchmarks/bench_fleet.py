"""Fleet benchmark: cross-object slab dispatch vs the per-object loop.

Builds a million-object *mixed-policy* fleet (default) from a handful
of workload templates — Algorithm 1 (oracle and noisy), the
conventional baseline, and Wang et al. interleaved across objects, the
deployment shape that makes cross-object slabs pay: objects sharing a
``(trace, lambda)`` group evaluate together in one batch/kernel slab
instead of one engine call each (Wang cells ride the same kernel slab
via the cascade factorisation; equal-model Wang cells deduplicate
through its memoised replay).  Three paths are timed:

* **serial** — ``MultiObjectSystem.run`` object-at-a-time on the fast
  engine (measured on a subsample, reported as objects/sec);
* **grouped** — in-process cross-object slabs
  (``run(grouped=True, materialize=False)``);
* **sharded** — ``ExperimentRunner.run_fleet`` across worker processes
  with work-sized chunks, streaming aggregates, and no per-object IPC.

Bit-identity of the grouped, sharded, and streaming paths against the
serial reference loop is always asserted on a small fleet of the same
mixed-policy shape before any timing.  The vectorized ``split_trace_by_object`` is
benchmarked against the per-row reference loop on the same log.

Standalone use (the CI smoke step runs this via ``repro bench``)::

    python benchmarks/bench_fleet.py [--out benchmarks/BENCH_fleet.json]
                                     [--objects 1000000] [--workers N]
                                     [--gate 3.0] [--strict]

writes ``BENCH_fleet.json``:
``{"speedup": ..., "serial_objects_per_s": ..., "grouped_objects_per_s":
..., "sharded_objects_per_s": ..., "split_speedup": ...}``.  The gate
(sharded over serial, default :data:`MIN_SPEEDUP`) only fails the
process under ``--strict`` — CI runs the quick profile with ``--gate
1.0 --strict``.
"""

from __future__ import annotations

import os
import sys
import time

FULL_OBJECTS = 1_000_000
N_TEMPLATES = 8
TEMPLATE_M = 64
N_SERVERS = 8
FLEET_LAMBDAS = (25.0, 50.0, 100.0)
SEED = 0

#: serial per-object baseline is measured on at most this many objects
#: and reported as a rate (a million-object serial run would dominate)
SERIAL_SAMPLE = 20_000

#: objects in the pre-timing bit-identity fleet (mixed policies)
IDENTITY_OBJECTS = 256

#: rows in the split_trace_by_object comparison (the per-row reference
#: loop would dominate the full fleet's 64M-row log)
SPLIT_MAX_ROWS = 400_000

#: full-size sharded-over-serial bar; CI smoke uses --gate 1.0
MIN_SPEEDUP = 3.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "speedup"

#: quick profile appended by `repro bench --quick` (the CI smoke step)
QUICK_ARGS = ["--objects", "20000", "--serial-sample", "4000"]


#: the timed fleet's policy mix — every fourth object runs Wang's
#: baseline, the rest split across Algorithm 1 variants and the
#: conventional baseline; all four ride the kernel slab tier
def _mixed_factories():
    return [
        _la_policy_factory,
        _noisy_policy_factory,
        _conventional_factory,
        _wang_factory,
    ]


def _la_policy_factory(trace, model):
    from repro.analysis.sweep import algorithm1_factory

    return algorithm1_factory(trace, model.lam, 0.5, 1.0, SEED)


def _noisy_policy_factory(trace, model):
    from repro.analysis.sweep import algorithm1_factory

    return algorithm1_factory(trace, model.lam, 0.25, 0.8, SEED)


def _conventional_factory(trace, model):
    from repro.algorithms.conventional import ConventionalReplication

    return ConventionalReplication()


def _wang_factory(trace, model):
    from repro.algorithms.wang import WangReplication

    return WangReplication()


def _templates(n_templates: int = N_TEMPLATES):
    from repro.workloads import uniform_random_trace

    return [
        uniform_random_trace(
            N_SERVERS, TEMPLATE_M, horizon=float(TEMPLATE_M), seed=SEED + k
        )
        for k in range(n_templates)
    ]


def _build_fleet(n_objects: int, templates, factories=None):
    from repro.system.multi_object import MultiObjectSystem, ObjectSpec

    factories = factories or [_la_policy_factory]
    specs = [
        ObjectSpec(
            f"obj-{i:07d}",
            templates[i % len(templates)],
            FLEET_LAMBDAS[i % len(FLEET_LAMBDAS)],
            factories[i % len(factories)],
        )
        for i in range(n_objects)
    ]
    return MultiObjectSystem(N_SERVERS, specs)


def check_bit_identity(workers: int = 2) -> None:
    """Serial reference loop vs grouped / sharded / streaming paths on a
    small mixed-policy fleet (incl. the Wang engine-fallback)."""
    from repro.experiments import ExperimentRunner

    system = _build_fleet(IDENTITY_OBJECTS, _templates(4),
                          factories=_mixed_factories())
    serial = system.run(engine="fast")
    grouped = system.run(engine="auto", grouped=True)
    for a, b in zip(serial.outcomes, grouped.outcomes):
        assert a.online == b.online, (a.object_id, a.online, b.online)
        assert a.optimal == b.optimal, a.object_id
    runner = ExperimentRunner(workers=workers)
    sharded = runner.run_fleet(system, engine="auto")
    streaming = runner.run_fleet(system, engine="auto", materialize=False)
    for a, b in zip(serial.outcomes, sharded.outcomes):
        assert a.online == b.online, (a.object_id, a.online, b.online)
        assert a.optimal == b.optimal, a.object_id
    assert streaming.online_total == serial.online_total
    assert streaming.optimal_total == serial.optimal_total
    assert streaming.worst_object_ratio == serial.worst_object_ratio


def _split_reference(accesses, n):
    """The pre-vectorization per-row loop, kept as the comparison and
    correctness baseline for ``split_trace_by_object``."""
    from repro.core.trace import Trace

    per_object: dict = {}
    for t, s, o in accesses:
        per_object.setdefault(o, []).append((t, s))
    out = {}
    for o in sorted(per_object):
        items = per_object[o]
        items.sort()
        out[o] = Trace(n, items)
    return out


def run_split_bench(n_objects: int) -> dict:
    """Vectorized vs reference split on a shuffled combined log."""
    import numpy as np

    from repro.system.multi_object import split_trace_by_object

    templates = _templates()
    k_objects = max(1, min(n_objects, SPLIT_MAX_ROWS // TEMPLATE_M))
    rows = [
        (t, s, f"obj-{i:07d}")
        for i in range(k_objects)
        for t, s in zip(
            templates[i % len(templates)].times.tolist(),
            templates[i % len(templates)].servers.tolist(),
        )
    ]
    order = np.random.default_rng(SEED).permutation(len(rows))
    rows = [rows[int(j)] for j in order]

    vec_s = ref_s = float("inf")
    for _ in range(2):  # best-of-2: single-shot timings are too noisy
        t0 = time.perf_counter()
        vec = split_trace_by_object(rows, N_SERVERS)
        vec_s = min(vec_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        ref = _split_reference(rows, N_SERVERS)
        ref_s = min(ref_s, time.perf_counter() - t0)
    assert sorted(vec) == sorted(ref)
    for o, tr in vec.items():
        assert tr.times.tolist() == ref[o].times.tolist(), o
        assert tr.servers.tolist() == ref[o].servers.tolist(), o
    return {
        "rows": len(rows),
        "objects": k_objects,
        "vectorized_s": vec_s,
        "reference_s": ref_s,
        "split_speedup": ref_s / vec_s if vec_s > 0 else float("inf"),
    }


def run_fleet_bench(
    n_objects: int = FULL_OBJECTS,
    workers: int | None = None,
    serial_sample: int = SERIAL_SAMPLE,
) -> dict:
    """Time serial vs grouped vs sharded fleet execution.

    The serial baseline runs on ``serial_sample`` objects of the same
    fleet shape and is reported as objects/sec; grouped and sharded run
    the full ``n_objects`` with streaming aggregates, and their totals
    are asserted equal to each other (the serial equivalence itself is
    covered pre-timing by :func:`check_bit_identity`).
    """
    from repro.experiments import ExperimentRunner

    if workers is None:
        workers = os.cpu_count() or 1
    check_bit_identity(workers=min(2, workers))

    templates = _templates()
    sample = min(n_objects, serial_sample)
    serial_system = _build_fleet(sample, templates,
                                 factories=_mixed_factories())
    t0 = time.perf_counter()
    serial_report = serial_system.run(engine="fast", materialize=False)
    serial_s = time.perf_counter() - t0
    serial_rate = sample / serial_s

    system = _build_fleet(n_objects, templates, factories=_mixed_factories())
    t0 = time.perf_counter()
    grouped_report = system.run(engine="auto", grouped=True, materialize=False)
    grouped_s = time.perf_counter() - t0

    runner = ExperimentRunner(workers=workers)
    t0 = time.perf_counter()
    sharded_report = runner.run_fleet(system, engine="auto", materialize=False)
    sharded_s = time.perf_counter() - t0

    assert sharded_report.online_total == grouped_report.online_total
    assert sharded_report.optimal_total == grouped_report.optimal_total
    if sample == n_objects:
        assert serial_report.online_total == grouped_report.online_total

    split = run_split_bench(n_objects)
    return {
        "objects": n_objects,
        "templates": N_TEMPLATES,
        "m_per_object": TEMPLATE_M,
        "lambdas": list(FLEET_LAMBDAS),
        "policies": ["la-oracle", "la-noisy", "conventional", "wang"],
        "workers": workers,
        "serial_sample": sample,
        "serial_s": serial_s,
        "grouped_s": grouped_s,
        "sharded_s": sharded_s,
        "serial_objects_per_s": serial_rate,
        "grouped_objects_per_s": n_objects / grouped_s,
        "sharded_objects_per_s": n_objects / sharded_s,
        "grouped_speedup": (n_objects / grouped_s) / serial_rate,
        "speedup": (n_objects / sharded_s) / serial_rate,
        "fleet_ratio": sharded_report.fleet_ratio,
        "split": split,
        "split_speedup": split["split_speedup"],
    }


def test_fleet_speedup(benchmark):
    """Fleet slabs: identical costs, faster than the per-object loop."""
    from conftest import emit

    report = run_fleet_bench(n_objects=20_000, workers=2, serial_sample=4_000)
    emit(
        "Fleet dispatch (per-object loop vs cross-object slabs)",
        f"{report['objects']} objects: serial "
        f"{report['serial_objects_per_s']:,.0f} obj/s, grouped "
        f"{report['grouped_objects_per_s']:,.0f} obj/s, sharded "
        f"{report['sharded_objects_per_s']:,.0f} obj/s "
        f"(speedup {report['speedup']:.1f}x; split "
        f"{report['split_speedup']:.1f}x)",
    )
    assert report["grouped_speedup"] >= 1.0
    # the vectorized split wins on memory and determinism; its time is
    # near parity with the dict loop on small logs, so only guard
    # against a gross regression here
    assert report["split_speedup"] >= 0.5

    system = _build_fleet(2_000, _templates(), factories=_mixed_factories())
    benchmark(
        lambda: system.run(engine="auto", grouped=True, materialize=False)
    )


def main(argv=None) -> int:
    from benchcli import flag_value, gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_fleet.json"),
        MIN_SPEEDUP,
    )
    raw = flag_value(args, "--objects")
    n_objects = int(raw) if raw is not None else FULL_OBJECTS
    raw = flag_value(args, "--workers")
    workers = int(raw) if raw is not None else None
    raw = flag_value(args, "--serial-sample")
    serial_sample = int(raw) if raw is not None else SERIAL_SAMPLE
    report = run_fleet_bench(
        n_objects=n_objects, workers=workers, serial_sample=serial_sample
    )
    write_report(report, out)
    print(
        f"fleet ({report['objects']} objects, m={TEMPLATE_M}, "
        f"{report['workers']} workers): serial "
        f"{report['serial_objects_per_s']:,.0f} obj/s, grouped "
        f"{report['grouped_objects_per_s']:,.0f} obj/s, sharded "
        f"{report['sharded_objects_per_s']:,.0f} obj/s, split "
        f"{report['split_speedup']:.1f}x -> {out}"
    )
    return gate_exit(report["speedup"], gate, strict, label="speedup")


if __name__ == "__main__":
    sys.exit(main())
