"""Kernel engine benchmark: segment-scan replays vs the batch slab pass.

Runs the paper's *fig25 grid* — Algorithm 1 with noisy-oracle
predictions over the full ``alpha x accuracy`` = 11 x 11 axes at
``lambda = 10`` — on a long IBM-like trace (default one million
requests), once per engine tier: the batch engine walks the trace with
one vectorized Python-loop step per request for the whole slab, the
kernel engine evaluates each cell with pure array passes and no
per-request loop at all.  Per-cell cost equality between the tiers is
always asserted bit for bit (and spot-checked against the scalar fast
engine); wall-clock per cell and the kernel-over-batch speedup are
recorded.

Wang's baseline runs on the same trace through the kernel tier's
cascade factorisation vs the batch tier (whose Wang path *is* the
scalar ``_fast_wang`` heap replay), so ``wang_speedup`` measures the
cascade kernel directly against the heap loop it replaced — with
bit-identity against the fast engine asserted in-bench before the
number is recorded.

Standalone use (the CI smoke step runs this via ``repro bench``)::

    python benchmarks/bench_kernel.py [--out benchmarks/BENCH_kernel.json]
                                      [--requests 1000000]
                                      [--gate 5.0] [--strict]

writes ``BENCH_kernel.json``:
``{"speedup": ..., "batch_s": ..., "kernel_s": ..., "per_cell_batch_ms":
..., "per_cell_kernel_ms": ..., "wang_batch_s": ..., "wang_kernel_s":
..., "wang_speedup": ...}``.  The wall-clock gate (default
:data:`MIN_SPEEDUP`, override with ``--gate``) only fails the process
under ``--strict`` — CI runs the quick profile with ``--gate 1.0
--strict`` (the kernel must beat batch even on a contended shared
runner), while the recorded full-size run keeps the 5x bar.
"""

from __future__ import annotations

import os
import sys
import time

FIG25_LAMBDA = 10.0
FULL_M = 1_000_000
SMOKE_N = 10
SMOKE_SEED = 0

#: single-cell spot checks against the scalar fast engine (full-grid
#: fast replays would dominate the runtime at a million requests)
FAST_CHECK_CELLS = 5

#: gate at the recorded full size; locally measured speedups are ~5.2x
#: (see BENCH_kernel.json)
MIN_SPEEDUP = 5.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "speedup"

#: quick profile appended by `repro bench --quick` (the CI smoke step):
#: a short trace and the CI gate handled by the step's own --gate
QUICK_ARGS = ["--requests", "150000"]


def _grid_cells():
    from repro.analysis.sweep import PAPER_ACCURACIES, PAPER_ALPHAS

    return [
        (alpha, acc, SMOKE_SEED)
        for alpha in PAPER_ALPHAS
        for acc in PAPER_ACCURACIES
    ]


def run_kernel_grid(requests: int = FULL_M, repeats: int | None = None) -> dict:
    """Time one batch slab pass vs kernel segment-scan replays; best of
    ``repeats`` (default: 1 at full size, 2 below).

    Each timed unit covers what the engines actually do per grid:
    policy construction, prediction materialisation, and the replay —
    for the whole 121-cell fig25 slab.
    """
    from repro.algorithms.wang import WangReplication
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import BatchCostEngine, FastCostEngine, KernelCostEngine
    from repro.workloads import ibm_like_trace

    if repeats is None:
        repeats = 1 if requests >= 500_000 else 2
    trace = ibm_like_trace(n=SMOKE_N, m=requests, seed=SMOKE_SEED)
    cells = _grid_cells()
    model = CostModel(lam=FIG25_LAMBDA, n=trace.n)
    batch = BatchCostEngine()
    kernel = KernelCostEngine()
    fast = FastCostEngine()

    best_batch = best_kernel = float("inf")
    batch_runs = kernel_runs = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        kernel_runs = kernel.run_slab(trace, model, algorithm1_factory, cells)
        best_kernel = min(best_kernel, time.perf_counter() - t0)

        t0 = time.perf_counter()
        batch_runs = batch.run_slab(trace, model, algorithm1_factory, cells)
        best_batch = min(best_batch, time.perf_counter() - t0)

    # bit-identity across the whole grid, plus scalar spot checks
    for cell, k, b in zip(cells, kernel_runs, batch_runs):
        assert k.storage_cost == b.storage_cost, cell
        assert k.transfer_cost == b.transfer_cost, cell
        assert k.n_transfers == b.n_transfers, cell
    step = max(1, len(cells) // FAST_CHECK_CELLS)
    for idx in range(0, len(cells), step):
        cell = cells[idx]
        f = fast.run(
            trace, model, algorithm1_factory(trace, FIG25_LAMBDA, *cell)
        )
        assert kernel_runs[idx].storage_cost == f.storage_cost, cell
        assert kernel_runs[idx].transfer_cost == f.transfer_cost, cell
        assert kernel_runs[idx].n_transfers == f.n_transfers, cell

    # Wang's baseline: cascade kernel vs the scalar heap replay (the
    # batch tier's Wang path is _fast_wang itself), identity vs the
    # fast engine asserted before the speedup is recorded
    best_wang_batch = best_wang_kernel = float("inf")
    wang_kernel_run = wang_batch_run = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        wang_kernel_run = kernel.run(trace, model, WangReplication())
        best_wang_kernel = min(best_wang_kernel, time.perf_counter() - t0)

        t0 = time.perf_counter()
        wang_batch_run = batch.run(trace, model, WangReplication())
        best_wang_batch = min(best_wang_batch, time.perf_counter() - t0)
    wang_fast_run = fast.run(trace, model, WangReplication())
    for label, other in (("batch", wang_batch_run), ("fast", wang_fast_run)):
        assert wang_kernel_run.storage_cost == other.storage_cost, label
        assert wang_kernel_run.transfer_cost == other.transfer_cost, label
        assert wang_kernel_run.n_transfers == other.n_transfers, label

    n_cells = len(cells)
    return {
        "grid": "fig25",
        "lam": FIG25_LAMBDA,
        "trace": {"workload": "ibm_like", "n": SMOKE_N, "m": requests,
                  "seed": SMOKE_SEED},
        "cells": n_cells,
        "batch_s": best_batch,
        "kernel_s": best_kernel,
        "per_cell_batch_ms": best_batch / n_cells * 1e3,
        "per_cell_kernel_ms": best_kernel / n_cells * 1e3,
        "speedup": best_batch / best_kernel,
        "wang_batch_s": best_wang_batch,
        "wang_kernel_s": best_wang_kernel,
        "wang_speedup": best_wang_batch / best_wang_kernel,
    }


def test_kernel_speedup(benchmark, paper_trace):
    """Kernel engine: identical costs, faster than batch per cell."""
    from conftest import emit
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import KernelCostEngine

    report = run_kernel_grid(requests=100_000, repeats=2)
    emit(
        "Kernel engine (batch slab vs segment-scan replays, 11x11 grid)",
        f"m={report['trace']['m']}: batch {report['batch_s']:.2f}s "
        f"({report['per_cell_batch_ms']:.1f}ms/cell)  kernel "
        f"{report['kernel_s']:.2f}s ({report['per_cell_kernel_ms']:.1f}"
        f"ms/cell)  speedup {report['speedup']:.1f}x  wang cascade "
        f"{report['wang_speedup']:.1f}x over heap",
    )
    # the 5x bar is the full-size (1M) recorded number; at 100k the
    # kernel must still clearly win.  The Wang cascade's edge over the
    # scalar heap replay grows with trace length (~1.2x at 30k, ~3x at
    # 500k) because the chains build is a fixed cost — at 100k it only
    # has to be not-slower
    assert report["speedup"] >= 2.0
    assert report["wang_speedup"] >= 1.0

    # timed unit: the full fig25 slab on the paper-scale trace
    model = CostModel(lam=FIG25_LAMBDA, n=paper_trace.n)
    kernel = KernelCostEngine()
    cells = _grid_cells()
    benchmark(
        lambda: kernel.run_slab(paper_trace, model, algorithm1_factory, cells)
    )


def main(argv=None) -> int:
    from benchcli import flag_value, gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_kernel.json"),
        MIN_SPEEDUP,
    )
    raw = flag_value(args, "--requests")
    requests = int(raw) if raw is not None else FULL_M
    report = run_kernel_grid(requests=requests)
    write_report(report, out)
    print(
        f"fig25 grid ({report['cells']} cells, m={requests}): "
        f"batch {report['batch_s']:.2f}s "
        f"({report['per_cell_batch_ms']:.1f}ms/cell), "
        f"kernel {report['kernel_s']:.2f}s "
        f"({report['per_cell_kernel_ms']:.1f}ms/cell), "
        f"speedup {report['speedup']:.2f}x; wang cascade "
        f"{report['wang_kernel_s']:.2f}s vs heap "
        f"{report['wang_batch_s']:.2f}s "
        f"({report['wang_speedup']:.2f}x) -> {out}"
    )
    return gate_exit(report["speedup"], gate, strict, label="speedup")


if __name__ == "__main__":
    sys.exit(main())
