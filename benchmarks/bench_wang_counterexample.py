"""Figure 9: the counterexample refuting Wang et al. [17]'s claimed ratio.

Series: the measured online-to-optimal ratio of Wang et al.'s algorithm
on the paper's two-server instance, converging to 5/2 (> the claimed 2)
as the request count grows and eps -> 0.
"""

from __future__ import annotations

import pytest

from repro import CostModel, WangReplication, optimal_cost, simulate
from repro.analysis.theory import wang_claimed_ratio, wang_true_ratio_lower_bound
from repro.workloads import wang_counterexample_trace

from conftest import emit

LAM = 100.0


def test_fig9_wang_refutation(benchmark):
    lines = [
        "Figure 9: Wang et al. [17] counterexample "
        f"(claimed ratio {wang_claimed_ratio():g}, true >= "
        f"{wang_true_ratio_lower_bound():g})",
        f"{'m':>6} {'online':>14} {'optimal':>14} {'ratio':>7}",
    ]
    last_ratio = 0.0
    for m in (50, 200, 800, 3200):
        tr = wang_counterexample_trace(LAM, m=m, eps=LAM * 1e-5)
        model = CostModel(lam=LAM, n=2)
        run = simulate(tr, model, WangReplication())
        opt = optimal_cost(tr, model)
        ratio = run.total_cost / opt
        lines.append(f"{m:>6} {run.total_cost:>14,.0f} {opt:>14,.0f} {ratio:>7.4f}")
        last_ratio = ratio
    assert last_ratio > wang_claimed_ratio()  # the claim is refuted
    assert last_ratio == pytest.approx(wang_true_ratio_lower_bound(), rel=1e-3)
    emit("Figure 9 (Wang et al. refutation)", "\n".join(lines))

    def unit():
        tr = wang_counterexample_trace(LAM, m=800, eps=LAM * 1e-5)
        return simulate(tr, CostModel(lam=LAM, n=2), WangReplication()).total_cost

    benchmark(unit)


def test_wang_with_distinct_storage_rates(benchmark):
    """Sanity series: Wang et al. on its intended heterogeneous setting."""
    from repro.workloads import uniform_random_trace

    tr = uniform_random_trace(4, 400, horizon=4000.0, seed=3)
    model = CostModel(lam=50.0, n=4, storage_rates=(1.0, 1.5, 2.0, 4.0))
    run = simulate(tr, model, WangReplication())
    assert run.total_cost > 0
    emit(
        "Wang et al. on heterogeneous storage rates",
        f"4 servers, rates (1, 1.5, 2, 4): online cost {run.total_cost:,.0f}, "
        f"{run.ledger.n_transfers} transfers",
    )
    benchmark(lambda: simulate(tr, model, WangReplication()).total_cost)
