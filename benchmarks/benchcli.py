"""Shared CLI plumbing for the runnable ``bench_*.py`` suites.

Every suite's ``main()`` accepts the same ``--out`` / ``--gate`` /
``--strict`` flags and ends with the same JSON dump + gate verdict;
this module is the single copy of that logic (``repro bench`` threads
the flags through to every suite, so drift here would desynchronise
the whole smoke pipeline).  Suite-specific flags (``--requests``,
``--sizes``, ``--m``) stay in the suites.
"""

from __future__ import annotations

import json
import sys


def flag_value(args: list[str], flag: str) -> str | None:
    """The value following ``flag``, or None; exits with a usage error
    when the flag is present but its value is missing."""
    if flag not in args:
        return None
    idx = args.index(flag) + 1
    if idx >= len(args) or args[idx].startswith("--"):
        raise SystemExit(f"usage: {flag} requires a value")
    return args[idx]


def parse_flags(args: list[str], default_out: str, default_gate: float):
    """``(out, gate, strict)`` from the common benchmark flags."""
    out = flag_value(args, "--out") or default_out
    gate_raw = flag_value(args, "--gate")
    try:
        gate = float(gate_raw) if gate_raw is not None else default_gate
    except ValueError:
        raise SystemExit(f"usage: --gate requires a number, got {gate_raw!r}")
    return out, gate, "--strict" in args


def write_report(report: dict, out: str) -> None:
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def gate_exit(speedup: float, gate: float, strict: bool,
              label: str = "speedup") -> int:
    """0 when the gate holds; under ``--strict`` a miss fails (1)."""
    if speedup < gate:
        print(
            f"{'FAIL' if strict else 'WARNING'}: {label} below the "
            f"{gate:g}x gate",
            file=sys.stderr,
        )
        return 1 if strict else 0
    return 0


def read_metric(path: str, metric: str) -> float | None:
    """``metric`` from a ``BENCH_*.json`` report, or None when the file
    or the key is missing/invalid (a fresh suite has no history yet).

    The persistent-baseline half of ``repro bench --regress``: each
    suite declares its gated metric as a module-level ``GATE_METRIC``
    and the CLI diffs the fresh report against the committed history.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return None
    value = report.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def regressed(new: float, baseline: float, pct: float) -> bool:
    """True when ``new`` fell more than ``pct`` percent below
    ``baseline`` (improvements and small wobbles pass)."""
    return new < baseline * (1.0 - pct / 100.0)
