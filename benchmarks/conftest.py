"""Shared fixtures for the benchmark suite.

Scale control: set ``REPRO_BENCH_SCALE=full`` to run the paper's exact
grid (11 x 11, 11688-request trace) — the default is a denser-than-
readable 6 x 6 grid on the full-length trace, which reproduces every
qualitative series at a fraction of the runtime.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads import ibm_like_trace

FULL = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"

#: grid axes used by the figure benchmarks
if FULL:
    ALPHAS = tuple(round(0.1 * k, 1) for k in range(0, 11))
    ACCURACIES = tuple(round(0.1 * k, 1) for k in range(0, 11))
    TRACE_M = 11688
else:
    ALPHAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    ACCURACIES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    TRACE_M = 11688

LAMBDAS = (10.0, 100.0, 1000.0, 10000.0)

#: worker processes for the registry-backed grid benchmarks; override
#: with REPRO_BENCH_WORKERS=1 to force serial execution
WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", "") or min(os.cpu_count() or 1, 8)
)


@pytest.fixture(scope="session")
def paper_trace():
    """The IBM-like 7-day, 10-server workload (Appendix J.1 substitute)."""
    return ibm_like_trace(n=10, m=TRACE_M, seed=0)


def emit(title: str, body: str) -> None:
    """Print a labelled result block (visible with ``pytest -s``) and
    append it to benchmarks/results.txt for EXPERIMENTS.md."""
    block = f"\n### {title}\n{body}\n"
    print(block)
    out = os.path.join(os.path.dirname(__file__), "results.txt")
    with open(out, "a", encoding="utf-8") as fh:
        fh.write(block)
