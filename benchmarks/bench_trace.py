"""Columnar trace substrate benchmark: seed object path vs array path.

Measures the three costs the columnar refactor targets, at 1M requests:

* **construction** — the seed path materialised one frozen ``Request``
  dataclass per request at build time (``tolist`` + ``zip`` + eager
  tuple); the columnar path adopts the float64/int64 columns zero-copy
  and only validates vectorized.
* **save / load** — the text CSV round trip (the seed's only format) vs
  the binary ``.npz`` round trip, plus the ``mmap=True`` load that maps
  the columns without reading them.
* **runner IPC hand-off** — shipping the trace to a worker by pickling
  the full object (what per-task IPC would cost) vs the digest + mmap
  spool hand-off (`one `load_trace_npz(mmap=True)`` per worker, one
  on-disk copy shared by all).

Fidelity is asserted along every path (content digests must match), so
the benchmark doubles as an end-to-end format check.

Standalone use (the CI smoke step)::

    python benchmarks/bench_trace.py [--out benchmarks/BENCH_trace.json]
                                     [--m 1000000] [--gate 10.0] [--strict]

writes ``BENCH_trace.json``.  The gate applies to the construction
speedup (the acceptance bar is 10x); CI runs ``--gate 1.0 --strict``
(columnar must beat the seed path even on a contended shared runner).
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
import time

import numpy as np

BENCH_M = 1_000_000
BENCH_N = 10
#: gate on the construction speedup; locally measured ~30x+ (see
#: BENCH_trace.json), the default gate leaves headroom for noisy runners
MIN_SPEEDUP = 10.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "speedup"


def _columns(m: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1.0, size=m)) + 1.0
    servers = rng.integers(0, n, size=m)
    return times, servers.astype(np.int64)


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_trace_bench(m: int = BENCH_M, repeats: int = 3) -> dict:
    from repro.core.trace import Trace
    from repro.experiments.cache import trace_digest
    from repro.system.trace_io import (
        load_trace_csv,
        load_trace_npz,
        save_trace_csv,
        save_trace_npz,
    )

    times, servers = _columns(m, BENCH_N)
    reference = Trace.from_arrays(times, servers, n=BENCH_N)
    digest = trace_digest(reference)

    # ----- construction ------------------------------------------------
    def seed_build():
        # the seed's from_arrays: tolist + zip + one Request per row,
        # materialised eagerly at construction
        tr = Trace(BENCH_N, zip(times.tolist(), servers.tolist()))
        tr.requests
        return tr

    def columnar_build():
        return Trace.from_arrays(times, servers, n=BENCH_N)

    assert trace_digest(seed_build()) == digest
    seed_s = _best(seed_build, max(1, repeats - 1))
    columnar_s = _best(columnar_build, repeats)
    construction = {
        "seed_s": seed_s,
        "columnar_s": columnar_s,
        "speedup": seed_s / columnar_s,
    }

    # ----- save / load -------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="bench-trace-") as d:
        csv_path = os.path.join(d, "t.csv")
        npz_path = os.path.join(d, "t.npz")
        csv_save_s = _best(lambda: save_trace_csv(reference, csv_path), 1)
        csv_load_s = _best(lambda: load_trace_csv(csv_path), 1)
        npz_save_s = _best(lambda: save_trace_npz(reference, npz_path), repeats)
        npz_load_s = _best(lambda: load_trace_npz(npz_path), repeats)
        mmap_load_s = _best(
            lambda: load_trace_npz(npz_path, mmap=True, validate=False), repeats
        )
        assert trace_digest(load_trace_csv(csv_path)) == digest
        assert trace_digest(load_trace_npz(npz_path)) == digest
        assert trace_digest(load_trace_npz(npz_path, mmap=True)) == digest
        io = {
            "csv_save_s": csv_save_s,
            "csv_load_s": csv_load_s,
            "npz_save_s": npz_save_s,
            "npz_load_s": npz_load_s,
            "npz_mmap_load_s": mmap_load_s,
            "load_speedup": csv_load_s / npz_load_s,
            "csv_bytes": os.path.getsize(csv_path),
            "npz_bytes": os.path.getsize(npz_path),
        }

        # ----- runner IPC hand-off -------------------------------------
        def pickle_roundtrip():
            return pickle.loads(pickle.dumps(reference))

        assert trace_digest(pickle_roundtrip()) == digest
        pickle_s = _best(pickle_roundtrip, repeats)
        # per-worker cost of the spool hand-off: one mmap load (the spool
        # file itself is written once per run, amortised over all workers)
        handoff_s = mmap_load_s
        ipc = {
            "pickle_roundtrip_s": pickle_s,
            "mmap_handoff_s": handoff_s,
            "speedup": pickle_s / handoff_s,
        }

    return {
        "bench": "trace-columnar",
        "m": m,
        "n": BENCH_N,
        "construction": construction,
        "io": io,
        "ipc": ipc,
        # top-level gate value: the acceptance bar is on construction
        "speedup": construction["speedup"],
    }


def test_trace_columnar_speedup(benchmark):
    """Columnar construction >= MIN_SPEEDUP x the seed Request path."""
    from conftest import emit
    from repro.core.trace import Trace

    report = run_trace_bench(m=200_000)
    c, io, ipc = report["construction"], report["io"], report["ipc"]
    emit(
        "Columnar trace substrate (200k requests)",
        f"construction: seed {c['seed_s'] * 1e3:.0f}ms  columnar "
        f"{c['columnar_s'] * 1e3:.1f}ms  speedup {c['speedup']:.0f}x\n"
        f"load: csv {io['csv_load_s'] * 1e3:.0f}ms  npz "
        f"{io['npz_load_s'] * 1e3:.1f}ms  mmap {io['npz_mmap_load_s'] * 1e3:.2f}ms\n"
        f"ipc: pickle {ipc['pickle_roundtrip_s'] * 1e3:.1f}ms  mmap hand-off "
        f"{ipc['mmap_handoff_s'] * 1e3:.2f}ms",
    )
    assert c["speedup"] >= MIN_SPEEDUP

    times, servers = _columns(1_000_000, BENCH_N)
    benchmark(lambda: Trace.from_arrays(times, servers, n=BENCH_N))


def main(argv=None) -> int:
    from benchcli import flag_value, gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_trace.json"),
        MIN_SPEEDUP,
    )
    raw = flag_value(args, "--m")
    m = int(raw) if raw is not None else BENCH_M
    report = run_trace_bench(m=m)
    write_report(report, out)
    c, io, ipc = report["construction"], report["io"], report["ipc"]
    print(
        f"trace bench (m={m}): construction seed {c['seed_s']:.3f}s vs "
        f"columnar {c['columnar_s']:.4f}s ({c['speedup']:.0f}x); "
        f"load csv {io['csv_load_s']:.3f}s vs npz {io['npz_load_s']:.4f}s "
        f"vs mmap {io['npz_mmap_load_s'] * 1e3:.2f}ms; "
        f"ipc pickle {ipc['pickle_roundtrip_s'] * 1e3:.1f}ms vs mmap "
        f"{ipc['mmap_handoff_s'] * 1e3:.2f}ms -> {out}"
    )
    return gate_exit(report["speedup"], gate, strict, label="construction speedup")


if __name__ == "__main__":
    sys.exit(main())
