"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Hyper-parameter alpha** — the consistency/robustness dial: sweep
  alpha at fixed accuracies and verify the trade-off direction (smaller
  alpha helps with good predictions, hurts with bad ones).
* **Prediction-duration cap** — Algorithm 1 caps the "within" duration
  at ``lambda`` instead of holding to the predicted next request; the
  BlindFollowPredictions strawman ablates that cap and loses robustness.
* **Warm-up length** — the adaptive variant's monitor warm-up: too short
  risks premature fallback, too long delays protection.
* **Predictor choice** — oracle vs learned predictors on a structured
  workload (what a practitioner can actually deploy).
"""

from __future__ import annotations

import tempfile

import pytest

from repro import (
    AdaptiveReplication,
    BlindFollowPredictions,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    OraclePredictor,
    SlidingWindowPredictor,
    optimal_cost,
    simulate,
)
from repro.experiments import ExperimentRunner, ResultCache
from repro.workloads import bursty_trace, robustness_tight_trace

from conftest import WORKERS, emit


def test_ablation_alpha_tradeoff(benchmark, paper_trace):
    model = CostModel(lam=1000.0, n=paper_trace.n)
    sweep = ExperimentRunner(workers=WORKERS).run(
        "ablation-alpha"
    ).sweep_result()
    lines = [
        "alpha ablation (lambda=1000): consistency/robustness dial",
        f"{'alpha':>6} {'acc=100%':>9} {'acc=50%':>8} {'acc=0%':>7}",
    ]
    grid = {}
    for alpha in (0.05, 0.2, 0.5, 1.0):
        row = [sweep.at(1000.0, alpha, acc).ratio for acc in (1.0, 0.5, 0.0)]
        grid[alpha] = row
        lines.append(
            f"{alpha:>6.2f} {row[0]:>9.3f} {row[1]:>8.3f} {row[2]:>7.3f}"
        )
    # direction of the trade-off: with perfect predictions, small alpha
    # is at least as good as alpha = 1; with 0% accuracy the ordering flips
    assert grid[0.05][0] <= grid[1.0][0] + 1e-9
    assert grid[0.05][2] >= grid[1.0][2] - 1e-9
    emit("Ablation: alpha trade-off", "\n".join(lines))
    benchmark(
        lambda: simulate(
            paper_trace,
            model,
            LearningAugmentedReplication(OraclePredictor(paper_trace), 0.2),
        ).total_cost
    )


def test_ablation_duration_cap(benchmark):
    """Removing the lambda cap on 'within' durations (BlindFollow) breaks
    robustness; Algorithm 1's cap keeps it bounded."""
    lam = 100.0
    # adversarial-for-blind workload: "within" predictions, sparse requests
    from repro import Trace

    items = [(float(k), (k % 5) + 1) for k in range(1, 6)]
    items.append((50_000.0, 1))
    tr = Trace(6, items)
    model = CostModel(lam=lam, n=6)
    opt = optimal_cost(tr, model)
    blind = simulate(tr, model, BlindFollowPredictions(FixedPredictor(True)))
    capped = simulate(
        tr, model, LearningAugmentedReplication(FixedPredictor(True), 0.2)
    )
    lines = [
        "duration-cap ablation (wrong 'within' predictions, 50k-s silence)",
        f"uncapped (BlindFollow): ratio {blind.total_cost / opt:8.3f}",
        f"Algorithm 1 (capped):   ratio {capped.total_cost / opt:8.3f}",
    ]
    assert blind.total_cost / opt > 4.0
    assert capped.total_cost / opt <= 1.0 + 1.0 / 0.2 + 1e-7
    emit("Ablation: lambda cap on within-durations", "\n".join(lines))
    benchmark(
        lambda: simulate(
            tr, model, LearningAugmentedReplication(FixedPredictor(True), 0.2)
        ).total_cost
    )


@pytest.mark.parametrize("warmup", [0, 100, 1000])
def test_ablation_adaptive_warmup(benchmark, warmup):
    lam, alpha, beta = 100.0, 0.2, 0.1
    tr = robustness_tight_trace(lam, alpha, m=2500, eps=lam * 1e-4)
    model = CostModel(lam=lam, n=2)
    opt = optimal_cost(tr, model)
    pol = AdaptiveReplication(FixedPredictor(False), alpha, beta=beta, warmup=warmup)
    ratio = simulate(tr, model, pol).total_cost / opt
    emit(
        f"Ablation: adaptive warm-up = {warmup}",
        f"adversarial instance ratio {ratio:.3f} "
        f"(target {2 + beta:g}; longer warm-up -> more pre-fallback damage)",
    )
    # even the longest warm-up here keeps the ratio far below 1 + 1/alpha = 6
    assert ratio <= 3.5
    benchmark(lambda: simulate(tr, model, AdaptiveReplication(
        FixedPredictor(False), alpha, beta=beta, warmup=warmup)).total_cost)


def test_ablation_predictor_choice(benchmark):
    tr = bursty_trace(
        n=8, n_bursts=150, burst_size=6, burst_spread=20.0, quiet_gap=1200.0, seed=31
    )
    lam = 300.0
    model = CostModel(lam=lam, n=8)
    lines = [
        "predictor ablation on bursty workload (alpha=0.25)",
        f"{'predictor':<22} {'ratio':>7}",
    ]
    # one session-local cache so the five scenarios (same trace, same
    # lambda) share a single offline-optimum computation
    runner = ExperimentRunner(
        workers=WORKERS, cache=ResultCache(tempfile.mkdtemp(prefix="repro-bench-"))
    )
    results = {}
    for name in ("oracle", "sliding-window", "markov", "ewma", "always-wrong"):
        outcome = runner.run(f"ablation-predictor-{name}")
        r = outcome.results[0].ratio
        results[name] = r
        lines.append(f"{name:<22} {r:>7.3f}")
    assert results["oracle"] <= results["always-wrong"]
    assert results["sliding-window"] <= results["always-wrong"] + 1e-9
    emit("Ablation: predictor choice", "\n".join(lines))
    benchmark(
        lambda: simulate(
            tr, model, LearningAugmentedReplication(SlidingWindowPredictor(5), 0.25)
        ).total_cost
    )
