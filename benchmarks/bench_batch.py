"""Batch engine benchmark: per-cell fast replay vs one slab pass.

Runs the *fig25 smoke grid* — Algorithm 1 with noisy-oracle predictions
over the paper's full ``alpha x accuracy`` = 11 x 11 axes at
``lambda = 10`` on a 2000-request IBM-like trace — once per engine:
the PR 2 fast path replays the trace once per cell (121 scalar passes),
the batch engine replays it once for the whole slab.  Per-cell cost
equality between the engines is always asserted bit for bit; wall-clock
and speedup are recorded per lambda (the fig26-28 lambdas ride along as
secondary rows).

Standalone use (the CI smoke step)::

    python benchmarks/bench_batch.py [--out benchmarks/BENCH_batch.json]
                                     [--gate 1.0] [--strict]

writes ``BENCH_batch.json``:
``{"speedup": ..., "fast_s": ..., "batch_s": ..., "lambdas": [...]}``.
The wall-clock gate (default :data:`MIN_SPEEDUP`, override with
``--gate``) only fails the process under ``--strict`` — CI runs
``--gate 1.0 --strict`` (batch must beat fast even on a contended shared
runner), while the pytest entry point keeps the full gate for dedicated
perf runs.
"""

from __future__ import annotations

import os
import sys
import time

FIG25_LAMBDA = 10.0
SECONDARY_LAMBDAS = (100.0, 1000.0, 10000.0)
SMOKE_M = 2000
SMOKE_N = 10
SMOKE_SEED = 0

#: gate on the fig25 grid; locally measured speedups are ~3.2x
#: (see BENCH_batch.json), the gate leaves headroom for noisy runners
MIN_SPEEDUP = 3.0

#: report key diffed against the committed BENCH_*.json history
#: by the persistent regression gate (`repro bench --regress`)
GATE_METRIC = "speedup"


def _smoke_trace():
    from repro.workloads import ibm_like_trace

    return ibm_like_trace(n=SMOKE_N, m=SMOKE_M, seed=SMOKE_SEED)


def _grid_cells():
    from repro.analysis.sweep import PAPER_ACCURACIES, PAPER_ALPHAS

    return [
        (alpha, acc, SMOKE_SEED)
        for alpha in PAPER_ALPHAS
        for acc in PAPER_ACCURACIES
    ]


def run_batch_grid(trace=None, repeats: int = 3) -> dict:
    """Time fast-per-cell vs one batch slab per lambda; best of repeats.

    Each timed unit covers what the engines actually do per grid: the
    fast path builds one policy + prediction stream and replays the
    trace per cell; the batch path builds policies, one prediction
    matrix, and replays the trace once for the slab.
    """
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import BatchCostEngine, FastCostEngine

    if trace is None:
        trace = _smoke_trace()
    cells = _grid_cells()
    fast = FastCostEngine()
    batch = BatchCostEngine()
    rows = []
    for lam in (FIG25_LAMBDA,) + SECONDARY_LAMBDAS:
        model = CostModel(lam=lam, n=trace.n)
        best_fast = best_batch = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fast_runs = [
                fast.run(
                    trace, model,
                    algorithm1_factory(trace, lam, alpha, acc, seed),
                )
                for alpha, acc, seed in cells
            ]
            best_fast = min(best_fast, time.perf_counter() - t0)

            t0 = time.perf_counter()
            batch_runs = batch.run_slab(trace, model, algorithm1_factory, cells)
            best_batch = min(best_batch, time.perf_counter() - t0)

            for cell, f, b in zip(cells, fast_runs, batch_runs):
                assert b.storage_cost == f.storage_cost, (lam, cell)
                assert b.transfer_cost == f.transfer_cost, (lam, cell)
                assert b.n_transfers == f.n_transfers, (lam, cell)
        rows.append(
            {
                "lam": lam,
                "cells": len(cells),
                "fast_s": best_fast,
                "batch_s": best_batch,
                "speedup": best_fast / best_batch,
                "total_costs": [round(r.total_cost, 6) for r in batch_runs],
            }
        )
    fig25 = rows[0]
    return {
        "grid": "fig25-smoke",
        "trace": {"workload": "ibm_like", "n": SMOKE_N, "m": SMOKE_M,
                  "seed": SMOKE_SEED},
        "cells": fig25["cells"],
        "fast_s": fig25["fast_s"],
        "batch_s": fig25["batch_s"],
        "speedup": fig25["speedup"],
        "lambdas": rows,
    }


def test_batch_speedup(benchmark, paper_trace):
    """Batch engine: identical costs, >= MIN_SPEEDUP x on the fig25 grid."""
    from conftest import emit
    from repro.analysis.sweep import algorithm1_factory
    from repro.core.costs import CostModel
    from repro.core.engine import BatchCostEngine

    report = run_batch_grid()
    lines = [
        f"{r['lam']:>8g} {r['cells']:>5d} {r['fast_s'] * 1e3:>9.1f}ms "
        f"{r['batch_s'] * 1e3:>8.1f}ms {r['speedup']:>6.1f}x"
        for r in report["lambdas"]
    ]
    emit(
        "Batch engine (fast per-cell vs one slab pass, 11x11 grid)",
        "  lambda cells      fast    batch  speedup\n"
        + "\n".join(lines)
        + f"\nfig25: fast {report['fast_s']:.3f}s  batch "
        f"{report['batch_s']:.3f}s  speedup {report['speedup']:.1f}x",
    )
    assert report["speedup"] >= MIN_SPEEDUP

    # timed unit: the full 121-cell fig25 slab on the full-length trace
    model = CostModel(lam=FIG25_LAMBDA, n=paper_trace.n)
    batch = BatchCostEngine()
    cells = _grid_cells()
    benchmark(
        lambda: batch.run_slab(paper_trace, model, algorithm1_factory, cells)
    )


def main(argv=None) -> int:
    from benchcli import gate_exit, parse_flags, write_report

    args = list(sys.argv[1:] if argv is None else argv)
    out, gate, strict = parse_flags(
        args,
        os.path.join(os.path.dirname(__file__), "BENCH_batch.json"),
        MIN_SPEEDUP,
    )
    report = run_batch_grid()
    write_report(report, out)
    print(
        f"fig25 smoke grid ({report['cells']} cells, m={SMOKE_M}): "
        f"fast {report['fast_s']:.3f}s, batch {report['batch_s']:.3f}s, "
        f"speedup {report['speedup']:.1f}x -> {out}"
    )
    return gate_exit(report["speedup"], gate, strict, label="speedup")


if __name__ == "__main__":
    sys.exit(main())
