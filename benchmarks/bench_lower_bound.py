"""Section 9: the 3/2 consistency lower bound via the adaptive adversary.

The adversary reacts to the algorithm's observed behaviour while feeding
it perfectly correct predictions; any deterministic algorithm is forced
to a ratio of at least 3/2.  We regenerate the series for Algorithm 1 at
several alpha values and for the conventional algorithm.
"""

from __future__ import annotations

from repro import (
    ConventionalReplication,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    optimal_cost,
)
from repro.analysis.theory import deterministic_consistency_lower_bound
from repro.workloads import LowerBoundAdversary

from conftest import emit

LAM = 100.0


def test_section9_lower_bound(benchmark):
    bound = deterministic_consistency_lower_bound()
    lines = [
        "Section 9: adaptive adversary vs deterministic algorithms "
        f"(lower bound {bound:g}; predictions always correct)",
        f"{'algorithm':<26} {'requests':>9} {'ratio':>8}",
    ]
    cases = [
        ("algorithm1(alpha=0.3)", lambda: LearningAugmentedReplication(FixedPredictor(False), 0.3)),
        ("algorithm1(alpha=0.5)", lambda: LearningAugmentedReplication(FixedPredictor(False), 0.5)),
        ("algorithm1(alpha=0.8)", lambda: LearningAugmentedReplication(FixedPredictor(False), 0.8)),
        ("conventional(alpha=1)", ConventionalReplication),
    ]
    for name, mk in cases:
        for n_req in (100, 400, 1000):
            adv = LowerBoundAdversary(lam=LAM, eps=LAM * 1e-4)
            out = adv.run(mk(), n_requests=n_req)
            opt = optimal_cost(out.trace, CostModel(lam=LAM, n=2))
            ratio = out.result.total_cost / opt
            lines.append(f"{name:<26} {n_req:>9} {ratio:>8.4f}")
            if n_req >= 400:
                assert ratio >= bound - 0.01, (name, n_req, ratio)
    emit("Section 9 (3/2 lower bound)", "\n".join(lines))

    def unit():
        adv = LowerBoundAdversary(lam=LAM, eps=LAM * 1e-4)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        return adv.run(pol, n_requests=300).result.total_cost

    benchmark(unit)
