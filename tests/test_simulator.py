"""Unit tests for repro.core.simulator: legality, accounting, invariants."""

from __future__ import annotations

import math

import pytest

from repro import CostModel, PolicyError, ReplicationPolicy, Trace, simulate
from repro.core.events import EventKind
from repro.core.simulator import SimContext


class ScriptedPolicy(ReplicationPolicy):
    """Serve every request; run a per-request script for extra actions."""

    name = "scripted"

    def __init__(self, script=None, on_init_fn=None, on_expiry_fn=None):
        self.script = script or {}
        self.on_init_fn = on_init_fn
        self.on_expiry_fn = on_expiry_fn

    def reset(self, model):
        self.model = model

    def on_init(self, ctx):
        if self.on_init_fn:
            self.on_init_fn(ctx)

    def on_request(self, ctx, request):
        fn = self.script.get(request.index)
        if fn is not None:
            fn(ctx, request)
        else:
            if ctx.has_copy(request.server):
                ctx.serve_local()
            else:
                ctx.serve_via_transfer(min(ctx.holders()))
                ctx.create_copy(request.server, opening_request=request.index)

    def on_expiry(self, ctx, server, time):
        if self.on_expiry_fn:
            self.on_expiry_fn(ctx, server, time)


class TestServing:
    def test_local_serve_free(self):
        tr = Trace(2, [(1.0, 0)])
        model = CostModel(lam=10.0, n=2)
        res = simulate(tr, model, ScriptedPolicy())
        assert res.transfer_cost == 0.0
        assert res.serves[0].local

    def test_transfer_serve_charges_lambda(self):
        tr = Trace(2, [(1.0, 1)])
        model = CostModel(lam=10.0, n=2)
        res = simulate(tr, model, ScriptedPolicy())
        assert res.transfer_cost == 10.0
        assert not res.serves[0].local
        assert res.serves[0].source == 0

    def test_unserved_request_raises(self):
        def noop(ctx, request):
            pass

        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(PolicyError, match="failed to serve"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: noop}))

    def test_double_serve_rejected(self):
        def double(ctx, request):
            ctx.serve_via_transfer(0)
            ctx.serve_via_transfer(0)

        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(PolicyError, match="already served"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: double}))

    def test_serve_local_without_copy_rejected(self):
        def bad(ctx, request):
            ctx.serve_local()

        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(PolicyError, match="has no copy"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: bad}))

    def test_transfer_to_holder_rejected(self):
        def bad(ctx, request):
            ctx.serve_via_transfer(1)

        tr = Trace(2, [(1.0, 0)])
        with pytest.raises(PolicyError, match="must serve locally"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: bad}))

    def test_transfer_from_empty_source_rejected(self):
        def bad(ctx, request):
            ctx.serve_via_transfer(1)  # server 1 has no copy

        tr = Trace(3, [(1.0, 2)])
        with pytest.raises(PolicyError, match="source 1 has no copy"):
            simulate(tr, CostModel(lam=1.0, n=3), ScriptedPolicy({1: bad}))


class TestCopyManagement:
    def test_double_create_rejected(self):
        def bad(ctx, request):
            ctx.serve_local()
            ctx.create_copy(0)

        tr = Trace(2, [(1.0, 0)])
        with pytest.raises(PolicyError, match="already holds"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: bad}))

    def test_drop_last_copy_rejected(self):
        def bad(ctx, request):
            ctx.serve_local()
            ctx.drop_copy(0)

        tr = Trace(2, [(1.0, 0)])
        with pytest.raises(PolicyError, match="at-least-one-copy"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: bad}))

    def test_drop_missing_copy_rejected(self):
        def bad(ctx, request):
            ctx.serve_local()
            ctx.drop_copy(1)

        tr = Trace(2, [(1.0, 0)])
        with pytest.raises(PolicyError, match="has no copy"):
            simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: bad}))

    def test_standalone_transfer_copy(self):
        def act(ctx, request):
            ctx.serve_local()
            ctx.transfer_copy(0, 1)

        tr = Trace(2, [(1.0, 0)])
        res = simulate(tr, CostModel(lam=7.0, n=2), ScriptedPolicy({1: act}))
        assert res.transfer_cost == 7.0
        assert res.ledger.n_transfers == 1

    def test_holders_view(self):
        seen = {}

        def act(ctx, request):
            ctx.serve_via_transfer(0)
            ctx.create_copy(1, opening_request=request.index)
            seen["holders"] = ctx.holders()
            seen["count"] = ctx.copy_count

        tr = Trace(2, [(1.0, 1)])
        simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: act}))
        assert seen["holders"] == frozenset({0, 1})
        assert seen["count"] == 2


class TestStorageAccounting:
    def test_initial_copy_charged_to_final_request(self):
        tr = Trace(2, [(5.0, 0)])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy())
        # copy at server 0 from t=0 to t_m=5
        assert res.storage_cost == pytest.approx(5.0)

    def test_two_copies_integrate(self):
        tr = Trace(2, [(2.0, 1), (6.0, 0)])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy())
        # server 0: (0,6) = 6; server 1: (2,6) = 4
        assert res.storage_cost == pytest.approx(10.0)

    def test_drop_stops_accrual(self):
        def act(ctx, request):
            ctx.serve_via_transfer(0)
            ctx.create_copy(1, opening_request=request.index)
            ctx.drop_copy(0)

        tr = Trace(2, [(2.0, 1), (10.0, 1)])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy({1: act}))
        # server 0: (0,2) = 2; server 1: (2,10) = 8
        assert res.storage_cost == pytest.approx(10.0)

    def test_storage_clipped_to_final_request(self):
        # expiry scheduled past t_m must not charge beyond t_m
        def init(ctx):
            ctx.schedule_expiry(0, 100.0)

        tr = Trace(2, [(3.0, 0)])
        res = simulate(
            tr, CostModel(lam=1.0, n=2), ScriptedPolicy(on_init_fn=init)
        )
        assert res.storage_cost == pytest.approx(3.0)

    def test_per_server_rates_respected(self):
        tr = Trace(2, [(2.0, 1), (4.0, 1)])
        model = CostModel(lam=1.0, n=2, storage_rates=(1.0, 3.0))
        res = simulate(tr, model, ScriptedPolicy())
        # server 0: 4 time units at rate 1; server 1: 2 units at rate 3
        assert res.storage_cost == pytest.approx(4.0 + 6.0)

    def test_total_is_storage_plus_transfer(self):
        tr = Trace(2, [(2.0, 1)])
        res = simulate(tr, CostModel(lam=5.0, n=2), ScriptedPolicy())
        assert res.total_cost == pytest.approx(res.storage_cost + res.transfer_cost)


class TestExpiryScheduling:
    def test_expiry_fires_between_requests(self):
        fired = []

        def init(ctx):
            ctx.schedule_expiry(0, 2.0)

        def on_exp(ctx, server, time):
            fired.append((server, time))
            if ctx.copy_count > 1:
                ctx.drop_copy(server)

        tr = Trace(2, [(1.0, 1), (5.0, 1)])
        simulate(
            tr,
            CostModel(lam=1.0, n=2),
            ScriptedPolicy(on_init_fn=init, on_expiry_fn=on_exp),
        )
        assert fired == [(0, 2.0)]

    def test_expiry_at_request_time_fires_after_request(self):
        order = []

        def init(ctx):
            ctx.schedule_expiry(0, 1.0)

        def act(ctx, request):
            order.append("request")
            # the copy must still be present: expiry at t fires after
            assert ctx.has_copy(0)
            ctx.serve_local()

        def on_exp(ctx, server, time):
            order.append("expiry")

        tr = Trace(1, [(1.0, 0)])
        simulate(
            tr,
            CostModel(lam=1.0, n=1),
            ScriptedPolicy({1: act}, on_init_fn=init, on_expiry_fn=on_exp),
        )
        assert order == ["request", "expiry"]

    def test_reschedule_replaces(self):
        fired = []

        def init(ctx):
            ctx.schedule_expiry(0, 2.0)
            ctx.schedule_expiry(0, 3.0)  # replaces the 2.0 entry

        def on_exp(ctx, server, time):
            fired.append(time)

        tr = Trace(1, [(5.0, 0)])
        simulate(
            tr,
            CostModel(lam=1.0, n=1),
            ScriptedPolicy(on_init_fn=init, on_expiry_fn=on_exp),
        )
        assert fired == [3.0]

    def test_cancel_expiry(self):
        fired = []

        def init(ctx):
            ctx.schedule_expiry(0, 2.0)
            ctx.cancel_expiry(0)

        tr = Trace(1, [(5.0, 0)])
        simulate(
            tr,
            CostModel(lam=1.0, n=1),
            ScriptedPolicy(
                on_init_fn=init, on_expiry_fn=lambda c, s, t: fired.append(t)
            ),
        )
        assert fired == []

    def test_past_expiry_rejected(self):
        def act(ctx, request):
            ctx.serve_local()
            ctx.schedule_expiry(0, request.time - 1.0)

        tr = Trace(1, [(5.0, 0)])
        with pytest.raises(PolicyError, match="past"):
            simulate(tr, CostModel(lam=1.0, n=1), ScriptedPolicy({1: act}))

    def test_drop_cancels_pending_expiry(self):
        fired = []

        def act(ctx, request):
            ctx.serve_via_transfer(0)
            ctx.create_copy(1, opening_request=request.index)
            ctx.schedule_expiry(0, 3.0)
            ctx.drop_copy(0)  # must cancel the expiry at 3.0

        tr = Trace(2, [(2.0, 1), (9.0, 1)])
        simulate(
            tr,
            CostModel(lam=1.0, n=2),
            ScriptedPolicy({1: act}, on_expiry_fn=lambda c, s, t: fired.append(t)),
        )
        assert fired == []


class TestEventLogAndResult:
    def test_event_log_records_requests(self):
        tr = Trace(2, [(1.0, 1), (2.0, 0)])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy())
        reqs = res.log.of_kind(EventKind.REQUEST)
        assert [e.request_index for e in reqs] == [1, 2]

    def test_copy_count_never_zero(self):
        tr = Trace(3, [(1.0, 1), (2.0, 2), (3.0, 0)])
        res = simulate(tr, CostModel(lam=1.0, n=3), ScriptedPolicy())
        res.log.verify_at_least_one_copy()

    def test_serve_of_lookup(self):
        tr = Trace(2, [(1.0, 1), (2.0, 1)])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy())
        assert res.serve_of(1).request.index == 1
        assert res.serve_of(2).local

    def test_model_trace_mismatch(self):
        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(ValueError, match="model.n"):
            simulate(tr, CostModel(lam=1.0, n=3), ScriptedPolicy())

    def test_copy_records_cover_lifetimes(self):
        tr = Trace(2, [(2.0, 1), (6.0, 0)])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy())
        starts = sorted(r.start for r in res.copy_records)
        assert starts == [0.0, 2.0]

    def test_empty_trace(self):
        tr = Trace(2, [])
        res = simulate(tr, CostModel(lam=1.0, n=2), ScriptedPolicy())
        assert res.total_cost == 0.0
