"""Tests for the randomized ski-rental baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostModel,
    RandomizedSkiRental,
    optimal_cost,
    simulate,
)
from repro.algorithms.randomized import sample_ski_rental_duration
from repro.workloads import robustness_tight_trace, uniform_random_trace


class TestSampling:
    def test_support_is_zero_lambda(self):
        rng = np.random.default_rng(0)
        samples = [sample_ski_rental_duration(rng, 10.0) for _ in range(2000)]
        assert all(0.0 <= s <= 10.0 for s in samples)

    def test_density_shape(self):
        # f(z) = e^z/(e-1) increases on [0,1]: the upper half must carry
        # more mass than the lower half (~62% vs 38%)
        rng = np.random.default_rng(1)
        samples = np.array(
            [sample_ski_rental_duration(rng, 1.0) for _ in range(20000)]
        )
        upper = float(np.mean(samples > 0.5))
        assert 0.55 <= upper <= 0.68

    def test_mean_matches_theory(self):
        # E[z] = integral z e^z/(e-1) dz = 1/(e-1) ~ 0.582
        rng = np.random.default_rng(2)
        samples = np.array(
            [sample_ski_rental_duration(rng, 1.0) for _ in range(30000)]
        )
        assert float(samples.mean()) == pytest.approx(1.0 / (np.e - 1.0), abs=0.01)


class TestPolicy:
    def test_reproducible_given_seed(self):
        tr = uniform_random_trace(3, 40, horizon=60.0, seed=3)
        model = CostModel(lam=2.0, n=3)
        a = simulate(tr, model, RandomizedSkiRental(seed=5)).total_cost
        b = simulate(tr, model, RandomizedSkiRental(seed=5)).total_cost
        assert a == b

    def test_different_seeds_differ(self):
        tr = uniform_random_trace(3, 60, horizon=60.0, seed=4)
        model = CostModel(lam=2.0, n=3)
        costs = {
            simulate(tr, model, RandomizedSkiRental(seed=s)).total_cost
            for s in range(6)
        }
        assert len(costs) > 1

    def test_invariant_maintained(self):
        tr = uniform_random_trace(4, 50, horizon=100.0, seed=5)
        res = simulate(tr, CostModel(lam=3.0, n=4), RandomizedSkiRental(seed=1))
        res.log.verify_at_least_one_copy()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            RandomizedSkiRental(scale=0.0)

    def test_beats_deterministic_on_its_adversarial_instance(self):
        # the Figure 5 instance is tailored to deterministic alpha*lam
        # durations; randomization dodges the synchronized expiry pattern
        from repro import FixedPredictor, LearningAugmentedReplication

        lam, alpha = 10.0, 0.5
        tr = robustness_tight_trace(lam, alpha, m=801, eps=lam * 1e-4)
        model = CostModel(lam=lam, n=2)
        det = simulate(
            tr, model, LearningAugmentedReplication(FixedPredictor(False), alpha)
        )
        rnd_costs = [
            simulate(tr, model, RandomizedSkiRental(seed=s)).total_cost
            for s in range(5)
        ]
        assert float(np.mean(rnd_costs)) < det.total_cost

    def test_expected_ratio_reasonable_on_random_traces(self):
        rng = np.random.default_rng(6)
        ratios = []
        for trial in range(15):
            tr = uniform_random_trace(3, 30, horizon=50.0, seed=trial)
            model = CostModel(lam=2.0, n=3)
            opt = optimal_cost(tr, model)
            cost = np.mean(
                [
                    simulate(tr, model, RandomizedSkiRental(seed=s)).total_cost
                    for s in range(4)
                ]
            )
            ratios.append(cost / opt)
        # no formal multi-server guarantee, but it should sit in the same
        # ballpark as the deterministic 2-competitive baseline
        assert float(np.mean(ratios)) < 2.5
