"""Tests for the ``repro.obs`` telemetry substrate.

The contracts under test (obs/__init__.py DESIGN):

* **bit-identity neutrality** — enabling instrumentation changes no
  computed result, on any engine tier, for arbitrary instances;
* **deterministic merge** — worker deltas fold into the parent registry
  with counter values independent of scheduling order, so a pooled run
  reports the same integer counters as a serial one;
* **zero global state leakage** — the disabled path allocates nothing
  and records nothing; exporters round-trip snapshots faithfully; the
  CLI flags wire the whole pipeline end to end.
"""

from __future__ import annotations

import itertools
import json
import logging
import math
import re
from io import StringIO

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.core.engine import run_slab
from repro.core.trace import Trace
from repro.obs import exporters, metrics
from repro.obs import logging as obs_logging


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with obs off and an empty registry."""
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------


class TestInstruments:
    def test_counter_inc(self):
        c = metrics.counter("x_total", tier="fast")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert metrics.counter("x_total", tier="fast") is c
        assert metrics.counter("x_total", tier="batch") is not c

    def test_gauge_set(self):
        g = metrics.gauge("util")
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_log_buckets_edges(self):
        b = metrics.log_buckets(1e-3, 1e0, per_decade=1)
        assert b == pytest.approx((1e-3, 1e-2, 1e-1, 1e0))
        b2 = metrics.log_buckets(1.0, 100.0, per_decade=2)
        assert len(b2) == 5
        assert b2[0] == pytest.approx(1.0)
        assert b2[-1] == pytest.approx(100.0)
        # geometric spacing: constant ratio between adjacent bounds
        ratios = [b2[i + 1] / b2[i] for i in range(len(b2) - 1)]
        assert all(r == pytest.approx(math.sqrt(10.0)) for r in ratios)

    def test_log_buckets_rejects_bad_range(self):
        with pytest.raises(ValueError):
            metrics.log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            metrics.log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            metrics.log_buckets(1.0, 2.0, per_decade=0)

    def test_histogram_bucket_assignment(self):
        h = metrics.histogram("t", bounds=(1.0, 10.0, 100.0))
        # upper bounds are inclusive; one +Inf overflow bucket follows
        for v in (0.5, 1.0):
            h.observe(v)
        h.observe(10.0)
        h.observe(11.0)
        h.observe(1e6)
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 1.0 + 10.0 + 11.0 + 1e6)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            metrics.Histogram("t", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            metrics.Histogram("t", bounds=(2.0, 1.0))


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_span_disabled_is_shared_noop(self):
        assert metrics.span("a", x=1) is metrics.NOOP_SPAN
        with metrics.span("a") as sp:
            pass
        assert sp.elapsed == 0.0
        assert metrics.get_registry().spans == []

    def test_span_enabled_records(self):
        with metrics.enabled_scope():
            with metrics.span("engine.cell", tier="fast"):
                pass
        spans = metrics.get_registry().spans
        assert len(spans) == 1
        assert spans[0].name == "engine.cell"
        assert dict(spans[0].tags) == {"tier": "fast"}
        assert spans[0].dur_ns >= 0

    def test_timed_span_measures_when_disabled(self):
        with metrics.timed_span("runner.scenario") as sp:
            sum(range(1000))
        assert sp.elapsed > 0.0
        assert metrics.get_registry().spans == []  # not recorded

    def test_traced_decorator(self):
        calls = []

        @metrics.traced("my.op", kind="test")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6  # disabled: plain call
        assert metrics.get_registry().spans == []
        with metrics.enabled_scope():
            assert fn(4) == 8
        assert [s.name for s in metrics.get_registry().spans] == ["my.op"]
        assert calls == [3, 4]

    def test_span_cap_counts_drops(self):
        reg = metrics.Registry()
        for _ in range(metrics.MAX_SPANS + 7):
            reg.record_span("s", {}, 0, 1)
        assert len(reg.spans) == metrics.MAX_SPANS
        assert reg.dropped_spans == 7


# ----------------------------------------------------------------------
# registry merge / drain
# ----------------------------------------------------------------------


class TestMerge:
    def test_counters_add_gauges_max(self):
        a, b = metrics.Registry(), metrics.Registry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(0.7)
        b.gauge("g").set(0.4)
        a.merge(b.snapshot())
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 0.7  # max, not last-write

    def test_histograms_add(self):
        a, b = metrics.Registry(), metrics.Registry()
        for reg, vals in ((a, (0.5, 2.0)), (b, (0.5,))):
            h = reg.histogram("h", bounds=(1.0, 10.0))
            for v in vals:
                h.observe(v)
        a.merge(b.snapshot())
        h = a.histogram("h", bounds=(1.0, 10.0))
        assert h.counts == [2, 1, 0]
        assert h.count == 3

    def test_bounds_mismatch_raises(self):
        a, b = metrics.Registry(), metrics.Registry()
        a.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 100.0)).observe(0.5)
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b.snapshot())

    def test_merge_rejects_non_snapshot(self):
        with pytest.raises(ValueError):
            metrics.Registry().merge({"counters": []})

    def test_merge_is_order_independent(self):
        deltas = []
        for k in (3, 1, 4):
            r = metrics.Registry()
            r.counter("c", tier="fast").inc(k)
            r.gauge("g").set(k / 10)
            deltas.append(r.snapshot())
        fwd, rev = metrics.Registry(), metrics.Registry()
        for d in deltas:
            fwd.merge(d)
        for d in reversed(deltas):
            rev.merge(d)
        assert fwd.snapshot() == rev.snapshot()

    def test_drain_none_when_disabled(self):
        assert metrics.drain() is None
        metrics.merge_delta(None)  # no-op

    def test_drain_and_remerge_preserves_values(self):
        with metrics.enabled_scope():
            metrics.counter("c").inc(5)
            delta = metrics.drain()
            assert metrics.counter("c").value == 0  # drained
            metrics.merge_delta(delta)
        assert metrics.counter("c").value == 5

    def test_snapshot_order_independent(self):
        a, b = metrics.Registry(), metrics.Registry()
        a.counter("x").inc()
        a.counter("a").inc()
        b.counter("a").inc()
        b.counter("x").inc()
        assert a.snapshot() == b.snapshot()


# ----------------------------------------------------------------------
# bit-identity: instrumentation must not perturb results
# ----------------------------------------------------------------------


@st.composite
def instances(draw, max_n=4, max_m=40):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = list(itertools.accumulate(gaps))
    return Trace(n, list(zip(times, servers)))


class TestBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        instances(),
        st.floats(0.05, 1.0),
        st.sampled_from(["reference", "fast", "batch", "auto"]),
    )
    def test_engine_tiers_unchanged_by_obs(self, trace, alpha, engine):
        from repro.analysis.sweep import algorithm1_factory

        model = CostModel(lam=5.0, n=trace.n)
        cells = [(alpha, 0.5, 0), (alpha, 1.0, 1)]
        with metrics.enabled_scope(False):
            base = run_slab(
                trace, model, cells, algorithm1_factory, engine=engine
            )
        with metrics.enabled_scope(True):
            instrumented = run_slab(
                trace, model, cells, algorithm1_factory, engine=engine
            )
        for off, on in zip(base, instrumented):
            assert off.total_cost == on.total_cost
            assert off.storage_cost == on.storage_cost
            assert off.transfer_cost == on.transfer_cost
            # reference-engine results carry transfers on the ledger
            if hasattr(off, "n_transfers") and hasattr(on, "n_transfers"):
                assert off.n_transfers == on.n_transfers

    def test_sweep_grid_unchanged_by_obs(self):
        from repro.analysis.sweep import sweep_grid
        from repro.workloads import uniform_random_trace

        trace = uniform_random_trace(n=3, m=50, horizon=100.0, seed=0)
        with metrics.enabled_scope(False):
            base = sweep_grid(trace, [10.0], [0.2, 1.0], [0.0, 1.0])
        with metrics.enabled_scope(True):
            instrumented = sweep_grid(trace, [10.0], [0.2, 1.0], [0.0, 1.0])
        assert [p.online_cost for p in base.points] == [
            p.online_cost for p in instrumented.points
        ]


# ----------------------------------------------------------------------
# cross-process determinism: serial == pooled counters
# ----------------------------------------------------------------------


def _job_counters(snapshot) -> dict:
    """The scheduling-independent integer counters of a run.

    Engine cells are summed across tiers: chunking differs between
    serial and pooled dispatch, and tier selection is per chunk, so the
    per-tier split may differ — the total cell count may not.
    """
    out: dict = {}
    for c in snapshot["counters"]:
        if c["name"] in ("repro_runner_jobs_total",
                         "repro_cache_requests_total"):
            out[(c["name"], tuple(sorted(c["tags"].items())))] = c["value"]
        elif c["name"] == "repro_engine_cells_total":
            out["engine_cells"] = out.get("engine_cells", 0) + c["value"]
    return out


class TestCrossProcess:
    def test_serial_equals_pooled_counters(self):
        from repro.experiments.cache import NullCache
        from repro.experiments.runner import ExperimentRunner

        snaps = []
        for workers in (1, 2):
            metrics.reset()
            with metrics.enabled_scope():
                runner = ExperimentRunner(workers=workers, cache=NullCache())
                result = runner.run("smoke")
                snaps.append(metrics.get_registry().snapshot())
            assert result.executed == len(result)
        assert _job_counters(snaps[0]) == _job_counters(snaps[1])
        # worker spans crossed the IPC on the pooled run
        sim_spans = [
            s for s in snaps[1]["spans"] if s["name"] == "runner.chunk"
        ]
        assert sim_spans

    def test_pooled_results_unchanged_by_obs(self):
        from repro.experiments.cache import NullCache
        from repro.experiments.runner import ExperimentRunner

        costs = []
        for on in (False, True):
            with metrics.enabled_scope(on):
                runner = ExperimentRunner(workers=2, cache=NullCache())
                result = runner.run("smoke")
            costs.append(
                [r.online_cost for r in sorted(result.results,
                                               key=lambda r: r.job.index)]
            )
        assert costs[0] == costs[1]

    def test_elapsed_still_measured_when_disabled(self):
        from repro.experiments.cache import NullCache
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(workers=1, cache=NullCache())
        result = runner.run("smoke")
        assert result.elapsed > 0.0
        assert metrics.get_registry().spans == []

    def test_cache_counters(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.experiments.runner import ExperimentRunner

        with metrics.enabled_scope():
            runner = ExperimentRunner(
                workers=1, cache=ResultCache(tmp_path / "cache")
            )
            runner.run("smoke")
            first = metrics.counter(
                "repro_cache_requests_total", outcome="hit"
            ).value
            runner.run("smoke")
            hits = metrics.counter(
                "repro_cache_requests_total", outcome="hit"
            ).value
            writes = metrics.counter("repro_cache_writes_total").value
        assert first == 0
        assert hits > 0  # warm re-run served from cache
        assert writes > 0


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


def _sample_snapshot():
    with metrics.enabled_scope():
        metrics.counter("repro_engine_cells_total", tier="fast").inc(3)
        metrics.gauge("repro_worker_utilization").set(0.5)
        metrics.histogram(
            "repro_span_seconds", bounds=(0.1, 1.0), le="x\"y"
        ).observe(0.05)
        with metrics.span("engine.slab", tier="batch", cells=4):
            pass
    return metrics.get_registry().snapshot()


class TestExporters:
    def test_json_round_trip(self, tmp_path):
        snap = _sample_snapshot()
        path = tmp_path / "m.json"
        exporters.write_snapshot_json(snap, path)
        assert exporters.load_snapshot_json(path) == snap

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="kind marker"):
            exporters.load_snapshot_json(path)

    def test_prometheus_grammar(self):
        text = exporters.to_prometheus(_sample_snapshot())
        line_re = re.compile(
            r'^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)'
            r'|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+)$'
        )
        lines = text.strip().split("\n")
        assert lines
        for line in lines:
            assert line_re.match(line), line
        assert 'repro_engine_cells_total{tier="fast"} 3' in lines
        # histogram series: cumulative buckets, +Inf, _sum, _count
        assert any('le="+Inf"' in ln for ln in lines)
        assert any(ln.startswith("repro_span_seconds_sum") for ln in lines)
        assert any(ln.startswith("repro_span_seconds_count") for ln in lines)
        # label values are escaped, label names sanitised
        assert r'le_2="x\"y"' not in text  # name suffixing not expected
        assert r'\"y' in text

    def test_prometheus_cumulative_buckets(self):
        metrics.reset()
        with metrics.enabled_scope():
            h = metrics.histogram("h_seconds", bounds=(1.0, 10.0))
            for v in (0.5, 5.0, 50.0):
                h.observe(v)
        text = exporters.to_prometheus(metrics.get_registry().snapshot())
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="10.0"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text

    def test_chrome_trace_schema(self, tmp_path):
        snap = _sample_snapshot()
        trace = exporters.to_chrome_trace(snap)
        assert trace["displayTimeUnit"] == "ms"
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1
        (ev,) = xs
        assert ev["name"] == "engine.slab"
        assert ev["cat"] == "engine"
        assert ev["ts"] == 0.0  # normalised to the earliest span
        assert ev["args"] == {"tier": "batch", "cells": 4}
        # file form is valid JSON and loads back
        path = tmp_path / "s.json"
        exporters.write_chrome_trace(snap, path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_write_metrics_dispatches_on_suffix(self, tmp_path):
        snap = _sample_snapshot()
        exporters.write_metrics(snap, tmp_path / "m.prom")
        exporters.write_metrics(snap, tmp_path / "m.json")
        assert "# TYPE" in (tmp_path / "m.prom").read_text()
        assert json.loads((tmp_path / "m.json").read_text())["kind"] == (
            "repro-obs-snapshot"
        )

    def test_summarize(self):
        out = exporters.summarize(_sample_snapshot())
        assert "repro_engine_cells_total" in out
        assert "engine.slab" in out
        assert "span totals" in out


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------


class TestCli:
    def test_metrics_and_spans_flags(self, tmp_path, capsys):
        from repro.cli import main

        m, s = tmp_path / "m.json", tmp_path / "s.json"
        code = main([
            "experiments", "run", "smoke", "--no-cache", "--workers", "1",
            "--quiet", "--metrics-out", str(m), "--spans-out", str(s),
        ])
        assert code == 0
        assert not metrics.enabled  # flag restored after the invocation
        snap = exporters.load_snapshot_json(m)
        names = {c["name"] for c in snap["counters"]}
        assert "repro_runner_jobs_total" in names
        assert "repro_engine_cells_total" in names
        span_names = {sp["name"] for sp in snap["spans"]}
        assert {"runner.scenario", "runner.chunk"} <= span_names
        assert span_names & {"engine.cell", "engine.slab"}
        trace = json.loads(s.read_text())
        assert trace["traceEvents"]

    def test_prom_suffix(self, tmp_path, capsys):
        from repro.cli import main

        m = tmp_path / "m.prom"
        code = main([
            "experiments", "run", "smoke", "--no-cache", "--workers", "1",
            "--quiet", "--metrics-out", str(m),
        ])
        assert code == 0
        assert "# TYPE" in m.read_text()

    def test_obs_summary(self, tmp_path, capsys):
        from repro.cli import main

        m = tmp_path / "m.json"
        assert main([
            "experiments", "run", "smoke", "--no-cache", "--workers", "1",
            "--quiet", "--metrics-out", str(m),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "summary", str(m)]) == 0
        out = capsys.readouterr().out
        assert "obs snapshot" in out
        assert "repro_runner_jobs_total" in out

    def test_obs_summary_rejects_foreign_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "summary", str(bad)]) == 2

    def test_sweep_metrics_flag(self, tmp_path, capsys):
        from repro.cli import main

        m = tmp_path / "m.json"
        code = main([
            "sweep", "--lambda", "10", "--requests", "60", "--coarse",
            "--metrics-out", str(m),
        ])
        assert code == 0
        snap = exporters.load_snapshot_json(m)
        assert any(
            c["name"] == "repro_sweep_cells_total" for c in snap["counters"]
        )

    def test_log_flags(self, capsys):
        from repro.cli import main

        assert main(["--log-level", "info", "obs", "summary", "/nonexistent"]) == 2
        logger = logging.getLogger(obs_logging.LIBRARY_LOGGER)
        assert any(
            h.get_name() == "repro-obs-logging" for h in logger.handlers
        )
        logger.handlers = [
            h for h in logger.handlers if h.get_name() != "repro-obs-logging"
        ]


# ----------------------------------------------------------------------
# progress integration
# ----------------------------------------------------------------------


class TestProgress:
    def test_console_progress_reads_telemetry_counter(self):
        from repro.experiments.progress import ConsoleProgress

        out = StringIO()
        with metrics.enabled_scope():
            p = ConsoleProgress(stream=out, min_interval=0.0)
            p.start(4, cached=0, label="t")
            metrics.counter("repro_runner_jobs_total", source="executed").inc(3)
            p.update()  # local tally says 1; the counter says 3
            p.finish()
        text = out.getvalue()
        assert "[t] 4/4 done" in text or "[t] 4 jobs" in text
        assert "3 executed" in text.splitlines()[-1]
        assert "cells/s" in text

    def test_console_progress_eta(self):
        from repro.experiments.progress import ConsoleProgress

        out = StringIO()
        p = ConsoleProgress(stream=out, min_interval=0.0)
        p.start(10, cached=0, label="t")
        p.update(2)
        assert re.search(r"eta \d+s", out.getvalue())

    def test_console_progress_without_obs(self):
        from repro.experiments.progress import ConsoleProgress

        out = StringIO()
        p = ConsoleProgress(stream=out, min_interval=0.0)
        p.start(2, cached=1, label="t")
        p.update()
        p.finish()
        text = out.getvalue()
        assert "finished: 1 executed, 1 cached" in text


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------


class TestLogging:
    def _fresh(self):
        logger = logging.getLogger(obs_logging.LIBRARY_LOGGER)
        saved = list(logger.handlers)
        logger.handlers = [
            h for h in saved if h.get_name() != "repro-obs-logging"
        ]
        return logger, saved

    def test_library_silent_by_default(self):
        logger = logging.getLogger(obs_logging.LIBRARY_LOGGER)
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )

    def test_get_logger_prefixes(self):
        assert obs_logging.get_logger("experiments.runner").name == (
            "repro.experiments.runner"
        )
        assert obs_logging.get_logger().name == "repro"
        assert obs_logging.get_logger("repro.core").name == "repro.core"

    def test_kv_formatter(self):
        logger, saved = self._fresh()
        try:
            stream = StringIO()
            obs_logging.configure(level="info", stream=stream)
            obs_logging.get_logger("t").info(
                "spooled", **obs_logging.kv(bytes=123, fmt="npz")
            )
            line = stream.getvalue().strip()
            assert "repro.t spooled" in line
            assert line.endswith("bytes=123 fmt=npz")
        finally:
            logger.handlers = saved

    def test_json_formatter(self):
        logger, saved = self._fresh()
        try:
            stream = StringIO()
            obs_logging.configure(
                level="info", json_output=True, stream=stream
            )
            obs_logging.get_logger("t").info(
                "spooled", **obs_logging.kv(bytes=123)
            )
            rec = json.loads(stream.getvalue())
            assert rec["msg"] == "spooled"
            assert rec["logger"] == "repro.t"
            assert rec["bytes"] == 123
            assert rec["level"] == "info"
        finally:
            logger.handlers = saved

    def test_configure_idempotent(self):
        logger, saved = self._fresh()
        try:
            obs_logging.configure(level="info")
            obs_logging.configure(level="debug")
            named = [
                h for h in logger.handlers
                if h.get_name() == "repro-obs-logging"
            ]
            assert len(named) == 1
            assert logger.level == logging.DEBUG
        finally:
            logger.handlers = saved

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_logging.configure(level="loud")
