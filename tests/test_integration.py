"""End-to-end integration tests: the full experiment pipeline on small
instances of each paper experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdaptiveReplication,
    ConventionalReplication,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    WangReplication,
    optimal_cost,
    simulate,
)
from repro.analysis.sweep import format_table, sweep_grid
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import (
    LowerBoundAdversary,
    consistency_tight_trace,
    ibm_like_trace,
    robustness_tight_trace,
    wang_counterexample_trace,
)


@pytest.fixture(scope="module")
def trace():
    return ibm_like_trace(n=6, m=800, span=80_000.0, seed=5)


class TestExperimentE1MiniGrid:
    """A reduced Figures 25-28 grid exercising the whole pipeline."""

    @pytest.fixture(scope="class")
    def grid(self, trace):
        return sweep_grid(
            trace,
            lambdas=(20.0, 2000.0),
            alphas=(0.0, 0.5, 1.0),
            accuracies=(0.0, 1.0),
            seed=1,
        )

    def test_grid_complete(self, grid):
        assert len(grid.points) == 12

    def test_bounds_hold(self, grid):
        for p in grid.points:
            if p.alpha > 0:
                assert p.ratio <= robustness_bound(p.alpha) + 1e-7
            if p.accuracy == 1.0:
                assert p.ratio <= consistency_bound(p.alpha) + 1e-7

    def test_table_renders(self, grid):
        out = format_table(grid, 20.0)
        assert "alpha" in out


class TestExperimentE2Adaptive:
    def test_adaptive_vs_plain_on_real_like_trace(self, trace):
        model = CostModel(lam=2000.0, n=trace.n)
        opt = optimal_cost(trace, model)
        pred_bad = NoisyOraclePredictor(trace, 0.0, seed=2)
        plain = simulate(
            trace, model, LearningAugmentedReplication(pred_bad, 0.1)
        )
        pred_bad2 = NoisyOraclePredictor(trace, 0.0, seed=2)
        adapted = simulate(
            trace, model, AdaptiveReplication(pred_bad2, 0.1, beta=0.1, warmup=100)
        )
        # the adapted algorithm must not exceed its robustness target by
        # more than the warm-up contribution
        assert adapted.total_cost / opt <= 2.1 * 1.3
        assert adapted.total_cost <= plain.total_cost + 1e-9


class TestExperimentsE3E4E5E6:
    def test_e3_robustness_tight(self):
        lam, alpha = 30.0, 0.25
        tr = robustness_tight_trace(lam, alpha, m=2001, eps=lam * 1e-5)
        model = CostModel(lam=lam, n=2)
        res = simulate(
            tr, model, LearningAugmentedReplication(FixedPredictor(False), alpha)
        )
        ratio = res.total_cost / optimal_cost(tr, model)
        assert ratio == pytest.approx(robustness_bound(alpha), rel=3e-3)

    def test_e4_consistency_tight(self):
        lam, alpha = 30.0, 0.25
        tr = consistency_tight_trace(lam, cycles=150, eps=lam * 1e-6)
        model = CostModel(lam=lam, n=2)
        res = simulate(
            tr, model, LearningAugmentedReplication(OraclePredictor(tr), alpha)
        )
        ratio = res.total_cost / optimal_cost(tr, model)
        assert ratio == pytest.approx(consistency_bound(alpha), rel=1e-3)

    def test_e5_wang_counterexample(self):
        lam = 30.0
        tr = wang_counterexample_trace(lam, m=800, eps=lam * 1e-5)
        model = CostModel(lam=lam, n=2)
        res = simulate(tr, model, WangReplication())
        ratio = res.total_cost / optimal_cost(tr, model)
        assert ratio == pytest.approx(2.5, rel=3e-3)

    def test_e6_lower_bound_adversary(self):
        lam = 30.0
        adv = LowerBoundAdversary(lam=lam, eps=lam * 1e-4)
        out = adv.run(ConventionalReplication(), n_requests=500)
        ratio = out.result.total_cost / optimal_cost(
            out.trace, CostModel(lam=lam, n=2)
        )
        assert ratio >= 1.5 - 0.01


class TestCrossAlgorithmOrdering:
    def test_oracle_beats_adversarial_predictions(self, trace):
        model = CostModel(lam=500.0, n=trace.n)
        good = simulate(
            trace, model, LearningAugmentedReplication(OraclePredictor(trace), 0.2)
        )
        bad_pred = NoisyOraclePredictor(trace, 0.0, seed=3)
        bad = simulate(trace, model, LearningAugmentedReplication(bad_pred, 0.2))
        assert good.total_cost <= bad.total_cost

    def test_accuracy_monotone_in_expectation(self, trace):
        # averaged over seeds, higher accuracy should not hurt
        model = CostModel(lam=500.0, n=trace.n)
        opt = optimal_cost(trace, model)

        def mean_ratio(acc):
            costs = []
            for seed in range(3):
                pred = NoisyOraclePredictor(trace, acc, seed=seed)
                pol = LearningAugmentedReplication(pred, 0.2)
                costs.append(simulate(trace, model, pol).total_cost)
            return float(np.mean(costs)) / opt

        assert mean_ratio(1.0) <= mean_ratio(0.5) + 0.02
        assert mean_ratio(0.5) <= mean_ratio(0.0) + 0.02
