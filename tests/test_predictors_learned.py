"""Tests for the history-based predictors."""

from __future__ import annotations

import pytest

from repro import (
    EwmaPredictor,
    LastGapPredictor,
    MarkovChainPredictor,
    SlidingWindowPredictor,
)
from repro.predictions import evaluate_predictor, realized_accuracy
from repro.workloads import periodic_trace, uniform_random_trace


def _feed(predictor, observations):
    """Feed (server, time) observations in order."""
    for server, time in observations:
        predictor.observe(server, time)


class TestEwma:
    def test_default_before_any_gap(self):
        p = EwmaPredictor(default_within=False)
        assert not p.predict_within(0, 0.0, 10.0)
        p2 = EwmaPredictor(default_within=True)
        assert p2.predict_within(0, 0.0, 10.0)

    def test_single_gap_learned(self):
        p = EwmaPredictor(decay=1.0)
        _feed(p, [(0, 0.0), (0, 3.0)])
        assert p.predict_within(0, 3.0, lam=5.0)
        assert not p.predict_within(0, 3.0, lam=2.0)

    def test_decay_blends_history(self):
        p = EwmaPredictor(decay=0.5)
        _feed(p, [(0, 0.0), (0, 10.0), (0, 12.0)])  # gaps 10, 2 -> ewma 6
        assert p.predict_within(0, 12.0, lam=6.0)
        assert not p.predict_within(0, 12.0, lam=5.9)

    def test_per_server_state(self):
        p = EwmaPredictor(decay=1.0)
        _feed(p, [(0, 0.0), (1, 1.0), (0, 2.0), (1, 50.0)])
        assert p.predict_within(0, 2.0, lam=5.0)      # server 0 gap 2
        assert not p.predict_within(1, 50.0, lam=5.0)  # server 1 gap 49

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            EwmaPredictor(decay=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(decay=1.5)

    def test_learns_periodic_pattern_well(self):
        # constant per-server gaps: after warm-up EWMA is exact
        tr = periodic_trace(n=3, period=2.0, cycles=30)
        p = EwmaPredictor(decay=0.5)
        outcomes = evaluate_predictor(tr, p, lam=7.0)
        # per-server gap is 6.0 < 7 -> "within" everywhere once learned
        assert realized_accuracy(outcomes[6:]) > 0.85


class TestLastGap:
    def test_repeats_last_gap(self):
        p = LastGapPredictor()
        _feed(p, [(0, 0.0), (0, 8.0)])
        assert p.predict_within(0, 8.0, lam=8.0)
        assert not p.predict_within(0, 8.0, lam=7.9)

    def test_default(self):
        assert not LastGapPredictor(default_within=False).predict_within(0, 0.0, 1.0)

    def test_updates_on_each_gap(self):
        p = LastGapPredictor()
        _feed(p, [(0, 0.0), (0, 1.0), (0, 100.0)])
        assert not p.predict_within(0, 100.0, lam=50.0)


class TestSlidingWindow:
    def test_majority_vote(self):
        p = SlidingWindowPredictor(window=3)
        _feed(p, [(0, 0.0), (0, 1.0), (0, 2.0), (0, 50.0)])  # gaps 1, 1, 48
        assert p.predict_within(0, 50.0, lam=5.0)  # 2 of 3 within

    def test_window_bounds_memory(self):
        p = SlidingWindowPredictor(window=2)
        _feed(p, [(0, 0.0), (0, 1.0), (0, 100.0), (0, 200.0)])  # gaps 1,99,100
        # only the last two gaps (99, 100) are remembered
        assert not p.predict_within(0, 200.0, lam=5.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowPredictor(window=0)

    def test_tie_counts_as_within(self):
        p = SlidingWindowPredictor(window=2)
        _feed(p, [(0, 0.0), (0, 1.0), (0, 100.0)])  # gaps 1, 99
        assert p.predict_within(0, 100.0, lam=5.0)  # 1 of 2 -> tie -> within


class TestMarkov:
    def test_default_without_history(self):
        p = MarkovChainPredictor(default_within=True)
        assert p.predict_within(0, 0.0, 10.0)

    def test_learns_alternating_pattern(self):
        # gaps alternate short (2), long (20): after short comes long
        p = MarkovChainPredictor()
        times = [0.0]
        for k in range(40):
            times.append(times[-1] + (2.0 if k % 2 == 0 else 20.0))
        lam = 10.0
        correct = 0
        total = 0
        p.observe(0, times[0])
        p.predict_within(0, times[0], lam)
        for i in range(1, len(times) - 1):
            p.observe(0, times[i])
            pred = p.predict_within(0, times[i], lam)
            truth = (times[i + 1] - times[i]) <= lam
            total += 1
            if i > 10:  # after warm-up
                correct += int(pred == truth)
        assert correct / (total - 10) > 0.8

    def test_persistence_prior_on_tie(self):
        p = MarkovChainPredictor(smoothing=1.0)
        p.observe(0, 0.0)
        p.predict_within(0, 0.0, 10.0)
        p.observe(0, 2.0)  # gap 2 <= 10 -> last outcome "within"
        assert p.predict_within(0, 2.0, 10.0)  # tie -> repeat last outcome


class TestLearnedPredictorsEndToEnd:
    def test_all_predictors_runnable_with_algorithm1(self):
        from repro import CostModel, LearningAugmentedReplication, simulate

        tr = uniform_random_trace(4, 50, horizon=100.0, seed=17)
        model = CostModel(lam=3.0, n=4)
        for predictor in (
            EwmaPredictor(),
            LastGapPredictor(),
            SlidingWindowPredictor(),
            MarkovChainPredictor(),
        ):
            pol = LearningAugmentedReplication(predictor, 0.5)
            res = simulate(tr, model, pol)
            assert res.total_cost > 0
            res.log.verify_at_least_one_copy()

    def test_learned_beats_adversarial_on_structured_trace(self):
        from repro import (
            AdversarialPredictor,
            CostModel,
            LearningAugmentedReplication,
            simulate,
        )

        tr = periodic_trace(n=3, period=1.0, cycles=60)
        model = CostModel(lam=4.0, n=3)
        learned = simulate(
            tr, model, LearningAugmentedReplication(EwmaPredictor(), 0.2)
        )
        adversarial = simulate(
            tr, model, LearningAugmentedReplication(AdversarialPredictor(tr), 0.2)
        )
        assert learned.total_cost <= adversarial.total_cost
