"""Randomized verification of Algorithm 1's competitive guarantees.

Robustness ``1 + 1/alpha`` must hold for *any* predictions; consistency
``(5 + alpha)/3`` for perfect predictions.  These are exact inequalities
under the repo's accounting conventions (DESIGN.md Section 5), so any
violation is a bug, not noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdversarialPredictor,
    CostModel,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import bursty_trace, uniform_random_trace

TOL = 1e-7


def _instances(seed, count, max_n=5, max_m=40):
    rng = np.random.default_rng(seed)
    for k in range(count):
        n = int(rng.integers(1, max_n + 1))
        m = int(rng.integers(1, max_m + 1))
        lam = float(rng.uniform(0.1, 8.0))
        trace = uniform_random_trace(
            n, m, horizon=float(rng.uniform(1.0, 80.0)), seed=int(rng.integers(2**31))
        )
        yield trace, CostModel(lam=lam, n=n)


@pytest.mark.parametrize("alpha", [0.1, 0.3, 0.5, 0.8, 1.0])
class TestRobustness:
    def test_adversarial_predictions_random_traces(self, alpha):
        for trace, model in _instances(seed=hash(alpha) % 1000, count=25):
            policy = LearningAugmentedReplication(
                AdversarialPredictor(trace), alpha
            )
            run = simulate(trace, model, policy)
            opt = optimal_cost(trace, model)
            assert run.total_cost <= robustness_bound(alpha) * opt + TOL

    def test_noisy_predictions_random_traces(self, alpha):
        for trace, model in _instances(seed=42, count=15):
            policy = LearningAugmentedReplication(
                NoisyOraclePredictor(trace, accuracy=0.5, seed=3), alpha
            )
            run = simulate(trace, model, policy)
            opt = optimal_cost(trace, model)
            assert run.total_cost <= robustness_bound(alpha) * opt + TOL


@pytest.mark.parametrize("alpha", [0.1, 0.3, 0.5, 0.8, 1.0])
class TestConsistency:
    def test_perfect_predictions_random_traces(self, alpha):
        for trace, model in _instances(seed=7, count=25):
            policy = LearningAugmentedReplication(OraclePredictor(trace), alpha)
            run = simulate(trace, model, policy)
            opt = optimal_cost(trace, model)
            assert run.total_cost <= consistency_bound(alpha) * opt + TOL

    def test_perfect_predictions_bursty(self, alpha):
        trace = bursty_trace(
            n=4, n_bursts=12, burst_size=5, burst_spread=2.0, quiet_gap=30.0, seed=5
        )
        model = CostModel(lam=5.0, n=4)
        policy = LearningAugmentedReplication(OraclePredictor(trace), alpha)
        run = simulate(trace, model, policy)
        opt = optimal_cost(trace, model)
        assert run.total_cost <= consistency_bound(alpha) * opt + TOL


class TestAlphaOneMatchesConventionalBound:
    def test_ratio_at_most_two(self):
        # alpha = 1 is the conventional online algorithm: 2-competitive
        for trace, model in _instances(seed=99, count=30):
            policy = LearningAugmentedReplication(
                AdversarialPredictor(trace), alpha=1.0
            )
            run = simulate(trace, model, policy)
            opt = optimal_cost(trace, model)
            assert run.total_cost <= 2.0 * opt + TOL


class TestOnlineNeverBeatsOptimal:
    def test_dp_lower_bounds_every_run(self):
        for trace, model in _instances(seed=123, count=30):
            policy = LearningAugmentedReplication(
                NoisyOraclePredictor(trace, 0.7, seed=1), alpha=0.4
            )
            run = simulate(trace, model, policy)
            opt = optimal_cost(trace, model)
            assert opt <= run.total_cost + TOL
