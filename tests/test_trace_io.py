"""Tests for trace persistence and access-log ingestion."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Trace, TraceError
from repro.system import (
    load_access_log_csv,
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)
from repro.workloads import uniform_random_trace


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        tr = uniform_random_trace(4, 40, horizon=100.0, seed=1)
        p = tmp_path / "trace.csv"
        save_trace_csv(tr, p)
        back = load_trace_csv(p)
        assert back.n == tr.n
        assert np.allclose(back.times, tr.times)
        assert list(back.servers) == list(tr.servers)

    def test_empty_trace(self, tmp_path):
        p = tmp_path / "empty.csv"
        save_trace_csv(Trace(3, []), p)
        back = load_trace_csv(p)
        assert back.n == 3 and len(back) == 0

    def test_float_precision_preserved(self, tmp_path):
        tr = Trace(1, [(0.1 + 0.2, 0)])  # the classic 0.30000000000000004
        p = tmp_path / "prec.csv"
        save_trace_csv(tr, p)
        assert load_trace_csv(p).times[0] == tr.times[0]

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("time,server\n1.0,0\n")
        with pytest.raises(TraceError, match="header"):
            load_trace_csv(p)


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tr = uniform_random_trace(3, 25, horizon=50.0, seed=2)
        p = tmp_path / "trace.jsonl"
        save_trace_jsonl(tr, p)
        back = load_trace_jsonl(p)
        assert back.n == tr.n
        assert np.allclose(back.times, tr.times)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace_jsonl(p)

    def test_wrong_meta_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"kind": "other"}\n')
        with pytest.raises(TraceError, match="trace-meta"):
            load_trace_jsonl(p)


class TestAccessLogIngestion:
    def _write_log(self, path, rows):
        path.write_text("\n".join(rows) + "\n")

    def test_ibm_style_log(self, tmp_path):
        p = tmp_path / "access.log"
        self._write_log(
            p,
            [
                "1000 REST.GET.OBJECT objA 123",
                "2000 REST.PUT.OBJECT objA 123",  # write: filtered out
                "3000 REST.GET.OBJECT objB 55",
                "4000 REST.GET.OBJECT objA 123",
                "9000 REST.GET.OBJECT objB 55",
            ],
        )
        traces = load_access_log_csv(p, n=4, seed=0)
        assert set(traces) == {"objA", "objB"}
        a = traces["objA"]
        # milliseconds -> seconds, anchored at 1.0
        assert a.times[0] == pytest.approx(1.0)
        assert a.times[1] == pytest.approx(1.0 + 3.0)
        assert len(a) == 2

    def test_min_requests_filter(self, tmp_path):
        p = tmp_path / "sparse.log"
        self._write_log(p, ["1000 GET lonely 1", "2000 GET busy 1", "3000 GET busy 1"])
        traces = load_access_log_csv(p, n=2, min_requests=2, seed=0)
        assert set(traces) == {"busy"}

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "comments.log"
        self._write_log(p, ["# header", "", "1000 GET x 1", "2000 GET x 1"])
        traces = load_access_log_csv(p, n=2, seed=0)
        assert len(traces["x"]) == 2

    def test_malformed_row_rejected(self, tmp_path):
        p = tmp_path / "bad.log"
        self._write_log(p, ["1000 GET"])
        with pytest.raises(TraceError, match="columns"):
            load_access_log_csv(p, n=2)

    def test_zipf_assignment_deterministic(self, tmp_path):
        p = tmp_path / "det.log"
        rows = [f"{1000 * k} GET obj 1" for k in range(1, 30)]
        self._write_log(p, rows)
        a = load_access_log_csv(p, n=5, seed=7)["obj"]
        b = load_access_log_csv(p, n=5, seed=7)["obj"]
        assert list(a.servers) == list(b.servers)

    def test_duplicate_timestamps_nudged(self, tmp_path):
        p = tmp_path / "dup.log"
        self._write_log(p, ["1000 GET x 1", "1000 GET x 1", "2000 GET x 1"])
        tr = load_access_log_csv(p, n=2, seed=0)["x"]
        assert len(tr) == 3  # construction succeeded -> strictly increasing

    def test_custom_read_ops(self, tmp_path):
        p = tmp_path / "ops.log"
        self._write_log(p, ["1000 FETCH x 1", "2000 FETCH x 1"])
        traces = load_access_log_csv(p, n=2, read_ops=("FETCH",), seed=0)
        assert len(traces["x"]) == 2
