"""Tests for the Section 5 partition (division) machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdversarialPredictor,
    CostModel,
    LearningAugmentedReplication,
    OraclePredictor,
    Trace,
    optimal_cost,
    simulate,
)
from repro.analysis.partition import (
    find_partitions,
    partition_report,
    reconstruct_optimal_holdings,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import consistency_tight_trace, uniform_random_trace


class TestReconstruction:
    def test_cost_identity_random(self):
        rng = np.random.default_rng(5)
        for trial in range(60):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 30))
            lam = float(rng.uniform(0.3, 6.0))
            tr = uniform_random_trace(n, m, 40.0, seed=trial)
            model = CostModel(lam=lam, n=n)
            h = reconstruct_optimal_holdings(tr, model)
            storage = sum(
                (b - a) * model.rate(s)
                for s, ivs in h.intervals.items()
                for a, b in ivs
            )
            recon = storage + lam * len(h.transfers)
            assert recon == pytest.approx(h.total_cost, rel=1e-9, abs=1e-9)
            assert h.total_cost == pytest.approx(optimal_cost(tr, model))

    def test_dense_single_server_all_local(self):
        tr = Trace(1, [(1.0, 0), (2.0, 0), (3.0, 0)])
        h = reconstruct_optimal_holdings(tr, CostModel(lam=10.0, n=1))
        assert h.transfers == ()
        assert h.intervals[0] == [(0.0, 3.0)]

    def test_sparse_remote_requests_all_transfers(self):
        tr = Trace(3, [(10.0, 1), (20.0, 2)])
        h = reconstruct_optimal_holdings(tr, CostModel(lam=1.0, n=3))
        assert len(h.transfers) == 2

    def test_holder_crossing(self):
        tr = Trace(1, [(1.0, 0), (2.0, 0)])
        h = reconstruct_optimal_holdings(tr, CostModel(lam=10.0, n=1))
        assert h.holder_crossing(1.5) == 0
        assert h.holder_crossing(1.5, exclude=0) is None


class TestPartitionBoundaries:
    def test_boundaries_cover_sequence(self):
        tr = uniform_random_trace(3, 20, 30.0, seed=9)
        h = reconstruct_optimal_holdings(tr, CostModel(lam=2.0, n=3))
        parts = find_partitions(tr, h)
        assert parts[0][0] == 0
        assert parts[-1][1] == len(tr)
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert b == c
            assert a < b

    def test_singleton_trace(self):
        tr = Trace(2, [(5.0, 1)])
        h = reconstruct_optimal_holdings(tr, CostModel(lam=1.0, n=2))
        parts = find_partitions(tr, h)
        assert parts == [(0, 1)]

    def test_isolated_requests_form_case_a_partitions(self):
        # each server is visited once, so no inter-request interval can be
        # kept: the optimal strategy is a single bridged copy and every
        # request is a partition boundary (the paper's Case A shape)
        tr = Trace(4, [(100.0, 1), (200.0, 2), (300.0, 3)])
        h = reconstruct_optimal_holdings(tr, CostModel(lam=1.0, n=4))
        parts = find_partitions(tr, h)
        assert len(parts) == 3


class TestPerPartitionBounds:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 1.0])
    def test_consistency_bound_per_partition(self, alpha):
        rng = np.random.default_rng(int(alpha * 100))
        for trial in range(20):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 25))
            lam = float(rng.uniform(0.3, 6.0))
            tr = uniform_random_trace(n, m, 30.0, seed=trial)
            model = CostModel(lam=lam, n=n)
            pol = LearningAugmentedReplication(OraclePredictor(tr), alpha)
            res = simulate(tr, model, pol)
            for p in partition_report(tr, model, res, pol.classifications):
                assert p.ratio <= consistency_bound(alpha) + 1e-7, p

    @pytest.mark.parametrize("alpha", [0.3, 0.7, 1.0])
    def test_robustness_bound_per_partition(self, alpha):
        rng = np.random.default_rng(int(alpha * 77))
        for trial in range(20):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 25))
            lam = float(rng.uniform(0.3, 6.0))
            tr = uniform_random_trace(n, m, 30.0, seed=500 + trial)
            model = CostModel(lam=lam, n=n)
            pol = LearningAugmentedReplication(AdversarialPredictor(tr), alpha)
            res = simulate(tr, model, pol)
            for p in partition_report(tr, model, res, pol.classifications):
                assert p.ratio <= robustness_bound(alpha) + 1e-7, p

    def test_partition_sums_match_totals(self):
        from repro.analysis import allocate_costs

        tr = uniform_random_trace(4, 30, 50.0, seed=3)
        model = CostModel(lam=2.0, n=4)
        pol = LearningAugmentedReplication(OraclePredictor(tr), 0.4)
        res = simulate(tr, model, pol)
        parts = partition_report(tr, model, res, pol.classifications)
        alloc = allocate_costs(res, pol.classifications)
        assert sum(p.online for p in parts) == pytest.approx(sum(alloc.values()))
        assert sum(p.opt for p in parts) == pytest.approx(
            optimal_cost(tr, model), rel=1e-9
        )

    def test_tight_example_partition_ratio(self):
        # on the Figure 6 instance, at least one partition must be near
        # the consistency bound (that is what tightness means)
        lam, alpha = 10.0, 0.5
        tr = consistency_tight_trace(lam, cycles=10, eps=lam * 1e-6)
        model = CostModel(lam=lam, n=2)
        pol = LearningAugmentedReplication(OraclePredictor(tr), alpha)
        res = simulate(tr, model, pol)
        parts = partition_report(tr, model, res, pol.classifications)
        assert max(p.ratio for p in parts) > consistency_bound(alpha) - 0.15
