"""Tests for repro.analysis.theory, competitive helpers, and the
misprediction bound (equation 11)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    CostModel,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis import analyze_run, competitive_ratio
from repro.analysis.theory import (
    adaptive_robustness_bound,
    consistency_bound,
    conventional_competitive_ratio,
    deterministic_consistency_lower_bound,
    misprediction_penalty_bound,
    robustness_bound,
    wang_claimed_ratio,
    wang_true_ratio_lower_bound,
)
from repro.offline import opt_lower_bound
from repro.predictions import classify_mispredictions, evaluate_predictor
from repro.workloads import uniform_random_trace


class TestTheoryFormulas:
    def test_consistency_values(self):
        assert consistency_bound(1.0) == pytest.approx(2.0)
        assert consistency_bound(0.0) == pytest.approx(5.0 / 3.0)
        assert consistency_bound(0.5) == pytest.approx(5.5 / 3.0)

    def test_robustness_values(self):
        assert robustness_bound(1.0) == pytest.approx(2.0)
        assert robustness_bound(0.5) == pytest.approx(3.0)
        assert math.isinf(robustness_bound(0.0))

    def test_bounds_meet_at_alpha_one(self):
        assert consistency_bound(1.0) == robustness_bound(1.0) == 2.0

    def test_consistency_always_below_robustness(self):
        for alpha in np.linspace(0.01, 1.0, 25):
            assert consistency_bound(alpha) <= robustness_bound(alpha) + 1e-12

    def test_consistency_above_lower_bound(self):
        # (5 + alpha)/3 >= 3/2 for all alpha >= 0 (paper's Section 9 gap)
        for alpha in np.linspace(0.0, 1.0, 11):
            assert consistency_bound(alpha) >= deterministic_consistency_lower_bound()

    def test_adaptive_bound(self):
        assert adaptive_robustness_bound(0.0) == 2.0
        assert adaptive_robustness_bound(1.0) == 3.0
        with pytest.raises(ValueError):
            adaptive_robustness_bound(-0.5)

    def test_misc_constants(self):
        assert conventional_competitive_ratio() == 2.0
        assert wang_claimed_ratio() == 2.0
        assert wang_true_ratio_lower_bound() == 2.5

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            consistency_bound(1.5)
        with pytest.raises(ValueError):
            robustness_bound(-0.1)

    def test_misprediction_bound_formula(self):
        assert misprediction_penalty_bound(3, 2, lam=10.0, alpha=0.5) == (
            pytest.approx(3 * 10.0 + 2 * 1.5 * 10.0)
        )
        with pytest.raises(ValueError):
            misprediction_penalty_bound(-1, 0, 1.0, 0.5)


class TestCompetitiveRatio:
    def test_basic(self):
        assert competitive_ratio(10.0, 5.0) == 2.0

    def test_zero_optimal(self):
        assert competitive_ratio(0.0, 0.0) == 1.0
        assert math.isinf(competitive_ratio(1.0, 0.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            competitive_ratio(-1.0, 1.0)


class TestAnalyzeRun:
    def test_fields_consistent(self):
        tr = uniform_random_trace(3, 30, horizon=60.0, seed=2)
        model = CostModel(lam=2.0, n=3)
        pol = LearningAugmentedReplication(OraclePredictor(tr), 0.4)
        ana = analyze_run(tr, model, pol)
        assert ana.ratio == pytest.approx(ana.online_cost / ana.optimal_cost)
        assert sum(ana.type_counts.values()) == len(tr)
        assert ana.optimal_cost == pytest.approx(optimal_cost(tr, model))

    def test_str_renders(self):
        tr = uniform_random_trace(2, 10, horizon=20.0, seed=3)
        pol = LearningAugmentedReplication(OraclePredictor(tr), 0.4)
        ana = analyze_run(tr, CostModel(lam=2.0, n=2), pol)
        assert "ratio" in str(ana)


class TestMispredictionBoundEq11:
    """Equation (11): the online-cost increase due to mispredictions is at
    most ``lam |M2| + (2 - alpha) lam |M3|``, normalised by OPT_L."""

    @pytest.mark.parametrize("seed", range(5))
    def test_online_increase_bounded(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(10):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(2, 40))
            lam = float(rng.uniform(0.5, 6.0))
            alpha = float(rng.uniform(0.1, 1.0))
            acc = float(rng.uniform(0.0, 1.0))
            tr = uniform_random_trace(
                n, m, horizon=float(rng.uniform(5, 80)), seed=int(rng.integers(2**31))
            )
            model = CostModel(lam=lam, n=n)

            perfect = simulate(
                tr, model, LearningAugmentedReplication(OraclePredictor(tr), alpha)
            )
            noisy_pred = NoisyOraclePredictor(tr, acc, seed=seed)
            noisy = simulate(
                tr, model, LearningAugmentedReplication(noisy_pred, alpha)
            )
            # classify exactly the predictions the noisy run consumed
            outcomes = evaluate_predictor(
                tr, NoisyOraclePredictor(tr, acc, seed=seed), lam
            )
            sets_ = classify_mispredictions(tr, outcomes, lam, alpha)
            bound = misprediction_penalty_bound(
                len(sets_.m2), len(sets_.m3), lam, alpha
            )
            assert noisy.total_cost <= perfect.total_cost + bound + 1e-7

    def test_ratio_increase_bounded_by_eq11(self):
        rng = np.random.default_rng(44)
        for _ in range(15):
            n = int(rng.integers(2, 5))
            m = int(rng.integers(5, 40))
            lam = float(rng.uniform(0.5, 4.0))
            alpha = float(rng.uniform(0.2, 1.0))
            tr = uniform_random_trace(n, m, 60.0, seed=int(rng.integers(2**31)))
            model = CostModel(lam=lam, n=n)
            noisy_pred = NoisyOraclePredictor(tr, 0.5, seed=1)
            noisy = simulate(tr, model, LearningAugmentedReplication(noisy_pred, alpha))
            opt = optimal_cost(tr, model)
            outcomes = evaluate_predictor(
                tr, NoisyOraclePredictor(tr, 0.5, seed=1), lam
            )
            sets_ = classify_mispredictions(tr, outcomes, lam, alpha)
            bound = misprediction_penalty_bound(
                len(sets_.m2), len(sets_.m3), lam, alpha
            )
            lower = opt_lower_bound(tr, model)
            # eq (11): ratio <= consistency + bound / OPT_L
            assert noisy.total_cost / opt <= consistency_bound(
                alpha
            ) + bound / lower + 1e-7
