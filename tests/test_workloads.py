"""Tests for the synthetic and IBM-like workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    IBM_TRACE_REQUESTS,
    IBM_TRACE_SPAN,
    assign_servers_zipf,
    bursty_trace,
    ibm_like_arrivals,
    ibm_like_trace,
    periodic_trace,
    poisson_trace,
    uniform_random_trace,
    zipf_server_probabilities,
)


class TestZipf:
    def test_probabilities_normalized(self):
        p = zipf_server_probabilities(10)
        assert p.sum() == pytest.approx(1.0)

    def test_paper_formula(self):
        # p_i = i^-1 / sum_j j^-1
        p = zipf_server_probabilities(10)
        h = sum(1.0 / j for j in range(1, 11))
        assert p[0] == pytest.approx(1.0 / h)
        assert p[4] == pytest.approx(1.0 / 5.0 / h)

    def test_monotone_decreasing(self):
        p = zipf_server_probabilities(10)
        assert all(p[i] >= p[i + 1] for i in range(9))

    def test_exponent_zero_uniform(self):
        p = zipf_server_probabilities(5, exponent=0.0)
        assert np.allclose(p, 0.2)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_server_probabilities(0)

    def test_assignment_skews_to_low_indices(self):
        times = np.arange(1.0, 4001.0)
        tr = assign_servers_zipf(times, n=10, seed=0)
        counts = np.bincount(tr.servers, minlength=10)
        assert counts[0] > counts[9] * 2


class TestPoisson:
    def test_count_near_expectation(self):
        tr = poisson_trace(n=5, rate=0.5, horizon=1000.0, seed=0)
        assert 400 <= len(tr) <= 600

    def test_deterministic_given_seed(self):
        a = poisson_trace(n=3, rate=0.1, horizon=100.0, seed=5)
        b = poisson_trace(n=3, rate=0.1, horizon=100.0, seed=5)
        assert np.allclose(a.times, b.times)
        assert list(a.servers) == list(b.servers)

    def test_uniform_assignment_option(self):
        tr = poisson_trace(n=4, rate=1.0, horizon=500.0, seed=1, zipf_exponent=None)
        counts = np.bincount(tr.servers, minlength=4)
        assert counts.min() > 0.15 * len(tr)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            poisson_trace(n=2, rate=0.0, horizon=10.0)
        with pytest.raises(ValueError):
            poisson_trace(n=2, rate=1.0, horizon=0.0)


class TestBursty:
    def test_structure(self):
        tr = bursty_trace(
            n=3, n_bursts=5, burst_size=4, burst_spread=1.0, quiet_gap=50.0, seed=2
        )
        assert len(tr) == 20

    def test_bursts_are_single_server(self):
        tr = bursty_trace(
            n=4, n_bursts=3, burst_size=5, burst_spread=0.5, quiet_gap=100.0, seed=3
        )
        # within each burst window all requests hit one server
        times = tr.times
        servers = tr.servers
        splits = np.where(np.diff(times) > 10.0)[0]
        start = 0
        for s in list(splits) + [len(times) - 1]:
            burst_servers = set(servers[start : s + 1].tolist())
            assert len(burst_servers) == 1
            start = s + 1


class TestPeriodic:
    def test_deterministic_without_jitter(self):
        tr = periodic_trace(n=2, period=3.0, cycles=2)
        assert list(tr.times) == [3.0, 6.0, 9.0, 12.0]
        assert list(tr.servers) == [0, 1, 0, 1]

    def test_jitter_preserves_validity(self):
        tr = periodic_trace(n=3, period=5.0, cycles=10, jitter=1.0, seed=4)
        assert len(tr) == 30  # validated construction implies sorted/distinct


class TestUniformRandom:
    def test_shape(self):
        tr = uniform_random_trace(3, 25, horizon=50.0, seed=0)
        assert len(tr) == 25
        assert tr.n == 3
        assert tr.span <= 50.0

    def test_strictly_increasing(self):
        tr = uniform_random_trace(2, 100, horizon=1.0, seed=1)
        assert np.all(np.diff(tr.times) > 0)


class TestIbmLike:
    def test_defaults_match_paper_statistics(self):
        t = ibm_like_arrivals(seed=0)
        assert len(t) == IBM_TRACE_REQUESTS
        assert t[-1] == pytest.approx(IBM_TRACE_SPAN)

    def test_strictly_increasing(self):
        t = ibm_like_arrivals(m=2000, seed=1)
        assert np.all(np.diff(t) > 0)

    def test_trace_mean_gap_near_500s(self):
        # the paper: ~11688 requests over 7 days across 10 servers gives
        # a mean per-server inter-request time of about 500 seconds
        tr = ibm_like_trace(seed=0)
        gaps = [g for g in tr.inter_request_gaps() if np.isfinite(g)]
        assert 300.0 <= float(np.mean(gaps)) <= 800.0

    def test_gap_distribution_split_by_paper_lambdas(self):
        # every lambda in the paper's sweep must split the gap
        # distribution non-trivially except the extreme ends
        tr = ibm_like_trace(seed=0)
        gaps = np.array([g for g in tr.inter_request_gaps() if np.isfinite(g)])
        frac_10 = float(np.mean(gaps <= 10.0))
        frac_1000 = float(np.mean(gaps <= 1000.0))
        assert 0.05 <= frac_10 <= 0.5      # lam=10: most gaps far above
        assert 0.6 <= frac_1000 <= 0.98    # lam=1000: most gaps below

    def test_deterministic(self):
        a = ibm_like_trace(m=500, seed=3)
        b = ibm_like_trace(m=500, seed=3)
        assert np.allclose(a.times, b.times)
        assert list(a.servers) == list(b.servers)

    def test_small_m_guard(self):
        with pytest.raises(ValueError):
            ibm_like_arrivals(m=1)

    def test_custom_sizes(self):
        tr = ibm_like_trace(n=4, m=300, span=10_000.0, seed=2)
        assert tr.n == 4
        assert len(tr) == 300
        assert tr.span == pytest.approx(10_000.0)
