"""Drain semantics, large-instance stress, and cross-module consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    Trace,
    WangReplication,
    optimal_cost,
    simulate,
)
from repro.analysis import allocate_costs, paper_total_cost
from repro.analysis.theory import robustness_bound
from repro.core.validate import validate_result
from repro.workloads import ibm_like_trace, poisson_trace


class TestDrainSemantics:
    def test_drain_does_not_change_measured_cost(self):
        tr = Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)])
        model = CostModel(lam=10.0, n=2)
        a = simulate(
            tr, model, LearningAugmentedReplication(FixedPredictor(False), 0.5),
            drain=True,
        )
        b = simulate(
            tr, model, LearningAugmentedReplication(FixedPredictor(False), 0.5),
            drain=False,
        )
        assert a.total_cost == pytest.approx(b.total_cost)
        assert a.ledger.n_transfers == b.ledger.n_transfers

    def test_drain_resolves_all_regular_copies(self):
        # after draining, exactly one alive record remains (the final
        # special copy) and everything else is closed
        tr = Trace(3, [(3.0, 1), (4.0, 2), (10.0, 0)])
        model = CostModel(lam=10.0, n=3)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        res = simulate(tr, model, pol, drain=True)
        alive = [r for r in res.copy_records if r.closed_by == "alive"]
        assert len(alive) == 1
        assert alive[0].is_special_at_end

    def test_drain_cap_terminates_wang_renewals(self):
        # Wang's cheapest-server renewal loop would drain forever; the
        # event cap must stop it
        tr = Trace(2, [(1.0, 0)])
        model = CostModel(lam=5.0, n=2)
        res = simulate(tr, model, WangReplication(), drain=True)
        assert res.total_cost == pytest.approx(1.0)  # storage (0,1) only

    def test_no_drain_leaves_pending_records_alive(self):
        tr = Trace(2, [(3.0, 1)])
        model = CostModel(lam=10.0, n=2)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        res = simulate(tr, model, pol, drain=False)
        alive = [r for r in res.copy_records if r.closed_by == "alive"]
        assert len(alive) >= 1


class TestPaperScaleStress:
    @pytest.fixture(scope="class")
    def big(self):
        return ibm_like_trace(n=10, m=11688, seed=0)

    def test_full_trace_run_validates(self, big):
        model = CostModel(lam=1000.0, n=10)
        pol = LearningAugmentedReplication(
            NoisyOraclePredictor(big, 0.8, seed=1), 0.3
        )
        res = simulate(big, model, pol)
        assert validate_result(res).ok

    def test_full_trace_allocation_identity(self, big):
        model = CostModel(lam=1000.0, n=10)
        pol = LearningAugmentedReplication(
            NoisyOraclePredictor(big, 0.5, seed=2), 0.4
        )
        res = simulate(big, model, pol)
        total = paper_total_cost(res)
        alloc = allocate_costs(res, pol.classifications)
        assert sum(alloc.values()) == pytest.approx(total, rel=1e-9)

    def test_full_trace_robustness_bound(self, big):
        model = CostModel(lam=1000.0, n=10)
        opt = optimal_cost(big, model)
        pol = LearningAugmentedReplication(
            NoisyOraclePredictor(big, 0.0, seed=3), 0.25
        )
        res = simulate(big, model, pol)
        assert res.total_cost <= robustness_bound(0.25) * opt + 1e-6

    def test_many_servers(self):
        tr = poisson_trace(n=50, rate=0.5, horizon=2000.0, seed=4)
        model = CostModel(lam=20.0, n=50)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        res = simulate(tr, model, pol)
        assert validate_result(res).ok
        assert optimal_cost(tr, model) <= res.total_cost + 1e-7

    def test_single_server_degenerate(self):
        # n = 1: no transfers are ever possible; everything is storage
        tr = poisson_trace(n=1, rate=0.2, horizon=500.0, seed=5, zipf_exponent=None)
        model = CostModel(lam=10.0, n=1)
        pol = LearningAugmentedReplication(FixedPredictor(True), 0.5)
        res = simulate(tr, model, pol)
        assert res.transfer_cost == 0.0
        assert res.storage_cost == pytest.approx(tr.span)


class TestNumericalEdgeCases:
    def test_tiny_gaps(self):
        items = [(1e-9 * (k + 1) + 1e-12 * k, k % 2) for k in range(10)]
        tr = Trace(2, items)
        model = CostModel(lam=1e-6, n=2)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        res = simulate(tr, model, pol)
        assert optimal_cost(tr, model) <= res.total_cost + 1e-12

    def test_huge_lambda(self):
        tr = poisson_trace(n=3, rate=0.1, horizon=100.0, seed=6)
        model = CostModel(lam=1e9, n=3)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        res = simulate(tr, model, pol)
        opt = optimal_cost(tr, model)
        assert res.total_cost <= 3.0 * opt + 1e-3  # robustness at alpha=0.5

    def test_requests_at_same_server_only(self):
        tr = Trace(4, [(float(k), 2) for k in range(1, 30)])
        model = CostModel(lam=5.0, n=4)
        pol = LearningAugmentedReplication(FixedPredictor(True), 0.5)
        res = simulate(tr, model, pol)
        assert res.ledger.n_transfers == 1  # only the first request
