"""Bit-identity and wiring tests for the kernel execution backends.

The contract under test (core/backends.py DESIGN): every registered
backend — ``numpy`` (serial vectorized passes), ``threads`` (cells
fanned over a thread pool), ``numba`` (compiled hot loops, or its
bit-identical numpy fallback when numba is absent) — must reproduce the
default kernel replay *bit for bit*, per cell, across all registered
scenarios and every ``supports()``-eligible policy family; selection
must ride ``backend=`` parameters, the ``REPRO_KERNEL_BACKEND`` env
override, and strict names through ``get_engine``/``select_engine``/
``run_slab``/``run_policy_slab``/``sweep_grid``/``ExperimentRunner``/
``MultiObjectSystem``/CLI; shared slab state (``_SegmentChains`` memos,
prediction batch memos) must be thread-safe; and the process-pool
runner must cap thread fan-out (workers x threads <= cores).

Mirrors the structure of ``test_kernel_engine.py``.
"""

from __future__ import annotations

import hashlib
import struct
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BACKEND_NAMES,
    ConventionalReplication,
    CostModel,
    KernelCostEngine,
    LearningAugmentedReplication,
    Trace,
    get_backend,
    get_engine,
    run_slab,
    select_engine,
)
from repro.analysis.sweep import algorithm1_factory, sweep_grid
from repro.core import backends
from repro.core.backends import (
    NUMPY_PRIMS,
    AutoBackend,
    numba_available,
    numba_prims,
    set_thread_budget,
    thread_budget,
)
from repro.core.engine import (
    KERNEL_SLAB_MIN_M,
    _kernel_algorithm1,
    _SegmentChains,
    run_policy_slab,
)
from repro.predictions import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
)
from repro.workloads import ibm_like_trace, uniform_random_trace

#: the three concrete backends every test pins against each other
CONCRETE = ("numpy", "threads", "numba")


@contextmanager
def wide_budget(n=8):
    """Force a multi-thread budget so the threads backend actually fans
    out even on single-core CI boxes."""
    prev = set_thread_budget(n)
    try:
        yield
    finally:
        set_thread_budget(prev)


def assert_backends_match(trace, model, factory, cells):
    """numpy == threads == numba(-or-fallback), bit for bit, per cell."""
    with wide_budget():
        runs = {
            name: run_slab(
                trace, model, cells, factory, engine="kernel", backend=name
            )
            for name in CONCRETE
        }
    base = runs["numpy"]
    assert len(base) == len(cells)
    for name in CONCRETE[1:]:
        for cell, a, b in zip(cells, base, runs[name]):
            assert a.storage_cost == b.storage_cost, (name, cell)
            assert a.transfer_cost == b.transfer_cost, (name, cell)
            assert a.n_transfers == b.n_transfers, (name, cell)
            assert b.engine == "kernel"
    return base


# ----------------------------------------------------------------------
# property-based equivalence: random traces x slabs x eligible policies
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_n=5, max_m=30):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(gaps)
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def tie_prone_traces(draw, max_n=4, max_m=24):
    """Integer gaps force expiry-time ties across prediction branches,
    exercising every backend's merge tie-detection fallback."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(st.lists(st.integers(1, 3), min_size=m, max_size=m))
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(np.asarray(gaps, dtype=float))
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def instances(draw):
    trace = draw(traces())
    lam = draw(st.floats(0.05, 50.0, allow_nan=False, allow_infinity=False))
    return trace, CostModel(lam=lam, n=trace.n)


@st.composite
def slabs(draw, max_cells=6):
    k = draw(st.integers(1, max_cells))
    alphas = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    accs = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    seeds = draw(st.lists(st.integers(0, 4), min_size=k, max_size=k))
    return list(zip(alphas, accs, seeds))


@settings(max_examples=40, deadline=None)
@given(instances(), slabs())
def test_algorithm1_slab_backends_bit_identical(inst, cells):
    trace, model = inst
    assert_backends_match(trace, model, algorithm1_factory, cells)


@settings(max_examples=30, deadline=None)
@given(tie_prone_traces(), st.integers(1, 4), st.integers(0, 3))
def test_tie_prone_backends_bit_identical(trace, lam_int, seed):
    """Integer timing: the merge primitive must report cross-stream
    expiry ties identically on every backend (lexsort fallback)."""
    model = CostModel(lam=float(lam_int), n=trace.n)
    cells = [(0.0, 0.3, seed), (0.5, 0.7, seed), (1.0, 1.0, seed)]
    assert_backends_match(trace, model, algorithm1_factory, cells)


def _conventional_factory(trace, lam, alpha, accuracy, seed):
    return ConventionalReplication()


@settings(max_examples=20, deadline=None)
@given(instances(), st.integers(1, 4))
def test_conventional_slab_backends_bit_identical(inst, k):
    trace, model = inst
    cells = [(0.5, 1.0, s) for s in range(k)]
    assert_backends_match(trace, model, _conventional_factory, cells)


@settings(max_examples=15, deadline=None)
@given(instances(), st.floats(0.05, 1.0), st.booleans())
def test_every_eligible_predictor_family_across_backends(inst, alpha, within):
    """All supports()-eligible policy families: fixed, adversarial,
    oracle, and noisy-oracle predictors under Algorithm 1."""
    trace, model = inst

    def fixed_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(FixedPredictor(within), a)

    def adversarial_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(AdversarialPredictor(tr), a)

    def oracle_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(OraclePredictor(tr), a)

    cells = [(alpha, 0.0, 0), (1.0, 0.0, 1)]
    for factory in (fixed_factory, adversarial_factory, oracle_factory):
        assert_backends_match(trace, model, factory, cells)
    # noisy oracle rides algorithm1_factory (accuracy < 1)
    assert_backends_match(
        trace, model, algorithm1_factory, [(alpha, 0.6, 3), (0.2, 0.9, 1)]
    )


def test_all_registered_scenarios_backends_bit_identical():
    """Every registered scenario's smoke subset: numpy == threads ==
    numba(-or-fallback) per cell wherever the slab is kernel-eligible."""
    from repro.experiments import list_scenarios

    kernel = get_engine("kernel")
    covered = 0
    for scenario in list_scenarios():
        lam = scenario.lambdas[0]
        alpha = scenario.alphas[0]
        acc = scenario.accuracies[-1]
        seed = scenario.seeds[0]
        trace = scenario.build_trace(lam=lam, alpha=alpha, accuracy=acc, seed=seed)
        model = CostModel(lam=lam, n=trace.n)
        cells = [(alpha, acc, seed), (scenario.alphas[-1], acc, seed)]
        if kernel.supports_slab(trace, model, scenario.policy_factory, cells):
            assert_backends_match(trace, model, scenario.policy_factory, cells)
            covered += 1
    assert covered >= 11  # same floor as the kernel equivalence suite


# ----------------------------------------------------------------------
# primitive contracts: the compiled loop bodies == numpy's op order
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=0, max_size=60))
def test_seq_sum_loop_matches_accumulate(vals):
    """The numba kernel's loop body (here interpreted) performs the same
    left-to-right IEEE chain as np.add.accumulate — only the last
    partial sum is consumed, so the bit patterns agree."""
    arr = np.asarray(vals, dtype=np.float64)
    assert backends._seq_sum_loop(arr.copy()) == backends._np_seq_sum(arr.copy())


@settings(max_examples=30, deadline=None)
@given(st.floats(0.01, 100.0, allow_nan=False), st.integers(0, 50))
def test_repeat_add_loop_matches_accumulate(value, count):
    assert backends._repeat_add_loop(value, count) == backends._np_repeat_add(
        value, count
    )


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(1, 4), min_size=1, max_size=20),
    st.lists(st.integers(1, 4), min_size=1, max_size=20),
)
def test_merge_loop_matches_searchsorted_interleave(gw, gb):
    """Two-pointer merge == double-searchsorted interleave on tie-free
    streams, and both report exactly the same cross-stream ties."""
    ew = np.cumsum(np.asarray(gw, dtype=np.float64))
    eb = np.cumsum(np.asarray(gb, dtype=np.float64)) + 0.5  # offset: no ties
    dw = np.arange(ew.size) * 2
    db = np.arange(eb.size) * 2 + 1
    a = backends._np_merge_interleave(dw, ew, db, eb)
    o, e, tie = backends._merge_loop(dw, ew, db, eb)
    assert a is not None and not tie
    assert np.array_equal(a[0], o) and np.array_equal(a[1], e)
    # force a tie: both detectors must fire
    eb_tied = eb.copy()
    eb_tied[0] = ew[0]
    eb_tied.sort()
    assert backends._np_merge_interleave(dw, ew, db, eb_tied) is None
    assert backends._merge_loop(dw, ew, db, eb_tied)[2] is True


def test_numba_prims_fallback_is_numpy_when_absent():
    prims = numba_prims()
    if numba_available():
        assert prims.name == "numba" and prims.compiled
    else:
        assert prims is NUMPY_PRIMS
    # either way the numba *backend* resolves and runs
    be = get_backend("numba")
    assert be.name == "numba"
    assert be.prims() is prims


# ----------------------------------------------------------------------
# selection, env override, strict names, crossovers
# ----------------------------------------------------------------------


class TestSelection:
    def setup_method(self):
        self.big = uniform_random_trace(
            n=4, m=KERNEL_SLAB_MIN_M + 200, horizon=1e6, seed=1
        )
        self.model = CostModel(lam=20.0, n=4)

    def test_backend_names_registry(self):
        assert BACKEND_NAMES == ("auto", "numpy", "threads", "numba")
        for name in BACKEND_NAMES:
            assert get_backend(name).name == name

    def test_unknown_backend_raises_everywhere(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("gpu")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_engine("kernel", backend="gpu")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_engine("fast", backend="gpu")  # strict even when unused
        cells = [(0.5, 1.0, 0), (0.2, 1.0, 1)]
        with pytest.raises(ValueError, match="unknown kernel backend"):
            run_slab(
                self.big, self.model, cells, algorithm1_factory, backend="gpu"
            )
        with pytest.raises(ValueError, match="unknown kernel backend"):
            run_policy_slab(self.big, [], backend="gpu")

    def test_get_engine_backend_variants_are_singletons(self):
        default = get_engine("kernel")
        assert isinstance(default, KernelCostEngine)
        assert default.backend is None
        assert get_engine("kernel") is default  # identity preserved
        thr = get_engine("kernel", backend="threads")
        assert thr is get_engine("kernel", backend="threads")
        assert thr is not default
        assert thr.backend == "threads"
        # backend is a kernel-only knob: other engines ignore it
        assert get_engine("fast", backend="threads") is get_engine("fast")

    def test_select_engine_backend_param(self):
        pol = LearningAugmentedReplication(OraclePredictor(self.big), 0.5)
        assert select_engine(self.big, self.model, pol) is get_engine("kernel")
        chosen = select_engine(self.big, self.model, pol, backend="numba")
        assert chosen is get_engine("kernel", backend="numba")
        # ineligible outcomes ignore (but still validate) the backend
        with pytest.raises(ValueError, match="unknown kernel backend"):
            select_engine(self.big, self.model, pol, backend="gpu")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threads")
        assert get_backend(None).name == "threads"
        assert get_engine("kernel").backend_for(1, 10).name == "threads"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "warp-drive")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend(None)
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert get_backend(None).name == "auto"

    def test_auto_crossovers(self):
        auto = AutoBackend()
        with wide_budget(8):
            # wide slab + budget: threads
            assert auto.resolve(121, 10_000).name == "threads"
            # narrow slab: not worth the fan-out
            narrow = auto.resolve(4, 10_000).name
            assert narrow in ("numpy", "numba")
        with wide_budget(1):
            short = auto.resolve(121, 100)
            assert short.name == "numpy"
            long = auto.resolve(121, backends.NUMBA_MIN_M)
            assert long.name == ("numba" if numba_available() else "numpy")

    def test_thread_budget_set_and_restore(self):
        base = thread_budget()
        assert base >= 1
        prev = set_thread_budget(4)
        try:
            assert thread_budget() == 4
        finally:
            set_thread_budget(prev)
        assert thread_budget() == base

    def test_threads_backend_serial_below_crossover(self):
        """Budget 1 or a narrow slab degrades to the serial loop — same
        results, no pool."""
        seen = []
        with wide_budget(1):
            out = get_backend("threads").run_cells(3, lambda c: seen.append(c) or c)
        assert out == [0, 1, 2] and seen == [0, 1, 2]


# ----------------------------------------------------------------------
# thread-safety: shared chains hammered from 16 threads (satellite)
# ----------------------------------------------------------------------


def _ledger_digest(tuples):
    h = hashlib.sha256()
    for storage, transfer, n_tx in tuples:
        h.update(struct.pack("<ddq", storage, transfer, n_tx))
    return h.hexdigest()


def test_shared_chains_16_thread_stress_digest_identical():
    """One trace, one shared _SegmentChains, 16 threads replaying
    overlapping cell sets concurrently: every thread's ledger must be
    digest-identical to the serial replay (thread-local workspaces,
    lock-guarded shift memo, read-only precompute)."""
    trace = ibm_like_trace(n=5, m=2_000, seed=9)
    model = CostModel(lam=10.0, n=trace.n)
    alphas = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
    from repro.predictions import PredictionStream

    rows = PredictionStream.batch_for_cells(
        [(NoisyOraclePredictor(trace, 0.7, seed=s % 3), model.lam) for s in range(len(alphas))],
        trace,
    )
    rate, lam = model.storage_rates[0], model.lam

    def replay_all(chains):
        return [
            _kernel_algorithm1(chains, rate, lam, a, rows[k], True, None)
            for k, a in enumerate(alphas)
        ]

    expected = _ledger_digest(replay_all(_SegmentChains(trace)))

    shared = _SegmentChains(trace)   # cold memos, populated under race
    with ThreadPoolExecutor(max_workers=16) as pool:
        digests = list(
            pool.map(lambda _: _ledger_digest(replay_all(shared)), range(16))
        )
    assert digests == [expected] * 16


def test_batch_for_cells_memos_thread_safe():
    """Concurrent batch_for_cells calls (function-local truth/draw
    memos) return identical matrices."""
    from repro.predictions import PredictionStream

    trace = uniform_random_trace(n=4, m=300, horizon=2000.0, seed=3)
    cells = [
        (NoisyOraclePredictor(trace, 0.6, seed=s % 2), float(lam))
        for s in range(6)
        for lam in (5, 10)
    ]
    base = PredictionStream.batch_for_cells(cells, trace)
    with ThreadPoolExecutor(max_workers=8) as pool:
        mats = list(
            pool.map(
                lambda _: PredictionStream.batch_for_cells(cells, trace),
                range(8),
            )
        )
    for mat in mats:
        assert np.array_equal(mat, base)


# ----------------------------------------------------------------------
# layers above: sweep, runner, fleet, CLI, obs, bench registration
# ----------------------------------------------------------------------


def test_sweep_grid_backend_matches_default():
    trace = ibm_like_trace(n=6, m=400, seed=4)
    kw = dict(lambdas=(50.0,), alphas=(0.2, 0.8), accuracies=(0.5, 1.0))
    base = sweep_grid(trace, engine="kernel", **kw)
    with wide_budget():
        for name in CONCRETE:
            got = sweep_grid(trace, engine="kernel", backend=name, **kw)
            for pa, pb in zip(base.points, got.points):
                assert pa.online_cost == pb.online_cost


def test_experiment_runner_backend_matches_default():
    from repro.experiments import ExperimentRunner, get_scenario

    scenario = get_scenario("smoke")
    base = ExperimentRunner(workers=1, engine="kernel").run(scenario)
    with wide_budget():
        got = ExperimentRunner(
            workers=1, engine="kernel", backend="threads"
        ).run(scenario)
    assert [r.online_cost for r in base.results] == [
        r.online_cost for r in got.results
    ]


def test_executor_caps_thread_budget_while_forked():
    """workers x threads <= cores: the forked executor installs
    cores // workers and restores the previous budget on exit."""
    import os

    from repro.experiments.runner import _Executor

    cores = os.cpu_count() or 1
    before = thread_budget()
    with _Executor(4, {}) as ex:
        if ex.workers > 1:   # fork available
            assert thread_budget() == max(1, cores // ex.workers)
    assert thread_budget() == before
    # the serial path leaves the budget untouched
    with wide_budget(6):
        with _Executor(1, {}):
            assert thread_budget() == 6


def test_multi_object_backend_matches_default():
    from repro import MultiObjectSystem, ObjectSpec

    tr = uniform_random_trace(n=3, m=KERNEL_SLAB_MIN_M + 10, horizon=2e5, seed=7)
    specs = [
        ObjectSpec(
            object_id=f"obj-{i}",
            trace=tr,
            lam=10.0,
            policy_factory=lambda trace, model: ConventionalReplication(),
        )
        for i in range(3)
    ]
    system = MultiObjectSystem(3, specs)
    base = system.run(engine="kernel", compute_optimal=False, grouped=True)
    with wide_budget():
        got = system.run(
            engine="kernel", compute_optimal=False, grouped=True,
            backend="threads",
        )
    for a, b in zip(base.outcomes, got.outcomes):
        assert a.result.total_cost == b.result.total_cost
        assert b.result.engine == "kernel"


def test_cli_sweep_backend_flag(capsys):
    from repro.cli import main

    assert main([
        "sweep", "--lambda", "100", "--requests", "120", "--coarse",
        "--engine", "kernel", "--backend", "threads",
    ]) == 0
    out = capsys.readouterr().out
    assert "alpha\\acc" in out


def test_cli_fleet_env_backend_end_to_end(capsys, monkeypatch):
    """REPRO_KERNEL_BACKEND steers `repro fleet run` end-to-end: every
    backend produces the identical fleet report."""
    from repro.cli import main

    argv = [
        "fleet", "run", "--scenario", "smoke", "--objects", "6",
        "--templates", "2", "--workers", "1", "--no-optimal", "--quiet",
        "--engine", "kernel",
    ]
    tables = []
    with wide_budget():
        for name in CONCRETE:
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", name)
            assert main(list(argv)) == 0
            out = capsys.readouterr().out
            # keep the deterministic report table, drop the timing line
            tables.append(out.split("\n6 objects,")[0])
    monkeypatch.delenv("REPRO_KERNEL_BACKEND")
    assert tables[0] == tables[1] == tables[2]
    assert "online" in tables[0]


@st.composite
def mixed_fleet_systems(draw):
    """Small mixed Algorithm-1 + Wang fleets over shared templates."""
    from repro import MultiObjectSystem, ObjectSpec
    from repro.algorithms.wang import WangReplication

    n = draw(st.integers(2, 4))
    templates = []
    for _ in range(draw(st.integers(1, 2))):
        m = draw(st.integers(1, 12))
        gaps = draw(st.lists(st.integers(1, 3), min_size=m, max_size=m))
        servers = draw(
            st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
        )
        times = np.cumsum(np.asarray(gaps, dtype=float))
        templates.append(Trace(n, list(zip(times.tolist(), servers))))

    def la(trace, model):
        return algorithm1_factory(trace, model.lam, 0.5, 1.0, 0)

    def conv(trace, model):
        return ConventionalReplication()

    def wang(trace, model):
        return WangReplication()

    k = draw(st.integers(2, 6))
    specs = [
        ObjectSpec(
            f"o{i:02d}",
            templates[draw(st.integers(0, len(templates) - 1))],
            draw(st.sampled_from([0.5, 2.0, 8.0])),
            draw(st.sampled_from([la, conv, wang])),
        )
        for i in range(k)
    ]
    return MultiObjectSystem(n, specs)


@settings(max_examples=15, deadline=None)
@given(mixed_fleet_systems())
def test_mixed_fleet_bit_identity_across_backends(system):
    """Mixed Algorithm-1 + Wang fleet slabs: serial == grouped ==
    sharded, per object, under every execution backend."""
    from repro.experiments import ExperimentRunner

    serial = system.run(engine="fast", compute_optimal=False)
    base = [o.result.total_cost for o in serial.outcomes]
    with wide_budget():
        for name in CONCRETE:
            grouped = system.run(
                engine="kernel", compute_optimal=False, grouped=True,
                backend=name,
            )
            assert [o.result.total_cost for o in grouped.outcomes] == base
            sharded = ExperimentRunner(workers=1, backend=name).run_fleet(
                system, engine="kernel", compute_optimal=False
            )
            assert [o.result.total_cost for o in sharded.outcomes] == base


def test_engine_spans_tagged_with_backend():
    from repro.obs import metrics as _obs

    trace = uniform_random_trace(
        n=4, m=KERNEL_SLAB_MIN_M + 50, horizon=1e6, seed=5
    )
    model = CostModel(lam=20.0, n=4)
    cells = [(a, 1.0, 0) for a in (0.2, 0.5, 0.8)]
    with _obs.enabled_scope():
        run_slab(
            trace, model, cells, algorithm1_factory,
            engine="kernel", backend="numpy",
        )
        snap = _obs.drain()
    slab_spans = [s for s in snap["spans"] if s["name"] == "engine.slab"]
    assert slab_spans and all(
        s["tags"]["backend"] == "numpy" for s in slab_spans
    )


def test_obs_summary_groups_by_backend():
    """repro obs summary splits engine span stats per backend instead of
    lumping all kernel cells together (satellite fix)."""
    from repro.obs.exporters import summarize

    snap = {
        "kind": "repro-obs-snapshot",
        "counters": [], "gauges": [], "histograms": [],
        "spans": [
            {"name": "engine.slab", "dur_ns": 10**9,
             "tags": {"tier": "kernel", "backend": "numpy"}},
            {"name": "engine.slab", "dur_ns": 2 * 10**9,
             "tags": {"tier": "kernel", "backend": "threads"}},
            {"name": "engine.slab", "dur_ns": 5 * 10**8,
             "tags": {"tier": "batch"}},
        ],
    }
    out = summarize(snap)
    assert "engine.slab{backend=numpy}" in out
    assert "engine.slab{backend=threads}" in out
    # untagged spans keep the bare name
    assert "\n  engine.slab  " in out or "engine.slab " in out


def test_fleet_chunk_spans_tagged_with_backend():
    """fleet.chunk spans carry the resolved kernel backend, so `repro
    obs summary` groups fleet telemetry per backend exactly like the
    engine.slab spans (satellite fix)."""
    from repro import MultiObjectSystem, ObjectSpec
    from repro.experiments import ExperimentRunner
    from repro.obs import metrics as _obs
    from repro.obs.exporters import summarize

    tr = uniform_random_trace(n=3, m=40, horizon=100.0, seed=3)
    specs = [
        ObjectSpec(
            f"o{i}", tr, 5.0,
            lambda trace, model: ConventionalReplication(),
        )
        for i in range(4)
    ]
    system = MultiObjectSystem(3, specs)
    runner = ExperimentRunner(workers=1, backend="numpy")
    with _obs.enabled_scope():
        runner.run_fleet(system, engine="kernel", compute_optimal=False)
        snap = _obs.drain()
    chunk_spans = [s for s in snap["spans"] if s["name"] == "fleet.chunk"]
    assert chunk_spans and all(
        s["tags"]["backend"] == "numpy" for s in chunk_spans
    )
    assert "fleet.chunk{backend=numpy}" in summarize(snap)


def test_auto_never_threads_on_single_core():
    """With a thread budget of 1 `auto` must not pick the threads
    backend, whatever the slab shape — one worker thread is pure
    overhead over the serial numpy path."""
    auto = AutoBackend()
    with wide_budget(1):
        for n_cells, m in ((121, 10_000), (1024, 1_000_000), (16, 256)):
            assert auto.resolve(n_cells, m).name != "threads"


def test_bench_thread_counts_never_oversubscribe(monkeypatch):
    """The backends bench sweeps thread budgets only up to the core
    count: on a single-core box the sweep is empty, so the recorded
    report cannot claim a bogus oversubscribed threads win."""
    import importlib.util
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "bench_backends.py"
    )
    spec = importlib.util.spec_from_file_location("_bench_backends", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    cores = os.cpu_count() or 1
    assert all(2 <= t <= cores for t in mod._thread_counts())
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert mod._thread_counts() == []
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert mod._thread_counts() == [2, 8]


def test_bench_discovery_includes_backends_suite():
    import os

    from repro.cli import _discover_bench_suites, main

    bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    assert "backends" in _discover_bench_suites(bench_dir)


def test_bench_cli_list_includes_backends(capsys):
    from repro.cli import main

    assert main(["bench", "--list"]) == 0
    assert "backends" in capsys.readouterr().out
