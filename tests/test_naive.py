"""Tests for the naive baselines and the conventional algorithm."""

from __future__ import annotations

import pytest

from repro import (
    AlwaysHold,
    BlindFollowPredictions,
    ConventionalReplication,
    CostModel,
    FixedPredictor,
    NeverHold,
    OraclePredictor,
    Trace,
    optimal_cost,
    simulate,
)
from repro.workloads import uniform_random_trace


class TestAlwaysHold:
    def test_one_transfer_per_server(self):
        tr = Trace(3, [(1.0, 1), (2.0, 2), (3.0, 1), (4.0, 2)])
        res = simulate(tr, CostModel(lam=5.0, n=3), AlwaysHold())
        assert res.ledger.n_transfers == 2

    def test_storage_blowup_scales_with_servers(self):
        # every strategy must store >= 1 copy over the span, so the blow-up
        # factor is the number of needlessly replicated servers
        tr = Trace(
            6, [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4), (5.0, 5), (5000.0, 1)]
        )
        model = CostModel(lam=5.0, n=6)
        res = simulate(tr, model, AlwaysHold())
        opt = optimal_cost(tr, model)
        assert res.total_cost > 4 * opt  # ~6 copies held vs 1 needed

    def test_good_on_dense_trace(self):
        tr = Trace(2, [(0.1 * k, k % 2) for k in range(1, 50)])
        model = CostModel(lam=100.0, n=2)
        res = simulate(tr, model, AlwaysHold())
        opt = optimal_cost(tr, model)
        assert res.total_cost <= 3 * opt


class TestNeverHold:
    def test_single_copy_always(self):
        tr = uniform_random_trace(3, 20, horizon=30.0, seed=2)
        res = simulate(tr, CostModel(lam=1.0, n=3), NeverHold())
        traj = res.log.copy_count_trajectory()
        assert traj == [(0.0, 1)]  # only the initial copy, never replicated

    def test_transfer_per_remote_request(self):
        tr = Trace(2, [(1.0, 1), (2.0, 1), (3.0, 0)])
        res = simulate(tr, CostModel(lam=5.0, n=2), NeverHold())
        assert res.ledger.n_transfers == 2  # both server-1 requests

    def test_unbounded_transfers_on_dense_trace(self):
        tr = Trace(2, [(0.01 * k, 1) for k in range(1, 200)])
        model = CostModel(lam=50.0, n=2)
        res = simulate(tr, model, NeverHold())
        opt = optimal_cost(tr, model)
        assert res.total_cost > 10 * opt


class TestBlindFollow:
    def test_perfect_predictions_near_optimal(self):
        tr = uniform_random_trace(3, 40, horizon=60.0, seed=8)
        model = CostModel(lam=2.0, n=3)
        res = simulate(tr, model, BlindFollowPredictions(OraclePredictor(tr)))
        opt = optimal_cost(tr, model)
        # blind following of perfect predictions is per-server optimal;
        # small overhead only from the at-least-one-copy constraint
        assert res.total_cost <= opt * 1.6

    def test_wrong_within_prediction_is_catastrophic(self):
        # "within" mispredictions pin a copy at every touched server for
        # the whole silent period; the blow-up factor scales with the
        # number of servers (unbounded robustness in the paper's sense)
        tr = Trace(
            6,
            [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4), (5.0, 5), (10_000.0, 1)],
        )
        model = CostModel(lam=10.0, n=6)
        res = simulate(tr, model, BlindFollowPredictions(FixedPredictor(True)))
        opt = optimal_cost(tr, model)
        assert res.total_cost > 4 * opt

    def test_invariant_maintained(self):
        tr = uniform_random_trace(4, 30, horizon=100.0, seed=3)
        res = simulate(
            tr, CostModel(lam=1.0, n=4), BlindFollowPredictions(FixedPredictor(False))
        )
        res.log.verify_at_least_one_copy()


class TestConventional:
    def test_is_two_competitive(self):
        for seed in range(10):
            tr = uniform_random_trace(4, 40, horizon=50.0, seed=seed)
            model = CostModel(lam=2.0, n=4)
            res = simulate(tr, model, ConventionalReplication())
            opt = optimal_cost(tr, model)
            assert res.total_cost <= 2.0 * opt + 1e-7

    def test_durations_always_lambda(self):
        tr = Trace(2, [(1.0, 1), (5.0, 0)])
        pol = ConventionalReplication()
        simulate(tr, CostModel(lam=7.0, n=2), pol)
        assert all(c.duration_set == 7.0 for c in pol.classifications)

    def test_name(self):
        assert "alpha=1" in ConventionalReplication().name
