"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.requests == 2000

    def test_sweep_repeatable_lambda(self):
        args = build_parser().parse_args(
            ["sweep", "--lambda", "10", "--lambda", "100"]
        )
        assert args.lam == [10.0, 100.0]

    def test_tight_options(self):
        args = build_parser().parse_args(["tight", "--alpha", "0.3"])
        assert args.alpha == 0.3


class TestCommands:
    def test_tight_runs(self, capsys):
        assert main(["tight", "--alpha", "0.5", "--m", "301"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_wang_runs(self, capsys):
        assert main(["wang", "--m", "200"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "2.5" in out

    def test_adversary_runs(self, capsys):
        assert main(["adversary", "--requests", "120"]) == 0
        out = capsys.readouterr().out
        assert "Section 9" in out

    def test_sweep_runs_small(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--lambda",
                    "100",
                    "--requests",
                    "200",
                    "--coarse",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lambda = 100" in out

    def test_adaptive_runs_small(self, capsys):
        assert main(["adaptive", "--requests", "300", "--beta", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_sweep_heatmap_flag(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--lambda",
                    "100",
                    "--requests",
                    "150",
                    "--coarse",
                    "--heatmap",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "heat map" in out and "legend" in out
