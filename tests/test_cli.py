"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.requests == 2000

    def test_sweep_repeatable_lambda(self):
        args = build_parser().parse_args(
            ["sweep", "--lambda", "10", "--lambda", "100"]
        )
        assert args.lam == [10.0, 100.0]

    def test_tight_options(self):
        args = build_parser().parse_args(["tight", "--alpha", "0.3"])
        assert args.alpha == 0.3


class TestCommands:
    def test_tight_runs(self, capsys):
        assert main(["tight", "--alpha", "0.5", "--m", "301"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_wang_runs(self, capsys):
        assert main(["wang", "--m", "200"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "2.5" in out

    def test_adversary_runs(self, capsys):
        assert main(["adversary", "--requests", "120"]) == 0
        out = capsys.readouterr().out
        assert "Section 9" in out

    def test_sweep_runs_small(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--lambda",
                    "100",
                    "--requests",
                    "200",
                    "--coarse",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "lambda = 100" in out

    def test_adaptive_runs_small(self, capsys):
        assert main(["adaptive", "--requests", "300", "--beta", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_sweep_heatmap_flag(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--lambda",
                    "100",
                    "--requests",
                    "150",
                    "--coarse",
                    "--heatmap",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "heat map" in out and "legend" in out


class TestTraceCommand:
    def _save(self, tmp_path, name="w.csv"):
        from repro.system import save_trace
        from repro.workloads import uniform_random_trace

        tr = uniform_random_trace(4, 120, 1000.0, seed=9)
        path = tmp_path / name
        save_trace(tr, path)
        return tr, path

    def test_info_prints_format_and_summary(self, tmp_path, capsys):
        _, path = self._save(tmp_path)
        assert main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "format          csv" in out
        assert "requests (m)    120" in out
        assert "servers (n)     4" in out

    def test_info_mmap_npz(self, tmp_path, capsys):
        from repro.system import save_trace_npz
        from repro.workloads import uniform_random_trace

        path = tmp_path / "w.npz"
        save_trace_npz(uniform_random_trace(3, 50, 100.0, seed=1), path)
        assert main(["trace", "info", str(path), "--mmap"]) == 0
        assert "memory-mapped" in capsys.readouterr().out

    @pytest.mark.parametrize("dst_ext", ["npz", "jsonl.gz", "csv.gz"])
    def test_convert_round_trip(self, tmp_path, capsys, dst_ext):
        from repro.experiments.cache import trace_digest
        from repro.system import load_trace

        tr, src = self._save(tmp_path)
        dst = tmp_path / f"w.{dst_ext}"
        assert main(["trace", "convert", str(src), str(dst)]) == 0
        assert trace_digest(load_trace(dst)) == trace_digest(tr)
        assert dst_ext in capsys.readouterr().out

    def test_unknown_format_exits_2(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "x.parquet")]) == 2
        assert "cannot detect" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "missing.csv")]) == 2
