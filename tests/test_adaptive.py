"""Tests for the adapted Algorithm 1 (Section 8, bounded robustness)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    AdaptiveReplication,
    AdversarialPredictor,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.offline import opt_lower_bound
from repro.workloads import robustness_tight_trace, uniform_random_trace


class TestParameters:
    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveReplication(FixedPredictor(False), 0.5, beta=-0.1)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveReplication(FixedPredictor(False), 0.5, beta=0.1, warmup=-1)

    def test_name_mentions_parameters(self):
        pol = AdaptiveReplication(FixedPredictor(False), 0.25, beta=0.5)
        assert "0.25" in pol.name and "0.5" in pol.name


class TestMonitors:
    def test_opt_lower_matches_batch_formula(self):
        tr = uniform_random_trace(3, 40, horizon=60.0, seed=4)
        model = CostModel(lam=3.0, n=3)
        pol = AdaptiveReplication(OraclePredictor(tr), 0.4, beta=1.0, warmup=0)
        simulate(tr, model, pol)
        assert pol.opt_lower == pytest.approx(opt_lower_bound(tr, model))

    def test_opt_lower_is_a_lower_bound(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 30))
            tr = uniform_random_trace(n, m, 30.0, seed=int(rng.integers(2**31)))
            model = CostModel(lam=2.0, n=n)
            assert opt_lower_bound(tr, model) <= optimal_cost(tr, model) + 1e-9

    def test_online_upper_bounds_measured_cost(self):
        tr = uniform_random_trace(4, 50, horizon=80.0, seed=6)
        model = CostModel(lam=4.0, n=4)
        pol = AdaptiveReplication(
            AdversarialPredictor(tr), 0.3, beta=0.1, warmup=0
        )
        res = simulate(tr, model, pol)
        assert res.total_cost <= pol.online_upper + 1e-9

    def test_monitor_history_recorded(self):
        tr = uniform_random_trace(2, 10, horizon=20.0, seed=1)
        pol = AdaptiveReplication(OraclePredictor(tr), 0.5, beta=0.5, warmup=0)
        simulate(tr, CostModel(lam=2.0, n=2), pol)
        assert len(pol.monitor_history) == len(tr)
        assert all(r >= 0 for (_, r, _) in pol.monitor_history)


class TestBoundedRobustness:
    @pytest.mark.parametrize("beta", [0.1, 0.5, 1.0])
    def test_tight_adversarial_instance_capped(self, beta):
        # the Figure 5 instance drives plain Algorithm 1 to 1 + 1/alpha;
        # with alpha = 0.2 that is 6.0 — far above 2 + beta.  The adapted
        # algorithm must stay near its target instead.
        lam, alpha = 50.0, 0.2
        tr = robustness_tight_trace(lam, alpha, m=1200, eps=1e-3)
        model = CostModel(lam=lam, n=2)
        plain = simulate(
            tr, model, LearningAugmentedReplication(FixedPredictor(False), alpha)
        )
        adaptive_pol = AdaptiveReplication(
            FixedPredictor(False), alpha, beta=beta, warmup=50
        )
        adapted = simulate(tr, model, adaptive_pol)
        opt = optimal_cost(tr, model)
        plain_ratio = plain.total_cost / opt
        adapted_ratio = adapted.total_cost / opt
        assert plain_ratio > 4.0  # sanity: the instance is truly bad
        assert adapted_ratio < plain_ratio
        # warm-up contributes a vanishing prefix; allow modest slack
        assert adapted_ratio <= (2.0 + beta) * 1.25

    def test_monitored_ratio_stays_bounded_after_warmup(self):
        lam, alpha, beta = 50.0, 0.2, 0.1
        tr = robustness_tight_trace(lam, alpha, m=800, eps=1e-3)
        pol = AdaptiveReplication(FixedPredictor(False), alpha, beta=beta, warmup=50)
        simulate(tr, CostModel(lam=lam, n=2), pol)
        # once tripped, the fallback keeps OnlineU growth at conventional
        # rates; the monitor must not run away
        tail = [r for (i, r, _) in pol.monitor_history[200:]]
        assert max(tail) <= (2 + beta) * 1.6

    def test_fallback_actually_triggers(self):
        lam, alpha = 50.0, 0.2
        tr = robustness_tight_trace(lam, alpha, m=600, eps=1e-3)
        pol = AdaptiveReplication(FixedPredictor(False), alpha, beta=0.1, warmup=20)
        simulate(tr, CostModel(lam=lam, n=2), pol)
        assert any(forced for (_, _, forced) in pol.monitor_history)


class TestConsistencyRetained:
    def test_good_predictions_keep_algorithm1_behaviour(self):
        # with perfect predictions the monitor stays low and the adapted
        # algorithm should match plain Algorithm 1 exactly
        tr = uniform_random_trace(4, 80, horizon=160.0, seed=13)
        model = CostModel(lam=2.0, n=4)
        plain = simulate(
            tr, model, LearningAugmentedReplication(OraclePredictor(tr), 0.3)
        )
        adapted = simulate(
            tr,
            model,
            AdaptiveReplication(OraclePredictor(tr), 0.3, beta=1.0, warmup=0),
        )
        assert adapted.total_cost <= plain.total_cost * 1.05

    def test_never_forced_when_predictions_perfect_and_beta_large(self):
        tr = uniform_random_trace(3, 60, horizon=100.0, seed=21)
        pol = AdaptiveReplication(OraclePredictor(tr), 0.3, beta=3.0, warmup=0)
        simulate(tr, CostModel(lam=2.0, n=3), pol)
        forced_after_start = [f for (_, _, f) in pol.monitor_history[10:]]
        assert not any(forced_after_start)
