"""Tests for oracle-derived predictors and accuracy measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    Trace,
)
from repro.predictions import (
    classify_mispredictions,
    evaluate_predictor,
    ground_truth_within,
    realized_accuracy,
)
from repro.workloads import uniform_random_trace


class TestGroundTruth:
    def test_within(self):
        tr = Trace(2, [(1.0, 1), (5.0, 1)])
        assert ground_truth_within(tr, 1, 1.0, lam=4.0)
        assert ground_truth_within(tr, 1, 1.0, lam=4.0 + 1e-9)

    def test_beyond(self):
        tr = Trace(2, [(1.0, 1), (5.0, 1)])
        assert not ground_truth_within(tr, 1, 1.0, lam=3.9)

    def test_boundary_inclusive(self):
        # "no later than t + lam" is inclusive (Algorithm 1 line 10)
        tr = Trace(2, [(1.0, 1), (5.0, 1)])
        assert ground_truth_within(tr, 1, 1.0, lam=4.0)

    def test_no_next_request_is_beyond(self):
        tr = Trace(2, [(1.0, 1)])
        assert not ground_truth_within(tr, 1, 1.0, lam=100.0)

    def test_dummy_request_truth(self):
        tr = Trace(2, [(3.0, 0)])
        assert ground_truth_within(tr, 0, 0.0, lam=3.0)
        assert not ground_truth_within(tr, 0, 0.0, lam=2.9)

    def test_untouched_server(self):
        tr = Trace(3, [(1.0, 1)])
        assert not ground_truth_within(tr, 2, 0.0, lam=100.0)


class TestOracle:
    def test_always_correct(self):
        tr = uniform_random_trace(3, 30, horizon=30.0, seed=0)
        outcomes = evaluate_predictor(tr, OraclePredictor(tr), lam=2.0)
        assert realized_accuracy(outcomes) == 1.0

    def test_adversarial_always_wrong(self):
        tr = uniform_random_trace(3, 30, horizon=30.0, seed=0)
        outcomes = evaluate_predictor(tr, AdversarialPredictor(tr), lam=2.0)
        assert realized_accuracy(outcomes) == 0.0


class TestNoisyOracle:
    def test_accuracy_one_is_oracle(self):
        tr = uniform_random_trace(3, 40, horizon=40.0, seed=1)
        outcomes = evaluate_predictor(
            tr, NoisyOraclePredictor(tr, 1.0, seed=0), lam=2.0
        )
        assert realized_accuracy(outcomes) == 1.0

    def test_accuracy_zero_is_adversarial(self):
        tr = uniform_random_trace(3, 40, horizon=40.0, seed=1)
        outcomes = evaluate_predictor(
            tr, NoisyOraclePredictor(tr, 0.0, seed=0), lam=2.0
        )
        assert realized_accuracy(outcomes) == 0.0

    def test_intermediate_accuracy_statistical(self):
        tr = uniform_random_trace(5, 400, horizon=400.0, seed=2)
        outcomes = evaluate_predictor(
            tr, NoisyOraclePredictor(tr, 0.8, seed=0), lam=2.0
        )
        acc = realized_accuracy(outcomes)
        assert 0.72 <= acc <= 0.88

    def test_memoised_within_run(self):
        tr = Trace(2, [(1.0, 1), (5.0, 1)])
        p = NoisyOraclePredictor(tr, 0.5, seed=3)
        first = p.predict_within(1, 1.0, 4.0)
        assert all(p.predict_within(1, 1.0, 4.0) == first for _ in range(5))

    def test_deterministic_given_seed(self):
        tr = uniform_random_trace(3, 30, horizon=30.0, seed=4)
        a = [
            NoisyOraclePredictor(tr, 0.5, seed=9).predict_within(r.server, r.time, 2.0)
            for r in tr
        ]
        b = [
            NoisyOraclePredictor(tr, 0.5, seed=9).predict_within(r.server, r.time, 2.0)
            for r in tr
        ]
        assert a == b

    def test_invalid_accuracy_rejected(self):
        tr = Trace(2, [(1.0, 1)])
        with pytest.raises(ValueError):
            NoisyOraclePredictor(tr, 1.5)
        with pytest.raises(ValueError):
            NoisyOraclePredictor(tr, -0.1)


class TestFixedPredictor:
    def test_constant_output(self):
        p = FixedPredictor(True)
        assert p.predict_within(0, 0.0, 1.0)
        assert p.predict_within(5, 99.0, 0.1)
        q = FixedPredictor(False)
        assert not q.predict_within(0, 0.0, 1.0)

    def test_name(self):
        assert "within" in FixedPredictor(True).name
        assert "beyond" in FixedPredictor(False).name


class TestMispredictionClassification:
    def test_m_sets_partition_by_gap(self):
        lam, alpha = 10.0, 0.5
        # gaps at server 1: 3 (<= alpha lam), 7 (in (alpha lam, lam]), 20 (> lam)
        tr = Trace(2, [(1.0, 1), (4.0, 1), (11.0, 1), (31.0, 1)])
        outcomes = evaluate_predictor(tr, AdversarialPredictor(tr), lam)
        sets_ = classify_mispredictions(tr, outcomes, lam, alpha)
        assert 2 in sets_.m1   # r_2: gap 3
        assert 3 in sets_.m2   # r_3: gap 7
        assert 4 in sets_.m3   # r_4: gap 20
        assert set(sets_.m1 + sets_.m2 + sets_.m3) <= {1, 2, 3, 4}

    def test_correct_predictions_yield_empty_sets(self):
        tr = uniform_random_trace(3, 30, horizon=30.0, seed=7)
        outcomes = evaluate_predictor(tr, OraclePredictor(tr), lam=2.0)
        sets_ = classify_mispredictions(tr, outcomes, 2.0, 0.5)
        assert sets_.m1 == sets_.m2 == sets_.m3 == ()

    def test_penalty_bound_formula(self):
        from repro.predictions import MispredictionSets

        s = MispredictionSets(m1=(1, 2), m2=(3,), m3=(4, 5))
        assert s.penalty_bound(lam=10.0, alpha=0.5) == pytest.approx(
            10.0 * 1 + 1.5 * 10.0 * 2
        )

    def test_empty_outcomes(self):
        assert np.isnan(realized_accuracy([]))
