"""Equivalence and wiring tests for the batched slab engine.

The contract under test (core/engine.py DESIGN): the slab-vectorized
:class:`BatchCostEngine` must reproduce the scalar
:class:`FastCostEngine` — and therefore the reference event-driven
simulator — *bit for bit*, per cell, for every fast-path eligible policy
(Algorithm 1 with streamable predictors, the conventional baseline, and
Wang et al.) on arbitrary instances and arbitrary slabs of
``(alpha, accuracy, seed)`` cells; batched prediction matrices must
consume the PCG64 streams exactly as the scalar paths do; and the
layers above (``select_engine``, ``run_slab``, ``sweep_grid``,
``ExperimentRunner``, fleets, the CLI) must route slabs onto it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchCostEngine,
    ConventionalReplication,
    CostModel,
    CostResult,
    EngineError,
    FastCostEngine,
    LearningAugmentedReplication,
    MultiObjectSystem,
    ObjectSpec,
    PredictionStream,
    ReferenceEngine,
    Trace,
    WangReplication,
    get_engine,
    run_slab,
    select_engine,
)
from repro.analysis.sweep import algorithm1_factory, sweep_grid
from repro.core.engine import ENGINE_NAMES
from repro.experiments import ExperimentRunner, ResultCache, get_scenario, scenario_names
from repro.predictions import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    SlidingWindowPredictor,
)
from repro.workloads import diurnal_trace, uniform_random_trace

BATCH = BatchCostEngine()
FAST = FastCostEngine()
REF = ReferenceEngine()


def assert_slab_matches_scalar(trace, model, factory, cells, check_reference=False):
    """One batched slab pass == per-cell fast (and reference) replays."""
    runs = BATCH.run_slab(trace, model, factory, cells)
    assert len(runs) == len(cells)
    for cell, run in zip(cells, runs):
        assert isinstance(run, CostResult)
        assert run.engine == "batch"
        policy = factory(trace, model.lam, *cell)
        fast = FAST.run(trace, model, policy)
        # bit-identity, not mere closeness
        assert run.storage_cost == fast.storage_cost, cell
        assert run.transfer_cost == fast.transfer_cost, cell
        assert run.n_transfers == fast.n_transfers, cell
        if check_reference:
            ref = REF.run(trace, model, factory(trace, model.lam, *cell))
            assert run.storage_cost == ref.storage_cost, cell
            assert run.transfer_cost == ref.transfer_cost, cell
    return runs


# ----------------------------------------------------------------------
# property-based equivalence: random traces x slabs x all three policies
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_n=5, max_m=30):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(gaps)
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def instances(draw):
    trace = draw(traces())
    lam = draw(st.floats(0.05, 50.0, allow_nan=False, allow_infinity=False))
    return trace, CostModel(lam=lam, n=trace.n)


@st.composite
def slabs(draw, max_cells=6):
    k = draw(st.integers(1, max_cells))
    alphas = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    accs = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    seeds = draw(st.lists(st.integers(0, 4), min_size=k, max_size=k))
    return list(zip(alphas, accs, seeds))


@settings(max_examples=50, deadline=None)
@given(instances(), slabs())
def test_algorithm1_slab_bit_identity(inst, cells):
    """Batch == fast == reference per cell for Algorithm 1 slabs."""
    trace, model = inst
    assert_slab_matches_scalar(
        trace, model, algorithm1_factory, cells, check_reference=True
    )


def _conventional_factory(trace, lam, alpha, accuracy, seed):
    return ConventionalReplication()


def _wang_factory(trace, lam, alpha, accuracy, seed):
    return WangReplication()


@settings(max_examples=30, deadline=None)
@given(instances(), st.integers(1, 4))
def test_conventional_and_wang_slab_bit_identity(inst, k):
    trace, model = inst
    cells = [(0.5, 1.0, s) for s in range(k)]
    assert_slab_matches_scalar(
        trace, model, _conventional_factory, cells, check_reference=True
    )
    assert_slab_matches_scalar(
        trace, model, _wang_factory, cells, check_reference=True
    )


@settings(max_examples=25, deadline=None)
@given(instances(), st.floats(0.05, 1.0), st.booleans())
def test_fixed_and_adversarial_predictor_slabs(inst, alpha, within):
    trace, model = inst

    def fixed_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(FixedPredictor(within), a)

    def adversarial_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(AdversarialPredictor(tr), a)

    cells = [(alpha, 0.0, 0), (1.0, 0.0, 1)]
    assert_slab_matches_scalar(trace, model, fixed_factory, cells)
    assert_slab_matches_scalar(trace, model, adversarial_factory, cells)


@settings(max_examples=20, deadline=None)
@given(instances(), st.integers(0, 3))
def test_zero_alpha_full_trust_slab(inst, seed):
    trace, model = inst
    cells = [(0.0, 0.7, seed), (0.0, 1.0, seed), (0.3, 0.7, seed + 1)]
    assert_slab_matches_scalar(trace, model, algorithm1_factory, cells)


def test_single_policy_run_matches_fast():
    """The scalar Engine interface (one-column slab) is bit-identical."""
    trace = uniform_random_trace(n=4, m=80, horizon=500.0, seed=5)
    model = CostModel(lam=25.0, n=4)
    for make in (
        lambda: LearningAugmentedReplication(
            NoisyOraclePredictor(trace, 0.6, seed=3), 0.4
        ),
        ConventionalReplication,
        WangReplication,
    ):
        b = BATCH.run(trace, model, make())
        f = FAST.run(trace, model, make())
        assert b.storage_cost == f.storage_cost
        assert b.transfer_cost == f.transfer_cost
        assert b.n_transfers == f.n_transfers
        assert b.engine == "batch"


def test_drain_event_cap_matches_fast():
    trace = uniform_random_trace(n=5, m=40, horizon=200.0, seed=9)
    model = CostModel(lam=15.0, n=5)
    pol = LearningAugmentedReplication(OraclePredictor(trace), 0.5)
    for cap in (0, 1, 2, None):
        b = BATCH.run(trace, model, pol, drain_event_cap=cap)
        f = FAST.run(
            trace,
            model,
            LearningAugmentedReplication(OraclePredictor(trace), 0.5),
            drain_event_cap=cap,
        )
        assert b.storage_cost == f.storage_cost, cap
        assert b.transfer_cost == f.transfer_cost, cap


def test_non_unit_uniform_rate_slab():
    trace = uniform_random_trace(n=4, m=100, horizon=600.0, seed=11)
    model = CostModel(lam=40.0, n=4, storage_rates=(2.5,) * 4)
    cells = [(a, acc, 0) for a in (0.2, 1.0) for acc in (0.0, 1.0)]
    assert_slab_matches_scalar(
        trace, model, algorithm1_factory, cells, check_reference=True
    )


# ----------------------------------------------------------------------
# batched prediction streams: RNG bit-identity
# ----------------------------------------------------------------------


class TestBatchedStreams:
    def test_batch_matrix_columns_equal_scalar_streams(self):
        trace = uniform_random_trace(n=4, m=150, horizon=900.0, seed=7)
        lam = 35.0
        accuracies = [0.0, 0.3, 0.3, 0.8, 1.0]
        seeds = [0, 1, 1, 2, 5]
        matrix = PredictionStream.batch(trace, lam, accuracies, seeds)
        assert matrix.shape == (len(trace) + 1, 5)
        for c, (acc, seed) in enumerate(zip(accuracies, seeds)):
            if acc >= 1.0:
                scalar = PredictionStream.oracle(trace, lam)
            else:
                scalar = PredictionStream.noisy_oracle(trace, lam, acc, seed)
            assert np.array_equal(matrix[:, c], scalar.within), (acc, seed)

    def test_batch_shares_draws_across_same_seed(self):
        # two columns with the same seed must flip the same queries when
        # their accuracies coincide — a direct probe of draw sharing
        trace = uniform_random_trace(n=3, m=80, horizon=400.0, seed=1)
        m = PredictionStream.batch(trace, 20.0, [0.5, 0.5], [3, 3])
        assert np.array_equal(m[:, 0], m[:, 1])

    def test_batch_for_predictors_mixed_kinds(self):
        trace = uniform_random_trace(n=3, m=60, horizon=300.0, seed=2)
        lam = 18.0
        preds = [
            OraclePredictor(trace),
            AdversarialPredictor(trace),
            FixedPredictor(True),
            FixedPredictor(False),
            NoisyOraclePredictor(trace, 0.4, seed=6),
        ]
        matrix = PredictionStream.batch_for_predictors(preds, trace, lam)
        assert matrix is not None
        for c, p in enumerate(preds):
            scalar = PredictionStream.for_predictor(p, trace, lam)
            assert np.array_equal(matrix[:, c], scalar.within), type(p)

    def test_batch_for_predictors_rejects_unstreamable(self):
        trace = uniform_random_trace(n=3, m=30, horizon=150.0, seed=3)
        preds = [OraclePredictor(trace), SlidingWindowPredictor(window=5)]
        assert PredictionStream.batch_for_predictors(preds, trace, 10.0) is None

    def test_batch_validates_inputs(self):
        trace = uniform_random_trace(n=3, m=10, horizon=50.0, seed=0)
        with pytest.raises(ValueError, match="align"):
            PredictionStream.batch(trace, 10.0, [0.5], [0, 1])
        with pytest.raises(ValueError, match="accuracy"):
            PredictionStream.batch(trace, 10.0, [-0.1], [0])


# ----------------------------------------------------------------------
# selection and dispatch wiring
# ----------------------------------------------------------------------


class TestSelection:
    def setup_method(self):
        self.trace = uniform_random_trace(n=4, m=40, horizon=300.0, seed=0)
        self.model = CostModel(lam=20.0, n=4)

    def test_engine_names_and_registry(self):
        assert ENGINE_NAMES == ("auto", "batch", "fast", "kernel", "reference")
        assert isinstance(get_engine("batch"), BatchCostEngine)

    def test_auto_prefers_batch_for_slabs(self):
        pol = LearningAugmentedReplication(OraclePredictor(self.trace), 0.5)
        assert select_engine(self.trace, self.model, pol, "auto") \
            is get_engine("fast")
        assert select_engine(
            self.trace, self.model, pol, "auto", slab_size=8
        ) is get_engine("batch")
        # ineligible policies fall back to reference even for slabs
        pol2 = LearningAugmentedReplication(SlidingWindowPredictor(5), 0.5)
        assert select_engine(
            self.trace, self.model, pol2, "auto", slab_size=8
        ) is get_engine("reference")

    def test_explicit_batch_on_unsupported_policy_raises(self):
        from repro import AdaptiveReplication

        pol = AdaptiveReplication(OraclePredictor(self.trace), 0.5, beta=0.1)
        assert not BATCH.supports(self.trace, self.model, pol)
        with pytest.raises(EngineError):
            BATCH.run(self.trace, self.model, pol)

    def test_supports_slab_rejects_mixed_and_unstreamable(self):
        def mixed_factory(trace, lam, alpha, accuracy, seed):
            if seed % 2:
                return WangReplication()
            return ConventionalReplication()

        cells = [(0.5, 1.0, 0), (0.5, 1.0, 1)]
        assert not BATCH.supports_slab(
            self.trace, self.model, mixed_factory, cells
        )

        def learned_factory(trace, lam, alpha, accuracy, seed):
            return LearningAugmentedReplication(SlidingWindowPredictor(5), alpha)

        assert not BATCH.supports_slab(
            self.trace, self.model, learned_factory, cells
        )
        with pytest.raises(EngineError):
            BATCH.run_slab(self.trace, self.model, learned_factory, cells)

    def test_run_slab_falls_back_per_cell(self):
        # an unbatchable (history-based) factory still evaluates under
        # "auto" via the reference engine, cell by cell
        def learned_factory(trace, lam, alpha, accuracy, seed):
            return LearningAugmentedReplication(SlidingWindowPredictor(5), alpha)

        cells = [(0.5, 1.0, 0), (1.0, 1.0, 0)]
        runs = run_slab(self.trace, self.model, cells, learned_factory)
        refs = [
            REF.run(
                self.trace, self.model,
                learned_factory(self.trace, self.model.lam, *c),
            )
            for c in cells
        ]
        for run, ref in zip(runs, refs):
            assert run.total_cost == ref.total_cost

    def test_run_slab_empty(self):
        assert run_slab(self.trace, self.model, [], algorithm1_factory) == []


# ----------------------------------------------------------------------
# consuming layers: sweep, runner, fleets, CLI
# ----------------------------------------------------------------------


class TestConsumers:
    def test_sweep_grid_batch_equals_fast_and_reference(self):
        trace = uniform_random_trace(n=4, m=60, horizon=500.0, seed=0)
        grids = {
            name: sweep_grid(
                trace, (10.0, 100.0), (0.2, 1.0), (0.0, 1.0), engine=name
            )
            for name in ("auto", "batch", "fast", "reference")
        }
        base = grids["fast"]
        for name, grid in grids.items():
            assert len(grid.points) == len(base.points)
            for p, q in zip(grid.points, base.points):
                assert p.online_cost == q.online_cost, name
                assert (p.lam, p.alpha, p.accuracy) == (q.lam, q.alpha, q.accuracy)

    def test_runner_batch_scenario_and_shared_cache(self, tmp_path):
        scenario = get_scenario("smoke")
        fast = ExperimentRunner(workers=1, engine="fast").run(scenario)
        batch = ExperimentRunner(workers=2, engine="batch").run(scenario)
        for a, b in zip(fast.results, batch.results):
            assert a.online_cost == b.online_cost
            assert a.optimal_cost == b.optimal_cost
        # the cache is keyed per cell and shared across engines: a batch
        # run warms it for a fast re-run, which then executes nothing
        cache = ResultCache(tmp_path / "cache")
        first = ExperimentRunner(workers=2, cache=cache, engine="batch").run(
            scenario
        )
        assert first.executed == len(first)
        again = ExperimentRunner(
            workers=2, cache=ResultCache(tmp_path / "cache"), engine="fast"
        ).run(scenario)
        assert again.executed == 0 and again.cached == len(again)

    def test_run_fleet_threads_engine(self):
        trace = uniform_random_trace(n=3, m=40, horizon=300.0, seed=2)
        specs = [
            ObjectSpec(
                "obj-a",
                trace,
                15.0,
                lambda tr, model: LearningAugmentedReplication(
                    OraclePredictor(tr), 0.4
                ),
            ),
            ObjectSpec("obj-b", trace, 30.0, lambda tr, model: WangReplication()),
        ]
        system = MultiObjectSystem(3, specs)
        ref = system.run()
        # engine=None inherits an explicitly configured runner engine
        report = ExperimentRunner(workers=2, engine="batch").run_fleet(system)
        assert report.online_total == ref.online_total
        assert isinstance(report.outcomes[0].result, CostResult)
        assert report.outcomes[0].result.engine == "batch"
        # ...but a default ("auto") runner keeps the telemetry-preserving
        # reference engine for fleets, as before
        default_report = ExperimentRunner(workers=1).run_fleet(system)
        assert default_report.online_total == ref.online_total
        assert hasattr(default_report.outcomes[0].result, "serves")
        # MultiObjectSystem.run(engine="batch", runner=...) also routes
        via_system = system.run(
            runner=ExperimentRunner(workers=1), engine="batch"
        )
        assert via_system.online_total == ref.online_total

    def test_cli_accepts_batch_engine(self):
        from repro.cli import build_parser

        p = build_parser()
        args = p.parse_args(["sweep", "--engine", "batch"])
        assert args.engine == "batch"
        args = p.parse_args(["experiments", "run", "smoke", "--engine", "batch"])
        assert args.engine == "batch"


# ----------------------------------------------------------------------
# new built-in scenarios (satellite)
# ----------------------------------------------------------------------


def test_all_registered_scenarios_batch_equivalent_where_supported():
    """Every registered scenario's smoke subset: batch == fast per cell
    wherever the slab is batch-eligible (the paper grids, smoke, tight
    examples, adversary, and the synthetic workload grids all are)."""
    from repro.experiments import list_scenarios

    batch_covered = 0
    for scenario in list_scenarios():
        lam = scenario.lambdas[0]
        alpha = scenario.alphas[0]
        acc = scenario.accuracies[-1]
        seed = scenario.seeds[0]
        trace = scenario.build_trace(lam=lam, alpha=alpha, accuracy=acc, seed=seed)
        model = CostModel(lam=lam, n=trace.n)
        cells = [(alpha, acc, seed), (scenario.alphas[-1], acc, seed)]
        if BATCH.supports_slab(trace, model, scenario.policy_factory, cells):
            assert_slab_matches_scalar(
                trace, model, scenario.policy_factory, cells
            )
            batch_covered += 1
    # the paper grids, smoke, tight examples, adversary, and the three
    # synthetic workload grids must all ride the batch path
    assert batch_covered >= 11


class TestWorkloadScenarios:
    def test_registered(self):
        names = set(scenario_names())
        assert {"bursty", "periodic", "diurnal"} <= names
        assert set(scenario_names(tag="workloads")) == {
            "bursty", "periodic", "diurnal"
        }

    @pytest.mark.parametrize("name", ["bursty", "periodic", "diurnal"])
    def test_scenario_slab_is_batchable_and_bit_identical(self, name):
        scenario = get_scenario(name)
        lam = scenario.lambdas[0]
        trace = scenario.build_trace(lam=lam, alpha=0.2, accuracy=0.5, seed=0)
        model = CostModel(lam=lam, n=trace.n)
        cells = [(0.2, 0.5, 0), (1.0, 1.0, 0), (0.1, 0.0, 1)]
        assert BATCH.supports_slab(
            trace, model, scenario.policy_factory, cells
        )
        assert_slab_matches_scalar(
            trace, model, scenario.policy_factory, cells
        )

    def test_diurnal_trace_properties(self):
        tr = diurnal_trace(
            n=6, days=2, base_rate=0.05, peak_rate=1.0, day_length=400.0,
            seed=3,
        )
        tr2 = diurnal_trace(
            n=6, days=2, base_rate=0.05, peak_rate=1.0, day_length=400.0,
            seed=3,
        )
        assert [(r.time, r.server) for r in tr] == [
            (r.time, r.server) for r in tr2
        ]
        assert len(tr) > 100
        assert tr.span <= 2 * 400.0 + 5.0 + 1.0  # horizon + session spread
        # heavy tail: some sessions are much larger than the median burst
        gaps = np.diff(tr.times)
        assert np.max(gaps) > 20 * np.median(gaps)

    def test_diurnal_trace_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(n=3, days=0, base_rate=0.1, peak_rate=1.0)
        with pytest.raises(ValueError):
            diurnal_trace(n=3, days=1, base_rate=2.0, peak_rate=1.0)
        with pytest.raises(ValueError):
            diurnal_trace(n=3, days=1, base_rate=0.1, peak_rate=1.0,
                          tail_exponent=0.0)
        with pytest.raises(ValueError):
            diurnal_trace(n=3, days=1, base_rate=0.1, peak_rate=1.0,
                          max_session=0)
