"""Tests for the Section 4.1 cost allocation (Proposition 2).

The key identity: the sum of per-request allocated costs equals the total
online cost under the paper's bookkeeping conventions.  This pins down
the request-type classifier, the lifecycle records, and the allocation
formulas simultaneously.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    RequestType,
    Trace,
    simulate,
)
from repro.analysis import allocate_costs, paper_total_cost
from repro.workloads import uniform_random_trace

LAM = 10.0


def _run(trace, predictor, alpha=0.5, lam=LAM):
    model = CostModel(lam=lam, n=trace.n)
    pol = LearningAugmentedReplication(predictor, alpha)
    res = simulate(trace, model, pol)
    return res, pol


class TestAllocationFormulas:
    def test_type1_allocation(self):
        # hand scenario from test_algorithm1: r_3 is Type-1 with l=5
        tr = Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)])
        res, pol = _run(tr, FixedPredictor(False))
        alloc = allocate_costs(res, pol.classifications)
        # r_3 (Type-1, l=5): 5 + lambda = 15
        assert alloc[3] == pytest.approx(15.0)

    def test_type4_allocation_is_gap(self):
        tr = Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)])
        res, pol = _run(tr, FixedPredictor(False))
        alloc = allocate_costs(res, pol.classifications)
        # r_2 (Type-4): t_2 - t_p(2) = 12 - 3 = 9
        assert alloc[2] == pytest.approx(9.0)

    def test_first_request_receives_trailing_copy(self):
        tr = Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)])
        res, pol = _run(tr, FixedPredictor(False))
        alloc = allocate_costs(res, pol.classifications)
        # r_1 is server 1's first request: lambda + one trailing copy's
        # intended duration (server 1's copy after r_2 has duration 5)
        assert alloc[1] == pytest.approx(10.0 + 5.0)

    def test_type2_allocation_includes_special_storage(self):
        tr = Trace(2, [(3.0, 1), (12.0, 0)])
        res, pol = _run(tr, FixedPredictor(False))
        assert pol.classifications[1].rtype is RequestType.TYPE_2
        alloc = allocate_costs(res, pol.classifications)
        # r_2: (t - t') + l + lambda = (12 - 8) + 5 + 10 = 19
        assert alloc[2] == pytest.approx(19.0)

    def test_dummy_request_not_allocated(self):
        tr = Trace(2, [(3.0, 1)])
        res, pol = _run(tr, FixedPredictor(False))
        alloc = allocate_costs(res, pol.classifications)
        assert 0 not in alloc


class TestAllocationIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_sum_equals_paper_total_random(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(15):
            n = int(rng.integers(1, 6))
            m = int(rng.integers(1, 35))
            lam = float(rng.uniform(0.2, 6.0))
            alpha = float(rng.uniform(0.05, 1.0))
            acc = float(rng.uniform(0.0, 1.0))
            tr = uniform_random_trace(
                n, m, horizon=float(rng.uniform(1, 60)), seed=int(rng.integers(2**31))
            )
            model = CostModel(lam=lam, n=n)
            pol = LearningAugmentedReplication(
                NoisyOraclePredictor(tr, acc, seed=seed), alpha
            )
            res = simulate(tr, model, pol)
            total = paper_total_cost(res)
            alloc = allocate_costs(res, pol.classifications)
            assert sum(alloc.values()) == pytest.approx(total, rel=1e-9)

    def test_measured_cost_at_most_paper_total(self):
        rng = np.random.default_rng(77)
        for _ in range(30):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 30))
            tr = uniform_random_trace(
                n, m, horizon=20.0, seed=int(rng.integers(2**31))
            )
            model = CostModel(lam=2.0, n=n)
            pol = LearningAugmentedReplication(FixedPredictor(False), 0.3)
            res = simulate(tr, model, pol)
            assert res.total_cost <= paper_total_cost(res) + 1e-9

    def test_allocation_covers_all_requests(self):
        tr = uniform_random_trace(3, 20, horizon=40.0, seed=5)
        res, pol = _run(tr, FixedPredictor(True))
        alloc = allocate_costs(res, pol.classifications)
        assert set(alloc) == {r.index for r in tr}

    def test_all_allocations_nonnegative(self):
        tr = uniform_random_trace(4, 25, horizon=50.0, seed=9)
        res, pol = _run(tr, NoisyOraclePredictor(tr, 0.5, seed=2))
        alloc = allocate_costs(res, pol.classifications)
        assert all(v >= 0 for v in alloc.values())


class TestPaperTotal:
    def test_excludes_final_request_copy(self):
        # single request: its post-request copy is excluded, so the paper
        # total is the transfer + initial copy's intended duration
        tr = Trace(2, [(3.0, 1)])
        res, pol = _run(tr, FixedPredictor(False))
        # transfer 10; initial copy at server 0 (duration 5, dropped...
        # actually it is dropped when serving?) -> it expired at 5 as the
        # only... server1 holds a copy from t=3, so at t=5 c=2 -> drop,
        # charging its full duration 5. Total = 10 + 5.
        assert paper_total_cost(res) == pytest.approx(15.0)

    def test_rejects_infinite_durations(self):
        from repro import AlwaysHold

        tr = Trace(2, [(3.0, 1)])
        res = simulate(tr, CostModel(lam=LAM, n=2), AlwaysHold())
        with pytest.raises(ValueError, match="finite"):
            paper_total_cost(res)
