"""Property-based tests (hypothesis) on core invariants.

Strategies generate arbitrary valid problem instances; each property is
an exact invariant of the system, so shrinking produces minimal
counterexamples if anything breaks.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    AdversarialPredictor,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    NoisyOraclePredictor,
    OraclePredictor,
    Trace,
    brute_force_optimal_cost,
    optimal_cost,
    simulate,
)
from repro.analysis import allocate_costs, paper_total_cost
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.offline import opt_lower_bound, optimal_schedule

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_n=4, max_m=18):
    """A valid trace: strictly increasing positive times, servers in range."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(gaps)
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def instances(draw, max_n=4, max_m=18):
    trace = draw(traces(max_n=max_n, max_m=max_m))
    lam = draw(st.floats(0.05, 20.0, allow_nan=False, allow_infinity=False))
    return trace, CostModel(lam=lam, n=trace.n)


alphas = st.floats(0.05, 1.0, allow_nan=False)


# ----------------------------------------------------------------------
# trace properties
# ----------------------------------------------------------------------


class TestTraceProperties:
    @given(traces())
    def test_times_strictly_increasing(self, trace):
        times = trace.times
        assert np.all(np.diff(times) > 0)

    @given(traces())
    def test_gap_reconstruction(self, trace):
        gaps = trace.inter_request_gaps()
        last = {0: 0.0}
        for r, g in zip(trace, gaps):
            if r.server in last:
                assert g == pytest.approx(r.time - last[r.server])
            else:
                assert math.isinf(g)
            last[r.server] = r.time

    @given(traces())
    def test_next_local_is_inverse_of_preceding(self, trace):
        nxt = trace.next_local_time()
        seq = trace.with_dummy()
        prev = trace.preceding_local_index()
        for i, r in enumerate(trace):
            p = prev[i]
            if p >= 0:
                assert nxt[p] == pytest.approx(r.time)


# ----------------------------------------------------------------------
# simulator properties (via Algorithm 1)
# ----------------------------------------------------------------------


class TestSimulationProperties:
    @given(instances(), alphas, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_at_least_one_copy_always(self, inst, alpha, within):
        trace, model = inst
        pol = LearningAugmentedReplication(FixedPredictor(within), alpha)
        res = simulate(trace, model, pol)
        res.log.verify_at_least_one_copy()

    @given(instances(), alphas)
    @settings(max_examples=60, deadline=None)
    def test_storage_matches_holdings_intervals(self, inst, alpha):
        trace, model = inst
        assume(len(trace) > 0)
        pol = LearningAugmentedReplication(OraclePredictor(trace), alpha)
        res = simulate(trace, model, pol)
        # independent reconstruction from the event log
        total = 0.0
        for server, ivs in res.log.holdings_intervals().items():
            for a, b in ivs:
                total += max(0.0, min(b, trace.span) - min(a, trace.span))
        assert res.storage_cost == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(instances(), alphas)
    @settings(max_examples=60, deadline=None)
    def test_every_request_served_exactly_once(self, inst, alpha):
        trace, model = inst
        pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
        res = simulate(trace, model, pol)
        assert [s.request.index for s in res.serves] == [r.index for r in trace]

    @given(instances(), alphas)
    @settings(max_examples=60, deadline=None)
    def test_transfer_count_equals_non_local_serves(self, inst, alpha):
        trace, model = inst
        pol = LearningAugmentedReplication(FixedPredictor(True), alpha)
        res = simulate(trace, model, pol)
        assert res.ledger.n_transfers == sum(1 for s in res.serves if not s.local)


# ----------------------------------------------------------------------
# offline optimality properties
# ----------------------------------------------------------------------


class TestOfflineProperties:
    @given(instances(max_n=3, max_m=8))
    @settings(max_examples=60, deadline=None)
    def test_dp_equals_brute_force(self, inst):
        trace, model = inst
        assert optimal_cost(trace, model) == pytest.approx(
            brute_force_optimal_cost(trace, model), rel=1e-9, abs=1e-9
        )

    @given(instances(), alphas, st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_dp_lower_bounds_online(self, inst, alpha, seed):
        trace, model = inst
        pol = LearningAugmentedReplication(
            NoisyOraclePredictor(trace, 0.5, seed=seed), alpha
        )
        res = simulate(trace, model, pol)
        assert optimal_cost(trace, model) <= res.total_cost + 1e-7

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_opt_lower_bound_below_optimal(self, inst):
        trace, model = inst
        assert opt_lower_bound(trace, model) <= optimal_cost(trace, model) + 1e-9

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_schedule_cost_matches(self, inst):
        trace, model = inst
        cost, decisions = optimal_schedule(trace, model)
        assert cost == pytest.approx(optimal_cost(trace, model), rel=1e-9, abs=1e-9)
        assert len(decisions) == len(trace) + (1 if len(trace) else 0)

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_optimal_monotone_in_lambda(self, inst):
        # a higher transfer cost can never decrease the optimal cost
        trace, model = inst
        bigger = CostModel(lam=model.lam * 2, n=model.n)
        assert optimal_cost(trace, model) <= optimal_cost(trace, bigger) + 1e-9


# ----------------------------------------------------------------------
# competitive-bound properties
# ----------------------------------------------------------------------


class TestBoundProperties:
    @given(instances(), alphas)
    @settings(max_examples=50, deadline=None)
    def test_robustness_bound(self, inst, alpha):
        trace, model = inst
        pol = LearningAugmentedReplication(AdversarialPredictor(trace), alpha)
        res = simulate(trace, model, pol)
        opt = optimal_cost(trace, model)
        assert res.total_cost <= robustness_bound(alpha) * opt + 1e-7

    @given(instances(), alphas)
    @settings(max_examples=50, deadline=None)
    def test_consistency_bound(self, inst, alpha):
        trace, model = inst
        pol = LearningAugmentedReplication(OraclePredictor(trace), alpha)
        res = simulate(trace, model, pol)
        opt = optimal_cost(trace, model)
        assert res.total_cost <= consistency_bound(alpha) * opt + 1e-7

    @given(instances(), alphas, st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_allocation_identity(self, inst, alpha, seed):
        trace, model = inst
        pol = LearningAugmentedReplication(
            NoisyOraclePredictor(trace, 0.5, seed=seed), alpha
        )
        res = simulate(trace, model, pol)
        total = paper_total_cost(res)
        alloc = allocate_costs(res, pol.classifications)
        assert sum(alloc.values()) == pytest.approx(total, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# metrics / validation properties
# ----------------------------------------------------------------------


class TestInstrumentationProperties:
    @given(instances(), alphas)
    @settings(max_examples=50, deadline=None)
    def test_validator_accepts_algorithm1(self, inst, alpha):
        from repro.core.validate import validate_result

        trace, model = inst
        pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
        res = simulate(trace, model, pol)
        report = validate_result(res)
        assert report.ok, report.violations

    @given(instances(), alphas)
    @settings(max_examples=50, deadline=None)
    def test_replica_timeline_integrates_to_storage(self, inst, alpha):
        from repro.analysis import replica_timeline

        trace, model = inst
        assume(len(trace) > 0 and model.uniform_storage)
        pol = LearningAugmentedReplication(OraclePredictor(trace), alpha)
        res = simulate(trace, model, pol)
        tl = replica_timeline(res)
        mean = tl.time_weighted_mean(trace.span)
        assert mean * trace.span == pytest.approx(
            res.storage_cost, rel=1e-9, abs=1e-6
        )

    @given(instances(), alphas)
    @settings(max_examples=40, deadline=None)
    def test_partition_sums_and_bounds(self, inst, alpha):
        from repro.analysis.partition import partition_report
        from repro.offline import optimal_cost as dp_opt

        trace, model = inst
        assume(len(trace) > 0)
        pol = LearningAugmentedReplication(OraclePredictor(trace), alpha)
        res = simulate(trace, model, pol)
        parts = partition_report(trace, model, res, pol.classifications)
        assert sum(p.opt for p in parts) == pytest.approx(
            dp_opt(trace, model), rel=1e-9, abs=1e-9
        )
        for p in parts:
            assert p.ratio <= consistency_bound(alpha) + 1e-7

    @given(instances(), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_randomized_policy_valid(self, inst, seed):
        from repro import RandomizedSkiRental
        from repro.core.validate import validate_result

        trace, model = inst
        res = simulate(trace, model, RandomizedSkiRental(seed=seed))
        assert validate_result(res).ok
        assert optimal_cost(trace, model) <= res.total_cost + 1e-7
