"""Tests for the metrics instrumentation and ASCII rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AlwaysHold,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    NeverHold,
    Trace,
    simulate,
)
from repro.analysis import (
    ascii_heatmap,
    replica_timeline,
    serve_latency_proxy,
    sparkline,
    special_copy_stats,
    storage_utilization,
    transfer_load,
)
from repro.workloads import uniform_random_trace


def _run(trace, lam=10.0, alpha=0.5, predictor=None):
    model = CostModel(lam=lam, n=trace.n)
    pol = LearningAugmentedReplication(
        predictor or FixedPredictor(False), alpha
    )
    return simulate(trace, model, pol)


class TestReplicaTimeline:
    def test_starts_with_initial_copy(self):
        res = _run(Trace(2, [(3.0, 1)]))
        tl = replica_timeline(res)
        assert tl.at(0.0) == 1

    def test_transfer_creates_second_replica(self):
        res = _run(Trace(2, [(3.0, 1)]))
        tl = replica_timeline(res)
        assert tl.at(3.0) == 2

    def test_hand_scenario_counts(self):
        # scenario from test_algorithm1: server 0 drops at t=5
        res = _run(Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)]))
        tl = replica_timeline(res)
        assert tl.at(4.0) == 2
        assert tl.at(6.0) == 1   # server 0 dropped at 5
        assert tl.at(14.0) == 2  # transfer to server 0 at 14

    def test_max_and_mean(self):
        res = _run(Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)]))
        tl = replica_timeline(res)
        assert tl.max_replicas == 2
        # storage cost = mean * span (rate 1): 16 = mean * 14
        assert tl.time_weighted_mean(14.0) == pytest.approx(16.0 / 14.0)

    def test_never_hold_constant_one(self):
        tr = uniform_random_trace(3, 20, horizon=30.0, seed=1)
        res = simulate(tr, CostModel(lam=1.0, n=3), NeverHold())
        tl = replica_timeline(res)
        assert tl.max_replicas == 1
        assert tl.time_weighted_mean() == pytest.approx(1.0)

    def test_always_hold_monotone(self):
        tr = uniform_random_trace(4, 30, horizon=30.0, seed=2)
        res = simulate(tr, CostModel(lam=1.0, n=4), AlwaysHold())
        tl = replica_timeline(res)
        assert np.all(np.diff(tl.counts) >= 0)


class TestTransferLoad:
    def test_counts_match_ledger(self):
        tr = uniform_random_trace(4, 40, horizon=80.0, seed=3)
        res = _run(tr, lam=2.0)
        load = transfer_load(res)
        assert load["incoming"].sum() == res.ledger.n_transfers
        assert load["outgoing"].sum() == res.ledger.n_transfers

    def test_incoming_matches_ledger_breakdown(self):
        tr = uniform_random_trace(3, 30, horizon=60.0, seed=4)
        res = _run(tr, lam=2.0)
        load = transfer_load(res)
        assert list(load["incoming"]) == list(res.ledger.transfers_by_dest)


class TestServeLatencyProxy:
    def test_fractions_sum_to_one(self):
        tr = uniform_random_trace(3, 25, horizon=40.0, seed=5)
        res = _run(tr)
        stats = serve_latency_proxy(res)
        assert stats["local_fraction"] + stats["transfer_fraction"] == pytest.approx(1.0)
        assert stats["requests"] == 25

    def test_empty_trace(self):
        res = _run(Trace(2, []))
        assert serve_latency_proxy(res)["local_fraction"] == 1.0

    def test_dense_local_traffic_served_locally(self):
        tr = Trace(1, [(float(k), 0) for k in range(1, 20)])
        res = _run(tr, lam=100.0, predictor=FixedPredictor(True))
        assert serve_latency_proxy(res)["local_fraction"] == 1.0


class TestSpecialCopyStats:
    def test_silent_period_counted(self):
        # server 1's copy becomes special at 8 and serves r_2 at 12
        res = _run(Trace(2, [(3.0, 1), (12.0, 1)]))
        stats = special_copy_stats(res)
        assert stats["episodes"] >= 1
        assert stats["special_time"] >= 4.0 - 1e-9

    def test_no_special_when_requests_dense(self):
        tr = Trace(1, [(1.0, 0), (2.0, 0), (3.0, 0)])
        res = _run(tr, lam=10.0, predictor=FixedPredictor(True))
        stats = special_copy_stats(res)
        assert stats["special_time"] == pytest.approx(0.0)

    def test_fraction_bounded(self):
        tr = uniform_random_trace(3, 30, horizon=60.0, seed=6)
        res = _run(tr)
        assert 0.0 <= special_copy_stats(res)["special_fraction"] <= 1.0


class TestStorageUtilization:
    def test_sums_to_storage_cost_over_span(self):
        tr = uniform_random_trace(3, 30, horizon=50.0, seed=7)
        res = _run(tr, lam=3.0)
        util = storage_utilization(res)
        assert sum(util.values()) * tr.span == pytest.approx(res.storage_cost)

    def test_untouched_server_zero(self):
        res = _run(Trace(3, [(5.0, 1)]))
        assert storage_utilization(res)[2] == 0.0


class TestAsciiRendering:
    def test_heatmap_shape(self):
        mat = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = ascii_heatmap(mat, ["r0", "r1"], ["c0", "c1"], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title + header + 2 rows + legend

    def test_heatmap_extremes(self):
        mat = np.array([[0.0, 10.0]])
        out = ascii_heatmap(mat, ["r"], ["lo", "hi"])
        assert "@" in out and "legend" in out

    def test_heatmap_nan_rendered(self):
        mat = np.array([[np.nan, 1.0]])
        out = ascii_heatmap(mat, ["r"], ["a", "b"])
        assert "?" in out

    def test_heatmap_label_mismatch(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones((2, 2)), ["r"], ["a", "b"])

    def test_sparkline_monotone(self):
        s = sparkline([1, 2, 3, 4])
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_resample(self):
        assert len(sparkline(range(100), width=10)) == 10

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_render_sweep_heatmap(self):
        from repro.analysis.sweep import sweep_grid
        from repro.workloads import ibm_like_trace

        tr = ibm_like_trace(n=3, m=150, span=10_000.0, seed=8)
        grid = sweep_grid(tr, (50.0,), (0.5, 1.0), (0.0, 1.0))
        from repro.analysis import render_sweep_heatmap

        out = render_sweep_heatmap(grid, 50.0)
        assert "a=0.5" in out and "100%" in out
