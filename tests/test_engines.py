"""Equivalence and selection tests for the tiered simulation engines.

The contract under test (core/engine.py DESIGN): the cost-only
:class:`FastCostEngine` must reproduce the reference event-driven
simulator's total / storage / transfer costs *bit for bit* for every
fast-path-eligible policy — Algorithm 1 with streamable predictors,
the conventional baseline, and Wang et al. — on arbitrary instances,
and must refuse (or be skipped by ``auto`` selection for) everything
else.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdaptiveReplication,
    ConventionalReplication,
    CostModel,
    CostResult,
    EngineError,
    FastCostEngine,
    LearningAugmentedReplication,
    MultiObjectSystem,
    ObjectSpec,
    PredictionStream,
    ReferenceEngine,
    Trace,
    WangReplication,
    get_engine,
    select_engine,
)
from repro.analysis.sweep import SweepPoint, SweepResult, sweep_grid
from repro.experiments import get_scenario, list_scenarios
from repro.predictions import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    SlidingWindowPredictor,
)
from repro.workloads import uniform_random_trace

FAST = FastCostEngine()
REF = ReferenceEngine()


def assert_costs_match(trace, model, make_policy):
    """Both engines on fresh policies: identical cost ledgers."""
    ref = REF.run(trace, model, make_policy())
    fast = FAST.run(trace, model, make_policy())
    assert isinstance(fast, CostResult)
    assert fast.storage_cost == pytest.approx(ref.storage_cost, abs=1e-9)
    assert fast.transfer_cost == pytest.approx(ref.transfer_cost, abs=1e-9)
    assert fast.total_cost == pytest.approx(ref.total_cost, abs=1e-9)
    assert fast.n_transfers == ref.ledger.n_transfers
    # the mirroring argument promises bit-identity, not mere closeness
    assert fast.storage_cost == ref.storage_cost
    assert fast.transfer_cost == ref.transfer_cost
    return fast, ref


# ----------------------------------------------------------------------
# property-based equivalence: random traces x policies x engines
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_n=5, max_m=40):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(gaps)
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def instances(draw):
    trace = draw(traces())
    lam = draw(st.floats(0.05, 50.0, allow_nan=False, allow_infinity=False))
    return trace, CostModel(lam=lam, n=trace.n)


@settings(max_examples=60, deadline=None)
@given(instances(), st.floats(0.05, 1.0), st.integers(0, 5))
def test_algorithm1_noisy_oracle_equivalence(inst, alpha, seed):
    trace, model = inst
    assert_costs_match(
        trace,
        model,
        lambda: LearningAugmentedReplication(
            NoisyOraclePredictor(trace, 0.5, seed=seed), alpha
        ),
    )


@settings(max_examples=40, deadline=None)
@given(instances(), st.floats(0.05, 1.0))
def test_algorithm1_oracle_equivalence(inst, alpha):
    trace, model = inst
    assert_costs_match(
        trace,
        model,
        lambda: LearningAugmentedReplication(OraclePredictor(trace), alpha),
    )


@settings(max_examples=40, deadline=None)
@given(instances(), st.floats(0.05, 1.0), st.booleans())
def test_algorithm1_fixed_and_adversarial_equivalence(inst, alpha, within):
    trace, model = inst
    assert_costs_match(
        trace,
        model,
        lambda: LearningAugmentedReplication(FixedPredictor(within), alpha),
    )
    assert_costs_match(
        trace,
        model,
        lambda: LearningAugmentedReplication(AdversarialPredictor(trace), alpha),
    )


@settings(max_examples=40, deadline=None)
@given(instances())
def test_conventional_and_wang_equivalence(inst):
    trace, model = inst
    assert_costs_match(trace, model, ConventionalReplication)
    assert_costs_match(trace, model, WangReplication)


@settings(max_examples=25, deadline=None)
@given(instances(), st.integers(0, 3))
def test_zero_alpha_full_trust_equivalence(inst, seed):
    trace, model = inst
    assert_costs_match(
        trace,
        model,
        lambda: LearningAugmentedReplication(
            NoisyOraclePredictor(trace, 0.9, seed=seed),
            0.0,
            allow_zero_alpha=True,
        ),
    )


def test_wang_non_uniform_rates_equivalence():
    trace = uniform_random_trace(n=4, m=80, horizon=400.0, seed=7)
    model = CostModel(lam=50.0, n=4, storage_rates=(1.0, 1.5, 2.0, 4.0))
    assert_costs_match(trace, model, WangReplication)


def test_wang_drain_transfer_counted():
    # a final request far from server 0 forces the drain-phase shipment
    # back to the cheapest server (a post-t_m transfer the ledger counts)
    trace = Trace(2, [(1.0, 1)])
    model = CostModel(lam=5.0, n=2)
    fast, ref = assert_costs_match(trace, model, WangReplication)
    assert fast.n_transfers >= 2  # serve transfer + drain-phase shipment


# ----------------------------------------------------------------------
# prediction streams
# ----------------------------------------------------------------------


class TestPredictionStream:
    def test_noisy_stream_bit_identical_to_incremental(self):
        trace = uniform_random_trace(n=4, m=120, horizon=900.0, seed=3)
        lam = 40.0
        stream = PredictionStream.noisy_oracle(trace, lam, 0.6, seed=11)
        pred = NoisyOraclePredictor(trace, 0.6, seed=11)
        # incremental query order: dummy request first, then trace order
        pred.observe(0, 0.0)
        assert stream[0] == pred.predict_within(0, 0.0, lam)
        for i, r in enumerate(trace, start=1):
            pred.observe(r.server, r.time)
            assert stream[i] == pred.predict_within(r.server, r.time, lam)

    def test_oracle_and_adversarial_are_complements(self):
        trace = uniform_random_trace(n=3, m=50, horizon=300.0, seed=1)
        a = PredictionStream.oracle(trace, 25.0).within
        b = PredictionStream.adversarial(trace, 25.0).within
        assert np.array_equal(a, ~b)
        assert len(a) == len(trace) + 1

    def test_for_predictor_rejects_foreign_trace(self):
        tr1 = uniform_random_trace(n=3, m=30, horizon=100.0, seed=1)
        tr2 = uniform_random_trace(n=3, m=30, horizon=100.0, seed=2)
        pred = OraclePredictor(tr1)
        assert PredictionStream.for_predictor(pred, tr2, 10.0) is None
        assert PredictionStream.for_predictor(pred, tr1, 10.0) is not None

    def test_for_predictor_rejects_consumed_noisy_rng(self):
        trace = uniform_random_trace(n=3, m=30, horizon=100.0, seed=1)
        pred = NoisyOraclePredictor(trace, 0.5, seed=0)
        assert PredictionStream.for_predictor(pred, trace, 10.0) is not None
        pred.predict_within(0, 1.0, 10.0)  # consume one draw
        assert PredictionStream.for_predictor(pred, trace, 10.0) is None

    def test_for_predictor_rejects_history_based(self):
        trace = uniform_random_trace(n=3, m=30, horizon=100.0, seed=1)
        assert (
            PredictionStream.for_predictor(
                SlidingWindowPredictor(window=5), trace, 10.0
            )
            is None
        )


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------


class TestSelection:
    def setup_method(self):
        self.trace = uniform_random_trace(n=4, m=40, horizon=300.0, seed=0)
        self.model = CostModel(lam=20.0, n=4)

    def test_auto_picks_fast_for_eligible(self):
        pol = LearningAugmentedReplication(OraclePredictor(self.trace), 0.5)
        assert select_engine(self.trace, self.model, pol, "auto") is get_engine("fast")
        assert select_engine(self.trace, self.model, WangReplication(), "auto") \
            is get_engine("fast")

    def test_auto_falls_back_for_adaptive(self):
        pol = AdaptiveReplication(OraclePredictor(self.trace), 0.5, beta=0.1)
        assert not FAST.supports(self.trace, self.model, pol)
        assert select_engine(self.trace, self.model, pol, "auto") \
            is get_engine("reference")

    def test_auto_falls_back_for_history_predictor(self):
        pol = LearningAugmentedReplication(SlidingWindowPredictor(window=5), 0.5)
        assert select_engine(self.trace, self.model, pol, "auto") \
            is get_engine("reference")

    def test_auto_falls_back_for_non_uniform_storage(self):
        model = CostModel(lam=20.0, n=4, storage_rates=(1.0, 1.0, 2.0, 2.0))
        pol = LearningAugmentedReplication(OraclePredictor(self.trace), 0.5)
        assert not FAST.supports(self.trace, model, pol)

    def test_explicit_fast_on_unsupported_policy_raises(self):
        pol = AdaptiveReplication(OraclePredictor(self.trace), 0.5, beta=0.1)
        with pytest.raises(EngineError):
            FAST.run(self.trace, self.model, pol)

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp")

    def test_engine_instances_pass_through(self):
        pol = WangReplication()
        assert select_engine(self.trace, self.model, pol, FAST) is FAST
        assert get_engine(REF) is REF


# ----------------------------------------------------------------------
# consuming layers: sweep grids, fleets, scenario registry
# ----------------------------------------------------------------------


class TestConsumers:
    def test_sweep_grid_engines_agree(self):
        trace = uniform_random_trace(n=4, m=60, horizon=500.0, seed=0)
        grids = {
            name: sweep_grid(
                trace, (10.0, 100.0), (0.2, 1.0), (0.0, 1.0), engine=name
            )
            for name in ("auto", "fast", "reference")
        }
        for lam in (10.0, 100.0):
            for alpha in (0.2, 1.0):
                for acc in (0.0, 1.0):
                    pts = [
                        g.at(lam, alpha, acc) for g in grids.values()
                    ]
                    assert len({p.online_cost for p in pts}) == 1
                    assert len({p.optimal_cost for p in pts}) == 1

    def test_multi_object_engine_choice(self):
        trace = uniform_random_trace(n=3, m=40, horizon=300.0, seed=2)
        specs = [
            ObjectSpec(
                "obj-a",
                trace,
                15.0,
                lambda tr, model: LearningAugmentedReplication(
                    OraclePredictor(tr), 0.4
                ),
            ),
            ObjectSpec("obj-b", trace, 30.0, lambda tr, model: WangReplication()),
        ]
        system = MultiObjectSystem(3, specs)
        ref_report = system.run()
        fast_report = system.run(engine="auto")
        assert fast_report.online_total == ref_report.online_total
        assert fast_report.optimal_total == ref_report.optimal_total
        # reference keeps telemetry; fast outcomes are cost-only
        assert hasattr(ref_report.outcomes[0].result, "serves")
        assert isinstance(fast_report.outcomes[0].result, CostResult)
        assert "obj-a" in fast_report.summary_table()

    def test_all_registered_scenarios_equivalent_where_supported(self):
        fast_covered = 0
        for scenario in list_scenarios():
            coarse = scenario.with_grid(
                lambdas=scenario.lambdas[:1],
                alphas=scenario.alphas[:1],
                accuracies=scenario.accuracies[-1:],
                seeds=scenario.seeds[:1],
            )
            lam = coarse.lambdas[0]
            alpha = coarse.alphas[0]
            acc = coarse.accuracies[0]
            seed = coarse.seeds[0]
            trace = coarse.build_trace(lam=lam, alpha=alpha, accuracy=acc, seed=seed)
            model = CostModel(lam=lam, n=trace.n)

            def make():
                return coarse.policy_factory(trace, lam, alpha, acc, seed)

            if FAST.supports(trace, model, make()):
                assert_costs_match(trace, model, make)
                fast_covered += 1
        # the paper grids, smoke, tight examples, and adversary must all
        # ride the fast path
        assert fast_covered >= 8


# ----------------------------------------------------------------------
# regression: fast-engine costs pinned on the fig25 smoke grid
# ----------------------------------------------------------------------

FIG25_SMOKE_OPT = 670055.3877836763
FIG25_SMOKE_COSTS = {
    # (alpha, accuracy): (storage_cost, transfer_cost) at lambda = 10
    (0.0, 0.0): (643842.5321452664, 103010.0),
    (0.0, 0.5): (612764.1011366886, 87860.0),
    (0.0, 1.0): (605573.8803487406, 84380.0),
    (0.5, 0.0): (647842.8182470547, 88850.0),
    (0.5, 0.5): (629430.6212294047, 85860.0),
    (0.5, 1.0): (624412.744826302, 84380.0),
    (1.0, 0.0): (648751.7397425339, 84380.0),
    (1.0, 0.5): (648751.7397425339, 84380.0),
    (1.0, 1.0): (648751.7397425339, 84380.0),
}


def test_fig25_smoke_grid_regression():
    from repro.offline import optimal_cost

    scenario = get_scenario("fig25")
    trace = scenario.build_trace(lam=10.0, alpha=0.0, accuracy=0.0, seed=0)
    model = CostModel(lam=10.0, n=trace.n)
    assert optimal_cost(trace, model) == pytest.approx(FIG25_SMOKE_OPT, abs=1e-6)
    for (alpha, acc), (storage, transfer) in FIG25_SMOKE_COSTS.items():
        policy = scenario.policy_factory(trace, 10.0, alpha, acc, 0)
        run = FAST.run(trace, model, policy)
        assert run.storage_cost == pytest.approx(storage, abs=1e-6), (alpha, acc)
        assert run.transfer_cost == pytest.approx(transfer, abs=1e-9), (alpha, acc)


# ----------------------------------------------------------------------
# SweepResult.at keyed index (satellite)
# ----------------------------------------------------------------------


class TestSweepResultIndex:
    def _point(self, lam, alpha, acc):
        return SweepPoint(
            lam=lam, alpha=alpha, accuracy=acc, online_cost=2.0, optimal_cost=1.0
        )

    def test_exact_lookup_and_miss(self):
        res = SweepResult()
        res.add(self._point(10.0, 0.5, 1.0))
        assert res.at(10.0, 0.5, 1.0).online_cost == 2.0
        with pytest.raises(KeyError):
            res.at(10.0, 0.5, 0.0)

    def test_isclose_fallback(self):
        res = SweepResult()
        res.add(self._point(10.0, 0.30000000000000004, 1.0))
        # a near-miss query (float noise) still resolves via isclose
        assert res.at(10.0, 0.3, 1.0).alpha == 0.30000000000000004

    def test_constructor_points_are_indexed(self):
        res = SweepResult(points=[self._point(1.0, 0.1, 0.2)])
        assert res.at(1.0, 0.1, 0.2).lam == 1.0

    def test_directly_appended_points_still_found(self):
        res = SweepResult()
        res.points.append(self._point(5.0, 0.2, 0.4))
        assert res.at(5.0, 0.2, 0.4).lam == 5.0
