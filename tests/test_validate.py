"""Tests for the post-hoc result validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AlwaysHold,
    BlindFollowPredictions,
    ConventionalReplication,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    NeverHold,
    NoisyOraclePredictor,
    RandomizedSkiRental,
    WangReplication,
    simulate,
)
from repro.core.validate import validate_result
from repro.workloads import uniform_random_trace


class TestValidRunsPass:
    @pytest.mark.parametrize("seed", range(5))
    def test_algorithm1_validates(self, seed):
        tr = uniform_random_trace(4, 40, horizon=60.0, seed=seed)
        model = CostModel(lam=2.0, n=4)
        pol = LearningAugmentedReplication(
            NoisyOraclePredictor(tr, 0.5, seed=seed), 0.4
        )
        report = validate_result(simulate(tr, model, pol))
        assert report.ok, report.violations
        assert report.checks_run >= 6

    def test_every_shipped_policy_validates(self):
        tr = uniform_random_trace(3, 30, horizon=50.0, seed=2)
        model = CostModel(lam=3.0, n=3)
        policies = [
            ConventionalReplication(),
            WangReplication(),
            AlwaysHold(),
            NeverHold(),
            BlindFollowPredictions(FixedPredictor(False)),
            RandomizedSkiRental(seed=1),
            LearningAugmentedReplication(FixedPredictor(True), 0.7),
        ]
        for pol in policies:
            report = validate_result(simulate(tr, model, pol))
            assert report.ok, (pol.name, report.violations)

    def test_empty_trace_validates(self):
        from repro import Trace

        res = simulate(Trace(2, []), CostModel(lam=1.0, n=2), NeverHold())
        assert validate_result(res).ok

    def test_raise_if_invalid_noop_when_ok(self):
        tr = uniform_random_trace(2, 10, horizon=20.0, seed=3)
        res = simulate(tr, CostModel(lam=1.0, n=2), ConventionalReplication())
        validate_result(res).raise_if_invalid()


class TestCorruptedRunsFail:
    def _good_run(self):
        tr = uniform_random_trace(3, 20, horizon=30.0, seed=4)
        model = CostModel(lam=2.0, n=3)
        return simulate(tr, model, ConventionalReplication())

    def test_detects_storage_corruption(self):
        res = self._good_run()
        res.ledger.storage += 100.0
        report = validate_result(res)
        assert not report.ok
        assert any("storage" in v for v in report.violations)

    def test_detects_transfer_corruption(self):
        res = self._good_run()
        res.ledger.n_transfers += 1
        report = validate_result(res)
        assert not report.ok
        assert any("transfer" in v for v in report.violations)

    def test_detects_missing_serve(self):
        res = self._good_run()
        res.serves.pop()
        report = validate_result(res)
        assert not report.ok
        assert any("serve order" in v for v in report.violations)

    def test_raise_if_invalid_raises(self):
        res = self._good_run()
        res.ledger.storage += 1.0
        with pytest.raises(AssertionError, match="invalid simulation"):
            validate_result(res).raise_if_invalid()
