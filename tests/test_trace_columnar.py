"""Tests for the columnar trace substrate.

Covers the array-native :class:`Trace` (lazy Request materialisation,
zero-copy ``from_arrays``, vectorized helpers), the binary ``.npz``
format with its mmap load path, gzip text round-trips, the access-log
collision nudge, and the experiment runner's digest + mmap trace
hand-off — each pinned bit-for-bit against the eager/request-built
reference behaviour.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostModel, Request, Trace, TraceError
from repro.core.engine import get_engine
from repro.experiments.cache import trace_digest
from repro.system import (
    detect_trace_format,
    load_trace,
    load_trace_npz,
    save_trace,
    save_trace_npz,
)
from repro.workloads import uniform_random_trace


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def trace_columns(draw, max_n=5, max_m=40):
    """Valid (n, times, servers) columns for a trace."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.001, 100.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(np.asarray(gaps, dtype=np.float64))
    return n, times, np.asarray(servers, dtype=np.int64)


# ----------------------------------------------------------------------
# lazy Request materialisation == the eager request-built API
# ----------------------------------------------------------------------


class TestLazyRequestEquivalence:
    @given(trace_columns())
    def test_requests_match_eager_construction(self, cols):
        n, times, servers = cols
        lazy = Trace.from_arrays(times, servers, n=n)
        eager = Trace(n, list(zip(times.tolist(), servers.tolist())))
        assert lazy.requests == eager.requests
        assert lazy == eager
        assert hash(lazy) == hash(eager)

    @given(trace_columns())
    def test_iteration_and_indexing_before_materialisation(self, cols):
        n, times, servers = cols
        tr = Trace.from_arrays(times, servers, n=n)
        expected = [
            Request(float(t), int(s), i + 1)
            for i, (t, s) in enumerate(zip(times, servers))
        ]
        # iterate without touching .requests: Requests are built on the fly
        assert list(tr) == expected
        fresh = Trace.from_arrays(times, servers, n=n)
        for i in range(len(expected)):
            assert fresh[i] == expected[i]
        if expected:
            assert fresh[-1] == expected[-1]

    def test_getitem_out_of_range(self):
        tr = Trace.from_arrays([1.0, 2.0], [0, 1], n=2)
        with pytest.raises(IndexError):
            tr[2]
        with pytest.raises(IndexError):
            tr[-3]

    def test_slice_returns_requests(self):
        tr = Trace.from_arrays([1.0, 2.0, 3.0], [0, 1, 0], n=2)
        assert tr[1:] == tr.requests[1:]

    def test_with_dummy_prefixes_r0(self):
        tr = Trace.from_arrays([1.0], [0], n=1)
        seq = tr.with_dummy()
        assert seq[0] == Request(0.0, 0, 0)
        assert seq[1].index == 1

    @given(trace_columns())
    def test_pickle_round_trip(self, cols):
        n, times, servers = cols
        tr = Trace.from_arrays(times, servers, n=n)
        back = pickle.loads(pickle.dumps(tr))
        assert back == tr
        assert back.n == tr.n
        assert back.times.tobytes() == tr.times.tobytes()

    def test_zero_copy_adoption(self):
        times = np.array([1.0, 2.0, 3.0])
        servers = np.array([0, 1, 0], dtype=np.int64)
        tr = Trace.from_arrays(times, servers, n=2)
        # the trace's columns view the caller's buffers (no copy)
        assert tr.times.base is times or tr.times.base is None
        assert np.shares_memory(tr.times, times)
        assert np.shares_memory(tr.servers, servers)
        assert not tr.times.flags.writeable

    def test_validation_still_vectorized_errors(self):
        with pytest.raises(TraceError, match="strictly increasing"):
            Trace.from_arrays([1.0, 1.0], [0, 0], n=1)
        with pytest.raises(TraceError, match="server"):
            Trace.from_arrays([1.0, 2.0], [0, 5], n=2)
        with pytest.raises(TraceError, match="server index must be >= 0"):
            Trace.from_arrays([1.0], [-1], n=2)

    def test_slice_time_shares_storage(self):
        tr = uniform_random_trace(3, 50, 100.0, seed=0)
        sub = tr.slice_time(10.0, 60.0)
        assert np.shares_memory(sub.times, tr.times) or len(sub) == 0

    @given(trace_columns(max_m=25))
    def test_vectorized_helpers_match_request_walk(self, cols):
        """per_server_times / gaps / preceding indices recomputed from a
        plain Request walk must match the vectorized columns exactly."""
        n, times, servers = cols
        tr = Trace.from_arrays(times, servers, n=n)
        # reference: the old per-request implementations
        per: dict[int, list[float]] = {s: [] for s in range(n)}
        per[0].append(0.0)
        last_seen: dict[int, int] = {0: 0}
        last_time: dict[int, float] = {0: 0.0}
        prev_ref: list[int] = []
        gaps_ref: list[float] = []
        for r in tr.requests:
            per[r.server].append(r.time)
            prev_ref.append(last_seen.get(r.server, -1))
            last_seen[r.server] = r.index
            p = last_time.get(r.server)
            gaps_ref.append(float("inf") if p is None else r.time - p)
            last_time[r.server] = r.time
        got = tr.per_server_times()
        assert set(got) == set(per)
        for s in per:
            assert got[s].tolist() == per[s]
        assert tr.preceding_local_index() == prev_ref
        assert tr.inter_request_gaps().tolist() == gaps_ref


# ----------------------------------------------------------------------
# binary format round-trip fidelity
# ----------------------------------------------------------------------


class TestNpzRoundTrip:
    @given(trace_columns())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_bit_identical(self, tmp_path_factory, cols):
        n, times, servers = cols
        tr = Trace.from_arrays(times, servers, n=n)
        path = tmp_path_factory.mktemp("npz") / "t.npz"
        save_trace_npz(tr, path)
        for mmap in (False, True):
            back = load_trace_npz(path, mmap=mmap)
            assert back.n == tr.n
            assert back.times.tobytes() == tr.times.tobytes()
            assert back.servers.tobytes() == tr.servers.tobytes()
            assert trace_digest(back) == trace_digest(tr)

    def test_mmap_columns_are_memory_mapped(self, tmp_path):
        tr = uniform_random_trace(4, 512, 1000.0, seed=5)
        path = tmp_path / "t.npz"
        save_trace_npz(tr, path)
        back = load_trace_npz(path, mmap=True)
        base = back.times
        while not isinstance(base, np.memmap) and isinstance(
            base.base, np.ndarray
        ):
            base = base.base
        assert isinstance(base, np.memmap)
        assert not back.times.flags.writeable
        # a memory-mapped trace still computes and pickles like any other
        assert back.summary()["n_requests"] == 512
        assert pickle.loads(pickle.dumps(back)) == tr

    def test_missing_member_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(TraceError, match="missing member"):
            load_trace_npz(path)
        with pytest.raises(TraceError, match="missing member"):
            load_trace_npz(path, mmap=True)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(TraceError, match="npz"):
            load_trace_npz(path)


class TestFormatAutodetection:
    @pytest.mark.parametrize(
        "ext", ["csv", "csv.gz", "jsonl", "jsonl.gz", "npz"]
    )
    def test_round_trip_every_format(self, tmp_path, ext):
        tr = uniform_random_trace(4, 64, 500.0, seed=2)
        path = tmp_path / f"t.{ext}"
        assert detect_trace_format(path) == ext
        save_trace(tr, path)
        back = load_trace(path)
        assert trace_digest(back) == trace_digest(tr)

    def test_gzip_actually_compresses(self, tmp_path):
        tr = uniform_random_trace(4, 512, 5000.0, seed=3)
        plain = tmp_path / "t.csv"
        gz = tmp_path / "t.csv.gz"
        save_trace(tr, plain)
        save_trace(tr, gz)
        assert gz.stat().st_size < plain.stat().st_size
        assert gz.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="cannot detect"):
            detect_trace_format(tmp_path / "t.parquet")


# ----------------------------------------------------------------------
# engine cost bit-identity: array-built vs request-built traces
# ----------------------------------------------------------------------


def _engine_costs(trace, lam, alpha, accuracy, seed):
    from repro.analysis.sweep import algorithm1_factory

    out = {}
    for name in ("reference", "fast", "batch"):
        policy = algorithm1_factory(trace, lam, alpha, accuracy, seed)
        run = get_engine(name).run(trace, CostModel(lam=lam, n=trace.n), policy)
        out[name] = (run.storage_cost, run.transfer_cost)
    return out


def test_all_registered_scenarios_array_vs_request_built():
    """Every registered scenario: all three engines produce bit-identical
    costs whether the trace was built from arrays (the columnar fast
    path) or from a Request tuple list (the legacy eager path)."""
    from repro.experiments import list_scenarios

    checked = 0
    for scenario in list_scenarios():
        lam = scenario.lambdas[0]
        alpha = scenario.alphas[0]
        acc = scenario.accuracies[-1]
        seed = scenario.seeds[0]
        array_built = scenario.build_trace(
            lam=lam, alpha=alpha, accuracy=acc, seed=seed
        )
        request_built = Trace(
            array_built.n,
            [Request(r.time, r.server, r.index) for r in array_built],
        )
        assert request_built == array_built
        a = _engine_costs(array_built, lam, alpha, acc, seed)
        b = _engine_costs(request_built, lam, alpha, acc, seed)
        assert a == b, scenario.name
        # the three engines agree with each other on the array-built trace
        assert a["reference"] == a["fast"] == a["batch"], scenario.name
        checked += 1
    assert checked >= 11


@given(trace_columns(max_n=4, max_m=20), st.floats(0.1, 1.0))
@settings(max_examples=30, deadline=None)
def test_engines_bit_identical_on_array_native_traces(cols, alpha):
    n, times, servers = cols
    tr = Trace.from_arrays(times, servers, n=n)
    costs = _engine_costs(tr, 5.0, alpha, 1.0, 0)
    assert costs["reference"] == costs["fast"] == costs["batch"]


# ----------------------------------------------------------------------
# experiment runner: digest + mmap hand-off
# ----------------------------------------------------------------------


class TestRunnerSpool:
    def _rows(self, result):
        return [
            (r.job.index, r.online_cost, r.optimal_cost) for r in result.results
        ]

    def test_spooled_run_bit_identical_to_inherited(self, tmp_path):
        from repro.experiments import ExperimentRunner

        spool = ExperimentRunner(
            workers=2, spill_threshold=1, spill_dir=tmp_path / "spool"
        )
        inherit = ExperimentRunner(workers=2, spill_threshold=None)
        serial = ExperimentRunner(workers=1)
        a = spool.run("smoke")
        b = inherit.run("smoke")
        c = serial.run("smoke")
        assert self._rows(a) == self._rows(b) == self._rows(c)
        # the spool directory holds one content-addressed file per trace
        files = list((tmp_path / "spool").glob("*.npz"))
        assert files, "expected spooled trace files"
        for f in files:
            tr = load_trace_npz(f, mmap=True)
            assert trace_digest(tr) == f.stem

    def test_spool_files_reused_across_runs(self, tmp_path):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(
            workers=2, spill_threshold=1, spill_dir=tmp_path / "spool"
        )
        runner.run("smoke")
        files = sorted((tmp_path / "spool").glob("*.npz"))
        mtimes = [f.stat().st_mtime_ns for f in files]
        runner.run("smoke")
        assert sorted((tmp_path / "spool").glob("*.npz")) == files
        assert [f.stat().st_mtime_ns for f in files] == mtimes

    def test_threshold_none_never_spools(self, tmp_path):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(
            workers=2, spill_threshold=None, spill_dir=tmp_path / "spool"
        )
        runner.run("smoke")
        assert not (tmp_path / "spool").exists()


# ----------------------------------------------------------------------
# access-log ingestion: collision nudge regression
# ----------------------------------------------------------------------


class TestAccessLogNudge:
    def test_many_collisions_strictly_increasing(self, tmp_path):
        from repro.system import load_access_log_csv

        # heavy duplication: every timestamp appears 5x, plus ties at the end
        rows = []
        for k in range(1, 40):
            rows.extend([f"{1000 * k} GET obj 1"] * 5)
        path = tmp_path / "dup.log"
        path.write_text("\n".join(rows) + "\n")
        tr = load_access_log_csv(path, n=3, seed=0)["obj"]
        assert len(tr) == 5 * 39
        diffs = np.diff(np.concatenate(([0.0], tr.times)))
        assert (diffs > 0).all()
        # the nudge semantics: a collided timestamp lands min_sep after
        # its predecessor, exactly like the scalar reference loop
        ref = []
        prev = 0.0
        for t in sorted(1000 * k * 1e-3 for k in range(1, 40) for _ in range(5)):
            t = t - 1.0 + 1.0  # anchor at the first timestamp (1.0s)
            if t <= prev:
                t = prev + 1e-6
            ref.append(t)
            prev = t
        assert tr.times.tolist() == ref

    @given(
        st.lists(
            st.integers(1, 50), min_size=2, max_size=60
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_nudge_matches_scalar_reference(self, tmp_path_factory, stamps):
        from repro.system import load_access_log_csv

        path = tmp_path_factory.mktemp("log") / "x.log"
        path.write_text(
            "\n".join(f"{s * 100} GET o 1" for s in stamps) + "\n"
        )
        tr = load_access_log_csv(path, n=2, seed=1)["o"]
        # scalar reference: the seed implementation's post-processing
        times = sorted(s * 100 * 1e-3 for s in stamps)
        t0 = times[0]
        ref = []
        prev = 0.0
        for t in times:
            t = t - t0 + 1.0
            if t <= prev:
                t = prev + 1e-6
            ref.append(t)
            prev = t
        assert tr.times.tolist() == ref
        assert (np.diff(np.concatenate(([0.0], tr.times))) > 0).all()


# ----------------------------------------------------------------------
# dedupe_times: vectorized fast path == scalar reference
# ----------------------------------------------------------------------


@given(
    st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=0, max_size=50),
    st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def testdedupe_times_matches_scalar_reference(gaps, dup_every):
    from repro.workloads.synthetic import dedupe_times

    times = np.cumsum(np.asarray(gaps, dtype=np.float64))
    if dup_every and len(times):
        times = np.repeat(times, dup_every + 1)  # force collisions
    out = dedupe_times(times, min_sep=1e-9)
    ref = times.copy()
    for i in range(1, len(ref)):
        if ref[i] <= ref[i - 1]:
            ref[i] = ref[i - 1] + 1e-9
    assert out.tolist() == ref.tolist()


# ----------------------------------------------------------------------
# regressions from review
# ----------------------------------------------------------------------


class TestReviewRegressions:
    def test_save_trace_fmt_override_wins_over_suffix(self, tmp_path):
        tr = uniform_random_trace(3, 30, 50.0, seed=4)
        p = tmp_path / "data.bin"
        save_trace(tr, p, fmt="npz")
        assert p.exists() and not (tmp_path / "data.bin.npz").exists()
        assert trace_digest(load_trace(p, fmt="npz", mmap=True)) == trace_digest(tr)
        q = tmp_path / "x.dat"
        save_trace(tr, q, fmt="csv.gz")
        assert q.read_bytes()[:2] == b"\x1f\x8b"  # really gzipped
        assert trace_digest(load_trace(q, fmt="csv.gz")) == trace_digest(tr)

    def test_trace_is_immutable(self):
        tr = Trace.from_arrays([1.0, 2.0], [0, 1], n=2)
        with pytest.raises(AttributeError):
            tr.n = 7
        with pytest.raises(AttributeError):
            del tr.n
        with pytest.raises(AttributeError):
            tr._times = np.array([9.0])

    def test_slice_does_not_materialise_full_tuple(self):
        tr = uniform_random_trace(3, 500, 100.0, seed=1)
        sl = tr[:5]
        assert len(sl) == 5
        assert tr._requests is None  # no full-tuple cache
        assert sl == tr.requests[:5]
