"""Tests for the adversarial instances (Figures 5, 6, 9 + Section 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConventionalReplication,
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    OraclePredictor,
    optimal_cost,
    simulate,
)
from repro.analysis.theory import consistency_bound, robustness_bound
from repro.workloads import (
    LowerBoundAdversary,
    consistency_tight_trace,
    robustness_tight_trace,
    wang_counterexample_trace,
)


class TestRobustnessTightTrace:
    def test_structure(self):
        tr = robustness_tight_trace(10.0, 0.5, m=5, eps=0.01)
        assert len(tr) == 5
        assert tr.n == 2
        # alternating servers 1, 0, 1, 0, 1
        assert list(tr.servers) == [1, 0, 1, 0, 1]

    def test_per_server_gap(self):
        lam, alpha, eps = 10.0, 0.5, 0.01
        tr = robustness_tight_trace(lam, alpha, m=7, eps=eps)
        gaps = [g for g in tr.inter_request_gaps() if np.isfinite(g)]
        assert all(g == pytest.approx(alpha * lam + eps) for g in gaps)

    @pytest.mark.parametrize("alpha", [0.2, 0.5, 1.0])
    def test_ratio_converges_to_robustness_bound(self, alpha):
        lam = 10.0
        tr = robustness_tight_trace(lam, alpha, m=3001, eps=lam * 1e-5)
        model = CostModel(lam=lam, n=2)
        pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
        res = simulate(tr, model, pol)
        ratio = res.total_cost / optimal_cost(tr, model)
        assert ratio == pytest.approx(robustness_bound(alpha), rel=2e-3)

    def test_all_requests_transferred(self):
        tr = robustness_tight_trace(10.0, 0.5, m=41, eps=1e-4)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        res = simulate(tr, CostModel(lam=10.0, n=2), pol)
        assert res.ledger.n_transfers == 41  # every request forces a transfer

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            robustness_tight_trace(10.0, 0.5, m=0)


class TestConsistencyTightTrace:
    def test_single_cycle_times(self):
        lam, eps = 10.0, 0.01
        tr = consistency_tight_trace(lam, cycles=1, eps=eps)
        assert list(tr.times) == pytest.approx([lam, lam + eps, 2 * lam + eps])
        assert list(tr.servers) == [1, 0, 1]

    def test_single_cycle_online_cost(self):
        # paper: online = 5 lam + alpha lam with perfect predictions
        lam, alpha = 10.0, 0.5
        tr = consistency_tight_trace(lam, cycles=1, eps=1e-6)
        pol = LearningAugmentedReplication(OraclePredictor(tr), alpha)
        res = simulate(tr, CostModel(lam=lam, n=2), pol)
        assert res.total_cost == pytest.approx(5 * lam + alpha * lam, rel=1e-4)

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_ratio_converges_to_consistency_bound(self, alpha):
        lam = 10.0
        tr = consistency_tight_trace(lam, cycles=120, eps=lam * 1e-6)
        model = CostModel(lam=lam, n=2)
        pol = LearningAugmentedReplication(OraclePredictor(tr), alpha)
        res = simulate(tr, model, pol)
        ratio = res.total_cost / optimal_cost(tr, model)
        assert ratio == pytest.approx(consistency_bound(alpha), rel=1e-3)

    def test_predictions_in_example_are_beyond(self):
        # every local gap exceeds lambda, so the oracle predicts beyond
        lam = 10.0
        tr = consistency_tight_trace(lam, cycles=3)
        pol = LearningAugmentedReplication(OraclePredictor(tr), 0.5)
        simulate(tr, CostModel(lam=lam, n=2), pol)
        assert not any(c.predicted_within for c in pol.classifications)

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            consistency_tight_trace(10.0, cycles=0)


class TestWangCounterexampleTrace:
    def test_times_match_paper(self):
        lam, eps = 10.0, 0.5
        tr = wang_counterexample_trace(lam, m=3, eps=eps)
        # t = eps, eps + (2 lam + eps), eps + 2(2 lam + eps)
        assert list(tr.times) == pytest.approx([0.5, 21.0, 41.5])
        assert set(tr.servers.tolist()) == {1}

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            wang_counterexample_trace(10.0, m=0)


class TestLowerBoundAdversary:
    @pytest.mark.parametrize("alpha", [0.3, 0.6, 1.0])
    def test_forces_three_halves_on_algorithm1(self, alpha):
        lam = 20.0
        adv = LowerBoundAdversary(lam=lam, eps=lam * 1e-4)
        pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
        out = adv.run(pol, n_requests=400)
        opt = optimal_cost(out.trace, CostModel(lam=lam, n=2))
        ratio = out.result.total_cost / opt
        assert ratio >= 1.5 - 0.01

    def test_forces_three_halves_on_conventional(self):
        lam = 20.0
        adv = LowerBoundAdversary(lam=lam, eps=lam * 1e-4)
        out = adv.run(ConventionalReplication(), n_requests=400)
        opt = optimal_cost(out.trace, CostModel(lam=lam, n=2))
        assert out.result.total_cost / opt >= 1.5 - 0.01

    def test_predictions_stay_correct(self):
        # the adversary's trace must have all per-server gaps > lambda so
        # always-"beyond" predictions are genuinely correct
        lam = 20.0
        adv = LowerBoundAdversary(lam=lam, eps=lam * 1e-4)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        out = adv.run(pol, n_requests=150)
        gaps = [g for g in out.trace.inter_request_gaps() if np.isfinite(g)]
        assert all(g > lam for g in gaps)

    def test_generates_requested_count(self):
        adv = LowerBoundAdversary(lam=10.0)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        out = adv.run(pol, n_requests=37)
        assert len(out.trace) == 37
        assert len(out.kinds) == 37

    def test_invariant_maintained(self):
        adv = LowerBoundAdversary(lam=10.0)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.4)
        out = adv.run(pol, n_requests=100)
        out.result.log.verify_at_least_one_copy()

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            LowerBoundAdversary(lam=0.0)
