"""Tests for the incremental (adversary-facing) simulation API."""

from __future__ import annotations

import pytest

from repro import (
    CostModel,
    FixedPredictor,
    InteractiveSimulation,
    LearningAugmentedReplication,
    simulate,
)
from repro.workloads import uniform_random_trace


def make_sim(alpha=0.5, lam=10.0, n=2):
    model = CostModel(lam=lam, n=n)
    pol = LearningAugmentedReplication(FixedPredictor(False), alpha)
    return InteractiveSimulation(n, model, pol), pol


class TestSubmission:
    def test_requests_must_increase(self):
        sim, _ = make_sim()
        sim.submit(1.0, 1)
        with pytest.raises(ValueError, match="strictly increasing"):
            sim.submit(1.0, 0)

    def test_finish_builds_trace(self):
        sim, _ = make_sim()
        sim.submit(1.0, 1)
        sim.submit(2.0, 0)
        res = sim.finish()
        assert [r.time for r in res.trace] == [1.0, 2.0]
        assert [r.server for r in res.trace] == [1, 0]

    def test_model_mismatch(self):
        model = CostModel(lam=1.0, n=3)
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        with pytest.raises(ValueError):
            InteractiveSimulation(2, model, pol)


class TestStateInspection:
    def test_holds_copy_before_expiry(self):
        sim, _ = make_sim(alpha=0.5, lam=10.0)  # initial copy lasts 5
        assert sim.holds_copy_at(0, 4.9)

    def test_special_copy_never_vanishes(self):
        # the initial copy expires at 5 but becomes special (only copy)
        sim, _ = make_sim(alpha=0.5, lam=10.0)
        assert sim.holds_copy_at(0, 100.0)

    def test_drop_observed(self):
        sim, _ = make_sim(alpha=0.5, lam=10.0)
        sim.submit(1.0, 1)  # server 1 copy until 6; server 0 copy until 5
        t = sim.watch_for_drop(0, t_limit=20.0)
        assert t == pytest.approx(5.0)

    def test_watch_returns_none_when_no_drop(self):
        sim, _ = make_sim()
        assert sim.watch_for_drop(0, t_limit=3.0) is None


class TestEquivalenceWithBatch:
    def test_same_costs_as_simulate(self):
        tr = uniform_random_trace(3, 30, horizon=60.0, seed=9)
        model = CostModel(lam=3.0, n=3)

        pol_batch = LearningAugmentedReplication(FixedPredictor(False), 0.4)
        batch = simulate(tr, model, pol_batch, drain=False)

        pol_inc = LearningAugmentedReplication(FixedPredictor(False), 0.4)
        sim = InteractiveSimulation(3, model, pol_inc)
        for r in tr:
            sim.submit(r.time, r.server)
        inc = sim.finish()

        assert inc.total_cost == pytest.approx(batch.total_cost)
        assert inc.ledger.n_transfers == batch.ledger.n_transfers

    def test_same_serve_decisions(self):
        tr = uniform_random_trace(2, 25, horizon=40.0, seed=10)
        model = CostModel(lam=2.0, n=2)
        pol_a = LearningAugmentedReplication(FixedPredictor(True), 0.7)
        batch = simulate(tr, model, pol_a, drain=False)
        pol_b = LearningAugmentedReplication(FixedPredictor(True), 0.7)
        sim = InteractiveSimulation(2, model, pol_b)
        for r in tr:
            sim.submit(r.time, r.server)
        inc = sim.finish()
        assert [s.local for s in batch.serves] == [s.local for s in inc.serves]
