"""Tests for the ``repro.experiments`` orchestration subsystem."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis.sweep import sweep_grid
from repro.experiments import (
    ArtifactStore,
    ConsoleProgress,
    ExperimentRunner,
    NullCache,
    ResultCache,
    Scenario,
    content_key,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    summary_table,
    trace_digest,
    unregister_scenario,
)
from repro.workloads import uniform_random_trace

LAMS = (5.0, 50.0)
ALPHAS = (0.2, 0.5, 1.0)
ACCS = (0.0, 0.5, 1.0)


def small_trace_factory(seed: int):
    return uniform_random_trace(n=3, m=40, horizon=300.0, seed=seed)


def make_scenario(name="tmp-scenario", **overrides) -> Scenario:
    defaults = dict(
        name=name,
        description="test scenario",
        trace_factory=small_trace_factory,
        policy_factory=__import__(
            "repro.analysis.sweep", fromlist=["algorithm1_factory"]
        ).algorithm1_factory,
        lambdas=LAMS,
        alphas=ALPHAS,
        accuracies=ACCS,
        seeds=(7,),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


@pytest.fixture
def scenario():
    return make_scenario()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for expected in ("fig25", "fig28", "fig29", "fig32", "ablation-alpha",
                         "tight-robustness", "tight-consistency",
                         "adversarial-lower-bound", "smoke"):
            assert expected in names

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="fig25"):
            get_scenario("no-such-scenario")

    def test_register_round_trip(self):
        sc = make_scenario("tmp-round-trip")
        register_scenario(sc)
        try:
            assert get_scenario("tmp-round-trip") is sc
            assert "tmp-round-trip" in scenario_names()
        finally:
            unregister_scenario("tmp-round-trip")
        assert "tmp-round-trip" not in scenario_names()

    def test_register_decorator(self):
        @register_scenario
        def tmp_decorated() -> Scenario:
            return make_scenario("tmp-decorated")

        try:
            assert get_scenario("tmp-decorated").description == "test scenario"
        finally:
            unregister_scenario("tmp-decorated")

    def test_duplicate_registration_rejected(self):
        register_scenario(make_scenario("tmp-dup"))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(make_scenario("tmp-dup"))
        finally:
            unregister_scenario("tmp-dup")

    def test_tag_filter(self):
        figures = list_scenarios(tag="figures")
        assert {s.name for s in figures} >= {"fig25", "fig32"}
        assert all("figures" in s.tags for s in figures)

    def test_with_grid_rescales(self):
        sc = get_scenario("fig25").with_grid(alphas=(0.0, 1.0), accuracies=(1.0,))
        assert sc.alphas == (0.0, 1.0)
        assert sc.accuracies == (1.0,)
        assert sc.lambdas == get_scenario("fig25").lambdas
        assert sc.n_jobs == 2

    def test_invalid_trace_params_rejected(self):
        with pytest.raises(ValueError, match="trace_params"):
            make_scenario("tmp-bad", trace_params=("bogus",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="alphas"):
            make_scenario("tmp-empty", alphas=())

    def test_n_jobs(self, scenario):
        assert scenario.n_jobs == len(LAMS) * len(ALPHAS) * len(ACCS)


# ----------------------------------------------------------------------
# runner: parallel == serial
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_run_grid_matches_serial_sweep(self):
        trace = small_trace_factory(7)
        serial = sweep_grid(trace, LAMS, ALPHAS, ACCS, seed=7)
        for workers in (1, 2):
            got = sweep_grid(
                trace, LAMS, ALPHAS, ACCS, seed=7,
                runner=ExperimentRunner(workers=workers),
            )
            assert got.points == serial.points

    def test_scenario_parallel_matches_serial(self, scenario):
        serial = ExperimentRunner(workers=1).run(scenario)
        parallel = ExperimentRunner(workers=2).run(scenario)
        assert [r.online_cost for r in serial.results] == [
            r.online_cost for r in parallel.results
        ]
        assert [r.optimal_cost for r in serial.results] == [
            r.optimal_cost for r in parallel.results
        ]
        assert serial.sweep_result(7).points == parallel.sweep_result(7).points

    def test_optimal_cache_shared_with_serial_path(self):
        trace = small_trace_factory(1)
        opt_cache: dict[float, float] = {}
        sweep_grid(
            trace, LAMS, (0.5,), (1.0,), seed=1,
            optimal_cache=opt_cache, runner=ExperimentRunner(workers=1),
        )
        assert set(opt_cache) == set(LAMS)
        serial_cache: dict[float, float] = {}
        sweep_grid(trace, LAMS, (0.5,), (1.0,), seed=1,
                   optimal_cache=serial_cache)
        assert opt_cache == serial_cache

    def test_multi_seed_scenario(self, scenario):
        multi = replace(scenario, seeds=(1, 2))
        result = ExperimentRunner(workers=2).run(multi)
        assert len(result) == 2 * scenario.n_jobs
        assert result.seeds() == [1, 2]
        with pytest.raises(ValueError, match="seeds"):
            result.sweep_result()
        s1 = result.sweep_result(1)
        assert len(s1.points) == scenario.n_jobs


class TestFig25Acceptance:
    """The PR's acceptance grid: fig25 rows identical across execution
    modes (2 workers == 1 worker == legacy serial ``sweep_grid``)."""

    def test_fig25_parallel_serial_and_legacy_agree(self):
        scenario = get_scenario("fig25").with_grid(
            alphas=(0.0, 0.5, 1.0), accuracies=(0.0, 1.0)
        )
        serial = ExperimentRunner(workers=1).run(scenario)
        parallel = ExperimentRunner(workers=2).run(scenario)
        assert [r.as_row() for r in serial.results] == [
            r.as_row() for r in parallel.results
        ]
        trace = scenario.build_trace(lam=10.0, alpha=0.0, accuracy=0.0, seed=0)
        legacy = sweep_grid(
            trace, scenario.lambdas, scenario.alphas, scenario.accuracies,
            seed=0,
        )
        assert legacy.points == parallel.sweep_result().points


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
class TestCache:
    def test_hit_miss_and_zero_resim(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = ExperimentRunner(workers=2, cache=cache).run(scenario)
        assert first.executed == scenario.n_jobs
        assert first.cached == 0
        second = ExperimentRunner(workers=2, cache=ResultCache(tmp_path / "cache")).run(
            scenario
        )
        assert second.executed == 0
        assert second.cached == scenario.n_jobs
        assert second.opt_executed == 0
        assert [r.online_cost for r in first.results] == [
            r.online_cost for r in second.results
        ]

    def test_version_bump_invalidates(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentRunner(workers=1, cache=cache).run(scenario)
        bumped = replace(scenario, version=scenario.version + 1)
        rerun = ExperimentRunner(workers=1, cache=cache).run(bumped)
        assert rerun.executed == scenario.n_jobs
        assert rerun.cached == 0

    def test_trace_content_invalidates(self, scenario, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentRunner(workers=1, cache=cache).run(scenario)
        other = replace(scenario, seeds=(8,))  # different trace content
        rerun = ExperimentRunner(workers=1, cache=cache).run(other)
        assert rerun.executed == scenario.n_jobs

    def test_resume_after_interrupt(self, scenario, tmp_path):
        """A partial run's cache entries are reused by the full grid."""
        cache_dir = tmp_path / "cache"
        partial = scenario.with_grid(alphas=ALPHAS[:1])
        ExperimentRunner(workers=2, cache=ResultCache(cache_dir)).run(partial)
        full = ExperimentRunner(workers=2, cache=ResultCache(cache_dir)).run(
            scenario
        )
        assert full.cached == partial.n_jobs
        assert full.executed == scenario.n_jobs - partial.n_jobs
        serial = ExperimentRunner(workers=1).run(scenario)
        assert [r.online_cost for r in full.results] == [
            r.online_cost for r in serial.results
        ]

    def test_closure_factories_never_share_cache_entries(self, tmp_path):
        """Distinct closures share a __qualname__, so run_grid must not
        serve one parameterisation's cached rows to the other."""
        from repro.algorithms import AdaptiveReplication
        from repro.predictions import FixedPredictor

        def make_factory(beta):
            def factory(trace, lam, alpha, accuracy, seed):
                return AdaptiveReplication(
                    FixedPredictor(False), alpha, beta=beta
                )

            return factory

        trace = small_trace_factory(3)
        runner = ExperimentRunner(workers=1, cache=ResultCache(tmp_path))
        args = (trace, (30.0,), (0.4,), (0.0,))
        low = runner.run_grid(*args, factory=make_factory(0.1))
        high = runner.run_grid(*args, factory=make_factory(5.0))
        serial_high = sweep_grid(*args, factory=make_factory(5.0))
        assert high.points == serial_high.points
        serial_low = sweep_grid(*args, factory=make_factory(0.1))
        assert low.points == serial_low.points

    def test_module_level_factory_grid_is_cached(self, tmp_path):
        trace = small_trace_factory(3)
        cache = ResultCache(tmp_path)
        runner = ExperimentRunner(workers=1, cache=cache)
        args = (trace, (30.0,), (0.4,), (0.0, 1.0))
        runner.run_grid(*args)  # algorithm1_factory: stable identity
        hits_before = cache.hits
        runner.run_grid(*args)
        assert cache.hits > hits_before

    def test_no_cache_executes_everything(self, scenario):
        runner = ExperimentRunner(workers=1, cache=NullCache())
        r1 = runner.run(scenario)
        r2 = runner.run(scenario)
        assert r1.executed == r2.executed == scenario.n_jobs

    def test_cache_store_primitives(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"kind": "sim", "lam": 10.0}
        assert cache.get(payload) is None
        cache.put(payload, {"online_cost": 3.5})
        assert cache.get(payload) == {"online_cost": 3.5}
        assert cache.contains(payload)
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.clear() == 1
        assert cache.get(payload) is None

    def test_content_key_canonical(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_trace_digest_sensitivity(self):
        t1 = small_trace_factory(1)
        t2 = small_trace_factory(2)
        assert trace_digest(t1) == trace_digest(small_trace_factory(1))
        assert trace_digest(t1) != trace_digest(t2)


# ----------------------------------------------------------------------
# fleet integration
# ----------------------------------------------------------------------
class TestFleet:
    def _system(self):
        from repro import (
            LearningAugmentedReplication,
            MultiObjectSystem,
            ObjectSpec,
            OraclePredictor,
        )

        def factory(trace, model):
            return LearningAugmentedReplication(OraclePredictor(trace), 0.3)

        specs = [
            ObjectSpec(
                object_id=f"obj-{i}",
                trace=uniform_random_trace(n=3, m=30, horizon=200.0, seed=i),
                lam=50.0 * (i + 1),
                policy_factory=factory,
            )
            for i in range(4)
        ]
        return MultiObjectSystem(3, specs)

    def test_fleet_parallel_matches_serial(self):
        system = self._system()
        serial = system.run()
        parallel = system.run(runner=ExperimentRunner(workers=2))
        assert [o.object_id for o in serial.outcomes] == [
            o.object_id for o in parallel.outcomes
        ]
        assert [o.online for o in serial.outcomes] == [
            o.online for o in parallel.outcomes
        ]
        assert [o.optimal for o in serial.outcomes] == [
            o.optimal for o in parallel.outcomes
        ]
        assert serial.fleet_ratio == parallel.fleet_ratio

    def test_fleet_skip_optimal(self):
        system = self._system()
        report = system.run(compute_optimal=False,
                            runner=ExperimentRunner(workers=2))
        assert all(o.optimal == 0.0 for o in report.outcomes)


# ----------------------------------------------------------------------
# artifacts and progress
# ----------------------------------------------------------------------
class TestArtifacts:
    def test_save_and_load(self, scenario, tmp_path):
        result = ExperimentRunner(workers=1).run(scenario)
        store = ArtifactStore(tmp_path / "artifacts")
        out_dir = store.save(result)
        assert (out_dir / "result.json").exists()
        assert (out_dir / "rows.csv").exists()
        loaded = store.load(scenario.name)
        assert loaded["scenario"] == scenario.name
        assert len(loaded["rows"]) == scenario.n_jobs
        assert set(loaded["grid"]["lambdas"]) == set(LAMS)
        prov = loaded["provenance"]
        assert "created_at" in prov and "package_version" in prov
        assert store.names() == [scenario.name]
        csv_lines = (out_dir / "rows.csv").read_text().strip().splitlines()
        assert len(csv_lines) == scenario.n_jobs + 1  # header

    def test_result_json_is_valid_json(self, scenario, tmp_path):
        result = ExperimentRunner(workers=1).run(scenario)
        out_dir = ArtifactStore(tmp_path).save(result, name="custom")
        payload = json.loads((out_dir / "result.json").read_text())
        assert payload["stats"]["jobs"] == scenario.n_jobs


class TestProgressAndSummary:
    def test_console_progress_reports(self, scenario, capsys):
        import io

        stream = io.StringIO()
        runner = ExperimentRunner(
            workers=1, progress=ConsoleProgress(stream=stream, min_interval=0.0)
        )
        runner.run(scenario)
        out = stream.getvalue()
        assert f"[{scenario.name}]" in out
        assert "finished" in out

    def test_summary_table_contents(self, scenario):
        result = ExperimentRunner(workers=2).run(scenario)
        table = summary_table(result)
        assert scenario.name in table
        assert "lambda = 5" in table and "lambda = 50" in table
        assert "workers: 2" in table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_experiments_list(self, capsys):
        from repro.cli import main

        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig25" in out and "smoke" in out

    def test_experiments_list_tag(self, capsys):
        from repro.cli import main

        assert main(["experiments", "list", "--tag", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig25" not in out

    def test_experiments_run_smoke(self, capsys, tmp_path):
        from repro.cli import main

        rc = main([
            "experiments", "run", "smoke",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "artifacts"),
            "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario: smoke" in out
        assert "artifacts saved" in out
        assert (tmp_path / "artifacts" / "smoke" / "rows.csv").exists()
        # warm re-run resolves entirely from cache
        assert main([
            "experiments", "run", "smoke",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "executed 0, cached 8" in out

    def test_experiments_run_no_cache(self, capsys):
        from repro.cli import main

        assert main(["experiments", "run", "smoke", "--workers", "1",
                     "--no-cache", "--quiet"]) == 0
        assert "executed 8" in capsys.readouterr().out

    def test_experiments_run_unknown_name(self, capsys):
        from repro.cli import main

        assert main(["experiments", "run", "nope", "--no-cache"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_experiments_run_coarse(self, capsys):
        from repro.cli import main

        assert main(["experiments", "run", "smoke", "--workers", "1",
                     "--no-cache", "--coarse", "--quiet"]) == 0
        assert "scenario: smoke" in capsys.readouterr().out

    def test_coarsen_helper(self):
        from repro.cli import _coarsen

        assert _coarsen((1, 2, 3, 4, 5, 6, 7), keep=3) == (1, 4, 7)
        assert _coarsen((1, 2), keep=3) == (1, 2)
