"""Tests for the Wang et al. [17] baseline and the Figure 9 refutation."""

from __future__ import annotations

import pytest

from repro import (
    CostModel,
    Trace,
    WangReplication,
    optimal_cost,
    simulate,
)
from repro.core.events import EventKind
from repro.core.policy import PolicyError
from repro.workloads import wang_counterexample_trace


class TestBasicBehaviour:
    def test_requires_sorted_rates(self):
        tr = Trace(2, [(1.0, 1)])
        model = CostModel(lam=1.0, n=2, storage_rates=(2.0, 1.0))
        with pytest.raises(PolicyError, match="ascending"):
            simulate(tr, model, WangReplication())

    def test_local_serve_within_period(self):
        tr = Trace(2, [(1.0, 0)])
        res = simulate(tr, CostModel(lam=10.0, n=2), WangReplication())
        assert res.serves[0].local
        assert res.transfer_cost == 0.0

    def test_transfer_when_no_local_copy(self):
        tr = Trace(2, [(1.0, 1)])
        res = simulate(tr, CostModel(lam=10.0, n=2), WangReplication())
        assert not res.serves[0].local

    def test_period_scales_with_rate(self):
        # server 1 has rate 2 -> period lam/2 = 5; its copy should be
        # dropped (server 0 still holds) by a request at t=1+6
        tr = Trace(2, [(1.0, 1), (7.0, 1)])
        model = CostModel(lam=10.0, n=2, storage_rates=(1.0, 2.0))
        res = simulate(tr, model, WangReplication())
        assert not res.serves[1].local  # second request needed a transfer

    def test_cheapest_server_renews_forever_when_last(self):
        # only requests at server 0; after them its copy keeps renewing
        tr = Trace(2, [(1.0, 0), (100.0, 0)])
        res = simulate(tr, CostModel(lam=10.0, n=2), WangReplication())
        assert res.serves[1].local is False or res.serves[1].local
        res.log.verify_at_least_one_copy()

    def test_double_expiry_ships_back_to_server0(self):
        # request at server 1 creates a copy there; server 0's copy dies
        # first; server 1's copy renews once then transfers to server 0.
        tr = Trace(2, [(1.0, 1), (50.0, 0)])
        res = simulate(tr, CostModel(lam=10.0, n=2), WangReplication())
        # one transfer serving r_1, one shipping the object back, r_2 local
        assert res.ledger.n_transfers == 2
        assert res.serves[1].local

    def test_at_least_one_copy_always(self):
        tr = Trace(3, [(1.0, 1), (2.0, 2), (90.0, 1), (95.0, 0)])
        res = simulate(tr, CostModel(lam=5.0, n=3), WangReplication())
        res.log.verify_at_least_one_copy()


class TestAgainstExhaustiveOptimal:
    def test_never_beats_optimal_heterogeneous(self):
        # cross-check Wang's accounting against the exhaustive optimum on
        # small instances with distinct storage rates (its native setting)
        import numpy as np

        from repro import brute_force_optimal_cost
        from repro.workloads import uniform_random_trace

        rng = np.random.default_rng(13)
        for trial in range(25):
            n = int(rng.integers(2, 4))
            m = int(rng.integers(1, 9))
            lam = float(rng.uniform(0.5, 5.0))
            rates = tuple(sorted(rng.uniform(0.5, 3.0, size=n).tolist()))
            tr = uniform_random_trace(n, m, horizon=20.0, seed=trial)
            model = CostModel(lam=lam, n=n, storage_rates=rates)
            run = simulate(tr, model, WangReplication())
            opt = brute_force_optimal_cost(tr, model)
            assert opt <= run.total_cost + 1e-7

    def test_uniform_rates_bounded_empirically(self):
        # on random uniform-rate instances Wang should stay within its
        # true competitive regime (<= 5/2 is not guaranteed pointwise,
        # but small random instances behave far better than the
        # adversarial construction)
        import numpy as np

        from repro import optimal_cost as dp_opt
        from repro.workloads import uniform_random_trace

        rng = np.random.default_rng(14)
        ratios = []
        for trial in range(20):
            tr = uniform_random_trace(3, 25, horizon=50.0, seed=100 + trial)
            model = CostModel(lam=2.0, n=3)
            run = simulate(tr, model, WangReplication())
            ratios.append(run.total_cost / dp_opt(tr, model))
        assert float(np.mean(ratios)) < 2.5


class TestFigure9Counterexample:
    """The paper's Section 11: Wang et al.'s ratio is >= 5/2, not 2."""

    def test_walkthrough_first_cycle(self):
        lam = 10.0
        tr = wang_counterexample_trace(lam, m=3, eps=0.01)
        res = simulate(tr, CostModel(lam=lam, n=2), WangReplication())
        # per the paper: server 0 drops at lam (server 1's copy expires
        # later); server 1 renews then ships the object back to server 0
        drops = res.log.of_kind(EventKind.DROP)
        assert any(e.server == 0 and abs(e.time - lam) < 1e-9 for e in drops)

    def test_ratio_approaches_five_halves(self):
        lam = 10.0
        tr = wang_counterexample_trace(lam, m=1500, eps=1e-4)
        model = CostModel(lam=lam, n=2)
        res = simulate(tr, model, WangReplication())
        opt = optimal_cost(tr, model)
        ratio = res.total_cost / opt
        assert ratio > 2.4  # well above the claimed 2-competitiveness
        assert ratio <= 2.5 + 1e-3

    def test_claimed_ratio_refuted(self):
        lam = 10.0
        tr = wang_counterexample_trace(lam, m=400, eps=1e-4)
        model = CostModel(lam=lam, n=2)
        res = simulate(tr, model, WangReplication())
        opt = optimal_cost(tr, model)
        assert res.total_cost > 2.0 * opt  # the claim of [17] fails

    def test_online_cost_matches_paper_formula(self):
        # paper: total online cost >= (m - 2) * 5 * lam over the cycles
        lam, m = 10.0, 200
        tr = wang_counterexample_trace(lam, m=m, eps=1e-4)
        res = simulate(tr, CostModel(lam=lam, n=2), WangReplication())
        assert res.total_cost >= (m - 2) * 5 * lam * 0.99

    def test_optimal_cost_matches_paper_formula(self):
        # paper: optimal = (#cycles)(2 lam + eps) + lam + eps; our
        # generator's m counts server-1 requests, giving m - 1 cycles
        lam, m, eps = 10.0, 100, 1e-4
        tr = wang_counterexample_trace(lam, m=m, eps=eps)
        opt = optimal_cost(tr, CostModel(lam=lam, n=2))
        expected = (m - 1) * (2 * lam + eps) + lam + eps
        assert opt == pytest.approx(expected, rel=1e-6)
