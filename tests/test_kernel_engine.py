"""Equivalence and wiring tests for the segment-scan kernel engine.

The contract under test (core/engine.py DESIGN): the loop-free
:class:`KernelCostEngine` must reproduce the scalar
:class:`FastCostEngine` — and therefore the batch engine and the
reference event-driven simulator — *bit for bit*, per cell, for every
kernel-eligible policy (Algorithm 1 with streamable predictors, the
conventional baseline, and Wang's baseline via the cascade kernel) on
arbitrary instances, drain configurations, and slabs; ``supports()``
has no policy exclusions left, so ``select_engine`` routes every
registered policy onto the kernel above the crossovers; and the layers
above (``run_slab``, ``sweep_grid``, ``ExperimentRunner``, the CLI,
the ``repro bench`` discovery) must route onto the kernel where it
wins.

The vectorized brute-force offline search (satellite) is pinned against
its kept loop reference here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchCostEngine,
    ConventionalReplication,
    CostModel,
    CostResult,
    EngineError,
    FastCostEngine,
    KernelCostEngine,
    LearningAugmentedReplication,
    ReferenceEngine,
    Trace,
    WangReplication,
    get_engine,
    run_slab,
    select_engine,
)
from repro.analysis.sweep import algorithm1_factory, sweep_grid
from repro.core.engine import (
    ENGINE_NAMES,
    KERNEL_MIN_M,
    KERNEL_SLAB_MIN_M,
)
from repro.offline.brute_force import (
    _brute_force_reference,
    brute_force_optimal_cost,
)
from repro.predictions import (
    AdversarialPredictor,
    FixedPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    PredictionStream,
    SlidingWindowPredictor,
)
from repro.workloads import ibm_like_trace, uniform_random_trace

KERNEL = KernelCostEngine()
FAST = FastCostEngine()
BATCH = BatchCostEngine()
REF = ReferenceEngine()


def assert_kernel_matches_scalar(
    trace, model, factory, cells, check_reference=False
):
    """Kernel slab replays == per-cell fast (and batch / reference)."""
    runs = KERNEL.run_slab(trace, model, factory, cells)
    assert len(runs) == len(cells)
    batch_runs = BATCH.run_slab(trace, model, factory, cells)
    for cell, run, brun in zip(cells, runs, batch_runs):
        assert isinstance(run, CostResult)
        assert run.engine == "kernel"
        policy = factory(trace, model.lam, *cell)
        fast = FAST.run(trace, model, policy)
        # bit-identity, not mere closeness
        assert run.storage_cost == fast.storage_cost, cell
        assert run.transfer_cost == fast.transfer_cost, cell
        assert run.n_transfers == fast.n_transfers, cell
        assert run.storage_cost == brun.storage_cost, cell
        assert run.transfer_cost == brun.transfer_cost, cell
        if check_reference:
            ref = REF.run(trace, model, factory(trace, model.lam, *cell))
            assert run.storage_cost == ref.storage_cost, cell
            assert run.transfer_cost == ref.transfer_cost, cell
    return runs


# ----------------------------------------------------------------------
# property-based equivalence: random traces x slabs x eligible policies
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_n=5, max_m=30):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(
        st.lists(
            st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(gaps)
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def tie_prone_traces(draw, max_n=4, max_m=24):
    """Integer gaps force expiry-time ties across prediction branches,
    exercising the kernel's merge tie-break fallback."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, max_m))
    gaps = draw(st.lists(st.integers(1, 3), min_size=m, max_size=m))
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    times = np.cumsum(np.asarray(gaps, dtype=float))
    return Trace(n, list(zip(times.tolist(), servers)))


@st.composite
def instances(draw):
    trace = draw(traces())
    lam = draw(st.floats(0.05, 50.0, allow_nan=False, allow_infinity=False))
    return trace, CostModel(lam=lam, n=trace.n)


@st.composite
def slabs(draw, max_cells=6):
    k = draw(st.integers(1, max_cells))
    alphas = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    accs = draw(st.lists(st.floats(0.0, 1.0), min_size=k, max_size=k))
    seeds = draw(st.lists(st.integers(0, 4), min_size=k, max_size=k))
    return list(zip(alphas, accs, seeds))


@settings(max_examples=50, deadline=None)
@given(instances(), slabs())
def test_algorithm1_slab_bit_identity(inst, cells):
    """Kernel == fast == batch == reference per cell for Algorithm 1."""
    trace, model = inst
    assert_kernel_matches_scalar(
        trace, model, algorithm1_factory, cells, check_reference=True
    )


@settings(max_examples=40, deadline=None)
@given(tie_prone_traces(), st.integers(1, 4), st.integers(0, 3))
def test_tie_prone_slab_bit_identity(trace, lam_int, seed):
    """Integer timing: expiry ties across branches stay bit-identical."""
    model = CostModel(lam=float(lam_int), n=trace.n)
    cells = [(0.0, 0.3, seed), (0.5, 0.7, seed), (1.0, 1.0, seed)]
    assert_kernel_matches_scalar(trace, model, algorithm1_factory, cells)


def _conventional_factory(trace, lam, alpha, accuracy, seed):
    return ConventionalReplication()


@settings(max_examples=30, deadline=None)
@given(instances(), st.integers(1, 4))
def test_conventional_slab_bit_identity(inst, k):
    trace, model = inst
    cells = [(0.5, 1.0, s) for s in range(k)]
    assert_kernel_matches_scalar(
        trace, model, _conventional_factory, cells, check_reference=True
    )


@settings(max_examples=25, deadline=None)
@given(instances(), st.floats(0.05, 1.0), st.booleans())
def test_fixed_and_adversarial_predictor_slabs(inst, alpha, within):
    trace, model = inst

    def fixed_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(FixedPredictor(within), a)

    def adversarial_factory(tr, lam, a, acc, seed):
        return LearningAugmentedReplication(AdversarialPredictor(tr), a)

    cells = [(alpha, 0.0, 0), (1.0, 0.0, 1)]
    assert_kernel_matches_scalar(trace, model, fixed_factory, cells)
    assert_kernel_matches_scalar(trace, model, adversarial_factory, cells)


@settings(max_examples=20, deadline=None)
@given(instances(), st.integers(0, 3))
def test_zero_alpha_full_trust_slab(inst, seed):
    trace, model = inst
    cells = [(0.0, 0.7, seed), (0.0, 1.0, seed), (0.3, 0.7, seed + 1)]
    assert_kernel_matches_scalar(trace, model, algorithm1_factory, cells)


@settings(max_examples=30, deadline=None)
@given(instances(), st.floats(0.0, 1.0), st.booleans(),
       st.one_of(st.none(), st.integers(0, 8)))
def test_drain_configurations_bit_identity(inst, alpha, drain, cap):
    """drain=False and binding event caps replay the scalar semantics
    (cap-stranded copies finalize in dict-insertion order)."""
    trace, model = inst
    pol = LearningAugmentedReplication(
        NoisyOraclePredictor(trace, 0.5, seed=1), alpha, allow_zero_alpha=True
    )
    k = KERNEL.run(trace, model, pol, drain=drain, drain_event_cap=cap)
    pol2 = LearningAugmentedReplication(
        NoisyOraclePredictor(trace, 0.5, seed=1), alpha, allow_zero_alpha=True
    )
    f = FAST.run(trace, model, pol2, drain=drain, drain_event_cap=cap)
    assert k.storage_cost == f.storage_cost
    assert k.transfer_cost == f.transfer_cost
    assert k.n_transfers == f.n_transfers
    assert k.engine == "kernel"


# ----------------------------------------------------------------------
# Wang's baseline on the cascade kernel
# ----------------------------------------------------------------------


def _wang_factory(trace, lam, alpha, accuracy, seed):
    return WangReplication()


@st.composite
def wang_instances(draw):
    """Tie-prone traces with ascending (possibly distinct) storage
    rates and quantized lambdas: expiries collide exactly with request
    times and with each other, and small periods provoke the die-out
    cascade (grace renewals, ship-to-zero transfers, drop chains)."""
    trace = draw(tie_prone_traces())
    lam = draw(st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0]))
    rates = tuple(
        sorted(
            draw(
                st.lists(
                    st.sampled_from([0.5, 1.0, 2.0, 4.0]),
                    min_size=trace.n,
                    max_size=trace.n,
                )
            )
        )
    )
    return trace, CostModel(lam=lam, n=trace.n, storage_rates=rates)


@settings(max_examples=60, deadline=None)
@given(wang_instances(), st.integers(2, 4))
def test_wang_slab_bit_identity(inst, k):
    """Kernel == fast == batch == reference per cell for Wang, on the
    instances most likely to hit the episode machine."""
    trace, model = inst
    cells = [(0.5, 1.0, s) for s in range(k)]
    assert_kernel_matches_scalar(
        trace, model, _wang_factory, cells, check_reference=True
    )


@settings(max_examples=40, deadline=None)
@given(wang_instances(), st.booleans(),
       st.one_of(st.none(), st.integers(0, 8)))
def test_wang_drain_configurations_bit_identity(inst, drain, cap):
    """drain=False and binding event caps replay the scalar cascade
    semantics, including cap-stranded copies and mid-drain ships."""
    trace, model = inst
    k = KERNEL.run(
        trace, model, WangReplication(), drain=drain, drain_event_cap=cap
    )
    f = FAST.run(
        trace, model, WangReplication(), drain=drain, drain_event_cap=cap
    )
    assert k.storage_cost == f.storage_cost
    assert k.transfer_cost == f.transfer_cost
    assert k.n_transfers == f.n_transfers
    assert k.engine == "kernel"


@settings(max_examples=25, deadline=None)
@given(wang_instances())
def test_wang_bit_identity_across_backends(inst):
    """Every execution backend replays the cascade bit-identically
    (numba exercises its fallback wrapper when unavailable)."""
    trace, model = inst
    f = FAST.run(trace, model, WangReplication())
    for backend in ("numpy", "threads", "numba"):
        k = KernelCostEngine(backend=backend).run(
            trace, model, WangReplication()
        )
        assert k.storage_cost == f.storage_cost, backend
        assert k.transfer_cost == f.transfer_cost, backend
        assert k.n_transfers == f.n_transfers, backend


# ----------------------------------------------------------------------
# eligibility: history predictors are honestly gated out; Wang is in
# ----------------------------------------------------------------------


class TestSupports:
    def setup_method(self):
        self.trace = uniform_random_trace(n=4, m=40, horizon=300.0, seed=0)
        self.model = CostModel(lam=20.0, n=4)

    def test_registry_exposes_kernel(self):
        assert "kernel" in ENGINE_NAMES
        assert isinstance(get_engine("kernel"), KernelCostEngine)

    def test_supports_algorithm1_and_conventional(self):
        assert KERNEL.supports(
            self.trace, self.model,
            LearningAugmentedReplication(OraclePredictor(self.trace), 0.5),
        )
        assert KERNEL.supports(self.trace, self.model, ConventionalReplication())

    def test_wang_supported_and_bit_identical(self):
        assert KERNEL.supports(self.trace, self.model, WangReplication())
        k = KERNEL.run(self.trace, self.model, WangReplication())
        f = FAST.run(self.trace, self.model, WangReplication())
        assert k.engine == "kernel"
        assert k.storage_cost == f.storage_cost
        assert k.transfer_cost == f.transfer_cost
        assert k.n_transfers == f.n_transfers

    def test_wang_descending_rates_not_supported(self):
        # Wang's server-ordering assumption still gates bad models
        model = CostModel(lam=20.0, n=4, storage_rates=(2.0, 1.5, 1.0, 0.5))
        assert not KERNEL.supports(self.trace, model, WangReplication())
        with pytest.raises(Exception, match="ascending"):
            KERNEL.run(self.trace, model, WangReplication())

    def test_history_predictor_not_supported(self):
        pol = LearningAugmentedReplication(SlidingWindowPredictor(5), 0.5)
        assert not KERNEL.supports(self.trace, self.model, pol)
        with pytest.raises(EngineError, match="cannot stream"):
            KERNEL.run(self.trace, self.model, pol)

    def test_non_uniform_storage_not_supported(self):
        model = CostModel(lam=20.0, n=4, storage_rates=(1.0, 1.5, 2.0, 2.5))
        pol = LearningAugmentedReplication(OraclePredictor(self.trace), 0.5)
        assert not KERNEL.supports(self.trace, model, pol)

    def test_wang_slab_accepted_by_both_slab_tiers(self):
        def wang_factory(trace, lam, alpha, accuracy, seed):
            return WangReplication()

        cells = [(0.5, 1.0, 0), (0.5, 1.0, 1)]
        assert KERNEL.supports_slab(self.trace, self.model, wang_factory, cells)
        assert BATCH.supports_slab(self.trace, self.model, wang_factory, cells)
        assert_kernel_matches_scalar(
            self.trace, self.model, wang_factory, cells, check_reference=True
        )


# ----------------------------------------------------------------------
# selection crossovers and slab dispatch
# ----------------------------------------------------------------------


class TestSelection:
    def setup_method(self):
        # beyond both measured crossovers
        self.big = uniform_random_trace(
            n=4, m=KERNEL_SLAB_MIN_M + 200, horizon=1e6, seed=1
        )
        # below the single-cell crossover
        self.small = uniform_random_trace(n=4, m=60, horizon=400.0, seed=2)
        self.model = CostModel(lam=20.0, n=4)

    def test_auto_prefers_kernel_above_crossovers(self):
        pol = LearningAugmentedReplication(OraclePredictor(self.big), 0.5)
        assert select_engine(self.big, self.model, pol) is get_engine("kernel")
        assert select_engine(
            self.big, self.model, pol, "auto", slab_size=8
        ) is get_engine("kernel")

    def test_auto_keeps_fast_and_batch_below_crossovers(self):
        pol = LearningAugmentedReplication(OraclePredictor(self.small), 0.5)
        assert len(self.small) < KERNEL_MIN_M
        assert select_engine(self.small, self.model, pol) is get_engine("fast")
        assert select_engine(
            self.small, self.model, pol, "auto", slab_size=8
        ) is get_engine("batch")

    def test_wang_rides_kernel_through_select_engine(self):
        """select_engine never falls back for Wang: kernel above the
        crossovers, fast/batch only below them (like every policy)."""
        pol = WangReplication()
        assert select_engine(self.big, self.model, pol) is get_engine("kernel")
        assert select_engine(
            self.big, self.model, pol, "auto", slab_size=8
        ) is get_engine("kernel")
        assert select_engine(self.small, self.model, pol) is get_engine("fast")
        assert select_engine(
            self.small, self.model, pol, "auto", slab_size=8
        ) is get_engine("batch")

    def test_history_policy_falls_back_to_reference(self):
        pol = LearningAugmentedReplication(SlidingWindowPredictor(5), 0.5)
        assert select_engine(self.big, self.model, pol) is get_engine("reference")

    def test_run_slab_auto_dispatches_kernel_on_long_traces(self):
        cells = [(0.2, 0.8, 0), (0.7, 0.4, 1), (1.0, 1.0, 0)]
        runs = run_slab(self.big, self.model, cells, algorithm1_factory)
        assert all(r.engine == "kernel" for r in runs)
        batch_runs = run_slab(
            self.big, self.model, cells, algorithm1_factory, engine="batch"
        )
        for a, b in zip(runs, batch_runs):
            assert a.storage_cost == b.storage_cost
            assert a.transfer_cost == b.transfer_cost

    def test_run_slab_auto_keeps_batch_on_short_traces(self):
        cells = [(0.2, 0.8, 0), (0.7, 0.4, 1)]
        runs = run_slab(self.small, self.model, cells, algorithm1_factory)
        assert all(r.engine == "batch" for r in runs)

    def test_run_slab_explicit_kernel(self):
        cells = [(0.2, 0.8, 0), (0.7, 0.4, 1)]
        runs = run_slab(
            self.small, self.model, cells, algorithm1_factory, engine="kernel"
        )
        assert all(r.engine == "kernel" for r in runs)

    def test_run_slab_explicit_kernel_on_wang(self):
        def wang_factory(trace, lam, alpha, accuracy, seed):
            return WangReplication()

        cells = [(0.5, 1.0, 0), (0.5, 1.0, 1)]
        fast = FAST.run(self.small, self.model, WangReplication())
        runs = run_slab(
            self.small, self.model, cells, wang_factory, engine="kernel"
        )
        assert all(r.engine == "kernel" for r in runs)
        # auto keeps the short Wang slab on the batch tier, same costs
        auto_runs = run_slab(self.small, self.model, cells, wang_factory)
        for r in list(runs) + list(auto_runs):
            assert r.storage_cost == fast.storage_cost
            assert r.transfer_cost == fast.transfer_cost
        big_runs = run_slab(
            self.big, self.model, cells, wang_factory, engine="auto"
        )
        assert all(r.engine == "kernel" for r in big_runs)


# ----------------------------------------------------------------------
# every registered scenario rides the kernel wherever eligible
# ----------------------------------------------------------------------


def test_all_registered_scenarios_kernel_equivalent_where_supported():
    """Every registered scenario's smoke subset: kernel == fast == batch
    per cell wherever the slab is kernel-eligible — and batch-eligible
    now implies kernel-eligible (no policy is gated off the kernel)."""
    from repro.experiments import list_scenarios

    kernel_covered = 0
    for scenario in list_scenarios():
        lam = scenario.lambdas[0]
        alpha = scenario.alphas[0]
        acc = scenario.accuracies[-1]
        seed = scenario.seeds[0]
        trace = scenario.build_trace(lam=lam, alpha=alpha, accuracy=acc, seed=seed)
        model = CostModel(lam=lam, n=trace.n)
        cells = [(alpha, acc, seed), (scenario.alphas[-1], acc, seed)]
        if BATCH.supports_slab(trace, model, scenario.policy_factory, cells):
            assert KERNEL.supports_slab(
                trace, model, scenario.policy_factory, cells
            )
        if KERNEL.supports_slab(trace, model, scenario.policy_factory, cells):
            assert_kernel_matches_scalar(
                trace, model, scenario.policy_factory, cells
            )
            kernel_covered += 1
        # Wang-kernel identity on every registered scenario's trace
        wf = lambda tr, lm, a, ac, sd: WangReplication()  # noqa: E731
        assert_kernel_matches_scalar(trace, model, wf, cells[:1] * 2)
    # the paper grids, smoke, tight examples, adversary, and the
    # synthetic workload grids must all ride the kernel path
    assert kernel_covered >= 11


def test_sweep_grid_kernel_engine_matches_fast():
    trace = ibm_like_trace(n=6, m=400, seed=4)
    kw = dict(lambdas=(50.0,), alphas=(0.2, 0.8), accuracies=(0.5, 1.0))
    a = sweep_grid(trace, engine="kernel", **kw)
    b = sweep_grid(trace, engine="fast", **kw)
    for pa, pb in zip(a.points, b.points):
        assert pa.online_cost == pb.online_cost
        assert pa.optimal_cost == pb.optimal_cost


def test_experiment_runner_kernel_engine_matches_fast():
    from repro.experiments import ExperimentRunner, get_scenario

    scenario = get_scenario("smoke")
    k = ExperimentRunner(workers=1, engine="kernel").run(scenario)
    f = ExperimentRunner(workers=1, engine="fast").run(scenario)
    assert [r.online_cost for r in k.results] == [
        r.online_cost for r in f.results
    ]


def test_multi_object_kernel_engine():
    from repro import MultiObjectSystem, ObjectSpec

    tr = uniform_random_trace(n=3, m=30, horizon=200.0, seed=7)
    spec = ObjectSpec(
        object_id="obj-a", trace=tr, lam=10.0,
        policy_factory=lambda trace, model: ConventionalReplication(),
    )
    system = MultiObjectSystem(3, [spec])
    rep_k = system.run(engine="kernel", compute_optimal=False)
    rep_f = system.run(engine="fast", compute_optimal=False)
    assert rep_k.outcomes[0].result.total_cost == \
        rep_f.outcomes[0].result.total_cost
    assert rep_k.outcomes[0].result.engine == "kernel"


def test_cli_sweep_kernel_engine(capsys):
    from repro.cli import main

    assert main([
        "sweep", "--lambda", "100", "--requests", "120", "--coarse",
        "--engine", "kernel",
    ]) == 0
    out = capsys.readouterr().out
    assert "alpha\\acc" in out


# ----------------------------------------------------------------------
# prediction-matrix layouts
# ----------------------------------------------------------------------


def test_batch_for_predictors_cell_major_layout():
    trace = uniform_random_trace(n=4, m=60, horizon=300.0, seed=3)
    preds = [
        OraclePredictor(trace),
        AdversarialPredictor(trace),
        FixedPredictor(True),
        NoisyOraclePredictor(trace, 0.6, seed=2),
    ]
    cols = PredictionStream.batch_for_predictors(preds, trace, 10.0)
    rows = PredictionStream.batch_for_predictors(
        preds, trace, 10.0, cell_major=True
    )
    assert cols.shape == (len(trace) + 1, len(preds))
    assert rows.shape == (len(preds), len(trace) + 1)
    assert np.array_equal(rows, cols.T)
    assert rows.flags.c_contiguous


# ----------------------------------------------------------------------
# vectorized brute force == loop reference (satellite)
# ----------------------------------------------------------------------


@st.composite
def brute_instances(draw):
    n = draw(st.integers(1, 4))
    m = draw(st.integers(0, 9))
    gaps = draw(
        st.lists(
            st.floats(0.1, 8.0, allow_nan=False, allow_infinity=False),
            min_size=m,
            max_size=m,
        )
    )
    servers = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    lam = draw(st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False))
    ascending = draw(st.booleans())
    if ascending:
        rates = tuple(
            sorted(
                draw(
                    st.lists(
                        st.floats(0.2, 4.0, allow_nan=False),
                        min_size=n,
                        max_size=n,
                    )
                )
            )
        )
    else:
        rates = ()
    times = np.cumsum(gaps)
    trace = Trace(n, list(zip(times.tolist(), servers)))
    return trace, CostModel(lam=lam, n=n, storage_rates=rates)


@settings(max_examples=60, deadline=None)
@given(brute_instances())
def test_brute_force_vectorized_equals_reference(inst):
    """The bitmask-array search returns *exactly* the loop formulation's
    optimum (same doubles, not merely close) on uniform and per-server
    storage rates alike."""
    trace, model = inst
    assert brute_force_optimal_cost(trace, model) == _brute_force_reference(
        trace, model
    )


def test_brute_force_size_guards_unchanged():
    trace = uniform_random_trace(n=2, m=20, horizon=100.0, seed=0)
    model = CostModel(lam=5.0, n=2)
    with pytest.raises(ValueError, match="too large"):
        brute_force_optimal_cost(trace, model, max_requests=16)
    big_n = uniform_random_trace(n=6, m=5, horizon=100.0, seed=0)
    with pytest.raises(ValueError, match="too large"):
        brute_force_optimal_cost(big_n, CostModel(lam=5.0, n=6))


# ----------------------------------------------------------------------
# repro bench discovery (satellite)
# ----------------------------------------------------------------------


def test_bench_discovery_finds_runnable_suites():
    import os

    from repro.cli import _discover_bench_suites

    bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    suites = _discover_bench_suites(bench_dir)
    for name in ("engines", "batch", "trace", "kernel", "scaling"):
        assert name in suites
    # pytest-only figure benchmarks expose no main() and are not listed
    assert "fig25_28" not in suites


def test_bench_cli_list_and_unknown(capsys, tmp_path):
    from repro.cli import main

    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out and "scaling" in out
    assert main(["bench", "no-such-suite"]) == 2
    assert main(["bench", "--dir", str(tmp_path)]) == 2
