"""Unit tests for repro.core.costs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostLedger, CostModel


class TestCostModel:
    def test_defaults_uniform(self):
        m = CostModel(lam=5.0, n=3)
        assert m.storage_rates == (1.0, 1.0, 1.0)
        assert m.uniform_storage

    def test_custom_rates(self):
        m = CostModel(lam=5.0, n=2, storage_rates=(1.0, 2.0))
        assert not m.uniform_storage
        assert m.rate(1) == 2.0

    def test_lambda_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModel(lam=0.0, n=1)
        with pytest.raises(ValueError):
            CostModel(lam=-1.0, n=1)

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModel(lam=1.0, n=0)

    def test_rates_length_checked(self):
        with pytest.raises(ValueError):
            CostModel(lam=1.0, n=3, storage_rates=(1.0, 1.0))

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModel(lam=1.0, n=2, storage_rates=(1.0, 0.0))

    def test_ski_rental_horizon(self):
        m = CostModel(lam=10.0, n=2, storage_rates=(1.0, 4.0))
        assert m.ski_rental_horizon(0) == 10.0
        assert m.ski_rental_horizon(1) == 2.5

    def test_frozen(self):
        m = CostModel(lam=1.0, n=1)
        with pytest.raises(AttributeError):
            m.lam = 2.0  # type: ignore[misc]


class TestCostLedger:
    def test_initial_state(self):
        led = CostLedger(CostModel(lam=3.0, n=2))
        assert led.total == 0.0
        assert led.n_transfers == 0

    def test_add_storage(self):
        led = CostLedger(CostModel(lam=3.0, n=2))
        cost = led.add_storage(1, 4.0)
        assert cost == 4.0
        assert led.storage == 4.0
        assert led.storage_by_server[1] == 4.0
        assert led.storage_by_server[0] == 0.0

    def test_add_storage_rate_scaled(self):
        led = CostLedger(CostModel(lam=3.0, n=2, storage_rates=(1.0, 2.5)))
        assert led.add_storage(1, 4.0) == 10.0

    def test_zero_duration_ok(self):
        led = CostLedger(CostModel(lam=3.0, n=1))
        assert led.add_storage(0, 0.0) == 0.0

    def test_negative_duration_rejected(self):
        led = CostLedger(CostModel(lam=3.0, n=1))
        with pytest.raises(ValueError):
            led.add_storage(0, -1.0)

    def test_add_transfer(self):
        led = CostLedger(CostModel(lam=3.0, n=2))
        assert led.add_transfer(1) == 3.0
        assert led.transfer == 3.0
        assert led.n_transfers == 1
        assert led.transfers_by_dest[1] == 1

    def test_total(self):
        led = CostLedger(CostModel(lam=3.0, n=2))
        led.add_storage(0, 2.0)
        led.add_transfer(1)
        assert led.total == 5.0

    def test_snapshot(self):
        led = CostLedger(CostModel(lam=3.0, n=1))
        led.add_transfer(0)
        snap = led.snapshot()
        assert snap["transfer"] == 3.0
        assert snap["n_transfers"] == 1.0
        assert snap["total"] == 3.0

    def test_consistency_check_passes(self):
        led = CostLedger(CostModel(lam=3.0, n=2))
        led.add_storage(0, 1.0)
        led.add_transfer(1)
        led.check_consistency()

    def test_consistency_check_detects_corruption(self):
        led = CostLedger(CostModel(lam=3.0, n=2))
        led.add_storage(0, 1.0)
        led.storage = 999.0
        with pytest.raises(AssertionError):
            led.check_consistency()

    def test_breakdowns_accumulate(self):
        led = CostLedger(CostModel(lam=2.0, n=3))
        led.add_storage(0, 1.0)
        led.add_storage(2, 3.0)
        led.add_transfer(2)
        led.add_transfer(2)
        assert np.allclose(led.storage_by_server, [1.0, 0.0, 3.0])
        assert list(led.transfers_by_dest) == [0, 0, 2]
