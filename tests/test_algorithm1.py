"""Behavioural tests for Algorithm 1 (hand-computed scenarios).

Scenario conventions: ``lam = 10``, ``alpha = 0.5`` unless noted, so
regular copies last 10 (predicted within) or 5 (predicted beyond).
The dummy request pins the initial copy at server 0 at time 0.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    CostModel,
    FixedPredictor,
    LearningAugmentedReplication,
    OraclePredictor,
    RequestType,
    Trace,
    simulate,
)
from repro.core.events import EventKind

LAM = 10.0
ALPHA = 0.5


def run(trace, predictor, alpha=ALPHA, lam=LAM, **kw):
    model = CostModel(lam=lam, n=trace.n)
    policy = LearningAugmentedReplication(predictor, alpha, **kw)
    result = simulate(trace, model, policy)
    return result, policy


class TestParameterValidation:
    def test_alpha_zero_rejected_by_default(self):
        with pytest.raises(ValueError):
            LearningAugmentedReplication(FixedPredictor(False), 0.0)

    def test_alpha_zero_allowed_with_flag(self):
        p = LearningAugmentedReplication(
            FixedPredictor(False), 0.0, allow_zero_alpha=True
        )
        assert p.alpha == 0.0

    def test_alpha_above_one_rejected(self):
        with pytest.raises(ValueError):
            LearningAugmentedReplication(FixedPredictor(False), 1.1)

    def test_alpha_negative_rejected(self):
        with pytest.raises(ValueError):
            LearningAugmentedReplication(FixedPredictor(False), -0.2)

    def test_non_uniform_storage_rejected(self):
        tr = Trace(2, [(1.0, 0)])
        model = CostModel(lam=1.0, n=2, storage_rates=(1.0, 2.0))
        pol = LearningAugmentedReplication(FixedPredictor(False), 0.5)
        with pytest.raises(Exception, match="uniform"):
            simulate(tr, model, pol)


class TestIntendedDurations:
    def test_beyond_prediction_gives_alpha_lambda(self):
        tr = Trace(2, [(3.0, 1)])
        _, pol = run(tr, FixedPredictor(False))
        assert pol.classifications[0].duration_set == ALPHA * LAM

    def test_within_prediction_gives_lambda(self):
        tr = Trace(2, [(3.0, 1)])
        _, pol = run(tr, FixedPredictor(True))
        assert pol.classifications[0].duration_set == LAM

    def test_initial_copy_duration_from_r0_prediction(self):
        # always-beyond: initial copy lasts alpha*lam = 5; a request at
        # server 0 at t=6 therefore needs... no other copy exists, so the
        # copy is special and the request is Type-4.
        tr = Trace(1, [(6.0, 0)])
        res, pol = run(tr, FixedPredictor(False))
        assert pol.classifications[0].rtype is RequestType.TYPE_4
        # but at t=4 it is still regular (Type-3)
        tr2 = Trace(1, [(4.0, 0)])
        _, pol2 = run(tr2, FixedPredictor(False))
        assert pol2.classifications[0].rtype is RequestType.TYPE_3

    def test_alpha_one_ignores_predictions(self):
        tr = Trace(2, [(3.0, 1), (9.0, 1)])
        _, pol_b = run(tr, FixedPredictor(False), alpha=1.0)
        _, pol_w = run(tr, FixedPredictor(True), alpha=1.0)
        assert [c.duration_set for c in pol_b.classifications] == [
            c.duration_set for c in pol_w.classifications
        ] == [LAM, LAM]


class TestHandComputedScenario:
    """n=2, lam=10, alpha=0.5, always-'beyond' predictions.

    r_0 dummy at server 0 (copy until t=5); r_1 at server 1 t=3 (Type-1
    transfer, copy until 8 -> special); r_2 at server 1 t=12 (Type-4
    local); r_3 at server 0 t=14 (Type-1 transfer).  Hand-computed total:
    storage 16 + transfers 20 = 36.
    """

    @pytest.fixture
    def outcome(self):
        tr = Trace(2, [(3.0, 1), (12.0, 1), (14.0, 0)])
        return run(tr, FixedPredictor(False))

    def test_request_types(self, outcome):
        _, pol = outcome
        types = [c.rtype for c in pol.classifications]
        assert types == [RequestType.TYPE_1, RequestType.TYPE_4, RequestType.TYPE_1]

    def test_total_cost(self, outcome):
        res, _ = outcome
        assert res.total_cost == pytest.approx(36.0)

    def test_storage_and_transfer_split(self, outcome):
        res, _ = outcome
        assert res.storage_cost == pytest.approx(16.0)
        assert res.transfer_cost == pytest.approx(20.0)

    def test_server0_copy_dropped_at_expiry(self, outcome):
        res, _ = outcome
        drops = res.log.of_kind(EventKind.DROP)
        assert any(e.server == 0 and e.time == 5.0 for e in drops)

    def test_special_switch_at_8(self, outcome):
        res, _ = outcome
        specials = res.log.of_kind(EventKind.SPECIAL)
        assert [(e.server, e.time) for e in specials][0] == (1, 8.0)

    def test_type4_t_prime(self, outcome):
        _, pol = outcome
        c = pol.classifications[1]
        assert c.t_prime == pytest.approx(8.0)
        assert c.t_p == pytest.approx(3.0)

    def test_l_values(self, outcome):
        _, pol = outcome
        assert math.isnan(pol.classifications[0].l_i)  # first at server 1
        assert pol.classifications[1].l_i == pytest.approx(5.0)
        assert pol.classifications[2].l_i == pytest.approx(5.0)  # after dummy


class TestType2SpecialTransfer:
    def test_special_source_dropped_after_transfer(self):
        # special copy at server 1 (from t=8) serves server 0 at t=12
        tr = Trace(2, [(3.0, 1), (12.0, 0)])
        res, pol = run(tr, FixedPredictor(False))
        assert pol.classifications[1].rtype is RequestType.TYPE_2
        assert pol.classifications[1].t_prime == pytest.approx(8.0)
        # after r_2, only server 0 holds a copy
        drops = res.log.of_kind(EventKind.DROP)
        assert any(e.server == 1 and e.time == 12.0 for e in drops)

    def test_serve_record_marks_special_source(self):
        tr = Trace(2, [(3.0, 1), (12.0, 0)])
        res, _ = run(tr, FixedPredictor(False))
        sr = res.serve_of(2)
        assert not sr.local
        assert sr.source == 1
        assert sr.source_special
        assert sr.special_since == pytest.approx(8.0)


class TestType3LocalRegular:
    def test_within_expiry_served_locally(self):
        tr = Trace(2, [(3.0, 1), (7.0, 1)])
        res, pol = run(tr, FixedPredictor(False))
        # second request at 7 <= 3 + 5 = 8 -> local regular
        assert pol.classifications[1].rtype is RequestType.TYPE_3
        assert res.ledger.n_transfers == 1  # only r_1

    def test_request_exactly_at_expiry_is_local(self):
        # t_i <= E_j is inclusive (Algorithm 1 line 4)
        tr = Trace(2, [(3.0, 1), (8.0, 1)])
        _, pol = run(tr, FixedPredictor(False))
        assert pol.classifications[1].rtype is RequestType.TYPE_3

    def test_request_just_after_expiry_not_local(self):
        tr = Trace(2, [(3.0, 1), (8.0 + 1e-6, 1)])
        _, pol = run(tr, FixedPredictor(False))
        # the server-1 copy expired at 8 but it was the only copy
        # (server 0's died at 5), so it became special -> Type-4
        assert pol.classifications[1].rtype is RequestType.TYPE_4

    def test_renewal_restarts_duration(self):
        # r_1 at 3 (copy to 8), r_2 at 7 local renews to 12, r_3 at 11 local
        tr = Trace(2, [(3.0, 1), (7.0, 1), (11.0, 1)])
        _, pol = run(tr, FixedPredictor(False))
        assert pol.classifications[2].rtype is RequestType.TYPE_3


class TestAtLeastOneCopy:
    def test_long_silent_period_keeps_one_copy(self):
        tr = Trace(3, [(3.0, 1), (4.0, 2), (500.0, 0)])
        res, _ = run(tr, FixedPredictor(False))
        res.log.verify_at_least_one_copy()

    def test_exactly_one_special_during_silence(self):
        tr = Trace(3, [(3.0, 1), (4.0, 2), (500.0, 0)])
        res, _ = run(tr, FixedPredictor(False))
        # between the last expiry and t=500 exactly one copy exists
        traj = res.log.copy_count_trajectory()
        counts_late = [c for (t, c) in traj if 20.0 < t < 500.0]
        assert all(c == 1 for c in counts_late) or counts_late == []

    def test_special_periods_never_overlap_regular(self):
        # Proposition 1: a special copy is always the only copy
        tr = Trace(3, [(3.0, 1), (4.0, 2), (50.0, 0), (60.0, 1), (200.0, 2)])
        res, _ = run(tr, FixedPredictor(False))
        for rec in res.copy_records:
            if rec.is_special_at_end:
                t0 = rec.special_at
                t1 = rec.end if rec.end == rec.end else res.trace.span
                for other in res.copy_records:
                    if other is rec:
                        continue
                    o_end = other.end if other.end == other.end else float("inf")
                    # no other copy may exist strictly inside (t0, t1)
                    assert not (other.start < t1 - 1e-12 and o_end > t0 + 1e-12), (
                        rec,
                        other,
                    )


class TestAlphaZeroFullTrust:
    def test_alpha_zero_drops_immediately_on_beyond(self):
        tr = Trace(2, [(3.0, 1), (4.0, 0)])
        res, pol = run(
            tr, FixedPredictor(False), alpha=0.0, allow_zero_alpha=True
        )
        # r_1's copy expires instantly at t=3 but server 0's initial copy
        # also expired instantly at t=0 (special) and was dropped when it
        # served r_1's transfer... so server 1's copy is the only one ->
        # special. r_2 at server 0 is then a Type-2 transfer.
        assert pol.classifications[1].rtype is RequestType.TYPE_2

    def test_alpha_zero_with_perfect_predictions_near_optimal(self):
        tr = Trace(2, [(3.0, 1), (5.0, 1), (7.0, 1), (30.0, 1)])
        res, _ = run(
            tr, OraclePredictor(tr), alpha=0.0, allow_zero_alpha=True
        )
        # short gaps served locally, the 23-gap by special transfer; with
        # full trust the online cost tracks the optimum closely
        from repro import optimal_cost

        opt = optimal_cost(tr, CostModel(lam=LAM, n=2))
        assert res.total_cost <= opt * 2.0


class TestOraclePredictionsScenario:
    def test_within_prediction_extends_copy(self):
        # gaps: r_1 at 3, r_2 at 12 (gap 9 <= 10 -> predicted within ->
        # duration 10 -> served locally at 12)
        tr = Trace(2, [(3.0, 1), (12.0, 1)])
        _, pol = run(tr, OraclePredictor(tr))
        assert pol.classifications[0].predicted_within
        assert pol.classifications[1].rtype is RequestType.TYPE_3

    def test_beyond_prediction_shrinks_copy(self):
        # gap 11 > 10 -> beyond -> duration 5 -> copy gone by t=14, but it
        # was the only copy so it became special -> Type-4
        tr = Trace(2, [(3.0, 1), (14.0, 1)])
        _, pol = run(tr, OraclePredictor(tr))
        assert not pol.classifications[0].predicted_within
        assert pol.classifications[1].rtype is RequestType.TYPE_4

    def test_proposition8_type_gap_relation(self):
        # with perfect predictions: Type-3 iff gap <= lam (Proposition 8)
        tr = Trace(
            3,
            [(3.0, 1), (5.0, 2), (9.0, 1), (30.0, 1), (31.0, 2), (45.0, 0)],
        )
        _, pol = run(tr, OraclePredictor(tr))
        gaps = tr.inter_request_gaps()
        for c in pol.classifications:
            gap = gaps[c.request_index - 1]
            if math.isinf(gap):
                continue
            if c.rtype is RequestType.TYPE_3:
                assert gap <= LAM
            else:
                assert gap > LAM


class TestTransferSourceChoice:
    def test_source_must_hold_copy(self):
        tr = Trace(3, [(3.0, 1), (4.0, 2)])
        res, _ = run(tr, FixedPredictor(True))
        for sr in res.serves:
            if not sr.local:
                assert sr.source != sr.request.server

    def test_classification_count_matches_requests(self):
        tr = Trace(3, [(3.0, 1), (4.0, 2), (5.0, 0), (6.0, 1)])
        _, pol = run(tr, FixedPredictor(True))
        assert len(pol.classifications) == 4
        assert [c.request_index for c in pol.classifications] == [1, 2, 3, 4]
