"""Tests for the ensemble predictors."""

from __future__ import annotations

import pytest

from repro import (
    CostModel,
    EwmaPredictor,
    FixedPredictor,
    LastGapPredictor,
    LearningAugmentedReplication,
    SlidingWindowPredictor,
    simulate,
)
from repro.predictions import (
    MajorityVotePredictor,
    WeightedMajorityPredictor,
    evaluate_predictor,
    realized_accuracy,
)
from repro.workloads import periodic_trace, uniform_random_trace


class TestMajorityVote:
    def test_needs_members(self):
        with pytest.raises(ValueError):
            MajorityVotePredictor([])

    def test_unanimous(self):
        p = MajorityVotePredictor([FixedPredictor(True), FixedPredictor(True)])
        assert p.predict_within(0, 0.0, 1.0)

    def test_majority_wins(self):
        p = MajorityVotePredictor(
            [FixedPredictor(True), FixedPredictor(True), FixedPredictor(False)]
        )
        assert p.predict_within(0, 0.0, 1.0)

    def test_tie_break(self):
        p = MajorityVotePredictor(
            [FixedPredictor(True), FixedPredictor(False)], tie_within=True
        )
        assert p.predict_within(0, 0.0, 1.0)
        q = MajorityVotePredictor(
            [FixedPredictor(True), FixedPredictor(False)], tie_within=False
        )
        assert not q.predict_within(0, 0.0, 1.0)

    def test_observe_propagates(self):
        ewma = EwmaPredictor()
        p = MajorityVotePredictor([ewma])
        p.observe(0, 0.0)
        p.observe(0, 3.0)
        assert ewma.predict_within(0, 3.0, 5.0)  # gap 3 learned


class TestWeightedMajority:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WeightedMajorityPredictor([], eta=0.3)
        with pytest.raises(ValueError):
            WeightedMajorityPredictor([FixedPredictor(True)], eta=1.0)

    def test_downweights_wrong_member(self):
        # constant gaps of 3, lam=5: truth is always "within"; the
        # always-"beyond" member must lose weight
        good = FixedPredictor(True)
        bad = FixedPredictor(False)
        p = WeightedMajorityPredictor([good, bad], eta=0.5)
        t = 0.0
        p.observe(0, t)
        for _ in range(10):
            p.predict_within(0, t, 5.0)
            t += 3.0
            p.observe(0, t)
        k, w = p.best_member()
        assert k == 0
        assert p.weights[0] > p.weights[1]

    def test_tracks_best_member_accuracy(self):
        # periodic trace: gap always 6; lam=7 -> truth "within" always.
        tr = periodic_trace(n=2, period=3.0, cycles=40)
        members = [FixedPredictor(True), FixedPredictor(False)]
        p = WeightedMajorityPredictor(members, eta=0.4)
        outcomes = evaluate_predictor(tr, p, lam=7.0)
        # after warm-up the ensemble should match the good member
        assert realized_accuracy(outcomes[10:]) > 0.9

    def test_weights_stay_normalised(self):
        tr = uniform_random_trace(3, 60, horizon=60.0, seed=5)
        p = WeightedMajorityPredictor(
            [LastGapPredictor(), EwmaPredictor(), FixedPredictor(False)], eta=0.3
        )
        evaluate_predictor(tr, p, lam=2.0)
        assert sum(p.weights) == pytest.approx(len(p.weights))
        assert all(w >= 0 for w in p.weights)

    def test_plugs_into_algorithm1(self):
        tr = uniform_random_trace(3, 40, horizon=80.0, seed=6)
        model = CostModel(lam=3.0, n=3)
        ensemble = WeightedMajorityPredictor(
            [EwmaPredictor(), LastGapPredictor(), SlidingWindowPredictor(4)],
            eta=0.3,
        )
        pol = LearningAugmentedReplication(ensemble, 0.3)
        res = simulate(tr, model, pol)
        res.log.verify_at_least_one_copy()
        assert res.total_cost > 0

    def test_ensemble_robust_to_one_bad_member(self):
        # ensemble of one good learned predictor and two adversarially
        # constant ones still performs close to the good member alone
        tr = periodic_trace(n=2, period=2.0, cycles=80)
        model = CostModel(lam=5.0, n=2)

        good_only = simulate(
            tr,
            model,
            LearningAugmentedReplication(SlidingWindowPredictor(3), 0.2),
        )
        ensemble = WeightedMajorityPredictor(
            [SlidingWindowPredictor(3), FixedPredictor(False), FixedPredictor(False)],
            eta=0.5,
        )
        mixed = simulate(tr, model, LearningAugmentedReplication(ensemble, 0.2))
        assert mixed.total_cost <= good_only.total_cost * 1.4
